// Ablation H (extension): does the trade-off survive in 3D?
//
// The paper's test set is 2D (grids, meshes, networks).  3D problems fill
// far more and produce much wider supernodes, which shifts the balance
// between the block scheme's locality win and its imbalance cost.  This
// bench repeats the Table 2/3/5 comparison on a 7-point 3D Laplacian.
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/grid3d.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  const CscMatrix a = grid_laplacian_7pt_3d(10, 10, 10);
  const Pipeline pipe(a, OrderingKind::kMmd);
  std::cout << "Ablation H: 7-point Laplacian on a 10x10x10 grid (n = 1000)\n"
            << "nnz(A) = " << a.nnz() << ", nnz(L) = " << pipe.symbolic().nnz()
            << " (fill "
            << Table::fixed(static_cast<double>(pipe.symbolic().nnz()) /
                                static_cast<double>(a.nnz()),
                            1)
            << "x; compare LAP30's 4.2x)\n\n";
  Table t({"mapping", "P", "traffic", "mean traffic", "lambda", "efficiency"});
  for (index_t np : {4, 16, 32}) {
    const MappingReport w = pipe.wrap_mapping(np).report();
    t.add_row({"wrap", Table::num(np), Table::num(w.total_traffic),
               Table::fixed(w.mean_traffic, 0), Table::fixed(w.lambda, 3),
               Table::fixed(w.efficiency, 3)});
    for (index_t g : {4, 25, 100}) {
      const MappingReport r =
          pipe.block_mapping(PartitionOptions::with_grain(g, 4), np).report();
      t.add_row({"block g=" + std::to_string(g), Table::num(np), Table::num(r.total_traffic),
                 Table::fixed(r.mean_traffic, 0), Table::fixed(r.lambda, 3),
                 Table::fixed(r.efficiency, 3)});
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\n3D's wide supernodes amplify the block scheme's traffic saving —\n"
            << "and, at large grains, its imbalance.  The paper's 2D conclusions\n"
            << "carry over with bigger constants.\n";
  return 0;
}
