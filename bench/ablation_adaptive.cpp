// Ablation J (extension): the paper's adaptive triangle constraint.
//
// Section 3.2 lists two controls on triangle partitioning: (a) the number
// of processors assigned to the triangle's predecessors, and (b) the
// minimum-work grain.  The paper's experiments fix (b) only ("for the
// results presented here we use a fixed size"); this bench turns (a) on —
// every cluster triangle is cut into at most as many units as distinct
// predecessor processors — and measures what the constraint buys.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation J: fixed-grain vs adaptive triangle partitioning (width 4)\n\n";
  for (index_t np : {16, 32}) {
    std::cout << "--- P = " << np << " ---\n";
    Table t({"Appl.", "g", "blocks fixed", "blocks adapt", "traffic fixed",
             "traffic adapt", "lambda fixed", "lambda adapt"});
    for (const auto& ctx : make_problem_contexts()) {
      for (index_t g : {4, 25}) {
        const MappingReport rf =
            ctx.pipeline.block_mapping(PartitionOptions::with_grain(g, 4), np).report();
        const MappingReport ra =
            ctx.pipeline.block_mapping_adaptive(PartitionOptions::with_grain(g, 4), np)
                .report();
        t.add_row({ctx.problem.name, Table::num(g), Table::num(rf.num_blocks),
                   Table::num(ra.num_blocks), Table::num(rf.total_traffic),
                   Table::num(ra.total_traffic), Table::fixed(rf.lambda, 2),
                   Table::fixed(ra.lambda, 2)});
      }
      t.add_separator();
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "The cap merges over-split triangles whose predecessors sit on few\n"
            << "processors, trading a little balance for communication confined to\n"
            << "smaller processor groups.\n";
  return 0;
}
