// Ablation A (extension): the paper's metrics ignore dependency delays;
// its conclusion argues block mapping wins "for systems ... where
// communication overhead is much more expensive than computation".  This
// bench quantifies that claim with the event-driven simulator: simulated
// makespan and efficiency of block vs wrap mapping as the per-element
// communication cost sweeps from free to expensive.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation A: simulated execution (dependency delays included)\n"
            << "block (g=25, width 4) vs wrap mapping, P = 16, alpha = 20\n\n";
  const double kBetas[] = {0.0, 0.5, 1.0, 2.0, 5.0, 10.0};
  for (const char* name : {"LAP30", "LSHP1009", "CANN1072"}) {
    const auto ctx = make_problem_context(name);
    const Mapping block = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16);
    const Mapping wrap = ctx.pipeline.wrap_mapping(16);
    std::cout << "--- " << name << " ---\n";
    Table t({"beta", "block makespan", "wrap makespan", "block eff", "wrap eff",
             "winner"});
    for (double beta : kBetas) {
      const SimParams params{1.0, 20.0, beta, {}};
      const SimResult rb = block.simulate(params);
      const SimResult rw = wrap.simulate(params);
      t.add_row({Table::fixed(beta, 1), Table::fixed(rb.makespan, 0),
                 Table::fixed(rw.makespan, 0), Table::fixed(rb.efficiency, 3),
                 Table::fixed(rw.efficiency, 3),
                 rb.makespan < rw.makespan ? "block" : "wrap"});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "As communication cost grows, the winner flips from wrap (better\n"
            << "balance) to block (less traffic) — the paper's predicted regime\n"
            << "dependence.\n";
  return 0;
}
