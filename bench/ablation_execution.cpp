// Ablation D (extension): execute the mappings for real.
//
// Runs the distributed-memory factorization on the simulated
// message-passing machine for both mappings and shows that the executed
// communication (elements actually shipped between ranks, after the
// paper's sender-side consolidation) equals the analytic data-traffic
// metric of Tables 2 and 5 — i.e. the paper's traffic numbers are not a
// model abstraction but exactly what a consolidating implementation moves.
#include <cmath>
#include <iostream>

#include "core/experiments.hpp"
#include "dist/dist_cholesky.hpp"
#include "numeric/cholesky.hpp"
#include "metrics/traffic.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation D: executed vs analytic communication (P = 16)\n\n";
  Table t({"Appl.", "mapping", "analytic traffic", "executed volume", "messages",
           "max |L| err"});
  for (const auto& ctx : make_problem_contexts()) {
    auto run = [&](const std::string& label, const Mapping& m) {
      const DistResult r = distributed_cholesky(ctx.pipeline.permuted_matrix(),
                                                m.partition, m.deps, m.assignment);
      const TrafficReport analytic = simulate_traffic(m.partition, m.assignment);
      // Compare against the sequential factorization.
      const CholeskyFactor seq =
          numeric_cholesky(ctx.pipeline.permuted_matrix(), ctx.pipeline.symbolic());
      double err = 0.0;
      const SymbolicFactor& osf = ctx.pipeline.symbolic();
      const SymbolicFactor& asf = m.partition.factor;
      for (index_t j = 0; j < osf.n(); ++j) {
        const auto rows = osf.col_rows(j);
        const count_t base = osf.col_ptr()[static_cast<std::size_t>(j)];
        for (std::size_t k = 0; k < rows.size(); ++k) {
          const double d =
              r.values[static_cast<std::size_t>(asf.element_id(rows[k], j))] -
              seq.values[static_cast<std::size_t>(base) + k];
          err = std::max(err, std::abs(d));
        }
      }
      t.add_row({ctx.problem.name, label, Table::num(analytic.total()),
                 Table::num(r.stats.volume), Table::num(r.stats.messages),
                 Table::fixed(err, 12)});
    };
    run("block g=25", ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16));
    run("wrap", ctx.pipeline.wrap_mapping(16));
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\n'executed volume' counts factor elements delivered between ranks\n"
            << "of the message-passing machine; it equals the analytic traffic\n"
            << "because senders consolidate: each element goes to each processor\n"
            << "at most once (the paper's step 5).\n";
  return 0;
}
