// Ablation I (extension): the methodology beyond factorization.
//
// The paper's final generalization: the partition/schedule/measure
// machinery "can be generalized to computations that can be represented as
// directed acyclic graphs with sufficient information prior to performing
// the computations."  This bench applies the locality-vs-balance
// scheduling trade-off to task DAGs that are not factorizations at all
// (synthetic layered workloads with heavy edges), and to the factorization
// DAG itself through the same generic interface.
#include <iostream>

#include "core/experiments.hpp"
#include "sim/task_dag.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation I: generic DAG scheduling (P = 16)\n\n";
  const SimParams pricey{1.0, 30.0, 3.0, {}};

  auto compare = [&](const std::string& name, const TaskDag& dag) {
    std::cout << "--- " << name << " (" << dag.num_tasks() << " tasks) ---\n";
    Table t({"scheduler", "cross volume", "lambda", "makespan"});
    for (double slack : {-1.0, 0.0, 4.0, 16.0}) {
      Assignment a = slack < 0 ? dag_min_load_schedule(dag, 16)
                               : dag_locality_schedule(dag, 16, slack);
      const SimResult r = simulate_dag(dag, a, pricey);
      t.add_row({slack < 0 ? "min-load" : "locality s=" + Table::fixed(slack, 0),
                 Table::num(dag_cross_volume(dag, a)),
                 Table::fixed(dag_load_imbalance(dag, a), 3),
                 Table::fixed(r.makespan, 0)});
    }
    t.print(std::cout);
    std::cout << "\n";
  };

  compare("layered stencil-like DAG (light edges)",
          random_layered_dag(20, 24, 3, 60, 4, 101));
  compare("layered reduction-like DAG (heavy edges)",
          random_layered_dag(20, 24, 3, 20, 60, 202));
  {
    const auto ctx = make_problem_context("LSHP1009");
    const Mapping m = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16);
    compare("LSHP1009 factorization DAG (via the generic interface)",
            dag_from_mapping(m.partition, m.deps, m.blk_work));
  }
  std::cout << "When edges are heavy relative to work, locality slack pays off in\n"
            << "makespan exactly as it does for the factorization DAG — the\n"
            << "paper's trade-off is a property of DAG mapping, not of Cholesky.\n";
  return 0;
}
