// Ablation B (extension): continuous grain-size sweep.  Tables 2-3 sample
// g = 4 and g = 25; this bench traces the full communication /
// load-balance trade-off curve the paper describes ("the larger the grain
// size, the smaller is the communication, at the cost of larger load
// imbalance").
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation B: grain-size sweep (block mapping, width 4, P = 16)\n\n";
  const index_t kGrains[] = {1, 2, 4, 8, 16, 25, 50, 100};
  for (const auto& ctx : make_problem_contexts()) {
    std::cout << "--- " << ctx.problem.name << " ---\n";
    Table t({"grain", "blocks", "traffic", "mean traffic", "lambda", "efficiency"});
    for (index_t g : kGrains) {
      const MappingReport r =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(g, 4), 16).report();
      t.add_row({Table::num(g), Table::num(r.num_blocks), Table::num(r.total_traffic),
                 Table::fixed(r.mean_traffic, 0), Table::fixed(r.lambda, 3),
                 Table::fixed(r.efficiency, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
