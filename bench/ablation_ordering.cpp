// Ablation C (extension): how the fill-reducing ordering interacts with
// the partitioner.  The paper fixes MMD; here we compare natural, RCM and
// MMD orderings on fill, cluster structure, traffic, and load balance,
// showing why MMD's many small supernodes suit the block scheme.
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation C: ordering choice (block mapping, g = 4, width 4, P = 16)\n\n";
  for (const auto& prob : harwell_boeing_stand_ins()) {
    std::cout << "--- " << prob.name << " ---\n";
    Table t({"ordering", "nnz(L)", "clusters", "blocks", "traffic", "lambda"});
    for (OrderingKind kind :
         {OrderingKind::kNatural, OrderingKind::kRcm, OrderingKind::kNestedDissection,
          OrderingKind::kMmd}) {
      const Pipeline pipe(prob.lower, kind);
      const Mapping m = pipe.block_mapping(PartitionOptions::with_grain(4, 4), 16);
      const MappingReport r = m.report();
      t.add_row({to_string(kind), Table::num(pipe.symbolic().nnz()),
                 Table::num(r.num_clusters), Table::num(r.num_blocks),
                 Table::num(r.total_traffic), Table::fixed(r.lambda, 3)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
