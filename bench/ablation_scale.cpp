// Ablation L (extension): scaling beyond the paper's problem sizes.
//
// The paper's test set tops out near n = 1200 (1991 memory limits).  This
// bench runs the full pipeline on growing grid Laplacians.  At a FIXED
// grain the block scheme's relative saving peaks and then narrows as the
// problem grows — the grain must scale with the supernode sizes, the same
// coupling the paper observes between cluster width and grain size.
#include <chrono>
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/grid.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation L: grid-size scaling (9-point Laplacian, P = 16, g = 25)\n\n";
  Table t({"grid", "n", "nnz(L)", "wrap traffic", "block traffic", "saving", "wrap lambda",
           "block lambda", "pipeline ms"});
  for (index_t m : {15, 30, 45, 60}) {
    const auto t0 = std::chrono::steady_clock::now();
    Pipeline pipe(grid_laplacian_9pt(m, m), OrderingKind::kMmd);  // no input copy
    const CscMatrix& a = pipe.original_matrix();
    const MappingReport wrap = pipe.wrap_mapping(16).report();
    const MappingReport block =
        pipe.block_mapping(PartitionOptions::with_grain(25, 4), 16).report();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    t.add_row({std::to_string(m) + "x" + std::to_string(m), Table::num(a.ncols()),
               Table::num(pipe.symbolic().nnz()), Table::num(wrap.total_traffic),
               Table::num(block.total_traffic),
               Table::fixed(100.0 * (1.0 - static_cast<double>(block.total_traffic) /
                                               static_cast<double>(wrap.total_traffic)),
                            0) + "%",
               Table::fixed(wrap.lambda, 2), Table::fixed(block.lambda, 2),
               Table::num(static_cast<count_t>(ms))});
  }
  t.print(std::cout);
  std::cout << "\nAt fixed g = 25 the saving narrows with problem size: larger\n"
            << "problems have larger supernodes and need proportionally larger\n"
            << "grains (the paper's grain/width coupling).  The full pipeline\n"
            << "stays under a second at 4x the paper's sizes.\n";
  return 0;
}
