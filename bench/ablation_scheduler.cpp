// Ablation E (extension): allocation strategies.
//
// The paper's conclusion: "the load balance can be improved by using more
// sophisticated strategies to allocate blocks to processors".  This bench
// compares the paper's allocator with pure-balance (greedy min-load, LPT)
// and a tunable locality/balance hybrid, on traffic, lambda, and the
// simulated makespans under cheap and expensive communication.
#include <iostream>

#include "core/experiments.hpp"
#include "schedule/variants.hpp"
#include "sim/desim.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation E: allocation strategies (block partition g=25, width 4, "
               "P = 16)\n\n";
  const SimParams cheap{1.0, 10.0, 0.2};
  const SimParams pricey{1.0, 50.0, 5.0};
  for (const char* name : {"LAP30", "CANN1072", "LSHP1009"}) {
    const auto ctx = make_problem_context(name);
    Mapping base = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16);
    const auto volumes = edge_volumes(base.partition, base.deps);

    std::cout << "--- " << name << " ---\n";
    Table t({"strategy", "traffic", "lambda", "makespan (cheap)", "makespan (pricey)"});
    auto row = [&](const std::string& label, Assignment assignment) {
      Mapping m = base;
      m.assignment = std::move(assignment);
      const MappingReport r = m.report();
      const SimResult rc = simulate_execution(m.partition, m.deps, volumes, m.blk_work,
                                              m.assignment, cheap);
      const SimResult rp = simulate_execution(m.partition, m.deps, volumes, m.blk_work,
                                              m.assignment, pricey);
      t.add_row({label, Table::num(r.total_traffic), Table::fixed(r.lambda, 3),
                 Table::fixed(rc.makespan, 0), Table::fixed(rp.makespan, 0)});
    };
    row("paper (Sec. 3.4)", base.assignment);
    row("greedy min-load",
        greedy_min_load_schedule(base.partition, base.blk_work, 16));
    row("LPT", lpt_schedule(base.partition, base.blk_work, 16));
    for (double slack : {1.0, 4.0, 16.0}) {
      row("locality-greedy s=" + Table::fixed(slack, 0),
          locality_greedy_schedule(base.partition, base.deps, base.blk_work, 16,
                                   {slack}));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Pure-balance strategies minimize lambda but pay in traffic; the\n"
            << "locality-greedy slack knob traces the same trade-off the paper's\n"
            << "grain size does, from the scheduling side.\n";
  return 0;
}
