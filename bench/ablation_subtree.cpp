// Ablation K (extension): subtree-to-subcube vs wrap vs block.
//
// The paper's wrap baseline was the common practice; the other classical
// mapping of the era was subtree-to-subcube (George-Heath-Liu-Ng, the
// paper's reference [8]), which localizes communication along the
// elimination tree.  This bench places it between the two schemes the
// paper studies.
#include <iostream>

#include "core/experiments.hpp"
#include "metrics/report.hpp"
#include "metrics/work.hpp"
#include "schedule/subtree.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation K: wrap vs subtree-to-subcube vs block (P = 16)\n\n";
  Table t({"Appl.", "mapping", "traffic", "mean partners", "lambda"});
  for (const auto& ctx : make_problem_contexts()) {
    auto emit = [&](const std::string& label, const Partition& p, const Assignment& a,
                    const std::vector<count_t>& work) {
      const MappingReport r = evaluate_mapping(p, a, work);
      t.add_row({ctx.problem.name, label, Table::num(r.total_traffic),
                 Table::fixed(r.mean_partners, 1), Table::fixed(r.lambda, 2)});
    };
    {
      const Mapping wrap = ctx.pipeline.wrap_mapping(16);
      emit("wrap", wrap.partition, wrap.assignment, wrap.blk_work);
      const Assignment sub = subtree_schedule(wrap.partition, wrap.blk_work, 16);
      emit("subtree-to-subcube", wrap.partition, sub, wrap.blk_work);
    }
    {
      const Mapping block = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16);
      emit("block g=25", block.partition, block.assignment, block.blk_work);
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nSubtree-to-subcube sits between the schemes: tree locality cuts\n"
            << "wrap's traffic and partner counts, while the paper's block scheme\n"
            << "exploits the supernode geometry the tree mapping cannot see.\n";
  return 0;
}
