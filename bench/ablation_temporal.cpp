// Ablation M (extension): load balance "at all times".
//
// The paper's requirement is stronger than its measurement: "to balance
// the load, the computations must be evenly distributed at all times"
// (Section 1), yet Table 3's lambda only checks the totals.  This bench
// measures both — the end-of-run lambda and the work-weighted per-DAG-level
// lambda — exposing how much worse every mapping looks when balance is
// demanded stage by stage, and where the traffic actually originates
// (cumulative share of the top clusters).
#include <algorithm>
#include <iostream>

#include "core/experiments.hpp"
#include "metrics/temporal.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation M: end-of-run vs temporal (per-level) load balance, P = 16\n\n";
  Table t({"Appl.", "mapping", "lambda (total)", "lambda (temporal)", "DAG levels",
           "top-5 cluster traffic share"});
  for (const auto& ctx : make_problem_contexts()) {
    auto row = [&](const std::string& label, const Mapping& m) {
      const MappingReport r = m.report();
      const TemporalBalance tb =
          temporal_imbalance(m.partition, m.deps, m.blk_work, m.assignment);
      auto by_cluster = traffic_by_cluster(m.partition, m.assignment);
      std::sort(by_cluster.begin(), by_cluster.end(), std::greater<>());
      count_t top5 = 0, total = 0;
      for (std::size_t i = 0; i < by_cluster.size(); ++i) {
        total += by_cluster[i];
        if (i < 5) top5 += by_cluster[i];
      }
      t.add_row({ctx.problem.name, label, Table::fixed(r.lambda, 2),
                 Table::fixed(tb.weighted_lambda, 2),
                 Table::num(static_cast<count_t>(tb.level_lambda.size())),
                 total > 0 ? Table::fixed(100.0 * static_cast<double>(top5) /
                                              static_cast<double>(total),
                                          0) + "%"
                           : "-"});
    };
    row("block g=25", ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16));
    row("wrap", ctx.pipeline.wrap_mapping(16));
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nTemporal lambda is several times the end-of-run lambda for every\n"
            << "mapping: per-stage balance is much harder, and a handful of top\n"
            << "clusters (the elimination tree's upper supernodes) produce most\n"
            << "of the traffic — the locality the block scheme exploits.\n";
  return 0;
}
