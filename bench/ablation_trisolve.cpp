// Ablation G (extension): the triangular-solve phase.
//
// The paper's conclusion: "in real applications factoring is only a part
// of the overall solution of the system and other computations such as
// triangular solves can provide additional flexibility in ... balancing
// the load which is not taken into account here."  This bench runs the
// distributed forward+backward solves under both mappings and reports
// their communication, next to the factorization's, quantifying how the
// mapping chosen for the factorization treats the solve phase.
#include <iostream>

#include "core/experiments.hpp"
#include "dist/dist_trisolve.hpp"
#include "numeric/cholesky.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation G: triangular-solve communication (P = 16)\n\n";
  Table t({"Appl.", "mapping", "factor traffic", "solve volume (fwd+bwd)",
           "solve messages"});
  for (const auto& ctx : make_problem_contexts()) {
    const CholeskyFactor factor =
        numeric_cholesky(ctx.pipeline.permuted_matrix(), ctx.pipeline.symbolic());
    SplitMix64 rng(99);
    std::vector<double> b(static_cast<std::size_t>(ctx.problem.lower.ncols()));
    for (auto& v : b) v = rng.uniform();

    auto row = [&](const std::string& label, const Mapping& m) {
      const DistSolveResult y =
          distributed_lower_solve(factor, m.partition, m.assignment, b);
      const DistSolveResult x = distributed_lower_transpose_solve(
          factor, m.partition, m.assignment, y.solution);
      t.add_row({ctx.problem.name, label, Table::num(m.report().total_traffic),
                 Table::num(y.stats.volume + x.stats.volume),
                 Table::num(y.stats.messages + x.stats.messages)});
    };
    row("block g=25", ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16));
    row("wrap", ctx.pipeline.wrap_mapping(16));
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nThe solve phase is communication-light compared to factorization\n"
            << "but runs twice per right-hand side; the block mapping's locality\n"
            << "carries over to it for free.\n";
  return 0;
}
