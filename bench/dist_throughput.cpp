// Distributed-runtime throughput: fan-both factorizations per second over
// the loopback fabric at nranks = 4 versus a single rank, on two suite
// matrices.  The single-rank run is the same executor with the whole
// mapping on one rank (no messages), so the ratio isolates what the
// message-passing discipline costs or buys on one shared-memory host —
// the in-process analogue of the paper's multiprocessor speedup.
//
// Each configuration also cross-checks that the distributed factor is
// bitwise identical to the shared-memory executor on the same mapping
// (the runtime's headline determinism claim), and records the delivered
// data volume so regressions in the consolidated send plan show up as a
// traffic jump, not just a slowdown.
//
// Writes BENCH_dist.json (override with --out FILE); --reps controls the
// sample count (median is reported).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "rt/loopback.hpp"
#include "rt/rt_cholesky.hpp"
#include "support/json.hpp"

namespace {

using namespace spf;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

rt::RtRunResult run_once(const CscMatrix& permuted, const Mapping& m) {
  rt::LoopbackFabric fabric(m.assignment.nprocs);
  std::vector<rt::Transport*> endpoints;
  for (index_t r = 0; r < m.assignment.nprocs; ++r) {
    endpoints.push_back(&fabric.endpoint(r));
  }
  return rt::rt_cholesky_run(endpoints, permuted, m.partition, m.deps, m.assignment);
}

double median_seconds(const CscMatrix& permuted, const Mapping& m, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run_once(permuted, m);
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::string out_path = "BENCH_dist.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  reps = std::max(reps, 1);
  constexpr index_t kRanks = 4;

  std::ofstream out(out_path);
  JsonWriter jw(out);
  jw.begin_object();
  jw.field("bench", "dist_throughput");
  jw.field("reps", reps);
  jw.field("nranks", static_cast<long long>(kRanks));
  jw.begin_array("runs");

  for (const TestProblem& prob : {stand_in("LAP30"), stand_in("DWT512")}) {
    const Pipeline pipe(prob.lower, OrderingKind::kMmd);
    const CscMatrix& permuted = pipe.permuted_matrix();
    const PartitionOptions popt = PartitionOptions::with_grain(8, 4);
    const Mapping dist = pipe.block_mapping(popt, kRanks);
    const Mapping solo = pipe.block_mapping(popt, 1);

    const rt::RtRunResult check = run_once(permuted, dist);
    const ParallelExecResult shared = dist.execute_parallel(permuted);
    const bool bit_identical = check.values == shared.values;
    count_t volume = 0;
    for (const rt::TransportStats& s : check.per_rank) volume += s.volume_received();

    const double solo_s = median_seconds(permuted, solo, reps);
    const double dist_s = median_seconds(permuted, dist, reps);
    const double speedup = solo_s / dist_s;

    jw.begin_object();
    jw.field("matrix", prob.name);
    jw.field("n", static_cast<long long>(prob.lower.ncols()));
    jw.field("nprocs", static_cast<long long>(kRanks));
    jw.field("solo_fps", 1.0 / solo_s);
    jw.field("dist_fps", 1.0 / dist_s);
    jw.field("speedup", speedup);
    jw.field("volume", static_cast<long long>(volume));
    jw.field("bit_identical", bit_identical);
    jw.end();

    std::cout << "dist_throughput " << prob.name << ": solo " << 1.0 / solo_s
              << " f/s, " << kRanks << " ranks " << 1.0 / dist_s << " f/s, speedup "
              << speedup << ", volume " << volume
              << (bit_identical ? "" : "  [FACTOR MISMATCH]") << "\n";
    if (!bit_identical) {
      jw.end();
      jw.end();
      return 1;
    }
  }

  jw.end();
  jw.end();
  out << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
