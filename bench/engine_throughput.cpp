// Serving throughput of engine/solver_engine: cold (every request builds
// its plan) versus warm (every request after the first hits the plan
// cache) factorizations per second, on LAP30 and the power-network
// generator at P in {4, 16}.
//
// Cold throughput uses a fresh engine per request so the cache never
// hits; warm throughput warms one engine once and then replays requests
// whose diagonal values are perturbed — same pattern, new numbers, which
// is the refactorization workload the plan cache exists for.  Executor
// threads are capped at the hardware concurrency (the plan still targets
// P logical processors; the executor folds them onto the workers), the
// realistic serving configuration.  Each configuration also cross-checks
// that the warm factor is bitwise identical to a cold Pipeline run on the
// same values.
//
// Writes BENCH_engine.json (override with --out FILE) and prints a short
// summary per configuration to stdout.  --cold-reps / --warm-reps control
// the sample counts.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "engine/solver_engine.hpp"
#include "exec/parallel_cholesky.hpp"
#include "gen/powernet.hpp"
#include "gen/suite.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"

namespace {

using namespace spf;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

void perturb_diagonal(CscMatrix& m, SplitMix64& rng) {
  auto vals = m.values_mutable();
  for (index_t j = 0; j < m.ncols(); ++j) {
    vals[static_cast<std::size_t>(m.col_ptr()[static_cast<std::size_t>(j)])] *=
        1.0 + 1e-3 * rng.uniform();
  }
}

bool bitwise_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  int cold_reps = 3;
  int warm_reps = 10;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold-reps") == 0 && i + 1 < argc) {
      cold_reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--warm-reps") == 0 && i + 1 < argc) {
      warm_reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  cold_reps = std::max(cold_reps, 1);
  warm_reps = std::max(warm_reps, 1);
  const auto hw = static_cast<index_t>(
      std::max(1u, std::thread::hardware_concurrency()));

  struct Problem {
    std::string name;
    CscMatrix lower;
  };
  std::vector<Problem> problems;
  problems.push_back({"LAP30", stand_in("LAP30").lower});
  problems.push_back({"POWERNET", power_network({})});

  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "engine_throughput: cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter j(os);
  j.begin_object();
  j.field("bench", "engine_throughput");
  j.field("cold_reps", cold_reps);
  j.field("warm_reps", warm_reps);
  j.field("hardware_threads", static_cast<long long>(hw));
  j.begin_array("runs");

  for (const Problem& prob : problems) {
    for (index_t nprocs : {4, 16}) {
      SolverEngineConfig cfg;
      cfg.plan.nprocs = nprocs;
      cfg.nthreads = std::min(nprocs, hw);

      // Cold: a fresh engine (fresh cache) per request.
      double cold_seconds = 0.0;
      {
        CscMatrix request = prob.lower;
        SplitMix64 rng(0xc01df00du);
        for (int rep = 0; rep < cold_reps; ++rep) {
          if (rep > 0) perturb_diagonal(request, rng);
          SolverEngine engine(cfg);
          const auto t0 = std::chrono::steady_clock::now();
          (void)engine.factorize(request);
          cold_seconds += seconds_since(t0);
        }
      }

      // Warm: one engine, one priming request, then perturbed replays.
      SolverEngine engine(cfg);
      CscMatrix request = prob.lower;
      SplitMix64 rng(0xc01df00du);
      (void)engine.factorize(request);
      double warm_seconds = 0.0;
      Factorization last = engine.factorize(request);
      for (int rep = 0; rep < warm_reps; ++rep) {
        perturb_diagonal(request, rng);
        const auto t0 = std::chrono::steady_clock::now();
        Factorization f = engine.factorize(request);
        warm_seconds += seconds_since(t0);
        last = std::move(f);
      }

      // Cross-check: warm factor == cold Pipeline run on the same values.
      const Pipeline pipe(CscMatrix(request), cfg.plan.ordering);
      const Mapping m = pipe.block_mapping(cfg.plan.partition, nprocs);
      const ParallelExecResult cold_run =
          parallel_cholesky(pipe.permuted_matrix(), m.partition, m.deps, m.blk_work,
                            m.assignment, {cfg.nthreads, cfg.allow_stealing});
      const bool identical = bitwise_equal(last.values(), cold_run.values);

      const double cold_fps = static_cast<double>(cold_reps) / cold_seconds;
      const double warm_fps = static_cast<double>(warm_reps) / warm_seconds;
      const EngineStats s = engine.stats();

      j.begin_object();
      j.field("matrix", prob.name);
      j.field("n", static_cast<long long>(prob.lower.ncols()));
      j.field("nprocs", static_cast<long long>(nprocs));
      j.field("nthreads", static_cast<long long>(cfg.nthreads));
      j.field("cold_fps", cold_fps);
      j.field("warm_fps", warm_fps);
      j.field("warm_over_cold", warm_fps / cold_fps);
      j.field("bit_identical", identical);
      j.field("cache_hits", static_cast<long long>(s.cache_hits));
      j.field("cache_misses", static_cast<long long>(s.cache_misses));
      j.field("plan_bytes", static_cast<long long>(s.cache.bytes));
      j.end();

      std::cout << prob.name << "  P=" << nprocs << "  cold " << cold_fps
                << " f/s  warm " << warm_fps << " f/s  ratio "
                << warm_fps / cold_fps << (identical ? "" : "  FACTOR MISMATCH")
                << "\n";
      if (!identical) {
        j.end();  // runs
        j.end();  // root
        return 1;
      }
    }
  }
  j.end();
  j.end();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
