// Reproduces the paper's Figure 2: the filled matrix of a small 5-point
// grid problem, MMD-ordered, with the identified clusters overlaid.  The
// paper shows a 41x41 filled matrix from a 5-point discretization of a
// small grid ordered with Liu's multiple minimum degree; we render the
// 5x5-grid case (25 unknowns) plus the paper-scale 41-unknown variant cut
// from a 6x7 grid so the cluster anatomy (dense diagonal triangles with
// off-diagonal rectangles) is visible in ASCII.
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/grid.hpp"
#include "io/pattern_art.hpp"
#include "symbolic/supernodes.hpp"

namespace {

void show(const spf::CscMatrix& a, const char* title) {
  using namespace spf;
  const Pipeline pipe(a, OrderingKind::kMmd);
  const SymbolicFactor& sf = pipe.symbolic();
  const ClusterSet clusters = find_clusters(sf, 2);
  std::cout << title << "\n"
            << "n = " << sf.n() << ", nnz(A) = " << a.nnz() << ", nnz(L) = " << sf.nnz()
            << ", clusters = " << clusters.clusters.size() << "\n\n";
  print_lower_pattern_with_clusters(std::cout, sf.pattern(), clusters.first_columns());
  std::cout << "\nClusters (first:width, rectangles below the diagonal triangle):\n";
  for (std::size_t c = 0; c < clusters.clusters.size(); ++c) {
    const Cluster& cl = clusters.clusters[c];
    if (cl.width == 1) continue;
    std::cout << "  cluster " << c << ": cols " << cl.first << ".." << cl.last()
              << " (width " << cl.width << "), rectangles:";
    for (const auto& r : cl.rect_rows) {
      std::cout << " [" << r.lo << ".." << r.hi << "]";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace spf;
  std::cout << "Figure 2: filled matrix of a 5-point grid problem under MMD,\n"
            << "with cluster boundaries ('|' gutters).  '#' = structural nonzero\n"
            << "of L, '.' = zero below the diagonal.\n\n";
  show(grid_laplacian_5pt(5, 5), "--- 5x5 grid (25 unknowns) ---");
  std::cout << "The paper's figure is a 41x41 filled matrix; the same anatomy at\n"
            << "that scale:\n\n";
  // 6x7 grid = 42 nodes; the paper's example has 41.  Drop the last node to
  // match the printed size (the figure's exact mesh is not recoverable from
  // the paper).
  const CscMatrix g67 = grid_laplacian_5pt(6, 7);
  // Trim to 41 unknowns by taking the leading principal submatrix.
  std::vector<count_t> cp(static_cast<std::size_t>(42), 0);
  std::vector<index_t> ri;
  std::vector<double> vals;
  for (index_t j = 0; j < 41; ++j) {
    const auto rows = g67.col_rows(j);
    const auto v = g67.col_values(j);
    for (std::size_t t = 0; t < rows.size(); ++t) {
      if (rows[t] < 41) {
        ri.push_back(rows[t]);
        vals.push_back(v[t]);
      }
    }
    cp[static_cast<std::size_t>(j) + 1] = static_cast<count_t>(ri.size());
  }
  show(CscMatrix(41, 41, std::move(cp), std::move(ri), std::move(vals)),
       "--- 41 unknowns (trimmed 6x7 grid, cf. paper's Figure 2) ---");
  return 0;
}
