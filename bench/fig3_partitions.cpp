// Reproduces the paper's Figure 3: partitioning of one cluster into unit
// blocks — a triangle cut into unit triangles and unit rectangles
// (t1..t6), and the rectangles below cut into grids (r11.., r21..).
// Renders the allocation-order labels over the cluster's geometry.
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "matrix/coo.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace spf;

/// Print one cluster's unit blocks with their allocation order.
void render_cluster(const Partition& p, index_t cluster_id) {
  const Cluster& cl = p.clusters.clusters[static_cast<std::size_t>(cluster_id)];
  const ClusterBlocks& lay = p.layout[static_cast<std::size_t>(cluster_id)];
  std::cout << "cluster " << cluster_id << ": cols " << cl.first << ".." << cl.last()
            << " (width " << cl.width << ")\n";
  std::cout << "  triangle units, allocation order (unit triangles top-to-bottom,\n"
            << "  then rectangles top-to-bottom/left-to-right):\n";
  for (std::size_t i = 0; i < lay.triangle_units.size(); ++i) {
    const UnitBlock& b = p.blocks[static_cast<std::size_t>(lay.triangle_units[i])];
    std::cout << "    t" << (i + 1) << ": " << to_string(b.kind) << " cols [" << b.cols.lo
              << ".." << b.cols.hi << "] rows [" << b.rows.lo << ".." << b.rows.hi
              << "] elements " << b.elements << "\n";
  }
  for (std::size_t r = 0; r < lay.rect_units.size(); ++r) {
    std::cout << "  rectangle " << (r + 1) << " (rows [" << cl.rect_rows[r].lo << ".."
              << cl.rect_rows[r].hi << "]):\n";
    for (std::size_t i = 0; i < lay.rect_units[r].size(); ++i) {
      const UnitBlock& b = p.blocks[static_cast<std::size_t>(lay.rect_units[r][i])];
      std::cout << "    r" << (r + 1) << (i + 1) << ": cols [" << b.cols.lo << ".."
                << b.cols.hi << "] rows [" << b.rows.lo << ".." << b.rows.hi
                << "] elements " << b.elements << "\n";
    }
  }
}

}  // namespace

int main() {
  std::cout << "Figure 3: partitioning a cluster into schedulable unit blocks\n\n";

  // A synthetic cluster shaped like the paper's figure: a dense 12-wide
  // triangle (78 elements) with two rectangles below it.  Grain 13 gives
  // floor(78/13) = 6 parts -> 3 segments -> 6 triangle units (t1..t6),
  // matching the figure's shape.
  CooBuilder coo(30, 30);
  for (index_t j = 0; j < 12; ++j) {
    for (index_t i = j; i < 12; ++i) coo.add(i, j, i == j ? 40.0 : -1.0);
    for (index_t i = 14; i < 22; ++i) coo.add(i, j, -1.0);  // rectangle 1
    for (index_t i = 24; i < 30; ++i) coo.add(i, j, -1.0);  // rectangle 2
  }
  for (index_t j = 12; j < 30; ++j) coo.add(j, j, 40.0);
  for (index_t j = 14; j < 22; ++j) {
    for (index_t i = j; i < 22; ++i) {
      if (i != j) coo.add(i, j, -1.0);
    }
  }
  for (index_t j = 24; j < 30; ++j) {
    for (index_t i = j; i < 30; ++i) {
      if (i != j) coo.add(i, j, -1.0);
    }
  }
  const CscMatrix a = coo.to_csc();
  const SymbolicFactor sf = symbolic_cholesky(a);
  PartitionOptions opt;
  opt.grain_triangle = 13;
  opt.grain_rectangle = 24;
  opt.min_cluster_width = 2;
  const Partition p = partition_factor(sf, opt);
  render_cluster(p, p.clusters.cluster_of_col[0]);

  std::cout << "\nThe same machinery on a real problem (LAP30's widest cluster):\n\n";
  const auto ctx = make_problem_context("LAP30");
  const Partition lap =
      partition_factor(ctx.pipeline.symbolic(), PartitionOptions::with_grain(25, 4));
  index_t widest = 0;
  for (std::size_t c = 0; c < lap.clusters.clusters.size(); ++c) {
    if (lap.clusters.clusters[c].width >
        lap.clusters.clusters[static_cast<std::size_t>(widest)].width) {
      widest = static_cast<index_t>(c);
    }
  }
  render_cluster(lap, widest);
  return 0;
}
