// Reproduces the paper's Figure 4: the ten inter-block dependency
// categories.  The paper illustrates them geometrically; here we take a
// census over the whole test suite — for each matrix, how many distinct
// block-level dependencies of each category the partitioner identifies —
// demonstrating that all ten arise in practice (plus a catch-all for the
// combinations outside the paper's taxonomy).
#include <iostream>

#include "core/experiments.hpp"
#include "partition/dependencies.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Figure 4: census of inter-block dependency categories\n"
            << "(distinct block-level update dependencies, grain 4, width 4)\n\n";
  const auto contexts = make_problem_contexts();
  std::vector<std::array<count_t, static_cast<std::size_t>(DepCategory::kCount)>> censuses;
  std::vector<std::string> names;
  for (const auto& ctx : contexts) {
    const Partition p =
        partition_factor(ctx.pipeline.symbolic(), PartitionOptions::with_grain(4, 4));
    censuses.push_back(dependency_census(p));
    names.push_back(ctx.problem.name);
  }
  std::vector<std::string> header{"Category"};
  for (const auto& n : names) header.push_back(n);
  Table t(header);
  for (int c = 0; c < static_cast<int>(DepCategory::kCount); ++c) {
    std::vector<std::string> row{to_string(static_cast<DepCategory>(c))};
    for (const auto& census : censuses) {
      row.push_back(Table::num(census[static_cast<std::size_t>(c)]));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nCategories follow the paper's Section 3.3 numbering.  'other'\n"
            << "collects geometrically valid combinations the paper's list omits\n"
            << "(e.g. a single rectangle updating a rectangle).\n";
  return 0;
}
