// Numeric-kernel throughput of the parallel executor: elementwise versus
// blocked (precompiled kernel plan) factorization time on LAP30 and the
// power-network generator, across thread counts, plus the once-per-pattern
// cost of compiling the plan and the cold (compile-included) versus warm
// (replay) blocked path.
//
// Each timing is the median of k repetitions after one warmup run.  Every
// configuration cross-checks the blocked factor against the elementwise
// factor to relative tolerance and exits 1 on mismatch.
//
// Writes BENCH_kernels.json (override with --out FILE); --reps controls
// the sample count per configuration.  --isa {auto,avx512,avx2,neon,
// scalar} forces the dense-kernel tier (default: best available, or the
// SPF_FORCE_ISA environment hook).  Each run also times the warm blocked
// path with the tier forced to scalar, so the JSON carries the SIMD
// speedup (simd_over_scalar) measured in the same process.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "exec/kernel_plan.hpp"
#include "exec/parallel_cholesky.hpp"
#include "gen/powernet.hpp"
#include "gen/suite.hpp"
#include "numeric/simd.hpp"
#include "support/json.hpp"
#include "symbolic/row_structure.hpp"

namespace {

using namespace spf;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Median of `reps` timed runs of `fn` (one untimed warmup first).
template <typename Fn>
double median_seconds(int reps, Fn&& fn) {
  fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    samples.push_back(seconds_since(t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool matches(const std::vector<double>& got, const std::vector<double>& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::abs(got[i] - want[i]) > 1e-10 * std::max(1.0, std::abs(want[i]))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
      const std::string isa = argv[++i];
      if (isa != "auto") {
        const std::optional<SimdTier> tier = parse_simd_tier(isa);
        if (!tier.has_value() || !set_active_simd_tier(*tier)) {
          std::cerr << "kernel_throughput: --isa " << isa
                    << " unknown or unavailable on this CPU/build\n";
          return 1;
        }
      }
    }
  }
  reps = std::max(reps, 1);
  const SimdTier tier = active_simd_tier();
  const auto hw =
      static_cast<index_t>(std::max(1u, std::thread::hardware_concurrency()));

  struct Problem {
    std::string name;
    CscMatrix lower;
  };
  std::vector<Problem> problems;
  problems.push_back({"LAP30", stand_in("LAP30").lower});
  problems.push_back({"POWERNET", power_network({})});

  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "kernel_throughput: cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter j(os);
  j.begin_object();
  j.field("bench", "kernel_throughput");
  j.field("reps", reps);
  j.field("hardware_threads", static_cast<long long>(hw));
  j.begin_array("runs");

  bool all_match = true;
  for (const Problem& prob : problems) {
    const Pipeline pipe(prob.lower, OrderingKind::kMmd);
    const Mapping m = pipe.block_mapping(PartitionOptions::with_grain(25, 4), 16);
    const CscMatrix& a = pipe.permuted_matrix();

    // Once-per-pattern analysis, timed separately from execution.
    const RowStructure rows = build_row_structure(m.partition.factor);
    const double compile_seconds = median_seconds(reps, [&] {
      KernelPlan kp = compile_kernel_plan(m.partition, a.col_ptr(), a.row_ind(), rows);
      if (kp.nblocks == 0) std::abort();
    });
    const KernelPlan plan = compile_kernel_plan(m.partition, a.col_ptr(), a.row_ind(), rows);

    std::vector<index_t> threads{1};
    for (index_t t : {index_t{2}, index_t{4}, index_t{8}}) {
      if (t <= hw && t != threads.back()) threads.push_back(t);
    }

    for (index_t nthreads : threads) {
      ParallelExecOptions ew_opt;
      ew_opt.nthreads = nthreads;
      ew_opt.row_structure = &rows;
      ParallelExecOptions warm_opt = ew_opt;
      warm_opt.kernel = ExecKernel::kBlocked;
      warm_opt.kernel_plan = &plan;
      ParallelExecOptions cold_opt;  // local compile each run
      cold_opt.nthreads = nthreads;
      cold_opt.kernel = ExecKernel::kBlocked;

      auto run = [&](const ParallelExecOptions& opt) {
        return parallel_cholesky(a, m.partition, m.deps, m.blk_work, m.assignment, opt);
      };
      const double ew_s = median_seconds(reps, [&] { (void)run(ew_opt); });
      const double warm_s = median_seconds(reps, [&] { (void)run(warm_opt); });
      const double cold_s = median_seconds(reps, [&] { (void)run(cold_opt); });
      // Warm blocked path with the dense kernels forced to the scalar
      // tier, in the same process: simd_over_scalar isolates the SIMD
      // microkernel win from everything else in this run.  The two tiers
      // are sampled back to back in each repetition so slow drift on a
      // shared machine hits both sides of the ratio equally.
      std::vector<double> tier_samples, scalar_samples;
      for (int r = 0; r < reps + 1; ++r) {
        (void)set_active_simd_tier(tier);
        auto t0 = std::chrono::steady_clock::now();
        (void)run(warm_opt);
        const double tier_t = seconds_since(t0);
        (void)set_active_simd_tier(SimdTier::kScalar);
        t0 = std::chrono::steady_clock::now();
        (void)run(warm_opt);
        const double scalar_t = seconds_since(t0);
        if (r > 0) {  // first pair is warmup
          tier_samples.push_back(tier_t);
          scalar_samples.push_back(scalar_t);
        }
      }
      (void)set_active_simd_tier(tier);
      std::sort(tier_samples.begin(), tier_samples.end());
      std::sort(scalar_samples.begin(), scalar_samples.end());
      const double tier_s = tier_samples[tier_samples.size() / 2];
      const double scalar_s = scalar_samples[scalar_samples.size() / 2];

      const bool ok = matches(run(warm_opt).values, run(ew_opt).values);
      all_match = all_match && ok;

      j.begin_object();
      j.field("matrix", prob.name);
      j.field("n", static_cast<long long>(prob.lower.ncols()));
      j.field("nthreads", static_cast<long long>(nthreads));
      j.field("compile_seconds", compile_seconds);
      j.field("elementwise_seconds", ew_s);
      j.field("blocked_warm_seconds", warm_s);
      j.field("blocked_cold_seconds", cold_s);
      j.field("blocked_scalar_seconds", scalar_s);
      j.field("blocked_speedup", ew_s / warm_s);
      j.field("replay_over_cold", cold_s / warm_s);
      j.field("simd_tier", std::string(simd_tier_name(tier)));
      j.field("simd_over_scalar", scalar_s / tier_s);
      j.field("factor_matches", ok);
      j.end();

      std::cout << prob.name << "  t=" << nthreads << "  elementwise "
                << ew_s * 1e3 << " ms  blocked " << warm_s * 1e3 << " ms ("
                << simd_tier_name(tier) << ") speedup " << ew_s / warm_s
                << "x  scalar-tier " << scalar_s * 1e3 << " ms ("
                << scalar_s / tier_s << "x)  (cold " << cold_s * 1e3
                << " ms, compile " << compile_seconds * 1e3 << " ms)"
                << (ok ? "" : "  FACTOR MISMATCH") << "\n";
    }
  }
  j.end();
  j.end();
  os << "\n";
  if (!all_match) {
    std::cerr << "kernel_throughput: blocked factor diverged from elementwise\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
