// Ablation F (extension): how much parallelism do the mappings expose?
//
// The paper asserts the block scheme "provides enough parallelism to keep
// the idle time to a minimum" when P is small relative to the number of
// schedulable units.  This bench computes the work-weighted critical path
// and average parallelism of the block DAG per grain size, next to the
// column DAG of the wrap scheme — the grain size buys communication at
// the cost of exactly this quantity.
#include <iostream>

#include "core/experiments.hpp"
#include "metrics/parallelism.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Ablation F: available parallelism (MMD ordering)\n\n";
  for (const auto& ctx : make_problem_contexts()) {
    std::cout << "--- " << ctx.problem.name << " ---\n";
    Table t({"partition", "blocks", "DAG depth", "critical path", "avg parallelism",
             "eff. bound P=32"});
    auto row = [&](const std::string& label, const Mapping& m) {
      const ParallelismProfile prof =
          analyze_parallelism(m.partition, m.deps, m.blk_work);
      // Efficiency upper bound at P: Wtot / (P * max(cp, Wtot/P)).
      const double lower =
          std::max(static_cast<double>(prof.critical_path),
                   static_cast<double>(prof.total_work) / 32.0);
      t.add_row({label, Table::num(m.partition.num_blocks()), Table::num(prof.dag_depth),
                 Table::num(prof.critical_path), Table::fixed(prof.avg_parallelism, 1),
                 Table::fixed(static_cast<double>(prof.total_work) / (32.0 * lower), 3)});
    };
    row("wrap (columns)", ctx.pipeline.wrap_mapping(1));
    for (index_t g : {4, 25, 100}) {
      row("block g=" + std::to_string(g),
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(g, 4), 1));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "'avg parallelism' = total work / critical path: the processor\n"
            << "count beyond which dependency delays must dominate.  Coarser\n"
            << "grains shrink it — the third axis of the paper's trade-off.\n";
  return 0;
}
