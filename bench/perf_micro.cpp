// Microbenchmarks (google-benchmark) for the computational kernels: MMD
// ordering, symbolic factorization, numeric factorization, partitioning,
// dependency analysis, traffic simulation, and the interval tree.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "gen/grid.hpp"
#include "gen/suite.hpp"
#include "matrix/graph.hpp"
#include "metrics/traffic.hpp"
#include "metrics/work.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/supernodal.hpp"
#include "order/mmd.hpp"
#include "order/rcm.hpp"
#include "partition/dependencies.hpp"
#include "schedule/block_scheduler.hpp"
#include "support/interval_tree.hpp"
#include "support/prng.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {
namespace {

const CscMatrix& lap_matrix() {
  static const CscMatrix* m = new CscMatrix(grid_laplacian_9pt(30, 30));
  return *m;
}

const Pipeline& lap_pipeline() {
  static const Pipeline* p = new Pipeline(lap_matrix(), OrderingKind::kMmd);
  return *p;
}

void BM_MmdOrder(benchmark::State& state) {
  const AdjacencyGraph g = AdjacencyGraph::from_lower(lap_matrix());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmd_order(g));
  }
}
BENCHMARK(BM_MmdOrder);

void BM_RcmOrder(benchmark::State& state) {
  const AdjacencyGraph g = AdjacencyGraph::from_lower(lap_matrix());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcm_order(g));
  }
}
BENCHMARK(BM_RcmOrder);

void BM_SymbolicFactorization(benchmark::State& state) {
  const CscMatrix& a = lap_pipeline().permuted_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(symbolic_cholesky(a));
  }
}
BENCHMARK(BM_SymbolicFactorization);

void BM_NumericFactorization(benchmark::State& state) {
  const Pipeline& pipe = lap_pipeline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric_cholesky(pipe.permuted_matrix(), pipe.symbolic()));
  }
}
BENCHMARK(BM_NumericFactorization);


void BM_SupernodalFactorization(benchmark::State& state) {
  const Pipeline& pipe = lap_pipeline();
  const Partition p =
      partition_factor(pipe.symbolic(), PartitionOptions::with_grain(25, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(supernodal_cholesky(pipe.permuted_matrix(), p));
  }
}
BENCHMARK(BM_SupernodalFactorization);

void BM_Partition(benchmark::State& state) {
  const index_t grain = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(grain, 4)));
  }
}
BENCHMARK(BM_Partition)->Arg(4)->Arg(25);

void BM_BlockDependencies(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_dependencies(p));
  }
}
BENCHMARK(BM_BlockDependencies);


void BM_BlockDependenciesGeometric(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_dependencies_geometric(p));
  }
}
BENCHMARK(BM_BlockDependenciesGeometric);

void BM_TrafficSimulation(benchmark::State& state) {
  const Mapping m = lap_pipeline().block_mapping(PartitionOptions::with_grain(4, 4), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_traffic(m.partition, m.assignment));
  }
}
BENCHMARK(BM_TrafficSimulation);

void BM_BlockSchedule(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  const BlockDeps deps = block_dependencies(p);
  const auto work = block_work(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_schedule(p, deps, work, 16));
  }
}
BENCHMARK(BM_BlockSchedule);

void BM_IntervalTreeQuery(benchmark::State& state) {
  SplitMix64 rng(7);
  std::vector<IntervalTree<index_t, index_t>::Entry> entries;
  for (index_t i = 0; i < 4096; ++i) {
    const index_t lo = static_cast<index_t>(rng.below(100000));
    entries.push_back({{lo, lo + static_cast<index_t>(rng.below(200))}, i});
  }
  const IntervalTree<index_t, index_t> tree(entries);
  index_t q = 0;
  for (auto _ : state) {
    count_t hits = 0;
    tree.visit_overlaps({q, q + 500}, [&](const auto&) { ++hits; });
    benchmark::DoNotOptimize(hits);
    q = (q + 997) % 100000;
  }
}
BENCHMARK(BM_IntervalTreeQuery);

void BM_EndToEndMapping(benchmark::State& state) {
  for (auto _ : state) {
    const Mapping m =
        lap_pipeline().block_mapping(PartitionOptions::with_grain(25, 4), 32);
    benchmark::DoNotOptimize(m.report());
  }
}
BENCHMARK(BM_EndToEndMapping);

}  // namespace
}  // namespace spf
