// Microbenchmarks (google-benchmark) for the computational kernels: MMD
// ordering, symbolic factorization, numeric factorization, partitioning,
// dependency analysis, traffic simulation, the interval tree, and the
// thread pool's task type.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/pipeline.hpp"
#include "exec/thread_pool.hpp"
#include "gen/grid.hpp"
#include "gen/suite.hpp"
#include "matrix/graph.hpp"
#include "metrics/traffic.hpp"
#include "metrics/work.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/supernodal.hpp"
#include "order/mmd.hpp"
#include "order/rcm.hpp"
#include "partition/dependencies.hpp"
#include "schedule/block_scheduler.hpp"
#include "support/interval_tree.hpp"
#include "support/prng.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {
namespace {

const CscMatrix& lap_matrix() {
  static const CscMatrix* m = new CscMatrix(grid_laplacian_9pt(30, 30));
  return *m;
}

const Pipeline& lap_pipeline() {
  static const Pipeline* p = new Pipeline(lap_matrix(), OrderingKind::kMmd);
  return *p;
}

void BM_MmdOrder(benchmark::State& state) {
  const AdjacencyGraph g = AdjacencyGraph::from_lower(lap_matrix());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmd_order(g));
  }
}
BENCHMARK(BM_MmdOrder);

void BM_RcmOrder(benchmark::State& state) {
  const AdjacencyGraph g = AdjacencyGraph::from_lower(lap_matrix());
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcm_order(g));
  }
}
BENCHMARK(BM_RcmOrder);

void BM_SymbolicFactorization(benchmark::State& state) {
  const CscMatrix& a = lap_pipeline().permuted_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(symbolic_cholesky(a));
  }
}
BENCHMARK(BM_SymbolicFactorization);

void BM_NumericFactorization(benchmark::State& state) {
  const Pipeline& pipe = lap_pipeline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(numeric_cholesky(pipe.permuted_matrix(), pipe.symbolic()));
  }
}
BENCHMARK(BM_NumericFactorization);


void BM_SupernodalFactorization(benchmark::State& state) {
  const Pipeline& pipe = lap_pipeline();
  const Partition p =
      partition_factor(pipe.symbolic(), PartitionOptions::with_grain(25, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(supernodal_cholesky(pipe.permuted_matrix(), p));
  }
}
BENCHMARK(BM_SupernodalFactorization);

void BM_Partition(benchmark::State& state) {
  const index_t grain = static_cast<index_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(grain, 4)));
  }
}
BENCHMARK(BM_Partition)->Arg(4)->Arg(25);

void BM_BlockDependencies(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_dependencies(p));
  }
}
BENCHMARK(BM_BlockDependencies);


void BM_BlockDependenciesGeometric(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_dependencies_geometric(p));
  }
}
BENCHMARK(BM_BlockDependenciesGeometric);

void BM_TrafficSimulation(benchmark::State& state) {
  const Mapping m = lap_pipeline().block_mapping(PartitionOptions::with_grain(4, 4), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_traffic(m.partition, m.assignment));
  }
}
BENCHMARK(BM_TrafficSimulation);

void BM_BlockSchedule(benchmark::State& state) {
  const Partition p =
      partition_factor(lap_pipeline().symbolic(), PartitionOptions::with_grain(4, 4));
  const BlockDeps deps = block_dependencies(p);
  const auto work = block_work(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_schedule(p, deps, work, 16));
  }
}
BENCHMARK(BM_BlockSchedule);

void BM_IntervalTreeQuery(benchmark::State& state) {
  SplitMix64 rng(7);
  std::vector<IntervalTree<index_t, index_t>::Entry> entries;
  for (index_t i = 0; i < 4096; ++i) {
    const index_t lo = static_cast<index_t>(rng.below(100000));
    entries.push_back({{lo, lo + static_cast<index_t>(rng.below(200))}, i});
  }
  const IntervalTree<index_t, index_t> tree(entries);
  index_t q = 0;
  for (auto _ : state) {
    count_t hits = 0;
    tree.visit_overlaps({q, q + 500}, [&](const auto&) { ++hits; });
    benchmark::DoNotOptimize(hits);
    q = (q + 997) % 100000;
  }
}
BENCHMARK(BM_IntervalTreeQuery);

void BM_EndToEndMapping(benchmark::State& state) {
  for (auto _ : state) {
    const Mapping m =
        lap_pipeline().block_mapping(PartitionOptions::with_grain(25, 4), 32);
    benchmark::DoNotOptimize(m.report());
  }
}
BENCHMARK(BM_EndToEndMapping);

// ---- Pool task type: PoolTask (48-byte SBO) vs std::function ---------------
//
// submit() moves the task onto a queue under the shared pool lock, so the
// cost that matters is construct + move + invoke + destroy.  The small
// payload mirrors the executor's real captures (a context pointer and a
// block id); the large payload forces both types to heap-allocate.

struct SmallPayload {
  std::uint64_t* sink;
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  void operator()() const { *sink += a ^ b; }
};

struct LargePayload {
  std::uint64_t* sink;
  std::uint64_t pad[9] = {3, 1, 4, 1, 5, 9, 2, 6, 5};  // 80 bytes: exceeds the SBO
  void operator()() const { *sink += pad[0]; }
};

template <typename Box, typename Payload>
void task_churn(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    Box t{Payload{&sink}};
    Box moved{std::move(t)};
    moved();
    benchmark::DoNotOptimize(sink);
  }
}

void BM_TaskSmallStdFunction(benchmark::State& state) {
  task_churn<std::function<void()>, SmallPayload>(state);
}
BENCHMARK(BM_TaskSmallStdFunction);

void BM_TaskSmallPoolTask(benchmark::State& state) {
  task_churn<PoolTask, SmallPayload>(state);
}
BENCHMARK(BM_TaskSmallPoolTask);

void BM_TaskLargeStdFunction(benchmark::State& state) {
  task_churn<std::function<void()>, LargePayload>(state);
}
BENCHMARK(BM_TaskLargeStdFunction);

void BM_TaskLargePoolTask(benchmark::State& state) {
  task_churn<PoolTask, LargePayload>(state);
}
BENCHMARK(BM_TaskLargePoolTask);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  const index_t nthreads = static_cast<index_t>(state.range(0));
  ThreadPool pool({nthreads, true});
  std::atomic<std::uint64_t> sink{0};
  constexpr count_t kTasks = 4096;
  for (auto _ : state) {
    for (count_t i = 0; i < kTasks; ++i) {
      pool.submit(static_cast<index_t>(i % nthreads),
                  [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

// Steal-heavy workload: every task lands on worker 0's queue, so all other
// workers drain it by stealing.  Under the old single pool mutex every
// push, pop, and steal serialized; with per-worker locks only slot 0 is
// hot, and the contended-acquisition counter shows exactly how hot.
void BM_ThreadPoolStealHeavy(benchmark::State& state) {
  const index_t nthreads = static_cast<index_t>(state.range(0));
  ThreadPool pool({nthreads, true});
  std::atomic<std::uint64_t> sink{0};
  constexpr count_t kTasks = 4096;
  for (auto _ : state) {
    for (count_t i = 0; i < kTasks; ++i) {
      pool.submit(0, [&sink] { sink.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
  }
  count_t contended = 0;
  for (count_t c : pool.queue_contention()) contended += c;
  count_t stolen = 0;
  for (count_t s : pool.tasks_stolen()) stolen += s;
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.counters["contended_locks"] = static_cast<double>(contended);
  state.counters["stolen"] = static_cast<double>(stolen);
}
BENCHMARK(BM_ThreadPoolStealHeavy)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace spf
