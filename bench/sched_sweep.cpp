// Scheduler sweep: the paper's block/wrap heuristics against the
// critical-path and ALAP-slack list schedulers, judged by the Quach &
// Langou makespan lower bound (sched/bounds.hpp).
//
// For every suite matrix and P in {4, 16} the sweep reports each
// scheduler's dependency-respecting makespan in the paper's work units,
// its efficiency against the lower bound, and the cp/alap speedup over
// the paper's block heuristic.  Writes BENCH_sched.json for the
// check_bench.py regression gate; `bound_holds` asserts bound <= makespan
// for every scheduler.
//
// Also folds in the former Ablation E (allocation strategies): the
// paper's allocator versus pure-balance (greedy min-load, LPT) and the
// locality/balance hybrid, on traffic, lambda, and the simulated
// makespans under cheap and expensive communication.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "sched/bounds.hpp"
#include "sched/list_scheduler.hpp"
#include "schedule/variants.hpp"
#include "sim/desim.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using namespace spf;

struct SchedRow {
  const char* name;
  double makespan;
  double efficiency;
};

void allocation_ablation() {
  std::cout << "Allocation strategies (block partition g=25, width 4, P = 16)\n\n";
  const SimParams cheap{1.0, 10.0, 0.2, {}};
  const SimParams pricey{1.0, 50.0, 5.0, {}};
  for (const char* name : {"LAP30", "CANN1072", "LSHP1009"}) {
    const auto ctx = make_problem_context(name);
    Mapping base = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), 16);
    const auto volumes = edge_volumes(base.partition, base.deps);

    std::cout << "--- " << name << " ---\n";
    Table t({"strategy", "traffic", "lambda", "makespan (cheap)", "makespan (pricey)"});
    auto row = [&](const std::string& label, Assignment assignment) {
      Mapping m = base;
      m.assignment = std::move(assignment);
      const MappingReport r = m.report();
      const SimResult rc = simulate_execution(m.partition, m.deps, volumes, m.blk_work,
                                              m.assignment, cheap);
      const SimResult rp = simulate_execution(m.partition, m.deps, volumes, m.blk_work,
                                              m.assignment, pricey);
      t.add_row({label, Table::num(r.total_traffic), Table::fixed(r.lambda, 3),
                 Table::fixed(rc.makespan, 0), Table::fixed(rp.makespan, 0)});
    };
    row("paper (Sec. 3.4)", base.assignment);
    row("greedy min-load",
        greedy_min_load_schedule(base.partition, base.blk_work, 16));
    row("LPT", lpt_schedule(base.partition, base.blk_work, 16));
    for (double slack : {1.0, 4.0, 16.0}) {
      row("locality-greedy s=" + Table::fixed(slack, 0),
          locality_greedy_schedule(base.partition, base.deps, base.blk_work, 16,
                                   {slack}));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Pure-balance strategies minimize lambda but pay in traffic; the\n"
            << "locality-greedy slack knob traces the same trade-off the paper's\n"
            << "grain size does, from the scheduling side.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  std::ofstream out(out_path);
  JsonWriter jw(out);
  jw.begin_object();
  jw.field("bench", "sched_sweep");
  jw.begin_array("runs");

  std::cout << "Scheduler sweep: makespan vs the ALAP area/path lower bound\n"
            << "(block partition g=25, width 4; work-unit event replay)\n\n";
  bool all_hold = true;
  for (const ProblemContext& ctx : make_problem_contexts()) {
    for (const index_t nprocs : {index_t{4}, index_t{16}}) {
      const Mapping block =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), nprocs);
      const Mapping wrap = ctx.pipeline.wrap_mapping(nprocs);
      const ScheduleBound bound =
          makespan_lower_bound(block.deps, block.blk_work, nprocs);
      const ScheduleBound wrap_bound =
          makespan_lower_bound(wrap.deps, wrap.blk_work, nprocs);

      const Assignment cp = list_schedule(block.deps, block.blk_work, nprocs,
                                          {SchedulerKind::kCp, {}});
      const Assignment alap = list_schedule(block.deps, block.blk_work, nprocs,
                                            {SchedulerKind::kAlap, {}});

      const double ms_block = schedule_makespan(block.deps, block.blk_work,
                                                block.assignment);
      const double ms_wrap = schedule_makespan(wrap.deps, wrap.blk_work,
                                               wrap.assignment);
      const double ms_cp = schedule_makespan(block.deps, block.blk_work, cp);
      const double ms_alap = schedule_makespan(block.deps, block.blk_work, alap);

      const bool holds = bound.lower_bound <= ms_block &&
                         bound.lower_bound <= ms_cp &&
                         bound.lower_bound <= ms_alap &&
                         wrap_bound.lower_bound <= ms_wrap;
      all_hold = all_hold && holds;

      jw.begin_object();
      jw.field("matrix", ctx.problem.name);
      jw.field("nprocs", static_cast<long long>(nprocs));
      jw.field("lower_bound", bound.lower_bound);
      jw.field("block_makespan", ms_block);
      jw.field("wrap_makespan", ms_wrap);
      jw.field("cp_makespan", ms_cp);
      jw.field("alap_makespan", ms_alap);
      jw.field("cp_over_block", ms_block / ms_cp);
      jw.field("alap_over_block", ms_block / ms_alap);
      jw.field("block_schedule_efficiency", bound.lower_bound / ms_block);
      jw.field("cp_schedule_efficiency", bound.lower_bound / ms_cp);
      jw.field("alap_schedule_efficiency", bound.lower_bound / ms_alap);
      jw.field("bound_holds", holds);
      jw.end();

      std::cout << "--- " << ctx.problem.name << ", P = " << nprocs
                << "  (lower bound " << Table::fixed(bound.lower_bound, 0)
                << ") ---\n";
      Table t({"scheduler", "makespan", "efficiency", "vs block"});
      const SchedRow rows[] = {
          {"block (paper)", ms_block, bound.lower_bound / ms_block},
          {"wrap (paper)", ms_wrap, wrap_bound.lower_bound / ms_wrap},
          {"cp", ms_cp, bound.lower_bound / ms_cp},
          {"alap", ms_alap, bound.lower_bound / ms_alap},
      };
      for (const SchedRow& r : rows) {
        t.add_row({r.name, Table::fixed(r.makespan, 0), Table::fixed(r.efficiency, 3),
                   Table::fixed(ms_block / r.makespan, 3)});
      }
      t.print(std::cout);
      std::cout << (holds ? "" : "  [BOUND VIOLATED]\n") << "\n";
    }
  }

  jw.end();
  jw.end();
  out << "\n";
  std::cout << "wrote " << out_path << "\n\n";

  allocation_ablation();
  return all_hold ? 0 : 1;
}
