// Serving throughput of serve/service: solve requests per second with RHS
// coalescing off (max_batch_rhs = 1, one solve_batch call per request)
// versus on (wide batches), under closed-loop concurrent clients on
// LAP30.  The batched trisolve walks the factor structure once for every
// right-hand side it carries, so coalescing amortizes the walk across
// concurrent requests — the acceptance bar is coalesced throughput beating
// one-request-per-call at >= 8 clients.
//
// Also measures overload behavior: an open-loop burst against a small
// queue, reporting the admitted / rejected / shed split (admission control
// must degrade by policy, not by deadlock).
//
// Writes BENCH_serve.json (override with --out FILE) and prints a short
// summary per configuration to stdout.  --clients / --requests control
// the closed-loop load shape.
//
// --socket switches to the networked front-end: closed-loop SolverClient
// connections against an in-process SolverServer on a loopback ephemeral
// port, measuring RHS columns per second with one right-hand side per
// round-trip versus eight.  Batching amortizes the per-frame cost (header
// parse, dispatch, reply) across columns, so the gated relative metric is
// speedup = batched rhs/s over single rhs/s.  Writes
// BENCH_serve_socket.json (bench "serve_throughput_socket").
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/solver_engine.hpp"
#include "gen/suite.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "support/json.hpp"
#include "support/prng.hpp"

namespace {

using namespace spf;

std::vector<double> random_rhs(std::size_t n, SplitMix64& rng) {
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform() - 0.5;
  return b;
}

double percentile(std::vector<double>& sorted_seconds, double p) {
  if (sorted_seconds.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_seconds.size() - 1) + 0.5);
  return sorted_seconds[std::min(idx, sorted_seconds.size() - 1)];
}

struct RunResult {
  double rps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;  // seconds
  double mean_batch_width = 1.0;
  std::uint64_t batches = 0;
};

// Closed-loop: `clients` threads each submit `requests` single-RHS solves
// back-to-back against one warm factorization.
RunResult closed_loop(const std::shared_ptr<SolverEngine>& engine,
                      const std::shared_ptr<const Factorization>& f, int clients,
                      int requests, index_t max_batch, index_t workers) {
  SolverServiceConfig cfg;
  cfg.workers = workers;
  cfg.coalesce.max_batch_rhs = max_batch;
  // Closed-loop clients have exactly one request in flight each, so a
  // linger window only stalls them: coalesce the queue's backlog and
  // dispatch immediately.
  cfg.coalesce.linger_ns = 0;
  SolverService service(engine, cfg);

  const auto n = static_cast<std::size_t>(f->plan().n);
  std::mutex mu;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(clients * requests));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SplitMix64 rng(0x5e7e + static_cast<std::uint64_t>(c));
      std::vector<double> mine;
      mine.reserve(static_cast<std::size_t>(requests));
      for (int i = 0; i < requests; ++i) {
        const auto s0 = std::chrono::steady_clock::now();
        SolveTicket t = service.submit_solve(f, random_rhs(n, rng));
        const SolveResult res = t.result.get();
        mine.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
                .count());
        if (res.status != ServeStatus::kOk) {
          std::cerr << "solve failed: " << to_string(res.status) << "\n";
          std::exit(1);
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies.insert(latencies.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  service.stop();

  std::sort(latencies.begin(), latencies.end());
  const ServeStats s = service.stats();
  RunResult r;
  r.rps = static_cast<double>(clients * requests) / elapsed;
  r.p50 = percentile(latencies, 0.50);
  r.p95 = percentile(latencies, 0.95);
  r.p99 = percentile(latencies, 0.99);
  r.mean_batch_width = s.mean_batch_width();
  r.batches = s.batches_formed;
  return r;
}

// Socket closed-loop: `clients` SolverClient connections against a served
// SolverServer, each driving `requests` solves of `nrhs` columns.  Returns
// RHS columns per second (the batched and single configurations move the
// same numeric work, so columns/s is the comparable rate).
double socket_closed_loop(std::uint16_t port, const CscMatrix& lower, int clients,
                          int requests, std::uint32_t nrhs) {
  const auto n = static_cast<std::uint32_t>(lower.ncols());
  const auto t0 = std::chrono::steady_clock::now();
  std::mutex mu;
  std::uint64_t failures = 0;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        net::SolverClientOptions copt;
        copt.port = port;
        copt.tenant = "bench";
        net::SolverClient client(copt);
        const net::SubmitMatrixAckMsg ack = client.submit_matrix(lower);
        if (ack.status != static_cast<std::uint8_t>(ServeStatus::kOk)) {
          std::lock_guard<std::mutex> lock(mu);
          ++failures;
          return;
        }
        SplitMix64 rng(0x50cce7 + static_cast<std::uint64_t>(c));
        for (int i = 0; i < requests; ++i) {
          const std::vector<double> rhs =
              random_rhs(static_cast<std::size_t>(n) * nrhs, rng);
          const net::SolveAckMsg sol = client.solve(ack.handle, rhs, n, nrhs);
          if (sol.status != static_cast<std::uint8_t>(ServeStatus::kOk)) {
            std::lock_guard<std::mutex> lock(mu);
            ++failures;
            return;
          }
        }
        client.bye();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        ++failures;
        std::cerr << "socket client " << c << ": " << e.what() << "\n";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (failures != 0) {
    std::cerr << "serve_throughput: " << failures << " socket client(s) failed\n";
    std::exit(1);
  }
  return static_cast<double>(clients) * requests * nrhs / elapsed;
}

int socket_mode(const CscMatrix& lower, int requests, int reps,
                const std::vector<int>& client_counts, const std::string& out_path,
                index_t workers) {
  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "serve_throughput: cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter j(os);
  j.begin_object();
  j.field("bench", "serve_throughput_socket");
  j.field("matrix", "LAP30");
  j.field("n", static_cast<long long>(lower.ncols()));
  j.field("requests_per_client", requests);
  j.field("reps", reps);
  j.field("workers", static_cast<long long>(workers));
  j.begin_array("runs");

  constexpr std::uint32_t kBatchedRhs = 8;
  // The idle experiment holds this many connected-but-silent clients while
  // a small active set drives load: the thread transport pays an OS thread
  // per idle connection, the epoll transport a watched fd.
  constexpr int kIdleConns = 64;
  constexpr int kIdleActiveClients = 4;
  const net::Transport transports[] = {net::Transport::kThread,
                                       net::Transport::kEpoll};
  double idle_rate[2] = {0.0, 0.0};

  for (int ti = 0; ti < 2; ++ti) {
    net::SolverServerConfig scfg;
    scfg.engine.plan.nprocs = 4;
    scfg.workers_per_shard = workers;
    scfg.coalesce.linger_ns = 0;  // closed-loop: dispatch the backlog at once
    scfg.transport = transports[ti];
    scfg.max_connections = kIdleConns + 2 * kIdleActiveClients;
    const char* tname = net::to_string(scfg.transport);
    net::SolverServer server(scfg);
    server.start();

    const auto best_rate = [&](int clients, std::uint32_t nrhs) {
      double best = 0.0;
      for (int r = 0; r < reps; ++r) {
        best = std::max(best, socket_closed_loop(server.port(), lower, clients,
                                                 requests, nrhs));
      }
      return best;
    };
    for (const int clients : client_counts) {
      const double single = best_rate(clients, 1);
      const double batched = best_rate(clients, kBatchedRhs);
      const double speedup = batched / single;
      j.begin_object();
      j.field("transport", tname);
      j.field("clients", clients);
      j.field("single_rhs_per_s", single);
      j.field("batched_rhs_per_s", batched);
      j.field("batched_nrhs", static_cast<long long>(kBatchedRhs));
      j.field("speedup", speedup);
      j.end();
      std::cout << "socket [" << tname << "] clients " << clients << "  single "
                << single << " rhs/s  batched(nrhs=" << kBatchedRhs << ") "
                << batched << " rhs/s  speedup " << speedup << "\n";
    }

    {
      std::vector<std::unique_ptr<net::SolverClient>> idle;
      idle.reserve(kIdleConns);
      for (int i = 0; i < kIdleConns; ++i) {
        net::SolverClientOptions copt;
        copt.port = server.port();
        copt.tenant = "idle";
        idle.push_back(std::make_unique<net::SolverClient>(copt));
      }
      idle_rate[ti] = best_rate(kIdleActiveClients, kBatchedRhs);
      for (auto& c : idle) c->bye();
      j.begin_object();
      j.field("transport", tname);
      j.field("idle_connections", kIdleConns);
      j.field("clients", kIdleActiveClients);
      j.field("idle_rhs_per_s", idle_rate[ti]);
      j.end();
      std::cout << "socket [" << tname << "] " << kIdleConns
                << " idle conns + " << kIdleActiveClients << " active  "
                << idle_rate[ti] << " rhs/s\n";
    }
    server.stop();
  }

  // The headline cross-transport metric: batched throughput under 64 idle
  // connections, epoll over thread (>= means the event loop holds up).
  j.begin_object();
  j.field("transport", "ratio");
  j.field("idle_connections", kIdleConns);
  j.field("epoll_over_thread_idle64", idle_rate[1] / idle_rate[0]);
  j.end();
  std::cout << "epoll_over_thread_idle64 " << idle_rate[1] / idle_rate[0] << "\n";

  j.end();
  j.end();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 40;
  int reps = 3;
  bool socket = false;
  std::vector<int> client_counts{1, 4, 8, 16};
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      client_counts = {std::max(1, std::atoi(argv[++i]))};
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      socket = true;
      client_counts = {1, 4, 8};  // socket runs pay a connection each; keep it lean
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (out_path.empty()) out_path = socket ? "BENCH_serve_socket.json" : "BENCH_serve.json";

  const CscMatrix lower = stand_in("LAP30").lower;
  // One dispatcher per available core, at most two: on a single-core box
  // extra dispatchers only timeslice, and the off/on comparison should
  // differ in batching, not in thread thrash.
  const index_t workers = std::max<index_t>(
      1, std::min<index_t>(2, static_cast<index_t>(std::thread::hardware_concurrency())));

  if (socket) return socket_mode(lower, requests, reps, client_counts, out_path, workers);

  SolverEngineConfig ecfg;
  ecfg.plan.nprocs = 4;
  auto engine = std::make_shared<SolverEngine>(ecfg);
  auto f = std::make_shared<const Factorization>(engine->factorize(lower));

  // Best-of-reps: each configuration runs `reps` times and keeps its best
  // throughput, damping scheduler noise on loaded machines.
  const auto best_run = [&](int clients, index_t max_batch) {
    RunResult best;
    for (int r = 0; r < reps; ++r) {
      const RunResult run = closed_loop(engine, f, clients, requests, max_batch, workers);
      if (run.rps > best.rps) best = run;
    }
    return best;
  };

  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "serve_throughput: cannot open " << out_path << "\n";
    return 1;
  }
  JsonWriter j(os);
  j.begin_object();
  j.field("bench", "serve_throughput");
  j.field("matrix", "LAP30");
  j.field("n", static_cast<long long>(lower.ncols()));
  j.field("requests_per_client", requests);
  j.field("reps", reps);
  j.field("workers", static_cast<long long>(workers));
  j.begin_array("runs");

  bool coalescing_wins_at_8 = true;
  for (const int clients : client_counts) {
    // Cap batch width at clients/workers so the backlog splits into one
    // batch per dispatcher: coalescing amortizes the structure walk
    // without collapsing the dispatchers' parallelism.
    const index_t batch_cap =
        std::max<index_t>(2, static_cast<index_t>(clients) / workers);
    const RunResult off = best_run(clients, 1);
    const RunResult on = best_run(clients, batch_cap);
    const double speedup = on.rps / off.rps;
    if (clients >= 8 && speedup <= 1.0) coalescing_wins_at_8 = false;

    j.begin_object();
    j.field("clients", clients);
    j.field("batch_cap", static_cast<long long>(batch_cap));
    j.field("coalesce_off_rps", off.rps);
    j.field("coalesce_on_rps", on.rps);
    j.field("speedup", speedup);
    j.field("off_p50_ms", off.p50 * 1e3);
    j.field("off_p95_ms", off.p95 * 1e3);
    j.field("off_p99_ms", off.p99 * 1e3);
    j.field("on_p50_ms", on.p50 * 1e3);
    j.field("on_p95_ms", on.p95 * 1e3);
    j.field("on_p99_ms", on.p99 * 1e3);
    j.field("on_mean_batch_width", on.mean_batch_width);
    j.field("on_batches", static_cast<long long>(on.batches));
    j.end();

    std::cout << "clients " << clients << "  off " << off.rps << " rps  on " << on.rps
              << " rps  speedup " << speedup << "  batch width "
              << on.mean_batch_width << "\n";
  }

  // Open-loop burst against a tiny queue: admission control under fire.
  {
    SolverServiceConfig cfg;
    cfg.workers = workers;
    cfg.queue.max_depth = 8;
    cfg.coalesce.max_batch_rhs = 8;
    SolverService service(engine, cfg);
    const auto n = static_cast<std::size_t>(f->plan().n);
    SplitMix64 rng(0xb1a57);
    std::vector<SolveTicket> tickets;
    constexpr int kBurst = 200;
    tickets.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      SubmitOptions so;
      so.priority = (i % 3 == 0) ? Priority::kLow : Priority::kNormal;
      tickets.push_back(service.submit_solve(f, random_rhs(n, rng), 1, so));
    }
    std::uint64_t ok = 0, rejectedc = 0, shedc = 0, otherc = 0;
    for (SolveTicket& t : tickets) {
      switch (t.result.get().status) {
        case ServeStatus::kOk: ++ok; break;
        case ServeStatus::kRejected: ++rejectedc; break;
        case ServeStatus::kShed: ++shedc; break;
        default: ++otherc; break;
      }
    }
    service.stop();
    j.begin_object();
    j.field("burst", kBurst);
    j.field("queue_depth", 8);
    j.field("ok", static_cast<long long>(ok));
    j.field("rejected", static_cast<long long>(rejectedc));
    j.field("shed", static_cast<long long>(shedc));
    j.field("other", static_cast<long long>(otherc));
    j.end();
    std::cout << "burst " << kBurst << " (depth 8)  ok " << ok << "  rejected "
              << rejectedc << "  shed " << shedc << "  other " << otherc << "\n";
    if (ok + rejectedc + shedc + otherc != kBurst) {
      std::cerr << "serve_throughput: lost requests in the burst\n";
      return 1;
    }
  }

  j.end();
  j.end();
  os << "\n";
  std::cout << "wrote " << out_path << "\n";
  if (!coalescing_wins_at_8) {
    std::cerr << "serve_throughput: coalescing did not improve throughput at >=8 "
                 "clients\n";
    return 1;
  }
  return 0;
}
