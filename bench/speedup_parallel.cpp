// Wall-clock speedup of the shared-memory parallel executor.
//
// Sweeps threads in {1, 2, 4, 8} over the paper's test matrices, block
// mapping (grain 25, width 4) versus the wrap baseline, with nprocs =
// nthreads so each worker plays exactly one paper processor.  For every
// configuration it reports the measured wall time, speedup over the
// 1-thread run of the same mapping family, per-thread busy times, the
// measured load imbalance, and — side by side — the analytic imbalance
// (MappingReport::lambda) and the event-driven simulator's predicted
// makespan/efficiency, so prediction and reality can be diffed directly.
//
// Output is one JSON document on stdout.  Pass --repeats N (default 3,
// best-of) and --matrix NAME to restrict the suite.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"
#include "numeric/cholesky.hpp"
#include "support/json.hpp"

namespace {

struct Run {
  double wall = 0.0;
  spf::ParallelExecResult best;
};

Run best_of(const spf::Mapping& m, const spf::CscMatrix& lower, spf::index_t nthreads,
            int repeats) {
  Run r;
  for (int rep = 0; rep < repeats; ++rep) {
    spf::ParallelExecResult res = m.execute_parallel(lower, nthreads);
    if (rep == 0 || res.wall_seconds < r.wall) {
      r.wall = res.wall_seconds;
      r.best = std::move(res);
    }
  }
  return r;
}

double max_abs_err(const std::vector<double>& a, const std::vector<double>& b) {
  double e = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) e = std::max(e, std::abs(a[i] - b[i]));
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  int repeats = 3;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) repeats = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--matrix") == 0 && i + 1 < argc) only = argv[++i];
  }
  repeats = std::max(repeats, 1);
  if (!only.empty()) {
    bool known = false;
    for (const TestProblem& prob : harwell_boeing_stand_ins()) known |= prob.name == only;
    if (!known) {
      std::cerr << "speedup_parallel: unknown --matrix " << only
                << " (expected BUS1138, CANN1072, DWT512, LAP30 or LSHP1009)\n";
      return 2;
    }
  }

  JsonWriter j(std::cout);
  j.begin_object();
  j.field("bench", "speedup_parallel");
  j.field("repeats", repeats);
  j.begin_array("runs");
  for (const TestProblem& prob : harwell_boeing_stand_ins()) {
    if (!only.empty() && prob.name != only) continue;
    const Pipeline pipe(prob.lower, OrderingKind::kMmd);
    const CholeskyFactor seq = numeric_cholesky(pipe.permuted_matrix(), pipe.symbolic());
    for (const char* scheme : {"block", "wrap"}) {
      double t1 = 0.0;  // 1-thread wall of this mapping family
      for (index_t nthreads : {1, 2, 4, 8}) {
        const Mapping m = std::strcmp(scheme, "block") == 0
                              ? pipe.block_mapping(PartitionOptions::with_grain(25, 4),
                                                   nthreads)
                              : pipe.wrap_mapping(nthreads);
        const Run r = best_of(m, pipe.permuted_matrix(), nthreads, repeats);
        if (nthreads == 1) t1 = r.wall;
        const MappingReport rep = m.report();
        const SimResult sim = m.simulate({1.0, 10.0, 1.0, {}});
        j.begin_object();
        j.field("matrix", prob.name);
        j.field("mapping", scheme);
        j.field("nthreads", static_cast<long long>(nthreads));
        j.field("wall_seconds", r.wall);
        j.field("speedup", t1 > 0.0 ? t1 / r.wall : 0.0);
        j.field("busy_fraction", r.best.busy_fraction());
        j.field("measured_lambda", r.best.measured_imbalance());
        j.field("model_lambda", rep.lambda);
        j.field("sim_makespan", sim.makespan);
        j.field("sim_efficiency", sim.efficiency);
        j.field("blocks_stolen", static_cast<long long>(r.best.blocks_stolen));
        j.field("max_abs_err", max_abs_err(r.best.values, seq.values));
        j.begin_array("busy_seconds");
        for (double b : r.best.busy_seconds) j.element(b);
        j.end();
        j.end();
      }
    }
  }
  j.end();
  j.end();
  std::cout << "\n";
  return 0;
}
