// Reproduces the paper's Table 1: the test matrix suite (number of
// equations, stored nonzeros, and nonzeros in the MMD-ordered factor),
// printed side by side with the published values.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Table 1: Selected Harwell-Boeing test matrices (synthetic stand-ins)\n"
            << "paper values in [brackets]; LAP30 is an exact reconstruction\n\n";
  Table t({"Application", "n", "n [paper]", "nnz(A)", "nnz(A) [paper]", "nnz(L)",
           "nnz(L) [paper]", "description"});
  for (const auto& ctx : make_problem_contexts()) {
    const auto& p = ctx.problem;
    t.add_row({p.name, Table::num(p.lower.ncols()), Table::num(p.paper_n),
               Table::num(p.lower.nnz()), Table::num(p.paper_nnz),
               Table::num(ctx.pipeline.symbolic().nnz()), Table::num(p.paper_factor_nnz),
               p.description});
  }
  t.print(std::cout);
  std::cout << "\nnnz counts are lower triangle including the diagonal.\n"
            << "nnz(L) differs from the paper where the synthetic stand-in's graph\n"
            << "differs from the original and where MMD tie-breaking diverges.\n";
  return 0;
}
