// Reproduces the paper's Table 2: block-mapping communication (total and
// mean data traffic) for grain sizes 4 and 25, minimum cluster width 4,
// across the test suite and processor counts 4/16/32.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Table 2: Block mapping communication (min cluster width 4)\n"
            << "paper values in [brackets]\n\n";
  Table t({"Appl.", "P", "Total g=4", "[paper]", "Total g=25", "[paper]", "Mean g=4",
           "[paper]", "Mean g=25", "[paper]"});
  for (const auto& ctx : make_problem_contexts()) {
    for (index_t np : kPaperProcs) {
      const MappingReport r4 =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(4, 4), np).report();
      const MappingReport r25 =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), np).report();
      const PaperBlockComm* paper = nullptr;
      for (const auto& row : paper_table2()) {
        if (ctx.problem.name == row.name && row.nprocs == np) paper = &row;
      }
      t.add_row({ctx.problem.name, Table::num(np), Table::num(r4.total_traffic),
                 paper ? Table::num(paper->total_g4) : "-", Table::num(r25.total_traffic),
                 paper ? Table::num(paper->total_g25) : "-",
                 Table::num(static_cast<count_t>(r4.mean_traffic)),
                 paper ? Table::num(paper->mean_g4) : "-",
                 Table::num(static_cast<count_t>(r25.mean_traffic)),
                 paper ? Table::num(paper->mean_g25) : "-"});
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nTrend checks (as in the paper): traffic grows with P; grain 25\n"
            << "communicates less than grain 4 at every processor count.\n";
  return 0;
}
