// Reproduces the paper's Table 3: block-mapping work distribution (mean
// work per processor and load imbalance factor lambda) for grain sizes 4
// and 25, minimum cluster width 4.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Table 3: Block mapping work distribution (min cluster width 4)\n"
            << "paper values in [brackets]\n\n";
  Table t({"Appl.", "P", "Mean work", "[paper]", "lambda g=4", "[paper]", "lambda g=25",
           "[paper]"});
  for (const auto& ctx : make_problem_contexts()) {
    for (index_t np : kPaperProcs) {
      const MappingReport r4 =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(4, 4), np).report();
      const MappingReport r25 =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), np).report();
      const PaperBlockWork* paper = nullptr;
      for (const auto& row : paper_table3()) {
        if (ctx.problem.name == row.name && row.nprocs == np) paper = &row;
      }
      t.add_row({ctx.problem.name, Table::num(np),
                 Table::num(static_cast<count_t>(r4.mean_work)),
                 paper ? Table::num(paper->mean_work) : "-", Table::fixed(r4.lambda, 2),
                 paper ? Table::fixed(paper->lambda_g4, 2) : "-",
                 Table::fixed(r25.lambda, 2),
                 paper ? Table::fixed(paper->lambda_g25, 2) : "-"});
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nTrend checks (as in the paper): lambda generally grows with the\n"
            << "grain size and with the processor count; the paper's scheduler and\n"
            << "ours differ in tie-breaking, so absolute lambdas deviate.\n";
  return 0;
}
