// Reproduces the paper's Table 4: LAP30 communication and load balance as
// a function of the minimum cluster width (2, 4, 8) at grain size 4.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Table 4: Variation with minimum cluster width for LAP30, g = 4\n"
            << "paper values in [brackets]\n\n";
  const auto ctx = make_problem_context("LAP30");
  Table t({"Width", "P", "Comm total", "[paper]", "Comm mean", "[paper]", "Work mean",
           "[paper]", "lambda", "[paper]"});
  for (index_t width : kPaperWidths) {
    for (index_t np : kPaperProcs) {
      const MappingReport r =
          ctx.pipeline.block_mapping(PartitionOptions::with_grain(4, width), np).report();
      const PaperWidthRow* paper = nullptr;
      for (const auto& row : paper_table4()) {
        if (row.width == width && row.nprocs == np) paper = &row;
      }
      t.add_row({Table::num(width), Table::num(np), Table::num(r.total_traffic),
                 paper ? Table::num(paper->comm_total) : "-",
                 Table::num(static_cast<count_t>(r.mean_traffic)),
                 paper ? Table::num(paper->comm_mean) : "-",
                 Table::num(static_cast<count_t>(r.mean_work)),
                 paper ? Table::num(paper->work_mean) : "-", Table::fixed(r.lambda, 3),
                 paper ? Table::fixed(paper->lambda, 3) : "-"});
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nThe paper observes a communication/load-balance cross-over as the\n"
            << "width grows (wider clusters keep more supernodes intact: bigger\n"
            << "blocks, less traffic at width 8, more imbalance).\n";
  return 0;
}
