// Reproduces the paper's Table 5: wrap-mapped column assignment —
// communication (total/mean data traffic) and work distribution (mean
// work, lambda) for P = 1, 4, 16, 32.
#include <iostream>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main() {
  using namespace spf;
  std::cout << "Table 5: Wrap mapping\n"
            << "paper values in [brackets]\n\n";
  Table t({"Appl.", "P", "Comm total", "[paper]", "Comm mean", "[paper]", "Work mean",
           "[paper]", "lambda", "[paper]"});
  constexpr index_t kProcs[] = {1, 4, 16, 32};
  for (const auto& ctx : make_problem_contexts()) {
    for (index_t np : kProcs) {
      const MappingReport r = ctx.pipeline.wrap_mapping(np).report();
      const PaperWrapRow* paper = nullptr;
      for (const auto& row : paper_table5()) {
        if (ctx.problem.name == row.name && row.nprocs == np) paper = &row;
      }
      t.add_row({ctx.problem.name, Table::num(np), Table::num(r.total_traffic),
                 paper ? Table::num(paper->comm_total) : "-",
                 Table::num(static_cast<count_t>(r.mean_traffic)),
                 paper ? Table::num(paper->comm_mean) : "-",
                 Table::num(static_cast<count_t>(r.mean_work)),
                 paper ? Table::num(paper->work_mean) : "-", Table::fixed(r.lambda, 2),
                 paper ? Table::fixed(paper->lambda, 2) : "-"});
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::cout << "\nTrend checks (as in the paper): wrap's lambda stays small at every\n"
            << "P (near-perfect balance), while its traffic exceeds the block\n"
            << "mapping's (compare Table 2) — the paper's central trade-off.\n";
  return 0;
}
