file(REMOVE_RECURSE
  "CMakeFiles/ablation_3d.dir/ablation_3d.cpp.o"
  "CMakeFiles/ablation_3d.dir/ablation_3d.cpp.o.d"
  "ablation_3d"
  "ablation_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
