# Empty dependencies file for ablation_3d.
# This may be replaced when dependencies are built.
