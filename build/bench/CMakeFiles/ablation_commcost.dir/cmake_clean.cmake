file(REMOVE_RECURSE
  "CMakeFiles/ablation_commcost.dir/ablation_commcost.cpp.o"
  "CMakeFiles/ablation_commcost.dir/ablation_commcost.cpp.o.d"
  "ablation_commcost"
  "ablation_commcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_commcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
