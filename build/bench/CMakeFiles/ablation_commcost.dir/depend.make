# Empty dependencies file for ablation_commcost.
# This may be replaced when dependencies are built.
