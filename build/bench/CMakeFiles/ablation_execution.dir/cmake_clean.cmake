file(REMOVE_RECURSE
  "CMakeFiles/ablation_execution.dir/ablation_execution.cpp.o"
  "CMakeFiles/ablation_execution.dir/ablation_execution.cpp.o.d"
  "ablation_execution"
  "ablation_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
