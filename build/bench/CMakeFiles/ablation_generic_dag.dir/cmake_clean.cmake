file(REMOVE_RECURSE
  "CMakeFiles/ablation_generic_dag.dir/ablation_generic_dag.cpp.o"
  "CMakeFiles/ablation_generic_dag.dir/ablation_generic_dag.cpp.o.d"
  "ablation_generic_dag"
  "ablation_generic_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_generic_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
