# Empty dependencies file for ablation_generic_dag.
# This may be replaced when dependencies are built.
