file(REMOVE_RECURSE
  "CMakeFiles/ablation_grain_sweep.dir/ablation_grain_sweep.cpp.o"
  "CMakeFiles/ablation_grain_sweep.dir/ablation_grain_sweep.cpp.o.d"
  "ablation_grain_sweep"
  "ablation_grain_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grain_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
