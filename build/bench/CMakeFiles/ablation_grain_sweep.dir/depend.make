# Empty dependencies file for ablation_grain_sweep.
# This may be replaced when dependencies are built.
