file(REMOVE_RECURSE
  "CMakeFiles/ablation_subtree.dir/ablation_subtree.cpp.o"
  "CMakeFiles/ablation_subtree.dir/ablation_subtree.cpp.o.d"
  "ablation_subtree"
  "ablation_subtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
