# Empty dependencies file for ablation_subtree.
# This may be replaced when dependencies are built.
