file(REMOVE_RECURSE
  "CMakeFiles/ablation_trisolve.dir/ablation_trisolve.cpp.o"
  "CMakeFiles/ablation_trisolve.dir/ablation_trisolve.cpp.o.d"
  "ablation_trisolve"
  "ablation_trisolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
