# Empty dependencies file for ablation_trisolve.
# This may be replaced when dependencies are built.
