# Empty compiler generated dependencies file for fig2_filled_matrix.
# This may be replaced when dependencies are built.
