file(REMOVE_RECURSE
  "CMakeFiles/fig3_partitions.dir/fig3_partitions.cpp.o"
  "CMakeFiles/fig3_partitions.dir/fig3_partitions.cpp.o.d"
  "fig3_partitions"
  "fig3_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
