# Empty dependencies file for fig3_partitions.
# This may be replaced when dependencies are built.
