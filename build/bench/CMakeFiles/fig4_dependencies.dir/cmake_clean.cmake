file(REMOVE_RECURSE
  "CMakeFiles/fig4_dependencies.dir/fig4_dependencies.cpp.o"
  "CMakeFiles/fig4_dependencies.dir/fig4_dependencies.cpp.o.d"
  "fig4_dependencies"
  "fig4_dependencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dependencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
