# Empty compiler generated dependencies file for fig4_dependencies.
# This may be replaced when dependencies are built.
