file(REMOVE_RECURSE
  "CMakeFiles/parallelism_profile.dir/parallelism_profile.cpp.o"
  "CMakeFiles/parallelism_profile.dir/parallelism_profile.cpp.o.d"
  "parallelism_profile"
  "parallelism_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelism_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
