# Empty compiler generated dependencies file for parallelism_profile.
# This may be replaced when dependencies are built.
