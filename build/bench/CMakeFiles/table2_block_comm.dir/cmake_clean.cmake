file(REMOVE_RECURSE
  "CMakeFiles/table2_block_comm.dir/table2_block_comm.cpp.o"
  "CMakeFiles/table2_block_comm.dir/table2_block_comm.cpp.o.d"
  "table2_block_comm"
  "table2_block_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_block_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
