# Empty dependencies file for table2_block_comm.
# This may be replaced when dependencies are built.
