file(REMOVE_RECURSE
  "CMakeFiles/table3_block_work.dir/table3_block_work.cpp.o"
  "CMakeFiles/table3_block_work.dir/table3_block_work.cpp.o.d"
  "table3_block_work"
  "table3_block_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_block_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
