# Empty compiler generated dependencies file for table3_block_work.
# This may be replaced when dependencies are built.
