file(REMOVE_RECURSE
  "CMakeFiles/table4_width_lap30.dir/table4_width_lap30.cpp.o"
  "CMakeFiles/table4_width_lap30.dir/table4_width_lap30.cpp.o.d"
  "table4_width_lap30"
  "table4_width_lap30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_width_lap30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
