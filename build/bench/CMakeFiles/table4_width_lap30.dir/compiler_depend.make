# Empty compiler generated dependencies file for table4_width_lap30.
# This may be replaced when dependencies are built.
