file(REMOVE_RECURSE
  "CMakeFiles/table5_wrap.dir/table5_wrap.cpp.o"
  "CMakeFiles/table5_wrap.dir/table5_wrap.cpp.o.d"
  "table5_wrap"
  "table5_wrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_wrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
