# Empty dependencies file for table5_wrap.
# This may be replaced when dependencies are built.
