file(REMOVE_RECURSE
  "CMakeFiles/mapping_tradeoff.dir/mapping_tradeoff.cpp.o"
  "CMakeFiles/mapping_tradeoff.dir/mapping_tradeoff.cpp.o.d"
  "mapping_tradeoff"
  "mapping_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
