# Empty compiler generated dependencies file for mapping_tradeoff.
# This may be replaced when dependencies are built.
