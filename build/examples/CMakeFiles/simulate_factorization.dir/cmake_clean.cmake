file(REMOVE_RECURSE
  "CMakeFiles/simulate_factorization.dir/simulate_factorization.cpp.o"
  "CMakeFiles/simulate_factorization.dir/simulate_factorization.cpp.o.d"
  "simulate_factorization"
  "simulate_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
