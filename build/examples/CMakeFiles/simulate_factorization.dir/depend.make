# Empty dependencies file for simulate_factorization.
# This may be replaced when dependencies are built.
