
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiments.cpp" "src/CMakeFiles/spfactor.dir/core/experiments.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/core/experiments.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/spfactor.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/dist/dist_cholesky.cpp" "src/CMakeFiles/spfactor.dir/dist/dist_cholesky.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/dist/dist_cholesky.cpp.o.d"
  "/root/repo/src/dist/dist_trisolve.cpp" "src/CMakeFiles/spfactor.dir/dist/dist_trisolve.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/dist/dist_trisolve.cpp.o.d"
  "/root/repo/src/gen/grid.cpp" "src/CMakeFiles/spfactor.dir/gen/grid.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/grid.cpp.o.d"
  "/root/repo/src/gen/grid3d.cpp" "src/CMakeFiles/spfactor.dir/gen/grid3d.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/grid3d.cpp.o.d"
  "/root/repo/src/gen/lshape.cpp" "src/CMakeFiles/spfactor.dir/gen/lshape.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/lshape.cpp.o.d"
  "/root/repo/src/gen/mesh_misc.cpp" "src/CMakeFiles/spfactor.dir/gen/mesh_misc.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/mesh_misc.cpp.o.d"
  "/root/repo/src/gen/powernet.cpp" "src/CMakeFiles/spfactor.dir/gen/powernet.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/powernet.cpp.o.d"
  "/root/repo/src/gen/random_spd.cpp" "src/CMakeFiles/spfactor.dir/gen/random_spd.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/random_spd.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/CMakeFiles/spfactor.dir/gen/suite.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/gen/suite.cpp.o.d"
  "/root/repo/src/io/harwell_boeing.cpp" "src/CMakeFiles/spfactor.dir/io/harwell_boeing.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/io/harwell_boeing.cpp.o.d"
  "/root/repo/src/io/mapping_io.cpp" "src/CMakeFiles/spfactor.dir/io/mapping_io.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/io/mapping_io.cpp.o.d"
  "/root/repo/src/io/matrix_market.cpp" "src/CMakeFiles/spfactor.dir/io/matrix_market.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/io/matrix_market.cpp.o.d"
  "/root/repo/src/io/pattern_art.cpp" "src/CMakeFiles/spfactor.dir/io/pattern_art.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/io/pattern_art.cpp.o.d"
  "/root/repo/src/matrix/coo.cpp" "src/CMakeFiles/spfactor.dir/matrix/coo.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/matrix/coo.cpp.o.d"
  "/root/repo/src/matrix/csc.cpp" "src/CMakeFiles/spfactor.dir/matrix/csc.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/matrix/csc.cpp.o.d"
  "/root/repo/src/matrix/graph.cpp" "src/CMakeFiles/spfactor.dir/matrix/graph.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/matrix/graph.cpp.o.d"
  "/root/repo/src/metrics/parallelism.cpp" "src/CMakeFiles/spfactor.dir/metrics/parallelism.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/metrics/parallelism.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/spfactor.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/temporal.cpp" "src/CMakeFiles/spfactor.dir/metrics/temporal.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/metrics/temporal.cpp.o.d"
  "/root/repo/src/metrics/traffic.cpp" "src/CMakeFiles/spfactor.dir/metrics/traffic.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/metrics/traffic.cpp.o.d"
  "/root/repo/src/metrics/work.cpp" "src/CMakeFiles/spfactor.dir/metrics/work.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/metrics/work.cpp.o.d"
  "/root/repo/src/msg/machine.cpp" "src/CMakeFiles/spfactor.dir/msg/machine.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/msg/machine.cpp.o.d"
  "/root/repo/src/numeric/cholesky.cpp" "src/CMakeFiles/spfactor.dir/numeric/cholesky.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/cholesky.cpp.o.d"
  "/root/repo/src/numeric/dense.cpp" "src/CMakeFiles/spfactor.dir/numeric/dense.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/ldlt.cpp" "src/CMakeFiles/spfactor.dir/numeric/ldlt.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/ldlt.cpp.o.d"
  "/root/repo/src/numeric/multifrontal.cpp" "src/CMakeFiles/spfactor.dir/numeric/multifrontal.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/multifrontal.cpp.o.d"
  "/root/repo/src/numeric/solver.cpp" "src/CMakeFiles/spfactor.dir/numeric/solver.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/solver.cpp.o.d"
  "/root/repo/src/numeric/supernodal.cpp" "src/CMakeFiles/spfactor.dir/numeric/supernodal.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/supernodal.cpp.o.d"
  "/root/repo/src/numeric/trisolve.cpp" "src/CMakeFiles/spfactor.dir/numeric/trisolve.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/numeric/trisolve.cpp.o.d"
  "/root/repo/src/order/mmd.cpp" "src/CMakeFiles/spfactor.dir/order/mmd.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/order/mmd.cpp.o.d"
  "/root/repo/src/order/nested_dissection.cpp" "src/CMakeFiles/spfactor.dir/order/nested_dissection.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/order/nested_dissection.cpp.o.d"
  "/root/repo/src/order/ordering.cpp" "src/CMakeFiles/spfactor.dir/order/ordering.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/order/ordering.cpp.o.d"
  "/root/repo/src/order/permutation.cpp" "src/CMakeFiles/spfactor.dir/order/permutation.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/order/permutation.cpp.o.d"
  "/root/repo/src/order/rcm.cpp" "src/CMakeFiles/spfactor.dir/order/rcm.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/order/rcm.cpp.o.d"
  "/root/repo/src/partition/dependencies.cpp" "src/CMakeFiles/spfactor.dir/partition/dependencies.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/partition/dependencies.cpp.o.d"
  "/root/repo/src/partition/element_map.cpp" "src/CMakeFiles/spfactor.dir/partition/element_map.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/partition/element_map.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/spfactor.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/schedule/block_scheduler.cpp" "src/CMakeFiles/spfactor.dir/schedule/block_scheduler.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/schedule/block_scheduler.cpp.o.d"
  "/root/repo/src/schedule/subtree.cpp" "src/CMakeFiles/spfactor.dir/schedule/subtree.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/schedule/subtree.cpp.o.d"
  "/root/repo/src/schedule/variants.cpp" "src/CMakeFiles/spfactor.dir/schedule/variants.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/schedule/variants.cpp.o.d"
  "/root/repo/src/schedule/wrap.cpp" "src/CMakeFiles/spfactor.dir/schedule/wrap.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/schedule/wrap.cpp.o.d"
  "/root/repo/src/sim/desim.cpp" "src/CMakeFiles/spfactor.dir/sim/desim.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/sim/desim.cpp.o.d"
  "/root/repo/src/sim/task_dag.cpp" "src/CMakeFiles/spfactor.dir/sim/task_dag.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/sim/task_dag.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/spfactor.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/support/table.cpp.o.d"
  "/root/repo/src/symbolic/colcounts.cpp" "src/CMakeFiles/spfactor.dir/symbolic/colcounts.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/symbolic/colcounts.cpp.o.d"
  "/root/repo/src/symbolic/etree.cpp" "src/CMakeFiles/spfactor.dir/symbolic/etree.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/symbolic/etree.cpp.o.d"
  "/root/repo/src/symbolic/supernodes.cpp" "src/CMakeFiles/spfactor.dir/symbolic/supernodes.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/symbolic/supernodes.cpp.o.d"
  "/root/repo/src/symbolic/symbolic_factor.cpp" "src/CMakeFiles/spfactor.dir/symbolic/symbolic_factor.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/symbolic/symbolic_factor.cpp.o.d"
  "/root/repo/src/symbolic/uplooking.cpp" "src/CMakeFiles/spfactor.dir/symbolic/uplooking.cpp.o" "gcc" "src/CMakeFiles/spfactor.dir/symbolic/uplooking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
