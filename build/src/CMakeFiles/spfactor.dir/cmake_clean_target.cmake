file(REMOVE_RECURSE
  "libspfactor.a"
)
