# Empty dependencies file for spfactor.
# This may be replaced when dependencies are built.
