file(REMOVE_RECURSE
  "CMakeFiles/test_colcounts.dir/test_colcounts.cpp.o"
  "CMakeFiles/test_colcounts.dir/test_colcounts.cpp.o.d"
  "test_colcounts"
  "test_colcounts.pdb"
  "test_colcounts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
