# Empty dependencies file for test_colcounts.
# This may be replaced when dependencies are built.
