file(REMOVE_RECURSE
  "CMakeFiles/test_dependencies.dir/test_dependencies.cpp.o"
  "CMakeFiles/test_dependencies.dir/test_dependencies.cpp.o.d"
  "test_dependencies"
  "test_dependencies.pdb"
  "test_dependencies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
