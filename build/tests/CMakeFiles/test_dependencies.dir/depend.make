# Empty dependencies file for test_dependencies.
# This may be replaced when dependencies are built.
