file(REMOVE_RECURSE
  "CMakeFiles/test_dist_trisolve.dir/test_dist_trisolve.cpp.o"
  "CMakeFiles/test_dist_trisolve.dir/test_dist_trisolve.cpp.o.d"
  "test_dist_trisolve"
  "test_dist_trisolve.pdb"
  "test_dist_trisolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
