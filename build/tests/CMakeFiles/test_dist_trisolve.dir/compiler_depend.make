# Empty compiler generated dependencies file for test_dist_trisolve.
# This may be replaced when dependencies are built.
