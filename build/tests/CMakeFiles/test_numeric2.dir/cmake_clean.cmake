file(REMOVE_RECURSE
  "CMakeFiles/test_numeric2.dir/test_numeric2.cpp.o"
  "CMakeFiles/test_numeric2.dir/test_numeric2.cpp.o.d"
  "test_numeric2"
  "test_numeric2.pdb"
  "test_numeric2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
