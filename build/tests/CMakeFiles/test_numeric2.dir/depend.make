# Empty dependencies file for test_numeric2.
# This may be replaced when dependencies are built.
