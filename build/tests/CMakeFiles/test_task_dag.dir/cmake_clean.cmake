file(REMOVE_RECURSE
  "CMakeFiles/test_task_dag.dir/test_task_dag.cpp.o"
  "CMakeFiles/test_task_dag.dir/test_task_dag.cpp.o.d"
  "test_task_dag"
  "test_task_dag.pdb"
  "test_task_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
