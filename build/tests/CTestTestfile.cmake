# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_order[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_colcounts[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_numeric2[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_dependencies[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_task_dag[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_dist_trisolve[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_variants[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
