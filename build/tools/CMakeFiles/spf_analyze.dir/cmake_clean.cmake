file(REMOVE_RECURSE
  "CMakeFiles/spf_analyze.dir/spf_analyze.cpp.o"
  "CMakeFiles/spf_analyze.dir/spf_analyze.cpp.o.d"
  "spf_analyze"
  "spf_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spf_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
