# Empty compiler generated dependencies file for spf_analyze.
# This may be replaced when dependencies are built.
