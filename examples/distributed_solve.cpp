// Domain example: the full distributed solve, end to end.
//
// Orders and partitions a problem, factors it on the simulated
// message-passing machine with the paper's block mapping, runs the
// distributed forward/backward solves on the same data distribution, and
// verifies the residual — i.e. the paper's entire four-step direct
// solution executed as a message-passing program.
//
// Usage: ./distributed_solve [problem] [nprocs] [grain]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "dist/dist_cholesky.hpp"
#include "dist/dist_trisolve.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  const std::string name = argc > 1 ? argv[1] : "LSHP1009";
  const index_t nprocs = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 16;
  const index_t grain = argc > 3 ? static_cast<index_t>(std::atoi(argv[3])) : 25;

  const auto ctx = make_problem_context(name);
  const Mapping m =
      ctx.pipeline.block_mapping(PartitionOptions::with_grain(grain, 4), nprocs);
  std::cout << "problem " << name << " on " << nprocs << " ranks, grain " << grain
            << ": " << m.partition.num_blocks() << " unit blocks\n\n";

  // Right-hand side in the permuted ordering (the paper solves L u = P b).
  SplitMix64 rng(2026);
  std::vector<double> pb(static_cast<std::size_t>(ctx.problem.lower.ncols()));
  for (auto& v : pb) v = rng.uniform() * 2.0 - 1.0;

  // Step 3 distributed: numeric factorization.
  const DistResult fact = distributed_cholesky(ctx.pipeline.permuted_matrix(),
                                               m.partition, m.deps, m.assignment);
  CholeskyFactor factor;
  factor.structure = &m.partition.factor;
  factor.values = fact.values;

  // Step 4 distributed: triangular solves on the same distribution.
  const DistSolveResult u =
      distributed_lower_solve(factor, m.partition, m.assignment, pb);
  const DistSolveResult v =
      distributed_lower_transpose_solve(factor, m.partition, m.assignment, u.solution);

  // Residual of the permuted system.
  const std::vector<double> av =
      symmetric_matvec(ctx.pipeline.permuted_matrix(), v.solution);
  double resid = 0.0;
  for (std::size_t i = 0; i < pb.size(); ++i) {
    resid = std::max(resid, std::abs(av[i] - pb[i]));
  }

  Table t({"phase", "messages", "element volume"});
  t.add_row({"factorization", Table::num(fact.stats.messages),
             Table::num(fact.stats.volume)});
  t.add_row({"forward solve", Table::num(u.stats.messages), Table::num(u.stats.volume)});
  t.add_row({"backward solve", Table::num(v.stats.messages), Table::num(v.stats.volume)});
  t.print(std::cout);
  std::cout << "\nresidual ||A x - b||_inf = " << resid << "\n"
            << "factorization dominates communication; the solves ride on the\n"
            << "same data distribution for a small additional volume per RHS.\n";
  return 0;
}
