// Domain example: pick a mapping for your machine.
//
// Given a problem (any of the paper's test matrices or a generated grid)
// and a processor count, sweep the block mapping's grain size against the
// wrap baseline and print the communication / load-balance frontier so a
// user can pick the operating point matching their machine's
// communication-to-computation cost ratio.
//
// Usage: ./mapping_tradeoff [problem] [nprocs]
//        problem in {BUS1138, CANN1072, DWT512, LAP30, LSHP1009}
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  const std::string name = argc > 1 ? argv[1] : "LSHP1009";
  const index_t nprocs = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 16;
  const auto ctx = make_problem_context(name);
  std::cout << "mapping trade-off for " << name << " on " << nprocs << " processors\n"
            << "(n = " << ctx.problem.lower.ncols()
            << ", nnz(L) = " << ctx.pipeline.symbolic().nnz() << ")\n\n";

  Table t({"mapping", "traffic", "lambda", "efficiency", "mean partners",
           "max served"});
  {
    const Mapping wrap = ctx.pipeline.wrap_mapping(nprocs);
    const MappingReport r = wrap.report();
    const TrafficReport tr = simulate_traffic(wrap.partition, wrap.assignment);
    t.add_row({"wrap", Table::num(r.total_traffic), Table::fixed(r.lambda, 3),
               Table::fixed(r.efficiency, 3), Table::fixed(tr.mean_partners(), 1),
               Table::num(tr.max_served())});
  }
  t.add_separator();
  for (index_t g : {2, 4, 8, 16, 25, 50}) {
    const Mapping m = ctx.pipeline.block_mapping(PartitionOptions::with_grain(g, 4), nprocs);
    const MappingReport r = m.report();
    const TrafficReport tr = simulate_traffic(m.partition, m.assignment);
    t.add_row({"block g=" + std::to_string(g), Table::num(r.total_traffic),
               Table::fixed(r.lambda, 3), Table::fixed(r.efficiency, 3),
               Table::fixed(tr.mean_partners(), 1), Table::num(tr.max_served())});
  }
  t.print(std::cout);
  std::cout << "\nRule of thumb from the paper: pick a small grain when computation\n"
            << "dominates (balance matters), a large grain when the network is the\n"
            << "bottleneck (traffic matters).  'mean partners' shows the block\n"
            << "mapping also confines communication to fewer processor pairs,\n"
            << "reducing hot spots ('max served' = busiest serving processor).\n";
  return 0;
}
