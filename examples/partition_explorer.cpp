// Domain example: inspect what the partitioner does to a matrix.
//
// Orders a small grid problem, prints the filled pattern with cluster
// boundaries, lists the unit blocks, and uses the interval tree to answer
// "which unit blocks touch a given row band?" — the kind of query the
// dependency engine is built on.
//
// Usage: ./partition_explorer [nx] [ny] [grain]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/grid.hpp"
#include "io/pattern_art.hpp"
#include "partition/dependencies.hpp"
#include "support/interval_tree.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  const index_t nx = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 7;
  const index_t ny = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 7;
  const index_t grain = argc > 3 ? static_cast<index_t>(std::atoi(argv[3])) : 6;

  const Pipeline pipe(grid_laplacian_9pt(nx, ny), OrderingKind::kMmd);  // no input copy
  const CscMatrix& a = pipe.original_matrix();
  const Partition p =
      partition_factor(pipe.symbolic(), PartitionOptions::with_grain(grain, 2));

  std::cout << "9-point " << nx << "x" << ny << " grid under MMD: n = " << a.ncols()
            << ", nnz(L) = " << pipe.symbolic().nnz() << ", "
            << p.clusters.clusters.size() << " clusters, " << p.num_blocks()
            << " unit blocks (grain " << grain << ")\n\n";

  print_lower_pattern_with_clusters(std::cout, p.factor.pattern(),
                                    p.clusters.first_columns());

  std::cout << "\nunit blocks:\n";
  Table t({"id", "kind", "cluster", "cols", "rows", "elements"});
  for (index_t b = 0; b < p.num_blocks(); ++b) {
    const UnitBlock& blk = p.blocks[static_cast<std::size_t>(b)];
    t.add_row({Table::num(b), to_string(blk.kind), Table::num(blk.cluster),
               "[" + std::to_string(blk.cols.lo) + ".." + std::to_string(blk.cols.hi) + "]",
               "[" + std::to_string(blk.rows.lo) + ".." + std::to_string(blk.rows.hi) + "]",
               Table::num(blk.elements)});
  }
  t.print(std::cout);

  // Interval-tree query over block row extents: the geometric primitive of
  // the paper's dependency identification (Section 3.3).
  std::vector<IntervalTree<index_t, index_t>::Entry> entries;
  for (index_t b = 0; b < p.num_blocks(); ++b) {
    entries.push_back({p.blocks[static_cast<std::size_t>(b)].rows, b});
  }
  const IntervalTree<index_t, index_t> by_rows(entries);
  const Interval<index_t> band{a.ncols() / 2, a.ncols() / 2 + 3};
  std::cout << "\nblocks whose row extent intersects rows [" << band.lo << ".." << band.hi
            << "]: ";
  by_rows.visit_overlaps(band, [&](const auto& e) { std::cout << e.value << ' '; });
  std::cout << "\n\ndependency DAG summary:\n";
  const BlockDeps deps = block_dependencies(p);
  std::cout << "  edges: " << deps.num_edges()
            << ", independent blocks: " << deps.independent.size() << "\n";
  return 0;
}
