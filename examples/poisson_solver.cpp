// Domain example: solve a Poisson problem -Δu = f on the unit square with
// Dirichlet boundary conditions — the workload class behind the paper's
// LAP30 matrix — and report discretization convergence.
//
// Usage: ./poisson_solver [grid-size]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "gen/grid.hpp"
#include "matrix/coo.hpp"
#include "numeric/solver.hpp"

namespace {

// Manufactured solution u(x,y) = sin(pi x) sin(pi y); f = 2 pi^2 u.
// The 5-point stencil scaled by h^2 matches grid_laplacian_5pt's
// integer-valued entries up to the boundary-degree adjustment, so we
// assemble the standard stencil explicitly here.
spf::CscMatrix poisson_5pt(spf::index_t m) {
  using namespace spf;
  CooBuilder coo(m * m, m * m);
  auto id = [m](index_t x, index_t y) { return y * m + x; };
  for (index_t y = 0; y < m; ++y) {
    for (index_t x = 0; x < m; ++x) {
      coo.add(id(x, y), id(x, y), 4.0);
      if (x + 1 < m) coo.add(id(x + 1, y), id(x, y), -1.0);
      if (y + 1 < m) coo.add(id(x, y + 1), id(x, y), -1.0);
    }
  }
  return coo.to_csc();
}

double solve_and_measure_error(spf::index_t m) {
  using namespace spf;
  const double h = 1.0 / (m + 1);
  const CscMatrix a = poisson_5pt(m);
  DirectSolver solver(a, OrderingKind::kMmd);

  std::vector<double> f(static_cast<std::size_t>(m) * m);
  for (index_t y = 0; y < m; ++y) {
    for (index_t x = 0; x < m; ++x) {
      const double px = (x + 1) * h, py = (y + 1) * h;
      f[static_cast<std::size_t>(y * m + x)] =
          2.0 * std::numbers::pi * std::numbers::pi * std::sin(std::numbers::pi * px) *
          std::sin(std::numbers::pi * py) * h * h;
    }
  }
  const std::vector<double> u = solver.solve(f);
  double err = 0.0;
  for (index_t y = 0; y < m; ++y) {
    for (index_t x = 0; x < m; ++x) {
      const double px = (x + 1) * h, py = (y + 1) * h;
      const double exact =
          std::sin(std::numbers::pi * px) * std::sin(std::numbers::pi * py);
      err = std::max(err, std::abs(u[static_cast<std::size_t>(y * m + x)] - exact));
    }
  }
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spf;
  const index_t base = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 10;
  std::cout << "Poisson -Δu = f on the unit square, manufactured solution\n"
            << "u = sin(pi x) sin(pi y); max-norm error vs grid size:\n\n";
  double prev = 0.0;
  for (index_t m : {base, static_cast<index_t>(2 * base), static_cast<index_t>(4 * base)}) {
    const double err = solve_and_measure_error(m);
    std::cout << "  " << m << " x " << m << " grid: error = " << err;
    if (prev > 0.0) std::cout << "  (ratio " << prev / err << ", expect ~4 for O(h^2))";
    std::cout << "\n";
    prev = err;
  }
  std::cout << "\nSecond-order convergence confirms the full direct-solver stack\n"
            << "(MMD ordering, symbolic + numeric Cholesky, triangular solves).\n";
  return 0;
}
