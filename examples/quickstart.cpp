// Quickstart: the whole library in one page.
//
//  1. build a sparse SPD matrix,
//  2. solve A x = b with the four-step direct solver,
//  3. analyze a distributed mapping (partition + schedule + metrics).
//
// Run:  ./quickstart
//       ./quickstart parallel   — also execute the block mapping on real
//                                 threads and compare measured balance and
//                                 speedup against the analytic metrics.
#include <cmath>
#include <cstring>
#include <iostream>

#include "core/pipeline.hpp"
#include "gen/grid.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/solver.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  const bool parallel_mode = argc > 1 && std::strcmp(argv[1], "parallel") == 0;

  // --- 1. A model problem: 9-point Laplacian on a 20x20 grid. ------------
  const CscMatrix a = grid_laplacian_9pt(20, 20);
  std::cout << "matrix: n = " << a.ncols() << ", nnz (lower) = " << a.nnz() << "\n";

  // --- 2. Direct solution (order / symbolic / numeric / solve). ----------
  DirectSolver solver(a, OrderingKind::kMmd);
  std::cout << "factor: nnz(L) = " << solver.symbolic().nnz()
            << ", fill ratio = " << solver.fill_ratio() << "\n";

  std::vector<double> b(static_cast<std::size_t>(a.ncols()), 1.0);
  const std::vector<double> x = solver.solve(b);

  // Residual check ||Ax - b||_inf using the factor's input matrix.
  double r = 0.0;
  {
    const CscMatrix full = full_from_lower(a);
    std::vector<double> ax(b.size(), 0.0);
    for (index_t j = 0; j < full.ncols(); ++j) {
      const auto rows = full.col_rows(j);
      const auto vals = full.col_values(j);
      for (std::size_t t = 0; t < rows.size(); ++t) {
        ax[static_cast<std::size_t>(rows[t])] += vals[t] * x[static_cast<std::size_t>(j)];
      }
    }
    for (std::size_t i = 0; i < b.size(); ++i) r = std::max(r, std::abs(ax[i] - b[i]));
  }
  std::cout << "solve:  ||Ax - b||_inf = " << r << "\n\n";

  // --- 3. Distributed-memory mapping analysis. ----------------------------
  const Pipeline pipe(a, OrderingKind::kMmd);
  const index_t nprocs = 16;
  const Mapping block = pipe.block_mapping(PartitionOptions::with_grain(25, 4), nprocs);
  const Mapping wrap = pipe.wrap_mapping(nprocs);
  const MappingReport rb = block.report();
  const MappingReport rw = wrap.report();
  std::cout << "mapping analysis on " << nprocs << " processors:\n"
            << "  block: traffic = " << rb.total_traffic << ", lambda = " << rb.lambda
            << " (" << rb.num_blocks << " unit blocks in " << rb.num_clusters
            << " clusters)\n"
            << "  wrap:  traffic = " << rw.total_traffic << ", lambda = " << rw.lambda
            << "\n";
  std::cout << "the trade-off in one line: block mapping moves "
            << 100.0 * (1.0 - static_cast<double>(rb.total_traffic) /
                                  static_cast<double>(rw.total_traffic))
            << "% less data but carries " << rb.lambda / std::max(rw.lambda, 1e-9)
            << "x the load imbalance.\n";

  // --- 4. (optional) Shared-memory parallel execution. --------------------
  if (parallel_mode) {
    const index_t nthreads = 4;
    const Mapping m = pipe.block_mapping(PartitionOptions::with_grain(25, 4), nthreads);
    const ParallelExecResult one = m.execute_parallel(pipe.permuted_matrix(), 1);
    const ParallelExecResult par = m.execute_parallel(pipe.permuted_matrix(), nthreads);
    const CholeskyFactor seq = numeric_cholesky(pipe.permuted_matrix(), pipe.symbolic());
    double err = 0.0;
    for (std::size_t i = 0; i < seq.values.size(); ++i) {
      err = std::max(err, std::abs(par.values[i] - seq.values[i]));
    }
    std::cout << "\nparallel execution of the block mapping on " << nthreads
              << " threads:\n  wall = " << par.wall_seconds * 1e3 << " ms (1 thread: "
              << one.wall_seconds * 1e3 << " ms, speedup = "
              << one.wall_seconds / std::max(par.wall_seconds, 1e-12) << "x)\n  busy =";
    for (double busy : par.busy_seconds) std::cout << " " << busy * 1e3 << "ms";
    std::cout << "\n  measured lambda = " << par.measured_imbalance()
              << " (analytic lambda = " << m.report().lambda << ")\n"
              << "  max |L_par - L_seq| = " << err << "\n";
  }
  return 0;
}
