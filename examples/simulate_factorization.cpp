// Domain example: predict parallel factorization time for a machine.
//
// Takes a problem, a processor count, and a machine model (compute cost,
// message latency, per-element cost), runs the event-driven simulation of
// both mappings, and prints predicted makespan, efficiency, message
// counts, and per-processor utilization.
//
// Usage: ./simulate_factorization [problem] [nprocs] [latency] [per_elem]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "metrics/work.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace spf;
  const std::string name = argc > 1 ? argv[1] : "LAP30";
  const index_t nprocs = argc > 2 ? static_cast<index_t>(std::atoi(argv[2])) : 16;
  SimParams params;
  params.msg_latency = argc > 3 ? std::atof(argv[3]) : 20.0;
  params.msg_per_elem = argc > 4 ? std::atof(argv[4]) : 2.0;

  const auto ctx = make_problem_context(name);
  const count_t wtot = ctx.pipeline.wrap_mapping(1).report().total_work;
  std::cout << "simulating " << name << " on " << nprocs
            << " processors (latency = " << params.msg_latency
            << ", per-element cost = " << params.msg_per_elem
            << ", sequential work = " << wtot << ")\n\n";

  Table t({"mapping", "makespan", "speedup", "efficiency", "messages", "volume"});
  auto row = [&](const std::string& label, const Mapping& m) {
    const SimResult r = m.simulate(params);
    t.add_row({label, Table::fixed(r.makespan, 0),
               Table::fixed(static_cast<double>(wtot) / r.makespan, 2),
               Table::fixed(r.efficiency, 3), Table::num(r.messages),
               Table::num(r.volume)});
  };
  row("wrap", ctx.pipeline.wrap_mapping(nprocs));
  for (index_t g : {4, 25}) {
    row("block g=" + std::to_string(g),
        ctx.pipeline.block_mapping(PartitionOptions::with_grain(g, 4), nprocs));
  }
  t.print(std::cout);

  std::cout << "\nper-processor busy time (block g=25):\n";
  const Mapping m = ctx.pipeline.block_mapping(PartitionOptions::with_grain(25, 4), nprocs);
  const SimResult r = m.simulate(params);
  for (index_t pr = 0; pr < nprocs; ++pr) {
    const double frac = r.busy[static_cast<std::size_t>(pr)] / r.makespan;
    std::cout << "  p" << pr << " ";
    const int bars = static_cast<int>(frac * 50);
    for (int i = 0; i < bars; ++i) std::cout << '#';
    std::cout << " " << Table::fixed(100.0 * frac, 1) << "%\n";
  }
  std::cout << "\nNote: the paper's Tables 2-5 deliberately exclude dependency\n"
            << "delays; this simulator adds them, closing the loop on the paper's\n"
            << "claim that block mapping wins when communication is expensive.\n";
  return 0;
}
