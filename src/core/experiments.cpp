#include "core/experiments.hpp"

namespace spf {

namespace {

// Values transcribed from the paper (ICASE Report 91-80).  The 32-processor
// BUS mean for g=25 is printed as 103 in the report although the total is
// 1649 (1649/32 = 51); we keep the printed value and note the discrepancy
// in EXPERIMENTS.md.
constexpr PaperBlockComm kTable2[] = {
    {"BUS1138", 4, 1335, 1194, 334, 298},
    {"BUS1138", 16, 1818, 1567, 114, 98},
    {"BUS1138", 32, 1910, 1649, 60, 103},
    {"CANN1072", 4, 47545, 40716, 11886, 10179},
    {"CANN1072", 16, 138453, 80334, 8653, 5021},
    {"CANN1072", 32, 171965, 89042, 5374, 2783},
    {"DWT512", 4, 5336, 3768, 1334, 942},
    {"DWT512", 16, 10328, 5482, 645, 342},
    {"DWT512", 32, 11305, 5950, 353, 185},
    {"LAP30", 4, 38424, 29382, 9606, 7346},
    {"LAP30", 16, 100012, 44738, 6251, 2796},
    {"LAP30", 32, 113717, 48863, 3554, 1527},
    {"LSHP1009", 4, 42044, 29899, 10511, 7475},
    {"LSHP1009", 16, 106973, 57773, 6686, 3611},
    {"LSHP1009", 32, 127612, 60243, 3988, 1883},
};

constexpr PaperBlockWork kTable3[] = {
    {"BUS1138", 4, 2791, 0.77, 0.8},
    {"BUS1138", 16, 698, 3.59, 3.59},
    {"BUS1138", 32, 349, 6.3, 6.3},
    {"CANN1072", 4, 151460, 0.07, 0.122},
    {"CANN1072", 16, 37865, 0.13, 0.62},
    {"CANN1072", 32, 18932, 0.38, 1.26},
    {"DWT512", 4, 11701, 0.17, 0.18},
    {"DWT512", 16, 2925, 1.14, 1.37},
    {"DWT512", 32, 1462, 1.48, 3.67},
    {"LAP30", 4, 108644, 0.12, 0.16},
    {"LAP30", 16, 27161, 0.13, 1.13},
    {"LAP30", 32, 13581, 0.48, 2.9},
    {"LSHP1009", 4, 125392, 0.06, 0.24},
    {"LSHP1009", 16, 31348, 0.25, 0.74},
    {"LSHP1009", 32, 15674, 0.24, 2.04},
};

constexpr PaperWidthRow kTable4[] = {
    {2, 4, 38936, 9734, 108644, 0.03},
    {2, 16, 96235, 6015, 27161, 0.167},
    {2, 32, 111519, 3485, 13580, 0.54},
    {4, 4, 38424, 9606, 108644, 0.12},
    {4, 16, 100012, 6251, 27161, 0.13},
    {4, 32, 113717, 3554, 13580, 0.48},
    {8, 4, 32569, 8142, 108644, 0.62},
    {8, 16, 88408, 5526, 27161, 1.35},
    {8, 32, 101725, 3179, 13580, 2.3},
};

constexpr PaperWrapRow kTable5[] = {
    {"BUS1138", 1, 0, 0, 11164, 0.0},
    {"BUS1138", 4, 2485, 621, 2791, 0.02},
    {"BUS1138", 16, 3705, 231, 698, 0.12},
    {"BUS1138", 32, 3832, 120, 349, 0.35},
    {"CANN1072", 1, 0, 0, 605840, 0.0},
    {"CANN1072", 4, 52363, 13090, 151460, 0.01},
    {"CANN1072", 16, 171764, 10735, 37865, 0.05},
    {"CANN1072", 32, 239646, 7489, 18932, 0.14},
    {"DWT512", 1, 0, 0, 46804, 0.0},
    {"DWT512", 4, 7599, 1900, 11701, 0.02},
    {"DWT512", 16, 17867, 1117, 2925, 0.26},
    {"DWT512", 32, 20990, 656, 1462, 0.32},
    {"LAP30", 1, 0, 0, 434577, 0.0},
    {"LAP30", 4, 42663, 10665, 108644, 0.01},
    {"LAP30", 16, 133720, 8357, 27161, 0.06},
    {"LAP30", 32, 177625, 5551, 13580, 0.11},
    {"LSHP1009", 1, 0, 0, 501570, 0.0},
    {"LSHP1009", 4, 46347, 11586, 125392, 0.01},
    {"LSHP1009", 16, 146322, 9145, 31348, 0.09},
    {"LSHP1009", 32, 192977, 6031, 15674, 0.24},
};

}  // namespace

std::span<const PaperBlockComm> paper_table2() { return kTable2; }
std::span<const PaperBlockWork> paper_table3() { return kTable3; }
std::span<const PaperWidthRow> paper_table4() { return kTable4; }
std::span<const PaperWrapRow> paper_table5() { return kTable5; }

std::vector<ProblemContext> make_problem_contexts(OrderingKind ordering) {
  std::vector<ProblemContext> out;
  for (TestProblem& p : harwell_boeing_stand_ins()) {
    Pipeline pipe(p.lower, ordering);
    out.push_back({std::move(p), std::move(pipe)});
  }
  return out;
}

ProblemContext make_problem_context(const std::string& name, OrderingKind ordering) {
  TestProblem p = stand_in(name);
  Pipeline pipe(p.lower, ordering);
  return {std::move(p), std::move(pipe)};
}

}  // namespace spf
