// Shared experiment harness: the paper's published table values plus
// helpers the bench binaries use to print paper-vs-measured tables.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "gen/suite.hpp"

namespace spf {

/// Paper Table 2 (block mapping communication) rows.
struct PaperBlockComm {
  const char* name;
  index_t nprocs;
  count_t total_g4, total_g25;
  count_t mean_g4, mean_g25;
};

/// Paper Table 3 (block mapping work distribution) rows.
struct PaperBlockWork {
  const char* name;
  index_t nprocs;
  count_t mean_work;
  double lambda_g4, lambda_g25;
};

/// Paper Table 4 (LAP30 cluster-width sweep, g = 4) rows.
struct PaperWidthRow {
  index_t width;
  index_t nprocs;
  count_t comm_total, comm_mean;
  count_t work_mean;
  double lambda;
};

/// Paper Table 5 (wrap mapping) rows.
struct PaperWrapRow {
  const char* name;
  index_t nprocs;
  count_t comm_total, comm_mean;
  count_t work_mean;
  double lambda;
};

std::span<const PaperBlockComm> paper_table2();
std::span<const PaperBlockWork> paper_table3();
std::span<const PaperWidthRow> paper_table4();
std::span<const PaperWrapRow> paper_table5();

/// The processor counts the paper sweeps.
inline constexpr index_t kPaperProcs[] = {4, 16, 32};
/// The grain sizes of Tables 2-3.
inline constexpr index_t kPaperGrains[] = {4, 25};
/// The cluster widths of Table 4.
inline constexpr index_t kPaperWidths[] = {2, 4, 8};

/// One test problem with its analysis pipeline (MMD-ordered, as in the
/// paper) built once and shared across processor counts.
struct ProblemContext {
  TestProblem problem;
  Pipeline pipeline;
};

/// Build contexts for all five problems (expensive: runs MMD + symbolic
/// factorization per problem).
std::vector<ProblemContext> make_problem_contexts(OrderingKind ordering = OrderingKind::kMmd);

/// Build the context for a single named problem.
ProblemContext make_problem_context(const std::string& name,
                                    OrderingKind ordering = OrderingKind::kMmd);

}  // namespace spf
