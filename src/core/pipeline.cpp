#include "core/pipeline.hpp"

#include <chrono>
#include <utility>

#include "core/plan.hpp"
#include "schedule/block_scheduler.hpp"
#include "schedule/wrap.hpp"
#include "support/check.hpp"

namespace spf {

std::string to_string(MappingScheme scheme) {
  switch (scheme) {
    case MappingScheme::kBlock:
      return "block";
    case MappingScheme::kBlockAdaptive:
      return "block-adaptive";
    case MappingScheme::kWrap:
      return "wrap";
  }
  return "?";
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Run `f`, adding its wall time to `acc`; returns f's result (lets the
/// constructor time phases that live in the member-initializer list).
template <typename F>
auto timed(double& acc, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  auto r = f();
  acc += seconds_since(t0);
  return r;
}

Mapping build_block_or_wrap(const SymbolicFactor& sf, MappingScheme scheme,
                            const PartitionOptions& opt, index_t nprocs,
                            PlanTimings* timings, const ScheduleSpec& spec) {
  Mapping m;
  auto t0 = std::chrono::steady_clock::now();
  m.partition =
      scheme == MappingScheme::kWrap ? column_partition(sf) : partition_factor(sf, opt);
  m.deps = block_dependencies(m.partition);
  m.blk_work = block_work(m.partition);
  if (timings) timings->partition_seconds += seconds_since(t0);
  t0 = std::chrono::steady_clock::now();
  if (spec.scheduler != SchedulerKind::kDefault) {
    m.assignment = list_schedule(m.deps, m.blk_work, nprocs, {spec.scheduler, spec.cost});
  } else {
    // The paper's heuristics, bitwise-unchanged (the cost model does not
    // enter: they are the uniform baseline).
    m.assignment = scheme == MappingScheme::kWrap
                       ? wrap_schedule(m.partition, nprocs)
                       : block_schedule(m.partition, m.deps, m.blk_work, nprocs);
  }
  m.cost = spec.cost;
  if (timings) timings->schedule_seconds += seconds_since(t0);
  return m;
}

/// The paper's Section 3.2(a) adaptive triangle constraint: a first pass
/// maps with the grain alone, then each cluster's triangle is
/// re-partitioned into at most as many units as there are distinct
/// processors among its predecessors, and the result is rescheduled —
/// confining each triangle's communication to the processor group that
/// produced its inputs.
Mapping build_block_adaptive(const SymbolicFactor& sf, const PartitionOptions& opt,
                             index_t nprocs, PlanTimings* timings,
                             const ScheduleSpec& spec) {
  const Mapping first =
      build_block_or_wrap(sf, MappingScheme::kBlock, opt, nprocs, timings, spec);
  // Distinct predecessor processors per cluster triangle.
  PartitionOptions capped = opt;
  capped.triangle_unit_caps.assign(first.partition.clusters.clusters.size(), 0);
  std::vector<index_t> stamp(static_cast<std::size_t>(nprocs), -1);
  for (std::size_t ci = 0; ci < first.partition.layout.size(); ++ci) {
    const ClusterBlocks& lay = first.partition.layout[ci];
    if (lay.triangle_units.empty()) continue;
    index_t count = 0;
    for (index_t b : lay.triangle_units) {
      for (index_t pred : first.deps.preds[static_cast<std::size_t>(b)]) {
        const index_t pp = first.assignment.proc(pred);
        if (stamp[static_cast<std::size_t>(pp)] != static_cast<index_t>(ci)) {
          stamp[static_cast<std::size_t>(pp)] = static_cast<index_t>(ci);
          ++count;
        }
      }
    }
    // No predecessors (independent cluster): leave uncapped (0) — the
    // grain alone governs, as in the paper's fixed-size experiments.
    capped.triangle_unit_caps[ci] = count;
  }
  return build_block_or_wrap(sf, MappingScheme::kBlock, capped, nprocs, timings, spec);
}

}  // namespace

Mapping build_mapping(const SymbolicFactor& sf, MappingScheme scheme,
                      const PartitionOptions& opt, index_t nprocs,
                      PlanTimings* timings, const ScheduleSpec& spec) {
  if (scheme == MappingScheme::kBlockAdaptive) {
    return build_block_adaptive(sf, opt, nprocs, timings, spec);
  }
  return build_block_or_wrap(sf, scheme, opt, nprocs, timings, spec);
}

Pipeline::Pipeline(const CscMatrix& lower, OrderingKind ordering)
    : Pipeline(CscMatrix(lower), ordering) {}

void PipelineTimings::record_to(obs::MetricsRegistry& reg) const {
  reg.sum("pipeline.ordering_seconds").add(ordering_seconds);
  reg.sum("pipeline.permute_seconds").add(permute_seconds);
  reg.sum("pipeline.symbolic_seconds").add(symbolic_seconds);
}

Pipeline::Pipeline(CscMatrix&& lower, OrderingKind ordering)
    : ordering_(ordering),
      original_(std::move(lower)),
      perm_(timed(timings_.ordering_seconds,
                  [&] { return compute_ordering(original_, ordering); })),
      permuted_(timed(timings_.permute_seconds,
                      [&] { return permute_lower(original_, perm_.iperm()); })),
      symbolic_(timed(timings_.symbolic_seconds,
                      [&] { return symbolic_cholesky(permuted_); })) {}

Pipeline::Pipeline(const Plan& plan, CscMatrix lower)
    : ordering_(plan.config.ordering),
      original_(std::move(lower)),
      perm_(plan.perm),
      permuted_(timed(timings_.permute_seconds,
                      [&] { return plan.permuted_input(original_.values()); })),
      symbolic_(plan.symbolic) {
  SPF_REQUIRE(original_.ncols() == plan.n && original_.nrows() == plan.n,
              "plan was built for a different matrix order");
  SPF_REQUIRE(original_.nnz() == static_cast<count_t>(plan.value_gather.size()),
              "plan was built for a different sparsity pattern");
}

Mapping Pipeline::block_mapping(const PartitionOptions& opt, index_t nprocs) const {
  return build_mapping(symbolic_, MappingScheme::kBlock, opt, nprocs);
}

Mapping Pipeline::block_mapping_adaptive(const PartitionOptions& opt,
                                         index_t nprocs) const {
  return build_mapping(symbolic_, MappingScheme::kBlockAdaptive, opt, nprocs);
}

Mapping Pipeline::wrap_mapping(index_t nprocs) const {
  return build_mapping(symbolic_, MappingScheme::kWrap, {}, nprocs);
}

Mapping Pipeline::mapping(MappingScheme scheme, const PartitionOptions& opt,
                          index_t nprocs, const ScheduleSpec& spec) const {
  return build_mapping(symbolic_, scheme, opt, nprocs, nullptr, spec);
}

}  // namespace spf
