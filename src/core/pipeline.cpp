#include "core/pipeline.hpp"

#include "schedule/block_scheduler.hpp"
#include "schedule/wrap.hpp"

namespace spf {

Pipeline::Pipeline(const CscMatrix& lower, OrderingKind ordering)
    : perm_(compute_ordering(lower, ordering)),
      permuted_(permute_lower(lower, perm_.iperm())),
      symbolic_(symbolic_cholesky(permuted_)) {}

Mapping Pipeline::block_mapping(const PartitionOptions& opt, index_t nprocs) const {
  Mapping m;
  m.partition = partition_factor(symbolic_, opt);
  m.deps = block_dependencies(m.partition);
  m.blk_work = block_work(m.partition);
  m.assignment = block_schedule(m.partition, m.deps, m.blk_work, nprocs);
  return m;
}

Mapping Pipeline::block_mapping_adaptive(const PartitionOptions& opt,
                                         index_t nprocs) const {
  const Mapping first = block_mapping(opt, nprocs);
  // Distinct predecessor processors per cluster triangle.
  PartitionOptions capped = opt;
  capped.triangle_unit_caps.assign(first.partition.clusters.clusters.size(), 0);
  std::vector<index_t> stamp(static_cast<std::size_t>(nprocs), -1);
  for (std::size_t ci = 0; ci < first.partition.layout.size(); ++ci) {
    const ClusterBlocks& lay = first.partition.layout[ci];
    if (lay.triangle_units.empty()) continue;
    index_t count = 0;
    for (index_t b : lay.triangle_units) {
      for (index_t pred : first.deps.preds[static_cast<std::size_t>(b)]) {
        const index_t pp = first.assignment.proc(pred);
        if (stamp[static_cast<std::size_t>(pp)] != static_cast<index_t>(ci)) {
          stamp[static_cast<std::size_t>(pp)] = static_cast<index_t>(ci);
          ++count;
        }
      }
    }
    // No predecessors (independent cluster): leave uncapped (0) — the
    // grain alone governs, as in the paper's fixed-size experiments.
    capped.triangle_unit_caps[ci] = count;
  }
  return block_mapping(capped, nprocs);
}

Mapping Pipeline::wrap_mapping(index_t nprocs) const {
  Mapping m;
  m.partition = column_partition(symbolic_);
  m.deps = block_dependencies(m.partition);
  m.blk_work = block_work(m.partition);
  m.assignment = wrap_schedule(m.partition, nprocs);
  return m;
}

}  // namespace spf
