// Pipeline facade: the library's primary entry point.
//
// Wraps the paper's full flow — ordering, symbolic factorization, block (or
// wrap) partitioning, scheduling, and metric evaluation — behind a small
// API.  Construct once per matrix; each mapping call is independent.
#pragma once

#include <memory>
#include <string>

#include "exec/parallel_cholesky.hpp"
#include "matrix/csc.hpp"
#include "metrics/report.hpp"
#include "obs/metrics.hpp"
#include "order/ordering.hpp"
#include "order/permutation.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "sched/cost_model.hpp"
#include "sched/list_scheduler.hpp"
#include "schedule/assignment.hpp"
#include "sim/desim.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

struct Plan;  // core/plan.hpp

/// Which of the paper's mapping strategies to materialize.
enum class MappingScheme {
  kBlock,          ///< block partition + locality-preserving allocator
  kBlockAdaptive,  ///< block with the Section 3.2(a) triangle cap
  kWrap,           ///< wrap-mapped column baseline
};

/// Human-readable name ("block", "block-adaptive", "wrap").
std::string to_string(MappingScheme scheme);

/// How to build the processor assignment on top of a partition.  kDefault
/// runs the scheme's own heuristic (the paper's block allocator or wrap)
/// bitwise-unchanged; kCp/kAlap replace it with the priority-list scheduler
/// (sched/list_scheduler.hpp) under the cost model.
struct ScheduleSpec {
  SchedulerKind scheduler = SchedulerKind::kDefault;
  CostModel cost;  ///< uniform when empty

  [[nodiscard]] bool is_default() const {
    return scheduler == SchedulerKind::kDefault && cost.uniform();
  }
};

/// A fully materialized mapping: partition + dependency DAG + assignment,
/// plus the per-block work used by both the scheduler and the metrics.
struct Mapping {
  Partition partition;
  BlockDeps deps;
  std::vector<count_t> blk_work;
  Assignment assignment;
  /// Cost model the assignment was built under (uniform for block/wrap).
  CostModel cost;

  /// Full report including the makespan lower bound and
  /// schedule_efficiency (the deps/cost overload of evaluate_mapping).
  [[nodiscard]] MappingReport report() const {
    return evaluate_mapping(partition, assignment, blk_work, &deps, &cost);
  }

  /// Run the event-driven execution simulation on this mapping.  The
  /// mapping's cost model supplies per-processor speeds unless `params`
  /// already carries its own.
  [[nodiscard]] SimResult simulate(const SimParams& params) const {
    SimParams p = params;
    if (p.proc_speeds.empty()) p.proc_speeds = cost.speeds;
    return simulate_execution(partition, deps, edge_volumes(partition, deps), blk_work,
                              assignment, p);
  }

  /// Execute the mapping's numeric factorization on real threads (the
  /// shared-memory analogue of simulate(): each worker plays one paper
  /// processor).  `lower` must be the pipeline's permuted matrix;
  /// `nthreads` 0 uses one thread per processor.  `kernel` selects the
  /// per-block numeric path (kBlocked compiles a kernel plan on entry; to
  /// replay a precompiled one, call parallel_cholesky directly).
  [[nodiscard]] ParallelExecResult execute_parallel(
      const CscMatrix& lower, index_t nthreads = 0, bool allow_stealing = true,
      ExecKernel kernel = ExecKernel::kElementwise) const {
    return parallel_cholesky(lower, partition, deps, blk_work, assignment,
                             {nthreads, allow_stealing, kernel});
  }

  /// Same, with the full option set (observer, precomputed symbolic
  /// artifacts, …).
  [[nodiscard]] ParallelExecResult execute_parallel(
      const CscMatrix& lower, const ParallelExecOptions& opt) const {
    return parallel_cholesky(lower, partition, deps, blk_work, assignment, opt);
  }
};

/// Build a mapping from an existing symbolic factor — the partition /
/// dependency / schedule stages shared by Pipeline and plan construction.
/// `timings`, when given, accumulates partition and schedule seconds.
[[nodiscard]] Mapping build_mapping(const SymbolicFactor& sf, MappingScheme scheme,
                                    const PartitionOptions& opt, index_t nprocs,
                                    struct PlanTimings* timings = nullptr,
                                    const ScheduleSpec& spec = {});

/// Wall seconds of the Pipeline constructor's phases (paper steps 1-2).
struct PipelineTimings {
  double ordering_seconds = 0.0;
  double permute_seconds = 0.0;
  double symbolic_seconds = 0.0;

  /// Accumulate into `reg` as "pipeline.*" sums.
  void record_to(obs::MetricsRegistry& reg) const;
};

class Pipeline {
 public:
  /// Order and symbolically factor the matrix (paper steps 1-2).
  Pipeline(const CscMatrix& lower, OrderingKind ordering);

  /// Same, taking ownership of the matrix — avoids the full input-matrix
  /// copy the const& overload makes to retain the original (use this when
  /// the caller constructs a matrix per request and hands it off).
  Pipeline(CscMatrix&& lower, OrderingKind ordering);

  /// Accept a previously computed Plan: adopts its permutation and
  /// symbolic factor and rebuilds the permuted matrix with the plan's
  /// gather map — no ordering or symbolic factorization work.  `lower`
  /// must have the pattern the plan was built for (values may differ or
  /// be absent).
  Pipeline(const Plan& plan, CscMatrix lower);

  [[nodiscard]] OrderingKind ordering() const { return ordering_; }
  /// The input matrix (lower triangle, original ordering).
  [[nodiscard]] const CscMatrix& original_matrix() const { return original_; }
  [[nodiscard]] const Permutation& permutation() const { return perm_; }
  [[nodiscard]] const CscMatrix& permuted_matrix() const { return permuted_; }
  [[nodiscard]] const SymbolicFactor& symbolic() const { return symbolic_; }
  /// Per-phase wall seconds of this pipeline's construction (zero for the
  /// phases a Plan-adopting construction skipped).
  [[nodiscard]] const PipelineTimings& timings() const { return timings_; }

  /// Block mapping (paper Section 3) on `nprocs` processors.
  [[nodiscard]] Mapping block_mapping(const PartitionOptions& opt, index_t nprocs) const;

  /// Block mapping with the paper's adaptive triangle constraint (Section
  /// 3.2 parameter (a)): a first pass maps with the grain alone, then each
  /// cluster's triangle is re-partitioned into at most as many units as
  /// there are distinct processors among its predecessors, and the result
  /// is rescheduled — confining each triangle's communication to the
  /// processor group that produced its inputs.
  [[nodiscard]] Mapping block_mapping_adaptive(const PartitionOptions& opt,
                                               index_t nprocs) const;

  /// Wrap-mapped column baseline on `nprocs` processors.
  [[nodiscard]] Mapping wrap_mapping(index_t nprocs) const;

  /// Any scheme by enum (delegates to the methods above).  `spec` swaps in
  /// a list scheduler / cost model; the default keeps the scheme's own
  /// heuristic.
  [[nodiscard]] Mapping mapping(MappingScheme scheme, const PartitionOptions& opt,
                                index_t nprocs, const ScheduleSpec& spec = {}) const;

  /// Emit the reusable static analysis for `scheme`: this pipeline's
  /// ordering and symbolic factor plus a freshly built mapping and the
  /// permuted-input gather map (see core/plan.hpp).
  [[nodiscard]] Plan make_plan(MappingScheme scheme, const PartitionOptions& opt,
                               index_t nprocs, const ScheduleSpec& spec = {}) const;

 private:
  OrderingKind ordering_ = OrderingKind::kNatural;
  PipelineTimings timings_;  ///< declared before the members it times
  CscMatrix original_;
  Permutation perm_;
  CscMatrix permuted_;
  SymbolicFactor symbolic_;
};

}  // namespace spf
