#include "core/plan.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/check.hpp"

namespace spf {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Permute the input structure like permute_lower, but record, for every
/// slot of the permuted matrix, which original slot its value comes from.
/// Fills plan.in_col_ptr / in_row_ind / value_gather.
void build_permuted_structure(const CscMatrix& lower, const Permutation& perm,
                              Plan& plan) {
  const index_t n = lower.ncols();
  const auto iperm = perm.iperm();
  const auto nnz = static_cast<std::size_t>(lower.nnz());
  plan.n = n;

  // Count entries per permuted column.
  std::vector<count_t> counts(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    const index_t b = iperm[static_cast<std::size_t>(j)];
    for (index_t i : lower.col_rows(j)) {
      const index_t a = iperm[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(std::min(a, b))];
    }
  }
  plan.in_col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t c = 0; c < n; ++c) {
    plan.in_col_ptr[static_cast<std::size_t>(c) + 1] =
        plan.in_col_ptr[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];
  }

  // Scatter (row, source slot) pairs, then sort each column by row.
  std::vector<std::pair<index_t, count_t>> entries(nnz);
  std::vector<count_t> next(plan.in_col_ptr.begin(), plan.in_col_ptr.end() - 1);
  for (index_t j = 0; j < n; ++j) {
    const index_t b = iperm[static_cast<std::size_t>(j)];
    const auto rows = lower.col_rows(j);
    const count_t base = lower.col_ptr()[static_cast<std::size_t>(j)];
    for (std::size_t t = 0; t < rows.size(); ++t) {
      const index_t a = iperm[static_cast<std::size_t>(rows[t])];
      const index_t c = std::min(a, b);
      const index_t r = std::max(a, b);
      entries[static_cast<std::size_t>(next[static_cast<std::size_t>(c)]++)] = {
          r, base + static_cast<count_t>(t)};
    }
  }
  for (index_t c = 0; c < n; ++c) {
    std::sort(entries.begin() + plan.in_col_ptr[static_cast<std::size_t>(c)],
              entries.begin() + plan.in_col_ptr[static_cast<std::size_t>(c) + 1]);
  }
  plan.in_row_ind.resize(nnz);
  plan.value_gather.resize(nnz);
  for (std::size_t s = 0; s < nnz; ++s) {
    plan.in_row_ind[s] = entries[s].first;
    plan.value_gather[s] = entries[s].second;
  }
}

/// Final plan stage: the row structure and the compiled block kernels,
/// both pure functions of (mapping, permuted input pattern).
void build_kernels(Plan& plan, PlanTimings* timings) {
  const auto t0 = std::chrono::steady_clock::now();
  plan.rows_of = build_row_structure(plan.mapping.partition.factor);
  plan.kernels = compile_kernel_plan(plan.mapping.partition, plan.in_col_ptr,
                                     plan.in_row_ind, plan.rows_of);
  if (timings) timings->kernel_seconds += seconds_since(t0);
}

}  // namespace

CscMatrix Plan::permuted_input(std::span<const double> original_values) const {
  std::vector<double> vals;
  if (!original_values.empty()) {
    SPF_REQUIRE(original_values.size() == value_gather.size(),
                "value array does not match the plan's pattern");
    vals.resize(value_gather.size());
    for (std::size_t s = 0; s < value_gather.size(); ++s) {
      vals[s] = original_values[static_cast<std::size_t>(value_gather[s])];
    }
  }
  return {n, n, in_col_ptr, in_row_ind, std::move(vals)};
}

std::size_t Plan::byte_size() const {
  // Major arrays only; per-object overheads and small vectors are noise
  // next to the O(nnz(L)) structures.
  auto vec_bytes = [](const auto& v) { return v.size() * sizeof(v[0]); };
  std::size_t bytes = sizeof(Plan);
  bytes += vec_bytes(perm.perm()) + vec_bytes(perm.iperm());
  bytes += vec_bytes(symbolic.col_ptr()) + vec_bytes(symbolic.row_ind()) +
           vec_bytes(symbolic.parent());
  const SymbolicFactor& pf = mapping.partition.factor;
  bytes += vec_bytes(pf.col_ptr()) + vec_bytes(pf.row_ind()) + vec_bytes(pf.parent());
  bytes += mapping.partition.blocks.size() * sizeof(UnitBlock);
  bytes += vec_bytes(mapping.blk_work) + vec_bytes(mapping.assignment.proc_of_block);
  for (const auto& p : mapping.deps.preds) bytes += vec_bytes(p);
  for (const auto& s : mapping.deps.succs) bytes += vec_bytes(s);
  for (index_t j = 0; j < mapping.partition.emap.n(); ++j) {
    bytes += mapping.partition.emap.column_segments(j).size() * sizeof(ColumnSegment);
  }
  bytes += vec_bytes(in_col_ptr) + vec_bytes(in_row_ind) + vec_bytes(value_gather);
  bytes += vec_bytes(rows_of.ptr) + vec_bytes(rows_of.cols) + vec_bytes(rows_of.elem);
  bytes += kernels.byte_size();
  return bytes;
}

Plan make_plan(const CscMatrix& lower, const PlanConfig& config, PlanTimings* timings) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "plan needs a square lower triangle");
  Plan plan;
  plan.config = config;

  auto t0 = std::chrono::steady_clock::now();
  plan.perm = compute_ordering(lower, config.ordering);
  if (timings) timings->ordering_seconds += seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  build_permuted_structure(lower, plan.perm, plan);
  plan.symbolic = symbolic_cholesky(plan.permuted_input({}));
  if (timings) timings->symbolic_seconds += seconds_since(t0);

  plan.mapping = build_mapping(plan.symbolic, config.scheme, config.partition,
                               config.nprocs, timings, config.schedule_spec());
  build_kernels(plan, timings);
  return plan;
}

Plan Pipeline::make_plan(MappingScheme scheme, const PartitionOptions& opt,
                         index_t nprocs, const ScheduleSpec& spec) const {
  Plan plan;
  plan.config = {ordering_, scheme, opt, nprocs, spec.scheduler, spec.cost.speeds};
  plan.perm = perm_;
  plan.symbolic = symbolic_;
  plan.mapping = build_mapping(symbolic_, scheme, opt, nprocs, nullptr, spec);
  build_permuted_structure(original_, perm_, plan);
  build_kernels(plan, nullptr);
  return plan;
}

}  // namespace spf
