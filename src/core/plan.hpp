// The solver plan: the paper's static analysis as a reusable artifact.
//
// The paper's whole premise is that the block partition and schedule are a
// *static* analysis, computed once per sparsity pattern and reused across
// numeric factorizations.  A Plan materializes that product — ordering,
// symbolic factor, partition, dependency DAG, per-block work, processor
// assignment — together with the permuted-input structure and a value
// gather map, so a refactorization request with new numeric values can
// skip every analysis stage and go straight to numeric execution.
//
// Plans are immutable once built (the engine shares them across threads
// as shared_ptr<const Plan>) and serializable (io/mapping_io.hpp), so a
// warmed plan cache can persist across processes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "exec/kernel_plan.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

/// Everything that determines a plan given a sparsity pattern.  Two
/// requests with the same pattern and the same PlanConfig share one plan.
struct PlanConfig {
  OrderingKind ordering = OrderingKind::kMmd;
  MappingScheme scheme = MappingScheme::kBlock;
  PartitionOptions partition{};
  index_t nprocs = 16;
  /// Assignment builder on top of the scheme's partition: kDefault keeps
  /// the scheme's own heuristic (bitwise-unchanged); kCp/kAlap run the
  /// priority-list scheduler (sched/list_scheduler.hpp).
  SchedulerKind scheduler = SchedulerKind::kDefault;
  /// Per-processor relative speeds (empty = uniform); see sched/cost_model.
  std::vector<double> proc_speeds;

  [[nodiscard]] ScheduleSpec schedule_spec() const {
    return {scheduler, CostModel{proc_speeds}};
  }
};

/// Wall-clock seconds spent in each analysis stage of a cold plan build.
struct PlanTimings {
  double ordering_seconds = 0.0;
  double symbolic_seconds = 0.0;   ///< permutation + symbolic factorization
  double partition_seconds = 0.0;  ///< partitioning + dependencies + work
  double schedule_seconds = 0.0;
  double kernel_seconds = 0.0;  ///< row structure + kernel-plan compile
};

/// The reusable static analysis for one (pattern, PlanConfig) pair.
struct Plan {
  PlanConfig config;
  Permutation perm;
  /// struct(L) of the permuted pattern, as produced by symbolic_cholesky
  /// (un-amalgamated; mapping.partition.factor may be augmented).
  SymbolicFactor symbolic;
  /// Partition + dependency DAG + per-block work + assignment.
  Mapping mapping;

  /// Structure of the permuted *input* matrix (lower triangle of P·A·Pᵀ)
  /// and the gather map: slot s of the permuted input reads original
  /// value slot value_gather[s].  Lets a warm request rebuild the permuted
  /// numeric matrix with one gather pass — no permutation work.
  index_t n = 0;
  std::vector<count_t> in_col_ptr;
  std::vector<index_t> in_row_ind;
  std::vector<count_t> value_gather;

  /// Row-wise view of mapping.partition.factor, precomputed so warm
  /// executions (either kernel) rebuild no symbolic state.
  RowStructure rows_of;
  /// Compiled block kernels for the blocked executor path, against the
  /// permuted input pattern above.  Warm factorizations replay this with
  /// zero compile work.
  KernelPlan kernels;

  /// Build the permuted input matrix for a new value array (bit-identical
  /// to permute_lower on the matching matrix).  `original_values` may be
  /// empty for a pattern-only rebuild.
  [[nodiscard]] CscMatrix permuted_input(std::span<const double> original_values) const;

  /// Approximate resident size in bytes (major arrays; used by the plan
  /// cache's byte accounting).
  [[nodiscard]] std::size_t byte_size() const;
};

/// Cold-path plan construction: ordering, permutation, symbolic
/// factorization, partitioning, dependencies, scheduling — the full
/// static analysis.  `timings`, when given, receives per-stage seconds.
[[nodiscard]] Plan make_plan(const CscMatrix& lower, const PlanConfig& config,
                             PlanTimings* timings = nullptr);

}  // namespace spf
