#include "dist/dist_cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "support/check.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

namespace {

/// What each block must ship to each processor once it completes: the
/// elements of the block that remote update/scaling operations read,
/// deduplicated per destination processor (the paper's "consolidation").
struct SendPlan {
  /// plan[block]: list of (dst proc, element ids) pairs.
  std::vector<std::vector<std::pair<index_t, std::vector<count_t>>>> plan;
};

SendPlan build_send_plan(const Partition& p, const Assignment& a) {
  const SymbolicFactor& sf = p.factor;
  // Dedup on (dst proc, element).
  std::unordered_set<std::uint64_t> seen;
  const auto nnz = static_cast<std::uint64_t>(sf.nnz());
  // Collect per-block, per-proc element lists.
  std::vector<std::vector<std::pair<index_t, std::vector<count_t>>>> plan(p.blocks.size());
  auto need = [&](index_t dst_proc, count_t element, index_t src_block) {
    if (a.proc(src_block) == dst_proc) return;
    const std::uint64_t key =
        static_cast<std::uint64_t>(dst_proc) * nnz + static_cast<std::uint64_t>(element);
    if (!seen.insert(key).second) return;
    auto& lists = plan[static_cast<std::size_t>(src_block)];
    for (auto& [proc, ids] : lists) {
      if (proc == dst_proc) {
        ids.push_back(element);
        return;
      }
    }
    lists.emplace_back(dst_proc, std::vector<count_t>{element});
  };

  std::vector<index_t> src_blk;
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
    src_blk.resize(sd.size());
    {
      auto segs = p.emap.column_segments(k);
      std::size_t pos = 0;
      for (std::size_t t = 0; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        src_blk[t] = segs[pos].block;
      }
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      auto segs = p.emap.column_segments(sd[b]);
      std::size_t pos = 0;
      for (std::size_t t = b; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        const index_t target_proc = a.proc(segs[pos].block);
        need(target_proc, kbase + 1 + static_cast<count_t>(t), src_blk[t]);
        need(target_proc, kbase + 1 + static_cast<count_t>(b), src_blk[b]);
      }
    }
  }
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    const count_t diag_id = sf.col_ptr()[static_cast<std::size_t>(j)];
    const index_t diag_block = segs.front().block;
    for (const ColumnSegment& s : segs) {
      need(a.proc(s.block), diag_id, diag_block);
    }
  }
  return {std::move(plan)};
}

}  // namespace

DistResult distributed_cholesky(const CscMatrix& lower, const Partition& partition,
                                const BlockDeps& deps, const Assignment& assignment) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");
  SPF_REQUIRE(deps.preds.size() == partition.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");

  const index_t nb = partition.num_blocks();
  // Block ids follow the paper's *allocation* order, which is not
  // topological (a unit triangle is updated by the in-triangle rectangles
  // on its left, which carry higher ids).  Compute a deterministic
  // topological order (Kahn, lowest id first) for execution.
  std::vector<index_t> topo;
  topo.reserve(static_cast<std::size_t>(nb));
  {
    std::vector<index_t> indeg(static_cast<std::size_t>(nb), 0);
    for (index_t b = 0; b < nb; ++b) {
      indeg[static_cast<std::size_t>(b)] =
          static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size());
    }
    // Min-heap on block id keeps the order deterministic and close to the
    // left-to-right elimination order.
    std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready;
    for (index_t b = 0; b < nb; ++b) {
      if (indeg[static_cast<std::size_t>(b)] == 0) ready.push(b);
    }
    while (!ready.empty()) {
      const index_t b = ready.top();
      ready.pop();
      topo.push_back(b);
      for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
      }
    }
    SPF_CHECK(static_cast<index_t>(topo.size()) == nb, "dependency DAG has a cycle");
  }

  const RowStructure rows_of = build_row_structure(sf);
  const SendPlan send_plan = build_send_plan(partition, assignment);

  // Cross-processor predecessor counts per block.
  std::vector<index_t> cross_preds(static_cast<std::size_t>(nb), 0);
  for (index_t b = 0; b < nb; ++b) {
    for (index_t pred : deps.preds[static_cast<std::size_t>(b)]) {
      if (assignment.proc(pred) != assignment.proc(b)) {
        ++cross_preds[static_cast<std::size_t>(b)];
      }
    }
  }
  // Local successor lists per block, per owner of the successor.
  // succs_on_proc[b] = successors of b grouped implicitly: the receiver
  // scans succs and keeps its own.
  DistResult result;
  result.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);
  double* const out_values = result.values.data();

  Machine machine(assignment.nprocs);
  result.stats = machine.run([&](MsgContext& ctx) {
    const index_t me = ctx.rank();
    // Local value store: all factor elements, filled as they are computed
    // or received.
    std::vector<double> vals(static_cast<std::size_t>(sf.nnz()), 0.0);
    std::vector<index_t> pending(cross_preds);

    auto absorb = [&](const MachineMessage& msg) {
      for (std::size_t t = 0; t < msg.ids.size(); ++t) {
        vals[static_cast<std::size_t>(msg.ids[t])] = msg.values[t];
      }
      // One message per completed remote block: release local successors.
      const index_t pred = static_cast<index_t>(msg.tag);
      for (index_t s : deps.succs[static_cast<std::size_t>(pred)]) {
        if (assignment.proc(s) == me) --pending[static_cast<std::size_t>(s)];
      }
    };

    for (index_t b : topo) {
      if (assignment.proc(b) != me) continue;
      while (pending[static_cast<std::size_t>(b)] > 0) absorb(ctx.recv_any());

      // ---- Compute block b, column by column. ----
      const UnitBlock& blk = partition.blocks[static_cast<std::size_t>(b)];
      for (index_t j = blk.cols.lo; j <= blk.cols.hi; ++j) {
        const auto jrows = sf.col_rows(j);
        const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
        const count_t diag_id = jbase;
        // Target rows of this block within column j.
        const auto lo_it = std::lower_bound(jrows.begin(), jrows.end(),
                                            std::max(j, blk.rows.lo));
        for (auto it = lo_it; it != jrows.end() && *it <= blk.rows.hi; ++it) {
          const index_t i = *it;
          double v = lower.at(i, j);
          // Updates: pairs (i,k), (j,k) over the row structure of j.
          const auto rlo = static_cast<std::size_t>(rows_of.ptr[static_cast<std::size_t>(j)]);
          const auto rhi =
              static_cast<std::size_t>(rows_of.ptr[static_cast<std::size_t>(j) + 1]);
          for (std::size_t t = rlo; t < rhi; ++t) {
            const index_t k = rows_of.cols[t];
            // (i, k) may be absent; binary search column k's structure.
            const auto krows = sf.col_rows(k);
            const auto kit = std::lower_bound(krows.begin(), krows.end(), i);
            if (kit == krows.end() || *kit != i) continue;
            const count_t eik = sf.col_ptr()[static_cast<std::size_t>(k)] +
                                (kit - krows.begin());
            v -= vals[static_cast<std::size_t>(eik)] *
                 vals[static_cast<std::size_t>(rows_of.elem[t])];
          }
          if (i == j) {
            SPF_REQUIRE(v > 0.0, "matrix is not positive definite (non-positive pivot)");
            v = std::sqrt(v);
          } else {
            v /= vals[static_cast<std::size_t>(diag_id)];
          }
          const count_t eij = jbase + (it - jrows.begin());
          vals[static_cast<std::size_t>(eij)] = v;
          out_values[static_cast<std::size_t>(eij)] = v;  // disjoint across ranks
        }
      }

      // ---- Ship finished elements (consolidated per destination). ----
      for (const auto& [dst, ids] : send_plan.plan[static_cast<std::size_t>(b)]) {
        std::vector<double> payload(ids.size());
        for (std::size_t t = 0; t < ids.size(); ++t) {
          payload[t] = vals[static_cast<std::size_t>(ids[t])];
        }
        ctx.send(dst, static_cast<int>(b), ids, std::move(payload));
      }
      // Predecessor release must reach every processor with a successor of
      // b, even those whose needed elements were all shipped earlier by
      // other blocks: send an empty release message to such processors.
      std::vector<char> notified(static_cast<std::size_t>(assignment.nprocs), 0);
      notified[static_cast<std::size_t>(me)] = 1;
      for (const auto& [dst, ids] : send_plan.plan[static_cast<std::size_t>(b)]) {
        notified[static_cast<std::size_t>(dst)] = 1;
      }
      for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
        const index_t sp = assignment.proc(s);
        if (!notified[static_cast<std::size_t>(sp)]) {
          notified[static_cast<std::size_t>(sp)] = 1;
          ctx.send(sp, static_cast<int>(b), {}, {});
        }
      }
    }
    // Drain any remaining releases addressed to this rank (a peer may
    // complete blocks after our last owned block finished).
    while (ctx.probe()) absorb(ctx.recv_any());
  });
  return result;
}

}  // namespace spf
