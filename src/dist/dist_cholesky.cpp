#include "dist/dist_cholesky.hpp"

#include <algorithm>
#include <queue>

#include "exec/elementwise_kernel.hpp"
#include "rt/send_plan.hpp"
#include "support/check.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

DistResult distributed_cholesky(const CscMatrix& lower, const Partition& partition,
                                const BlockDeps& deps, const Assignment& assignment) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");
  SPF_REQUIRE(deps.preds.size() == partition.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");

  const index_t nb = partition.num_blocks();
  // Block ids follow the paper's *allocation* order, which is not
  // topological (a unit triangle is updated by the in-triangle rectangles
  // on its left, which carry higher ids).  Compute a deterministic
  // topological order (Kahn, lowest id first) for execution.
  std::vector<index_t> topo;
  topo.reserve(static_cast<std::size_t>(nb));
  {
    std::vector<index_t> indeg(static_cast<std::size_t>(nb), 0);
    for (index_t b = 0; b < nb; ++b) {
      indeg[static_cast<std::size_t>(b)] =
          static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size());
    }
    // Min-heap on block id keeps the order deterministic and close to the
    // left-to-right elimination order.
    std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready;
    for (index_t b = 0; b < nb; ++b) {
      if (indeg[static_cast<std::size_t>(b)] == 0) ready.push(b);
    }
    while (!ready.empty()) {
      const index_t b = ready.top();
      ready.pop();
      topo.push_back(b);
      for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
      }
    }
    SPF_CHECK(static_cast<index_t>(topo.size()) == nb, "dependency DAG has a cycle");
  }

  const RowStructure rows_of = build_row_structure(sf);
  // The same consolidated fetch-once plan the real runtime ships with
  // (rt/send_plan.hpp): this executor stays the bitwise and
  // message-for-message reference for it.
  const rt::SendPlan send_plan = rt::build_send_plan(partition, assignment);

  // Cross-processor predecessor counts per block.
  std::vector<index_t> cross_preds(static_cast<std::size_t>(nb), 0);
  for (index_t b = 0; b < nb; ++b) {
    for (index_t pred : deps.preds[static_cast<std::size_t>(b)]) {
      if (assignment.proc(pred) != assignment.proc(b)) {
        ++cross_preds[static_cast<std::size_t>(b)];
      }
    }
  }
  // Local successor lists per block, per owner of the successor.
  // succs_on_proc[b] = successors of b grouped implicitly: the receiver
  // scans succs and keeps its own.
  DistResult result;
  result.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);
  double* const out_values = result.values.data();

  Machine machine(assignment.nprocs);
  result.stats = machine.run([&](MsgContext& ctx) {
    const index_t me = ctx.rank();
    // Local value store: all factor elements, filled as they are computed
    // or received.
    std::vector<double> vals(static_cast<std::size_t>(sf.nnz()), 0.0);
    std::vector<index_t> pending(cross_preds);

    auto absorb = [&](const MachineMessage& msg) {
      for (std::size_t t = 0; t < msg.ids.size(); ++t) {
        vals[static_cast<std::size_t>(msg.ids[t])] = msg.values[t];
      }
      // One message per completed remote block: release local successors.
      const index_t pred = static_cast<index_t>(msg.tag);
      for (index_t s : deps.succs[static_cast<std::size_t>(pred)]) {
        if (assignment.proc(s) == me) --pending[static_cast<std::size_t>(s)];
      }
    };

    for (index_t b : topo) {
      if (assignment.proc(b) != me) continue;
      while (pending[static_cast<std::size_t>(b)] > 0) absorb(ctx.recv_any());

      // ---- Compute block b with the shared element-wise kernel. ----
      const UnitBlock& blk = partition.blocks[static_cast<std::size_t>(b)];
      elementwise_factor_block(lower, sf, blk, rows_of, vals.data(), ElemNoObserve{});
      // Mirror the block's freshly computed elements into the gathered
      // output (disjoint across ranks: each element has one owner).
      for (index_t j = blk.cols.lo; j <= blk.cols.hi; ++j) {
        const auto jrows = sf.col_rows(j);
        const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
        const auto lo_it = std::lower_bound(jrows.begin(), jrows.end(),
                                            std::max(j, blk.rows.lo));
        for (auto it = lo_it; it != jrows.end() && *it <= blk.rows.hi; ++it) {
          const auto eij = static_cast<std::size_t>(jbase + (it - jrows.begin()));
          out_values[eij] = vals[eij];
        }
      }

      // ---- Ship finished elements (consolidated per destination). ----
      for (const auto& [dst, ids] : send_plan.plan[static_cast<std::size_t>(b)]) {
        std::vector<double> payload(ids.size());
        for (std::size_t t = 0; t < ids.size(); ++t) {
          payload[t] = vals[static_cast<std::size_t>(ids[t])];
        }
        ctx.send(dst, static_cast<int>(b), ids, std::move(payload));
      }
      // Predecessor release must reach every processor with a successor of
      // b, even those whose needed elements were all shipped earlier by
      // other blocks: send an empty release message to such processors.
      std::vector<char> notified(static_cast<std::size_t>(assignment.nprocs), 0);
      notified[static_cast<std::size_t>(me)] = 1;
      for (const auto& [dst, ids] : send_plan.plan[static_cast<std::size_t>(b)]) {
        notified[static_cast<std::size_t>(dst)] = 1;
      }
      for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
        const index_t sp = assignment.proc(s);
        if (!notified[static_cast<std::size_t>(sp)]) {
          notified[static_cast<std::size_t>(sp)] = 1;
          ctx.send(sp, static_cast<int>(b), {}, {});
        }
      }
    }
    // Drain any remaining releases addressed to this rank (a peer may
    // complete blocks after our last owned block finished).
    while (ctx.probe()) absorb(ctx.recv_any());
  });
  return result;
}

}  // namespace spf
