// Distributed numeric Cholesky factorization over a (partition, schedule).
//
// Executes the paper's mapping for real: every processor of the simulated
// message-passing machine owns the unit blocks the scheduler gave it,
// computes them in dependency order, and ships finished elements to the
// processors that need them.  Step 5 of the paper's flow — "consolidate
// the non-local memory access information for each processor so as to
// minimize communication overhead" — is implemented at the sender: each
// factor element is sent to a given processor at most once, so the
// executed communication volume equals the analytic data-traffic metric
// exactly (tested).
//
// The same executor runs both mappings: the wrap baseline is just the
// column partition with the wrap assignment.
#pragma once

#include "matrix/csc.hpp"
#include "msg/machine.hpp"
#include "numeric/cholesky.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct DistResult {
  /// The assembled factor (gathered from all ranks), aligned with the
  /// partition's symbolic structure.
  std::vector<double> values;
  /// Machine-level message statistics of the factorization phase.
  MachineStats stats;
};

/// Factor the (already permuted) matrix `lower` on `assignment.nprocs`
/// simulated processors.  `lower` must match the structure that produced
/// `partition` (its pattern may be a subset when amalgamation added
/// explicit zeros).  Throws spf::invalid_input on non-SPD input.
DistResult distributed_cholesky(const CscMatrix& lower, const Partition& partition,
                                const BlockDeps& deps, const Assignment& assignment);

}  // namespace spf
