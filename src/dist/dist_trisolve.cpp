#include "dist/dist_trisolve.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "support/check.hpp"

namespace spf {

namespace {

// Both triangular solves are instances of one data-flow: every subdiagonal
// element contributes coeff * value(source unknown) to the accumulator of a
// target unknown, and a target's value is computed by the owner of its
// diagonal once all contributions are in.
//
//   forward  (L y = b):   element (i,k): source k, target i, coeff L(i,k)
//   backward (L^T x = y): element (i,j): source i, target j, coeff L(i,j)
struct SolveGraph {
  index_t n = 0;
  index_t nprocs = 1;
  std::vector<double> diag;       ///< L(t,t) per unknown
  std::vector<index_t> diag_own;  ///< processor computing unknown t
  /// Per processor: elements grouped by source unknown.
  struct Element {
    index_t target;
    double coeff;
  };
  /// per_proc[p]: source -> contributions (hash map keeps it sparse).
  std::vector<std::unordered_map<index_t, std::vector<Element>>> per_proc;
  /// consumers[s]: processors holding elements with source s.
  std::vector<std::vector<index_t>> consumers;
  /// contributor_count[t]: processors holding elements with target t.
  std::vector<index_t> contributor_count;
  /// pend[p * n + t]: elements with target t on processor p.  Sparse in
  /// practice but n * P stays small at this scale.
  std::vector<index_t> pend;
};

SolveGraph build_graph(const CholeskyFactor& factor, const Partition& partition,
                       const Assignment& assignment, bool forward) {
  const SymbolicFactor& sf = *factor.structure;
  SolveGraph g;
  g.n = sf.n();
  g.nprocs = assignment.nprocs;
  g.diag.resize(static_cast<std::size_t>(g.n));
  g.diag_own.resize(static_cast<std::size_t>(g.n));
  g.per_proc.resize(static_cast<std::size_t>(g.nprocs));
  g.consumers.resize(static_cast<std::size_t>(g.n));
  g.contributor_count.assign(static_cast<std::size_t>(g.n), 0);
  g.pend.assign(static_cast<std::size_t>(g.nprocs) * static_cast<std::size_t>(g.n), 0);

  std::vector<char> consumer_flag(static_cast<std::size_t>(g.n) *
                                      static_cast<std::size_t>(g.nprocs),
                                  0);
  std::vector<char> contrib_flag(static_cast<std::size_t>(g.n) *
                                     static_cast<std::size_t>(g.nprocs),
                                 0);

  for (index_t col = 0; col < g.n; ++col) {
    const auto rows = sf.col_rows(col);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
    const auto segs = partition.emap.column_segments(col);
    std::size_t seg = 0;
    for (std::size_t t = 0; t < rows.size(); ++t) {
      while (segs[seg].rows.hi < rows[t]) ++seg;
      const index_t owner = assignment.proc(segs[seg].block);
      const double value = factor.values[static_cast<std::size_t>(base) + t];
      if (t == 0) {
        g.diag[static_cast<std::size_t>(col)] = value;
        g.diag_own[static_cast<std::size_t>(col)] = owner;
        continue;
      }
      const index_t i = rows[t];
      const index_t source = forward ? col : i;
      const index_t target = forward ? i : col;
      g.per_proc[static_cast<std::size_t>(owner)][source].push_back({target, value});
      const std::size_t ckey = static_cast<std::size_t>(source) *
                                   static_cast<std::size_t>(g.nprocs) +
                               static_cast<std::size_t>(owner);
      if (!consumer_flag[ckey]) {
        consumer_flag[ckey] = 1;
        g.consumers[static_cast<std::size_t>(source)].push_back(owner);
      }
      const std::size_t tkey = static_cast<std::size_t>(target) *
                                   static_cast<std::size_t>(g.nprocs) +
                               static_cast<std::size_t>(owner);
      if (!contrib_flag[tkey]) {
        contrib_flag[tkey] = 1;
        ++g.contributor_count[static_cast<std::size_t>(target)];
      }
      ++g.pend[static_cast<std::size_t>(owner) * static_cast<std::size_t>(g.n) +
               static_cast<std::size_t>(target)];
    }
  }
  for (auto& c : g.consumers) std::sort(c.begin(), c.end());
  return g;
}

/// Message tags: value broadcast of unknown t = 2t; partial for t = 2t+1.
DistSolveResult run_solve(const SolveGraph& g, std::span<const double> rhs) {
  SPF_REQUIRE(rhs.size() == static_cast<std::size_t>(g.n), "rhs size mismatch");
  DistSolveResult result;
  result.solution.assign(static_cast<std::size_t>(g.n), 0.0);
  double* const out = result.solution.data();

  Machine machine(g.nprocs);
  result.stats = machine.run([&](MsgContext& ctx) {
    const index_t me = ctx.rank();
    const auto& my_elements = g.per_proc[static_cast<std::size_t>(me)];
    std::vector<double> partial(static_cast<std::size_t>(g.n), 0.0);
    std::vector<index_t> pend(
        g.pend.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(me) *
                                                     static_cast<std::size_t>(g.n)),
        g.pend.begin() + static_cast<std::ptrdiff_t>((static_cast<std::size_t>(me) + 1) *
                                                     static_cast<std::size_t>(g.n)));
    std::vector<double> acc(static_cast<std::size_t>(g.n), 0.0);
    std::vector<index_t> need(static_cast<std::size_t>(g.n), 0);

    // My unknowns (diagonal owner) and my contribution rows.
    index_t outstanding = 0;
    std::deque<index_t> ready;
    for (index_t t = 0; t < g.n; ++t) {
      if (g.diag_own[static_cast<std::size_t>(t)] == me) {
        acc[static_cast<std::size_t>(t)] = rhs[static_cast<std::size_t>(t)];
        need[static_cast<std::size_t>(t)] = g.contributor_count[static_cast<std::size_t>(t)];
        ++outstanding;
        if (need[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
      }
      if (pend[static_cast<std::size_t>(t)] > 0) ++outstanding;
    }

    // Deliver a locally finished partial for target t.
    auto emit_partial = [&](index_t t) {
      --outstanding;
      const index_t dst = g.diag_own[static_cast<std::size_t>(t)];
      if (dst == me) {
        acc[static_cast<std::size_t>(t)] -= partial[static_cast<std::size_t>(t)];
        if (--need[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
      } else {
        ctx.send(dst, static_cast<int>(2 * t + 1), {},
                 {partial[static_cast<std::size_t>(t)]});
      }
    };

    // Fold the value of unknown s into my elements sourced by s.
    auto apply_value = [&](index_t s, double value) {
      const auto it = my_elements.find(s);
      SPF_CHECK(it != my_elements.end(), "value delivered to a non-consumer");
      for (const SolveGraph::Element& e : it->second) {
        partial[static_cast<std::size_t>(e.target)] += e.coeff * value;
        if (--pend[static_cast<std::size_t>(e.target)] == 0) emit_partial(e.target);
      }
    };

    while (outstanding > 0) {
      if (!ready.empty()) {
        const index_t t = ready.front();
        ready.pop_front();
        const double value =
            acc[static_cast<std::size_t>(t)] / g.diag[static_cast<std::size_t>(t)];
        out[static_cast<std::size_t>(t)] = value;  // disjoint across ranks
        --outstanding;
        for (index_t dst : g.consumers[static_cast<std::size_t>(t)]) {
          if (dst == me) {
            apply_value(t, value);
          } else {
            ctx.send(dst, static_cast<int>(2 * t), {}, {value});
          }
        }
        continue;
      }
      const MachineMessage msg = ctx.recv_any();
      const index_t t = static_cast<index_t>(msg.tag / 2);
      if (msg.tag % 2 == 0) {
        apply_value(t, msg.values.at(0));
      } else {
        acc[static_cast<std::size_t>(t)] -= msg.values.at(0);
        if (--need[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
      }
    }
  });
  return result;
}

}  // namespace

DistSolveResult distributed_lower_solve(const CholeskyFactor& factor,
                                        const Partition& partition,
                                        const Assignment& assignment,
                                        std::span<const double> b) {
  SPF_REQUIRE(factor.structure != nullptr, "factor has no structure");
  SPF_REQUIRE(factor.structure->n() == partition.factor.n(), "factor/partition mismatch");
  const SolveGraph g = build_graph(factor, partition, assignment, /*forward=*/true);
  return run_solve(g, b);
}

DistSolveResult distributed_lower_transpose_solve(const CholeskyFactor& factor,
                                                  const Partition& partition,
                                                  const Assignment& assignment,
                                                  std::span<const double> y) {
  SPF_REQUIRE(factor.structure != nullptr, "factor has no structure");
  SPF_REQUIRE(factor.structure->n() == partition.factor.n(), "factor/partition mismatch");
  const SolveGraph g = build_graph(factor, partition, assignment, /*forward=*/false);
  return run_solve(g, y);
}

}  // namespace spf
