// Distributed triangular solves over a factor mapping.
//
// Step 4 of the paper's direct solution (L u = P b, then L^T v = u),
// executed on the message-passing machine with the factor distributed
// exactly as the partitioner/scheduler placed it.  The paper's conclusion
// notes that "other computations such as triangular solves can provide
// additional flexibility in balancing the load which is not taken into
// account here" — these kernels let the benches measure the solve phase's
// communication and balance under both mappings.
//
// Protocol (forward solve; the backward solve is the mirror image):
//  * the owner of diagonal (j,j) computes y_j once every contribution
//    L(j,k)·y_k (k < j) has been folded in;
//  * computed y_j values are multicast to the processors owning
//    subdiagonal elements of column j;
//  * each processor accumulates partial sums per row locally and sends one
//    consolidated partial per (row, processor) to the row's diagonal
//    owner — the same consolidation idea the factorization uses.
#pragma once

#include <span>
#include <vector>

#include "msg/machine.hpp"
#include "numeric/cholesky.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct DistSolveResult {
  std::vector<double> solution;
  MachineStats stats;
};

/// Forward solve L y = b with L's values from `factor` distributed by
/// (partition, assignment).
DistSolveResult distributed_lower_solve(const CholeskyFactor& factor,
                                        const Partition& partition,
                                        const Assignment& assignment,
                                        std::span<const double> b);

/// Backward solve L^T x = y.
DistSolveResult distributed_lower_transpose_solve(const CholeskyFactor& factor,
                                                  const Partition& partition,
                                                  const Assignment& assignment,
                                                  std::span<const double> y);

}  // namespace spf
