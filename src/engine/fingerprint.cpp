#include "engine/fingerprint.hpp"

#include <bit>

namespace spf {

namespace {

/// SplitMix64 finalizer (support/prng.hpp uses the same constants): full
/// avalanche per absorbed word.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Two chained lanes with independent keys and injection rules.
class Digest {
 public:
  void absorb(std::uint64_t x) {
    hi_ = mix64(hi_ ^ (x + 0x9e3779b97f4a7c15ULL));
    lo_ = mix64(lo_ + x * 0xff51afd7ed558ccdULL + 0x2545f4914f6cdd1dULL);
  }
  void absorb_signed(long long x) { absorb(static_cast<std::uint64_t>(x)); }

  /// Section separator: makes (A|B) vs (A'|B') concatenations with equal
  /// flattened streams hash differently.
  void tag(std::uint64_t t) { absorb(0xa0761d6478bd642fULL ^ t); }

  [[nodiscard]] Fingerprint result() const { return {mix64(hi_), mix64(lo_ ^ hi_)}; }

 private:
  std::uint64_t hi_ = 0x452821e638d01377ULL;  // pi fractional digits
  std::uint64_t lo_ = 0xbe5466cf34e90c6cULL;
};

void absorb_pattern(Digest& d, const CscMatrix& lower) {
  d.tag(1);
  d.absorb_signed(lower.nrows());
  d.absorb_signed(lower.ncols());
  d.tag(2);
  for (count_t p : lower.col_ptr()) d.absorb_signed(p);
  d.tag(3);
  for (index_t r : lower.row_ind()) d.absorb_signed(r);
}

}  // namespace

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[static_cast<std::size_t>(15 - i)] = digits[(hi >> (4 * i)) & 0xf];
    s[static_cast<std::size_t>(31 - i)] = digits[(lo >> (4 * i)) & 0xf];
  }
  return s;
}

Fingerprint fingerprint_pattern(const CscMatrix& lower) {
  Digest d;
  absorb_pattern(d, lower);
  return d.result();
}

Fingerprint fingerprint_request(const CscMatrix& lower, const PlanConfig& config) {
  Digest d;
  absorb_pattern(d, lower);
  d.tag(4);
  d.absorb_signed(static_cast<long long>(config.ordering));
  d.absorb_signed(static_cast<long long>(config.scheme));
  d.absorb_signed(config.partition.grain_triangle);
  d.absorb_signed(config.partition.grain_rectangle);
  d.absorb_signed(config.partition.min_cluster_width);
  d.absorb_signed(config.partition.allow_zeros);
  d.tag(5);
  d.absorb(config.partition.triangle_unit_caps.size());
  for (index_t c : config.partition.triangle_unit_caps) d.absorb_signed(c);
  d.tag(6);
  d.absorb_signed(config.nprocs);
  d.tag(7);
  d.absorb_signed(static_cast<long long>(config.scheduler));
  d.absorb(config.proc_speeds.size());
  for (double s : config.proc_speeds) d.absorb(std::bit_cast<std::uint64_t>(s));
  return d.result();
}

}  // namespace spf
