// Pattern fingerprinting — the plan cache's key.
//
// A plan is reusable exactly when the request's sparsity structure AND its
// mapping options (ordering kind, scheme, grains, width, amalgamation
// budget, processor count) all match.  The fingerprint is a canonical
// 128-bit digest over both: two independently keyed 64-bit mixing lanes
// absorb the column pointers, row indices, and option fields with section
// tags, so reordered, truncated, or re-optioned inputs cannot collide by
// construction of the input stream (and random collisions sit at the
// 2^-128 birthday floor — not cryptographic, but far below any realistic
// cache population).  Values are deliberately NOT absorbed: same pattern +
// new numbers is precisely the warm path.
#pragma once

#include <cstdint>
#include <string>

#include "core/plan.hpp"
#include "matrix/csc.hpp"

namespace spf {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 hex digits, hi then lo.
  [[nodiscard]] std::string hex() const;
};

/// Hash functor for unordered containers (and the cache's shard choice).
struct FingerprintHasher {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Digest of the sparsity structure alone (n, ncols, col_ptr, row_ind).
[[nodiscard]] Fingerprint fingerprint_pattern(const CscMatrix& lower);

/// Digest of structure + plan options: the plan cache key for a request.
[[nodiscard]] Fingerprint fingerprint_request(const CscMatrix& lower,
                                              const PlanConfig& config);

}  // namespace spf
