#include "engine/plan_cache.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf {

PlanCache::PlanCache(const PlanCacheConfig& config) : config_(config) {
  SPF_REQUIRE(config.capacity >= 1, "plan cache capacity must be at least 1");
  SPF_REQUIRE(config.shards >= 1, "plan cache needs at least one shard");
  const std::size_t nshards = std::min(config.shards, config.capacity);
  shard_capacity_ = (config.capacity + nshards - 1) / nshards;
  shards_.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s) shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const Plan> PlanCache::get(const Fingerprint& key) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it == sh.map.end()) {
    ++sh.misses;
    return nullptr;
  }
  ++sh.hits;
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // refresh to front
  return it->second->plan;
}

std::shared_ptr<const Plan> PlanCache::insert(const Fingerprint& key,
                                              std::shared_ptr<const Plan> plan) {
  SPF_REQUIRE(plan != nullptr, "cannot cache a null plan");
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.map.find(key);
  if (it != sh.map.end()) {
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return it->second->plan;  // first writer wins; racers share it
  }
  const std::size_t bytes = plan->byte_size();
  sh.lru.push_front(Entry{key, std::move(plan), bytes});
  sh.map.emplace(key, sh.lru.begin());
  sh.bytes += bytes;
  ++sh.insertions;
  while (sh.lru.size() > shard_capacity_) {
    const Entry& victim = sh.lru.back();
    sh.bytes -= victim.bytes;
    sh.map.erase(victim.key);
    sh.lru.pop_back();
    ++sh.evictions;
  }
  return sh.lru.front().plan;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    out.hits += sh->hits;
    out.misses += sh->misses;
    out.insertions += sh->insertions;
    out.evictions += sh->evictions;
    out.entries += sh->lru.size();
    out.bytes += sh->bytes;
  }
  return out;
}

void PlanCache::clear() {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    sh->lru.clear();
    sh->map.clear();
    sh->bytes = 0;
  }
}

}  // namespace spf
