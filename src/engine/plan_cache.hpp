// Sharded, thread-safe LRU cache of immutable solver plans.
//
// Keys are pattern+options fingerprints; values are shared_ptr<const Plan>
// so concurrent requests (and requests racing an eviction) keep their plan
// alive for as long as they use it.  The key space is split across shards,
// each guarded by its own mutex, so unrelated patterns do not contend;
// within a shard, eviction is strict least-recently-used (deterministic —
// tested).  Hit / miss / insertion / eviction and resident-byte counters
// make cache efficacy observable (engine/stats.hpp snapshots them).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/plan.hpp"
#include "engine/fingerprint.hpp"

namespace spf {

struct PlanCacheConfig {
  /// Maximum resident plans, split evenly across shards (each shard holds
  /// at least one).  The byte counter is informational; capacity is
  /// counted in plans because a plan's footprint is bounded by its
  /// pattern's factor size, which the operator already knows.
  std::size_t capacity = 64;
  /// Lock shards.  Use 1 to make global LRU order exact (and eviction
  /// fully deterministic across interleavings); the default trades that
  /// for 8-way concurrency.
  std::size_t shards = 8;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< Plan::byte_size() sum of resident plans
};

class PlanCache {
 public:
  explicit PlanCache(const PlanCacheConfig& config = {});

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Look up a plan; refreshes its LRU position on hit, returns nullptr
  /// (and counts a miss) otherwise.
  [[nodiscard]] std::shared_ptr<const Plan> get(const Fingerprint& key);

  /// Insert a plan, evicting least-recently-used entries of the shard
  /// beyond its capacity.  If the key is already resident the existing
  /// plan wins (first writer) and is returned — concurrent callers that
  /// raced the same cold miss end up sharing one plan.
  std::shared_ptr<const Plan> insert(const Fingerprint& key,
                                     std::shared_ptr<const Plan> plan);

  /// Aggregate counters over all shards.
  [[nodiscard]] PlanCacheStats stats() const;

  /// Drop every resident plan (counters are kept).
  void clear();

  [[nodiscard]] const PlanCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const Plan> plan;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHasher> map;
    std::uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
    std::size_t bytes = 0;
  };

  Shard& shard_for(const Fingerprint& key) {
    return *shards_[FingerprintHasher{}(key) % shards_.size()];
  }

  PlanCacheConfig config_;
  std::size_t shard_capacity_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace spf
