#include "engine/solver_engine.hpp"

#include <chrono>
#include <utility>

#include "exec/parallel_cholesky.hpp"
#include "numeric/trisolve.hpp"
#include "support/check.hpp"

namespace spf {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

SolverEngine::SolverEngine(const SolverEngineConfig& config)
    : SolverEngine(config, std::make_shared<PlanCache>(config.cache)) {}

SolverEngine::SolverEngine(const SolverEngineConfig& config,
                           std::shared_ptr<PlanCache> cache)
    : config_(config),
      cache_(std::move(cache)),
      counters_(std::make_shared<EngineCounters>()) {
  SPF_REQUIRE(cache_ != nullptr, "engine needs a plan cache");
  SPF_REQUIRE(config_.plan.nprocs >= 1, "engine needs at least one processor");
}

Factorization SolverEngine::factorize(const CscMatrix& lower) {
  SPF_REQUIRE(lower.has_values(), "engine factorization needs numeric values");
  counters_->record_request();
  const Fingerprint key = fingerprint_request(lower, config_.plan);

  std::shared_ptr<const Plan> plan = cache_->get(key);
  const bool warm = plan != nullptr;
  double plan_seconds = 0.0;
  if (warm) {
    counters_->record_hit();
  } else {
    counters_->record_miss();
    PlanTimings timings;
    const auto t0 = std::chrono::steady_clock::now();
    auto built = std::make_shared<const Plan>(make_plan(lower, config_.plan, &timings));
    plan_seconds = seconds_since(t0);
    counters_->record_plan_build(timings);
    plan = cache_->insert(key, std::move(built));
  }
  // Shape guard (also demotes any fingerprint collision to a loud error
  // instead of a wrong factor).
  SPF_REQUIRE(plan->n == lower.ncols() &&
                  plan->value_gather.size() == static_cast<std::size_t>(lower.nnz()),
              "cached plan does not match the request pattern");

  auto t0 = std::chrono::steady_clock::now();
  const CscMatrix permuted = plan->permuted_input(lower.values());
  counters_->record_gather(seconds_since(t0));

  t0 = std::chrono::steady_clock::now();
  const Mapping& m = plan->mapping;
  ParallelExecResult exec =
      parallel_cholesky(permuted, m.partition, m.deps, m.blk_work, m.assignment,
                        {config_.nthreads > 0 ? config_.nthreads : config_.plan.nprocs,
                         config_.allow_stealing, config_.kernel, &plan->rows_of,
                         &plan->kernels});
  const double numeric_seconds = seconds_since(t0);
  counters_->record_numeric(numeric_seconds, exec.blocks_stolen, exec.queue_contention);

  return Factorization(std::move(plan), std::move(exec.values), warm, plan_seconds,
                       numeric_seconds, counters_);
}

std::shared_ptr<const Plan> SolverEngine::preload(const CscMatrix& pattern,
                                                  std::shared_ptr<const Plan> plan) {
  SPF_REQUIRE(plan != nullptr, "cannot preload a null plan");
  SPF_REQUIRE(plan->n == pattern.ncols() &&
                  plan->value_gather.size() == static_cast<std::size_t>(pattern.nnz()),
              "plan does not match the pattern it is preloaded for");
  return cache_->insert(fingerprint_request(pattern, config_.plan), std::move(plan));
}

EngineStats SolverEngine::stats() const {
  EngineStats s = counters_->snapshot();
  s.cache = cache_->stats();
  return s;
}

std::vector<double> Factorization::solve(std::span<const double> b) const {
  return solve_batch(b, 1);
}

std::vector<double> Factorization::solve_batch(std::span<const double> b, index_t nrhs,
                                               SolveRunInfo* info) const {
  const Plan& p = *plan_;
  const auto n = static_cast<std::size_t>(p.n);
  SPF_REQUIRE(nrhs >= 1, "need at least one right-hand side");
  SPF_REQUIRE(b.size() == n * static_cast<std::size_t>(nrhs),
              "rhs size mismatch (expect column-major n x nrhs)");
  const auto t0 = std::chrono::steady_clock::now();

  // Permute every right-hand side into the factor's ordering.
  const auto perm = p.perm.perm();
  std::vector<double> x(b.size());
  for (index_t r = 0; r < nrhs; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * n;
    for (std::size_t k = 0; k < n; ++k) {
      x[off + k] = b[off + static_cast<std::size_t>(perm[k])];
    }
  }

  // L y = P b, then L^T v = y, over all right-hand sides per structure walk.
  const SymbolicFactor& sf = p.mapping.partition.factor;
  lower_solve_batch(sf, values_, x, nrhs);
  lower_transpose_solve_batch(sf, values_, x, nrhs);

  // Scatter back to the original ordering.
  std::vector<double> out(b.size());
  for (index_t r = 0; r < nrhs; ++r) {
    const std::size_t off = static_cast<std::size_t>(r) * n;
    for (std::size_t k = 0; k < n; ++k) {
      out[off + static_cast<std::size_t>(perm[k])] = x[off + k];
    }
  }
  const double seconds = seconds_since(t0);
  if (info) info->seconds = seconds;
  if (counters_) counters_->record_solve(nrhs, seconds);
  return out;
}

}  // namespace spf
