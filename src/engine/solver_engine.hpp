// The solver engine: pattern-keyed plan reuse for refactorization traffic.
//
// Real workloads (FE time-stepping, interior-point, transient power flow)
// factorize the *same* sparsity pattern with new numeric values thousands
// of times.  The paper's analysis — ordering, symbolic factorization,
// partitioning, dependencies, scheduling — depends only on the pattern
// and the mapping options, so the engine computes it once, caches the
// resulting Plan under a pattern+options fingerprint, and serves every
// later request with the numeric phase alone: one value-gather pass plus
// the shared-memory parallel executor.  The warm-path factor is
// bit-identical to a cold Pipeline run (the permuted matrix it rebuilds is
// bitwise the one permute_lower would produce, and the executor is
// bitwise deterministic).
//
// factorize() is safe under simultaneous callers sharing one cache:
// plans are immutable and shared by shared_ptr, the cache is internally
// locked, and callers racing the same cold miss converge on the first
// inserted plan.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "engine/plan_cache.hpp"
#include "engine/stats.hpp"

namespace spf {

struct SolverEngineConfig {
  /// The static analysis every request of this engine is mapped with.
  PlanConfig plan{};
  /// Executor threads for the numeric phase; 0 = one per plan processor.
  index_t nthreads = 0;
  /// Allow the executor's idle workers to steal queued blocks.
  bool allow_stealing = true;
  /// Numeric kernel per unit block.  kElementwise keeps the engine's
  /// bit-identical-to-cold-Pipeline guarantee; kBlocked replays the plan's
  /// precompiled kernels (bitwise deterministic run-to-run, equal to
  /// elementwise to rounding tolerance).
  ExecKernel kernel = ExecKernel::kElementwise;
  /// Cache geometry, used when the engine owns its cache (the shared-cache
  /// constructor ignores it).
  PlanCacheConfig cache{};
};

/// Per-call timing of a solve, for callers (e.g. the serving layer) that
/// meter engine work per request rather than via the engine-wide counters.
struct SolveRunInfo {
  double seconds = 0.0;  ///< wall time of the batched trisolve call
};

/// A completed factorization: the plan it used plus the factor values.
/// Holds the plan (and the engine's counters) alive independently of the
/// engine, so solves remain valid after the plan is evicted — and after
/// the engine itself is gone (regression-tested in tests/test_engine.cpp).
class Factorization {
 public:
  [[nodiscard]] const Plan& plan() const { return *plan_; }
  [[nodiscard]] const std::shared_ptr<const Plan>& plan_ptr() const { return plan_; }
  /// Factor values, aligned with plan().mapping.partition.factor element ids.
  [[nodiscard]] std::span<const double> values() const { return values_; }
  /// True when the plan came from the cache (no analysis work was done).
  [[nodiscard]] bool warm() const { return warm_; }
  [[nodiscard]] double plan_seconds() const { return plan_seconds_; }
  [[nodiscard]] double numeric_seconds() const { return numeric_seconds_; }

  /// Solve A x = b (original ordering) with the computed factor.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Batched multi-RHS solve: `b` holds nrhs column-major right-hand
  /// sides of length n; returns the solutions in the same layout.  One
  /// structure walk serves all right-hand sides.  `info`, when non-null,
  /// receives this call's timing.
  [[nodiscard]] std::vector<double> solve_batch(std::span<const double> b,
                                                index_t nrhs,
                                                SolveRunInfo* info = nullptr) const;

 private:
  friend class SolverEngine;
  Factorization(std::shared_ptr<const Plan> plan, std::vector<double> values, bool warm,
                double plan_seconds, double numeric_seconds,
                std::shared_ptr<EngineCounters> counters)
      : plan_(std::move(plan)),
        values_(std::move(values)),
        warm_(warm),
        plan_seconds_(plan_seconds),
        numeric_seconds_(numeric_seconds),
        counters_(std::move(counters)) {}

  std::shared_ptr<const Plan> plan_;
  std::vector<double> values_;
  bool warm_ = false;
  double plan_seconds_ = 0.0;
  double numeric_seconds_ = 0.0;
  std::shared_ptr<EngineCounters> counters_;
};

class SolverEngine {
 public:
  /// Engine with its own plan cache (cfg.cache geometry).
  explicit SolverEngine(const SolverEngineConfig& config);
  /// Engine sharing `cache` with other engines / threads.
  SolverEngine(const SolverEngineConfig& config, std::shared_ptr<PlanCache> cache);

  /// Factor `lower` (lower triangle with values, original ordering).
  /// Warm path — plan already cached — performs zero ordering / symbolic /
  /// partition / schedule work.  Thread-safe.
  [[nodiscard]] Factorization factorize(const CscMatrix& lower);

  /// Seed the cache with an externally built (e.g. deserialized) plan for
  /// `pattern`, keyed as a factorize(pattern-shaped matrix) request would
  /// be.  The caller asserts the plan was built for this pattern and this
  /// engine's PlanConfig.  Returns the resident plan.
  std::shared_ptr<const Plan> preload(const CscMatrix& pattern,
                                      std::shared_ptr<const Plan> plan);

  [[nodiscard]] EngineStats stats() const;
  /// The engine-side metrics registry ("engine.*" counters plus the
  /// numeric / solve latency histograms).
  [[nodiscard]] const obs::MetricsRegistry& metrics_registry() const {
    return counters_->registry();
  }
  [[nodiscard]] const SolverEngineConfig& config() const { return config_; }
  [[nodiscard]] const std::shared_ptr<PlanCache>& cache() const { return cache_; }

 private:
  SolverEngineConfig config_;
  std::shared_ptr<PlanCache> cache_;
  std::shared_ptr<EngineCounters> counters_;
};

}  // namespace spf
