#include "engine/stats.hpp"

#include <sstream>

namespace spf {

void EngineStats::write_json(JsonWriter& jw) const {
  jw.field("requests", static_cast<long long>(requests));
  jw.field("cache_hits", static_cast<long long>(cache_hits));
  jw.field("cache_misses", static_cast<long long>(cache_misses));
  jw.field("plans_built", static_cast<long long>(plans_built));
  jw.field("orderings_computed", static_cast<long long>(orderings_computed));
  jw.field("symbolic_factorizations", static_cast<long long>(symbolic_factorizations));
  jw.field("partitions_built", static_cast<long long>(partitions_built));
  jw.field("schedules_built", static_cast<long long>(schedules_built));
  jw.field("kernel_plans_compiled", static_cast<long long>(kernel_plans_compiled));
  jw.field("factorizations", static_cast<long long>(factorizations));
  jw.field("solves", static_cast<long long>(solves));
  jw.field("rhs_solved", static_cast<long long>(rhs_solved));
  jw.field("ordering_seconds", ordering_seconds);
  jw.field("symbolic_seconds", symbolic_seconds);
  jw.field("partition_seconds", partition_seconds);
  jw.field("schedule_seconds", schedule_seconds);
  jw.field("kernel_compile_seconds", kernel_compile_seconds);
  jw.field("gather_seconds", gather_seconds);
  jw.field("numeric_seconds", numeric_seconds);
  jw.field("solve_seconds", solve_seconds);
  jw.begin_object("cache");
  jw.field("hits", static_cast<long long>(cache.hits));
  jw.field("misses", static_cast<long long>(cache.misses));
  jw.field("insertions", static_cast<long long>(cache.insertions));
  jw.field("evictions", static_cast<long long>(cache.evictions));
  jw.field("entries", static_cast<long long>(cache.entries));
  jw.field("bytes", static_cast<long long>(cache.bytes));
  jw.end();
}

std::string EngineStats::to_json() const {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    write_json(jw);
    jw.end();
  }
  return os.str();
}

void EngineCounters::record_plan_build(const PlanTimings& t) {
  plans_built.fetch_add(1, std::memory_order_release);
  orderings_computed.fetch_add(1, std::memory_order_release);
  symbolic_factorizations.fetch_add(1, std::memory_order_release);
  partitions_built.fetch_add(1, std::memory_order_release);
  schedules_built.fetch_add(1, std::memory_order_release);
  kernel_plans_compiled.fetch_add(1, std::memory_order_release);
  add(ordering_seconds, t.ordering_seconds);
  add(symbolic_seconds, t.symbolic_seconds);
  add(partition_seconds, t.partition_seconds);
  add(schedule_seconds, t.schedule_seconds);
  add(kernel_compile_seconds, t.kernel_seconds);
}

void EngineCounters::record_gather(double seconds) { add(gather_seconds, seconds); }

void EngineCounters::record_numeric(double seconds) {
  factorizations.fetch_add(1, std::memory_order_release);
  add(numeric_seconds, seconds);
}

void EngineCounters::record_solve(index_t nrhs, double seconds) {
  rhs_solved.fetch_add(static_cast<std::uint64_t>(nrhs), std::memory_order_relaxed);
  solves.fetch_add(1, std::memory_order_release);
  add(solve_seconds, seconds);
}

EngineStats EngineCounters::snapshot() const {
  // Load in the REVERSE of the writers' program order: a factorize bumps
  // requests, then hit/miss, then (cold) plans_built + analysis counters,
  // then factorizations.  Reading downstream counters first (acquire,
  // paired with the writers' release increments) guarantees the snapshot
  // never shows e.g. hits+misses > requests or plans_built > misses.
  EngineStats s;
  s.factorizations = factorizations.load(std::memory_order_acquire);
  s.solves = solves.load(std::memory_order_acquire);
  s.rhs_solved = rhs_solved.load(std::memory_order_relaxed);
  s.plans_built = plans_built.load(std::memory_order_acquire);
  s.orderings_computed = orderings_computed.load(std::memory_order_acquire);
  s.symbolic_factorizations = symbolic_factorizations.load(std::memory_order_acquire);
  s.partitions_built = partitions_built.load(std::memory_order_acquire);
  s.schedules_built = schedules_built.load(std::memory_order_acquire);
  s.kernel_plans_compiled = kernel_plans_compiled.load(std::memory_order_acquire);
  s.cache_misses = cache_misses.load(std::memory_order_acquire);
  s.cache_hits = cache_hits.load(std::memory_order_acquire);
  s.requests = requests.load(std::memory_order_relaxed);
  s.ordering_seconds = ordering_seconds.load(std::memory_order_relaxed);
  s.symbolic_seconds = symbolic_seconds.load(std::memory_order_relaxed);
  s.partition_seconds = partition_seconds.load(std::memory_order_relaxed);
  s.schedule_seconds = schedule_seconds.load(std::memory_order_relaxed);
  s.kernel_compile_seconds = kernel_compile_seconds.load(std::memory_order_relaxed);
  s.gather_seconds = gather_seconds.load(std::memory_order_relaxed);
  s.numeric_seconds = numeric_seconds.load(std::memory_order_relaxed);
  s.solve_seconds = solve_seconds.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spf
