#include "engine/stats.hpp"

#include <sstream>

#include "numeric/simd.hpp"

namespace spf {

namespace {
std::uint64_t to_us(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}
}  // namespace

void EngineStats::write_json(JsonWriter& jw) const {
  jw.field("requests", static_cast<long long>(requests));
  jw.field("cache_hits", static_cast<long long>(cache_hits));
  jw.field("cache_misses", static_cast<long long>(cache_misses));
  jw.field("plans_built", static_cast<long long>(plans_built));
  jw.field("orderings_computed", static_cast<long long>(orderings_computed));
  jw.field("symbolic_factorizations", static_cast<long long>(symbolic_factorizations));
  jw.field("partitions_built", static_cast<long long>(partitions_built));
  jw.field("schedules_built", static_cast<long long>(schedules_built));
  jw.field("kernel_plans_compiled", static_cast<long long>(kernel_plans_compiled));
  jw.field("factorizations", static_cast<long long>(factorizations));
  jw.field("solves", static_cast<long long>(solves));
  jw.field("rhs_solved", static_cast<long long>(rhs_solved));
  jw.field("blocks_stolen", static_cast<long long>(blocks_stolen));
  jw.field("queue_contention", static_cast<long long>(queue_contention));
  jw.field("simd_tier", simd_tier);
  jw.field("ordering_seconds", ordering_seconds);
  jw.field("symbolic_seconds", symbolic_seconds);
  jw.field("partition_seconds", partition_seconds);
  jw.field("schedule_seconds", schedule_seconds);
  jw.field("kernel_compile_seconds", kernel_compile_seconds);
  jw.field("gather_seconds", gather_seconds);
  jw.field("numeric_seconds", numeric_seconds);
  jw.field("solve_seconds", solve_seconds);
  jw.begin_object("cache");
  jw.field("hits", static_cast<long long>(cache.hits));
  jw.field("misses", static_cast<long long>(cache.misses));
  jw.field("insertions", static_cast<long long>(cache.insertions));
  jw.field("evictions", static_cast<long long>(cache.evictions));
  jw.field("entries", static_cast<long long>(cache.entries));
  jw.field("bytes", static_cast<long long>(cache.bytes));
  jw.end();
}

std::string EngineStats::to_json() const {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    write_json(jw);
    jw.end();
  }
  return os.str();
}

// Registration order IS the write-path order (upstream first): the
// registry snapshots in reverse, so every downstream counter is read
// before the upstream counters it was released after.
EngineCounters::EngineCounters()
    : requests_(registry_.counter("engine.requests")),
      cache_hits_(registry_.counter("engine.cache_hits")),
      cache_misses_(registry_.counter("engine.cache_misses")),
      plans_built_(registry_.counter("engine.plans_built")),
      orderings_computed_(registry_.counter("engine.orderings_computed")),
      symbolic_factorizations_(registry_.counter("engine.symbolic_factorizations")),
      partitions_built_(registry_.counter("engine.partitions_built")),
      schedules_built_(registry_.counter("engine.schedules_built")),
      kernel_plans_compiled_(registry_.counter("engine.kernel_plans_compiled")),
      rhs_solved_(registry_.counter("engine.rhs_solved")),
      solves_(registry_.counter("engine.solves")),
      factorizations_(registry_.counter("engine.factorizations")),
      blocks_stolen_(registry_.counter("engine.blocks_stolen")),
      queue_contention_(registry_.counter("engine.queue_contention")),
      ordering_seconds_(registry_.sum("engine.ordering_seconds")),
      symbolic_seconds_(registry_.sum("engine.symbolic_seconds")),
      partition_seconds_(registry_.sum("engine.partition_seconds")),
      schedule_seconds_(registry_.sum("engine.schedule_seconds")),
      kernel_compile_seconds_(registry_.sum("engine.kernel_compile_seconds")),
      gather_seconds_(registry_.sum("engine.gather_seconds")),
      numeric_seconds_(registry_.sum("engine.numeric_seconds")),
      solve_seconds_(registry_.sum("engine.solve_seconds")),
      numeric_us_(registry_.histogram("engine.numeric_us")),
      solve_us_(registry_.histogram("engine.solve_us")) {}

void EngineCounters::record_plan_build(const PlanTimings& t) {
  plans_built_.add_release();
  orderings_computed_.add_release();
  symbolic_factorizations_.add_release();
  partitions_built_.add_release();
  schedules_built_.add_release();
  kernel_plans_compiled_.add_release();
  ordering_seconds_.add(t.ordering_seconds);
  symbolic_seconds_.add(t.symbolic_seconds);
  partition_seconds_.add(t.partition_seconds);
  schedule_seconds_.add(t.schedule_seconds);
  kernel_compile_seconds_.add(t.kernel_seconds);
}

void EngineCounters::record_gather(double seconds) { gather_seconds_.add(seconds); }

void EngineCounters::record_numeric(double seconds, count_t blocks_stolen,
                                    count_t queue_contention) {
  factorizations_.add_release();
  if (blocks_stolen > 0) blocks_stolen_.add(static_cast<std::uint64_t>(blocks_stolen));
  if (queue_contention > 0) {
    queue_contention_.add(static_cast<std::uint64_t>(queue_contention));
  }
  numeric_seconds_.add(seconds);
  numeric_us_.record(to_us(seconds));
}

void EngineCounters::record_solve(index_t nrhs, double seconds) {
  rhs_solved_.add(static_cast<std::uint64_t>(nrhs));
  solves_.add_release();
  solve_seconds_.add(seconds);
  solve_us_.record(to_us(seconds));
}

EngineStats EngineCounters::snapshot() const {
  // The registry loads in the REVERSE of registration (= write) order:
  // factorizations before plans_built before misses before requests, so
  // the snapshot can never show e.g. hits+misses > requests.
  const obs::MetricsSnapshot m = registry_.snapshot();
  EngineStats s;
  s.requests = m.counter("engine.requests");
  s.cache_hits = m.counter("engine.cache_hits");
  s.cache_misses = m.counter("engine.cache_misses");
  s.plans_built = m.counter("engine.plans_built");
  s.orderings_computed = m.counter("engine.orderings_computed");
  s.symbolic_factorizations = m.counter("engine.symbolic_factorizations");
  s.partitions_built = m.counter("engine.partitions_built");
  s.schedules_built = m.counter("engine.schedules_built");
  s.kernel_plans_compiled = m.counter("engine.kernel_plans_compiled");
  s.factorizations = m.counter("engine.factorizations");
  s.blocks_stolen = m.counter("engine.blocks_stolen");
  s.queue_contention = m.counter("engine.queue_contention");
  s.simd_tier = simd_tier_name(active_simd_tier());
  s.solves = m.counter("engine.solves");
  s.rhs_solved = m.counter("engine.rhs_solved");
  s.ordering_seconds = m.sum("engine.ordering_seconds");
  s.symbolic_seconds = m.sum("engine.symbolic_seconds");
  s.partition_seconds = m.sum("engine.partition_seconds");
  s.schedule_seconds = m.sum("engine.schedule_seconds");
  s.kernel_compile_seconds = m.sum("engine.kernel_compile_seconds");
  s.gather_seconds = m.sum("engine.gather_seconds");
  s.numeric_seconds = m.sum("engine.numeric_seconds");
  s.solve_seconds = m.sum("engine.solve_seconds");
  return s;
}

}  // namespace spf
