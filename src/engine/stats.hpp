// Engine observability: counters and per-phase timings, JSON-snapshotable.
//
// EngineCounters is the thread-safe accumulator the solver engine writes
// from concurrent requests; EngineStats is the coherent plain snapshot it
// produces, merged with the plan cache's counters.  The analysis-phase
// invocation counters (orderings_computed, symbolic_factorizations,
// partitions_built, schedules_built) move ONLY on cold plan builds — a
// warm-path request leaves all four untouched, which is how the engine's
// "zero analysis work on a cache hit" guarantee is asserted in tests.
//
// Every counter lives in an obs::MetricsRegistry owned by the accumulator
// (names "engine.*"), registered in write-path order so the registry's
// reverse-order snapshot preserves the coherence contract this header has
// always promised: a snapshot never shows more hits+misses than requests,
// more plans built than misses, or more factorizations than requests.
// registry() exposes the same counters to generic reporters, alongside
// engine.numeric_us / engine.solve_us latency histograms.
#pragma once

#include <cstdint>
#include <string>

#include "core/plan.hpp"
#include "engine/plan_cache.hpp"
#include "obs/metrics.hpp"
#include "support/json.hpp"

namespace spf {

/// Plain snapshot of engine activity since construction.
struct EngineStats {
  // Request counters.
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t plans_built = 0;
  // Analysis-phase invocations (cold path only).
  std::uint64_t orderings_computed = 0;
  std::uint64_t symbolic_factorizations = 0;
  std::uint64_t partitions_built = 0;
  std::uint64_t schedules_built = 0;
  std::uint64_t kernel_plans_compiled = 0;
  // Numeric-phase counters.
  std::uint64_t factorizations = 0;
  std::uint64_t solves = 0;
  std::uint64_t rhs_solved = 0;
  // Executor scalability telemetry, summed over factorizations: blocks
  // that ran on a worker other than their scheduled owner, and pool
  // queue-lock acquisitions that found the lock held.
  std::uint64_t blocks_stolen = 0;
  std::uint64_t queue_contention = 0;
  // Active dense-kernel ISA tier at snapshot time ("scalar", "neon",
  // "avx2", "avx512"): process-global, reported here so serving metrics
  // show which microkernels the engine is dispatching to.
  std::string simd_tier;
  // Per-phase wall seconds (summed across requests; concurrent requests
  // overlap, so these measure work, not elapsed time).
  double ordering_seconds = 0.0;
  double symbolic_seconds = 0.0;
  double partition_seconds = 0.0;
  double schedule_seconds = 0.0;
  double kernel_compile_seconds = 0.0;
  double gather_seconds = 0.0;
  double numeric_seconds = 0.0;
  double solve_seconds = 0.0;

  PlanCacheStats cache;

  /// Emit the snapshot's fields into the writer's currently open object.
  void write_json(JsonWriter& jw) const;
  /// The snapshot as one standalone JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Lock-free accumulator shared by all requests of one engine, backed by
/// an owned obs::MetricsRegistry.
///
/// Writers bump `requests` first and the downstream counters (hit/miss,
/// plan build, numeric) afterwards with release ordering; snapshot()
/// acquire-loads downstream counters before their upstream ones (the
/// registry loads in reverse registration order, and the counters are
/// registered in write order).  A snapshot taken mid-flight is therefore
/// internally consistent — it can never show more hits+misses than
/// requests, more plans built than misses, or more factorizations than
/// requests (hammered concurrently in tests/test_engine.cpp) — and
/// successive snapshots are monotonic.
class EngineCounters {
 public:
  EngineCounters();
  EngineCounters(const EngineCounters&) = delete;
  EngineCounters& operator=(const EngineCounters&) = delete;

  void record_request() { requests_.add(); }
  void record_hit() { cache_hits_.add_release(); }
  void record_miss() { cache_misses_.add_release(); }
  /// One cold plan build: bumps the four analysis-phase counters and adds
  /// the build's per-stage seconds.
  void record_plan_build(const PlanTimings& t);
  void record_gather(double seconds);
  void record_numeric(double seconds, count_t blocks_stolen = 0,
                      count_t queue_contention = 0);
  void record_solve(index_t nrhs, double seconds);

  /// Internally consistent snapshot (see the class comment; the double
  /// timing fields remain best-effort under concurrent writers).
  [[nodiscard]] EngineStats snapshot() const;

  /// The backing registry ("engine.*" names) for generic metric export.
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  // Handles, declared after the registry and registered in the write
  // path's program order (upstream first).
  obs::Counter& requests_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& plans_built_;
  obs::Counter& orderings_computed_;
  obs::Counter& symbolic_factorizations_;
  obs::Counter& partitions_built_;
  obs::Counter& schedules_built_;
  obs::Counter& kernel_plans_compiled_;
  obs::Counter& rhs_solved_;
  obs::Counter& solves_;
  obs::Counter& factorizations_;
  obs::Counter& blocks_stolen_;
  obs::Counter& queue_contention_;
  obs::Sum& ordering_seconds_;
  obs::Sum& symbolic_seconds_;
  obs::Sum& partition_seconds_;
  obs::Sum& schedule_seconds_;
  obs::Sum& kernel_compile_seconds_;
  obs::Sum& gather_seconds_;
  obs::Sum& numeric_seconds_;
  obs::Sum& solve_seconds_;
  obs::Histogram& numeric_us_;
  obs::Histogram& solve_us_;
};

}  // namespace spf
