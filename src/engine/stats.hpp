// Engine observability: counters and per-phase timings, JSON-snapshotable.
//
// EngineCounters is the thread-safe accumulator the solver engine writes
// from concurrent requests; EngineStats is the coherent plain snapshot it
// produces, merged with the plan cache's counters.  The analysis-phase
// invocation counters (orderings_computed, symbolic_factorizations,
// partitions_built, schedules_built) move ONLY on cold plan builds — a
// warm-path request leaves all four untouched, which is how the engine's
// "zero analysis work on a cache hit" guarantee is asserted in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/plan.hpp"
#include "engine/plan_cache.hpp"
#include "support/json.hpp"

namespace spf {

/// Plain snapshot of engine activity since construction.
struct EngineStats {
  // Request counters.
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t plans_built = 0;
  // Analysis-phase invocations (cold path only).
  std::uint64_t orderings_computed = 0;
  std::uint64_t symbolic_factorizations = 0;
  std::uint64_t partitions_built = 0;
  std::uint64_t schedules_built = 0;
  std::uint64_t kernel_plans_compiled = 0;
  // Numeric-phase counters.
  std::uint64_t factorizations = 0;
  std::uint64_t solves = 0;
  std::uint64_t rhs_solved = 0;
  // Per-phase wall seconds (summed across requests; concurrent requests
  // overlap, so these measure work, not elapsed time).
  double ordering_seconds = 0.0;
  double symbolic_seconds = 0.0;
  double partition_seconds = 0.0;
  double schedule_seconds = 0.0;
  double kernel_compile_seconds = 0.0;
  double gather_seconds = 0.0;
  double numeric_seconds = 0.0;
  double solve_seconds = 0.0;

  PlanCacheStats cache;

  /// Emit the snapshot's fields into the writer's currently open object.
  void write_json(JsonWriter& jw) const;
  /// The snapshot as one standalone JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Lock-free accumulator shared by all requests of one engine.
///
/// Writers bump `requests` first and the downstream counters (hit/miss,
/// plan build, numeric) afterwards with release ordering; snapshot()
/// acquire-loads downstream counters before their upstream ones.  A
/// snapshot taken mid-flight is therefore internally consistent — it can
/// never show more hits+misses than requests, more plans built than
/// misses, or more factorizations than requests (hammered concurrently in
/// tests/test_engine.cpp) — and successive snapshots are monotonic.
class EngineCounters {
 public:
  void record_request() { requests.fetch_add(1, std::memory_order_relaxed); }
  void record_hit() { cache_hits.fetch_add(1, std::memory_order_release); }
  void record_miss() { cache_misses.fetch_add(1, std::memory_order_release); }
  /// One cold plan build: bumps the four analysis-phase counters and adds
  /// the build's per-stage seconds.
  void record_plan_build(const PlanTimings& t);
  void record_gather(double seconds);
  void record_numeric(double seconds);
  void record_solve(index_t nrhs, double seconds);

  /// Internally consistent snapshot (see the class comment; the double
  /// timing fields remain best-effort under concurrent writers).
  [[nodiscard]] EngineStats snapshot() const;

 private:
  static void add(std::atomic<double>& a, double v) {
    a.fetch_add(v, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> requests{0}, cache_hits{0}, cache_misses{0},
      plans_built{0}, orderings_computed{0}, symbolic_factorizations{0},
      partitions_built{0}, schedules_built{0}, kernel_plans_compiled{0},
      factorizations{0}, solves{0}, rhs_solved{0};
  std::atomic<double> ordering_seconds{0.0}, symbolic_seconds{0.0},
      partition_seconds{0.0}, schedule_seconds{0.0}, kernel_compile_seconds{0.0},
      gather_seconds{0.0}, numeric_seconds{0.0}, solve_seconds{0.0};
};

}  // namespace spf
