// The element-wise factorization kernel shared by every executor.
//
// Bitwise determinism across executors rests on one fact: each factor
// element is produced by exactly one unit block, by this exact loop —
// the same update enumeration (row structure of column j, in storage
// order) and the same per-element floating-point operation order.  Any
// executor that (a) instantiates this template, (b) is compiled with FP
// contraction off (src/CMakeLists.txt pins -ffp-contract=off on every
// including translation unit), and (c) guarantees every predecessor
// element is final before the block runs, produces the identical bit
// pattern for every element no matter how blocks are scheduled, how many
// threads or ranks run, or which transport carried the operands.  The
// shared-memory pool executor (exec/parallel_cholesky.cpp), the
// simulated-machine executor (dist/dist_cholesky.cpp), and the
// distributed runtime (rt/rt_cholesky.cpp) all instantiate it.
//
// `record_read(element)` is invoked for every factor element the block
// reads (update operands and the scaling diagonal); pass
// ElemNoObserve{} to compile observation out entirely.  The arithmetic
// is identical either way.
#pragma once

#include <algorithm>
#include <cmath>

#include "matrix/csc.hpp"
#include "partition/region.hpp"
#include "support/check.hpp"
#include "symbolic/row_structure.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

struct ElemNoObserve {
  void operator()(count_t /*element*/) const noexcept {}
};

/// Factor the elements of unit block `blk` into `vals`, column by
/// column.  `vals` must already hold the final values of every element
/// the block reads.  Throws spf::invalid_input on a non-positive pivot.
template <typename RecordRead>
inline void elementwise_factor_block(const CscMatrix& lower, const SymbolicFactor& sf,
                                     const UnitBlock& blk, const RowStructure& rows_of,
                                     double* vals, RecordRead&& record_read) {
  for (index_t j = blk.cols.lo; j <= blk.cols.hi; ++j) {
    const auto jrows = sf.col_rows(j);
    const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
    const count_t diag_id = jbase;
    const auto lo_it =
        std::lower_bound(jrows.begin(), jrows.end(), std::max(j, blk.rows.lo));
    for (auto it = lo_it; it != jrows.end() && *it <= blk.rows.hi; ++it) {
      const index_t i = *it;
      double v = lower.at(i, j);
      const auto rlo = static_cast<std::size_t>(rows_of.ptr[static_cast<std::size_t>(j)]);
      const auto rhi =
          static_cast<std::size_t>(rows_of.ptr[static_cast<std::size_t>(j) + 1]);
      for (std::size_t t = rlo; t < rhi; ++t) {
        const index_t k = rows_of.cols[t];
        // (i, k) may be absent; binary search column k's structure.
        const auto krows = sf.col_rows(k);
        const auto kit = std::lower_bound(krows.begin(), krows.end(), i);
        if (kit == krows.end() || *kit != i) continue;
        const count_t eik = sf.col_ptr()[static_cast<std::size_t>(k)] + (kit - krows.begin());
        record_read(eik);
        record_read(rows_of.elem[t]);
        v -= vals[static_cast<std::size_t>(eik)] *
             vals[static_cast<std::size_t>(rows_of.elem[t])];
      }
      if (i == j) {
        SPF_REQUIRE(v > 0.0, "matrix is not positive definite (non-positive pivot)");
        v = std::sqrt(v);
      } else {
        record_read(diag_id);
        v /= vals[static_cast<std::size_t>(diag_id)];
      }
      vals[static_cast<std::size_t>(jbase + (it - jrows.begin()))] = v;
    }
  }
}

}  // namespace spf
