#include "exec/kernel_plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "numeric/dense.hpp"
#include "numeric/simd.hpp"
#include "support/check.hpp"

namespace spf {

namespace {
std::atomic<std::uint64_t> g_kernel_plan_compiles{0};
}  // namespace

std::uint64_t kernel_plan_compile_count() {
  return g_kernel_plan_compiles.load(std::memory_order_relaxed);
}

std::string to_string(ExecKernel kernel) {
  switch (kernel) {
    case ExecKernel::kElementwise:
      return "elementwise";
    case ExecKernel::kBlocked:
      return "blocked";
  }
  return "unknown";
}

std::size_t KernelPlan::byte_size() const {
  auto vec_bytes = [](const auto& v) { return v.size() * sizeof(v[0]); };
  return sizeof(KernelPlan) + vec_bytes(blocks) + vec_bytes(ascatter) +
         vec_bytes(gathers) + vec_bytes(updates) + vec_bytes(col_updates) +
         vec_bytes(col_macs) + vec_bytes(col_base);
}

KernelPlan compile_kernel_plan(const Partition& partition,
                               std::span<const count_t> a_col_ptr,
                               std::span<const index_t> a_row_ind,
                               const RowStructure& rows_of) {
  const SymbolicFactor& sf = partition.factor;
  const index_t n = sf.n();
  SPF_REQUIRE(a_col_ptr.size() == static_cast<std::size_t>(n) + 1,
              "input pattern does not match the partition's order");
  SPF_REQUIRE(static_cast<count_t>(a_row_ind.size()) == a_col_ptr[a_col_ptr.size() - 1],
              "input pattern row indices do not match its column pointers");
  SPF_REQUIRE(rows_of.ptr.size() == static_cast<std::size_t>(n) + 1,
              "row structure does not match the partition's factor");
  g_kernel_plan_compiles.fetch_add(1, std::memory_order_relaxed);

  KernelPlan kp;
  kp.n = n;
  kp.input_nnz = a_col_ptr[static_cast<std::size_t>(n)];
  kp.factor_nnz = sf.nnz();
  kp.nblocks = partition.num_blocks();
  kp.blocks.reserve(static_cast<std::size_t>(kp.nblocks));

  const auto col_ptr = sf.col_ptr();
  std::vector<index_t> ks;  // source-column scratch, reused per block

  for (index_t b = 0; b < kp.nblocks; ++b) {
    const UnitBlock& blk = partition.blocks[static_cast<std::size_t>(b)];
    BlockKernel bk;
    bk.kind = blk.kind;
    bk.rows0 = blk.rows.lo;
    bk.cols0 = blk.cols.lo;

    if (blk.kind == BlockKind::kColumn) {
      const index_t j = blk.cols.lo;
      const auto jrows = sf.col_rows(j);
      const count_t jbase = col_ptr[static_cast<std::size_t>(j)];
      bk.h = static_cast<index_t>(jrows.size());
      bk.w = 1;
      bk.colbase_off = static_cast<count_t>(kp.col_base.size());
      kp.col_base.push_back(jbase);

      // Input scatter: A's column is a subset of the factor column; the
      // two sorted lists merge in one pass.
      bk.a_off = static_cast<count_t>(kp.ascatter.size());
      std::size_t pj = 0;
      for (count_t slot = a_col_ptr[static_cast<std::size_t>(j)];
           slot < a_col_ptr[static_cast<std::size_t>(j) + 1]; ++slot) {
        const index_t i = a_row_ind[static_cast<std::size_t>(slot)];
        while (pj < jrows.size() && jrows[pj] < i) ++pj;
        SPF_CHECK(pj < jrows.size() && jrows[pj] == i,
                  "input entry outside the factor structure");
        kp.ascatter.push_back({slot, jbase + static_cast<count_t>(pj)});
      }
      bk.a_len = static_cast<index_t>(a_col_ptr[static_cast<std::size_t>(j) + 1] -
                                      a_col_ptr[static_cast<std::size_t>(j)]);

      // One update op per source column k of row j, ascending in k — the
      // exact k-enumeration (and order) of the elementwise path.
      bk.op_off = static_cast<count_t>(kp.col_updates.size());
      for (count_t t = rows_of.ptr[static_cast<std::size_t>(j)];
           t < rows_of.ptr[static_cast<std::size_t>(j) + 1]; ++t) {
        const index_t k = rows_of.cols[static_cast<std::size_t>(t)];
        ColumnUpdate cu;
        cu.ljk = rows_of.elem[static_cast<std::size_t>(t)];
        cu.mac_off = static_cast<count_t>(kp.col_macs.size());
        const auto krows = sf.col_rows(k);
        const count_t kbase = col_ptr[static_cast<std::size_t>(k)];
        // Targets: i in struct(k) ∩ struct(j), i >= j.
        auto kit = std::lower_bound(krows.begin(), krows.end(), j);
        std::size_t qj = 0;
        for (; kit != krows.end(); ++kit) {
          const index_t i = *kit;
          while (qj < jrows.size() && jrows[qj] < i) ++qj;
          if (qj == jrows.size()) break;
          if (jrows[qj] != i) continue;
          kp.col_macs.push_back({jbase + static_cast<count_t>(qj),
                                 kbase + static_cast<count_t>(kit - krows.begin())});
        }
        cu.mac_len =
            static_cast<index_t>(static_cast<count_t>(kp.col_macs.size()) - cu.mac_off);
        kp.col_updates.push_back(cu);
      }
      bk.op_len = static_cast<index_t>(rows_of.ptr[static_cast<std::size_t>(j) + 1] -
                                       rows_of.ptr[static_cast<std::size_t>(j)]);
    } else {
      const index_t c0 = blk.cols.lo;
      const index_t c1 = blk.cols.hi;
      const index_t r0 = blk.rows.lo;
      const index_t r1 = blk.rows.hi;
      const bool tri = blk.kind == BlockKind::kTriangle;
      bk.h = r1 - r0 + 1;
      bk.w = c1 - c0 + 1;
      kp.max_h = std::max(kp.max_h, bk.h);
      kp.max_w = std::max(kp.max_w, bk.w);

      // Panel column bases.  Dense nesting within a cluster makes each
      // panel column a contiguous run of its factor column's storage;
      // strictly increasing row lists mean checking the run's last entry
      // pins every entry in between.
      bk.colbase_off = static_cast<count_t>(kp.col_base.size());
      for (index_t c = 0; c < bk.w; ++c) {
        const index_t j = c0 + c;
        const auto jrows = sf.col_rows(j);
        if (tri) {
          const index_t run = r1 - j;  // panel rows c..h-1 are rows j..r1
          SPF_CHECK(static_cast<index_t>(jrows.size()) > run && jrows[run] == r1,
                    "cluster triangle is not dense in the factor");
          kp.col_base.push_back(col_ptr[static_cast<std::size_t>(j)]);
        } else {
          auto it = std::lower_bound(jrows.begin(), jrows.end(), r0);
          SPF_CHECK(it != jrows.end() && *it == r0,
                    "rectangle rows are not stored in the factor");
          const auto pos = static_cast<count_t>(it - jrows.begin());
          SPF_CHECK(static_cast<count_t>(jrows.size()) - pos >= bk.h &&
                        jrows[static_cast<std::size_t>(pos) +
                              static_cast<std::size_t>(bk.h) - 1] == r1,
                    "rectangle rows are not dense in the factor");
          kp.col_base.push_back(col_ptr[static_cast<std::size_t>(j)] + pos);
        }
      }
      if (!tri) {
        // Trsm reads the cluster triangle restricted to this block's
        // column strip; record its diagonal bases.
        bk.tribase_off = static_cast<count_t>(kp.col_base.size());
        for (index_t c = 0; c < bk.w; ++c) {
          const index_t j = c0 + c;
          const auto jrows = sf.col_rows(j);
          SPF_CHECK(static_cast<index_t>(jrows.size()) > c1 - j && jrows[c1 - j] == c1,
                    "cluster triangle is not dense in the factor");
          kp.col_base.push_back(col_ptr[static_cast<std::size_t>(j)]);
        }
      }

      // Input scatter into panel positions (col * h + row offset).
      bk.a_off = static_cast<count_t>(kp.ascatter.size());
      count_t na = 0;
      for (index_t c = 0; c < bk.w; ++c) {
        const index_t j = c0 + c;
        for (count_t slot = a_col_ptr[static_cast<std::size_t>(j)];
             slot < a_col_ptr[static_cast<std::size_t>(j) + 1]; ++slot) {
          const index_t i = a_row_ind[static_cast<std::size_t>(slot)];
          if (i < r0 || i > r1) continue;
          kp.ascatter.push_back(
              {slot, static_cast<count_t>(c) * bk.h + (i - r0)});
          ++na;
        }
      }
      bk.a_len = static_cast<index_t>(na);

      // Update ops: the union of source columns k < c0 over the block's
      // columns, ascending — external ks all precede the intra-cluster
      // ones the potrf/trsm stage applies, preserving the elementwise
      // per-element summation order.
      ks.clear();
      for (index_t j = c0; j <= c1; ++j) {
        for (count_t t = rows_of.ptr[static_cast<std::size_t>(j)];
             t < rows_of.ptr[static_cast<std::size_t>(j) + 1]; ++t) {
          const index_t k = rows_of.cols[static_cast<std::size_t>(t)];
          if (k < c0) ks.push_back(k);
        }
      }
      std::sort(ks.begin(), ks.end());
      ks.erase(std::unique(ks.begin(), ks.end()), ks.end());

      bk.op_off = static_cast<count_t>(kp.updates.size());
      for (index_t k : ks) {
        const auto krows = sf.col_rows(k);
        const count_t kbase = col_ptr[static_cast<std::size_t>(k)];
        KernelUpdate u;
        u.u_off = static_cast<count_t>(kp.gathers.size());
        auto it = std::lower_bound(krows.begin(), krows.end(), r0);
        for (; it != krows.end() && *it <= r1; ++it) {
          kp.gathers.push_back(
              {*it - r0, kbase + static_cast<count_t>(it - krows.begin())});
        }
        u.u_len = static_cast<index_t>(static_cast<count_t>(kp.gathers.size()) - u.u_off);
        if (tri) {
          u.v_off = u.u_off;
          u.v_len = u.u_len;
        } else {
          u.v_off = static_cast<count_t>(kp.gathers.size());
          auto jt = std::lower_bound(krows.begin(), krows.end(), c0);
          for (; jt != krows.end() && *jt <= c1; ++jt) {
            kp.gathers.push_back(
                {*jt - c0, kbase + static_cast<count_t>(jt - krows.begin())});
          }
          u.v_len =
              static_cast<index_t>(static_cast<count_t>(kp.gathers.size()) - u.v_off);
        }
        if (u.u_len == 0 || u.v_len == 0) {
          kp.gathers.resize(static_cast<std::size_t>(u.u_off));  // no targets
          continue;
        }
        // Dense when the op covers enough of the panel that the padded
        // rank-1 column beats the indexed MACs.
        u.dense = 2 * static_cast<count_t>(u.u_len) * u.v_len >=
                  static_cast<count_t>(bk.h) * bk.w;
        kp.updates.push_back(u);
      }
      bk.op_len =
          static_cast<index_t>(static_cast<count_t>(kp.updates.size()) - bk.op_off);
    }
    kp.blocks.push_back(bk);
  }
  SPF_CHECK(static_cast<count_t>(kp.ascatter.size()) == kp.input_nnz,
            "kernel plan must scatter every input entry exactly once");
  return kp;
}

void KernelScratch::resize_for(const KernelPlan& plan) {
  panel.assign(static_cast<std::size_t>(plan.max_h) * static_cast<std::size_t>(plan.max_w),
               0.0);
  u.assign(static_cast<std::size_t>(plan.max_h) * static_cast<std::size_t>(kKernelBatch),
           0.0);
  v.assign(static_cast<std::size_t>(plan.max_w) * static_cast<std::size_t>(kKernelBatch),
           0.0);
  tri.assign(static_cast<std::size_t>(plan.max_w) * static_cast<std::size_t>(plan.max_w),
             0.0);
  ready = true;
}

namespace {

/// Gather a batch of update ops' row (or column) lists into zero-padded
/// panel columns of leading dimension ld.
inline void gather_batch(const KernelGather* g, const KernelUpdate* ops, index_t nb,
                         bool cols, const double* vals, double* dst, index_t ld) {
  for (index_t q = 0; q < nb; ++q) {
    double* col = dst + static_cast<std::size_t>(q) * static_cast<std::size_t>(ld);
    std::fill_n(col, static_cast<std::size_t>(ld), 0.0);
    const KernelUpdate& u = ops[q];
    const count_t off = cols ? u.v_off : u.u_off;
    const index_t len = cols ? u.v_len : u.u_len;
    for (index_t t = 0; t < len; ++t) {
      const KernelGather& e = g[off + t];
      col[e.pos] = vals[e.elem];
    }
  }
}

/// Scalar indexed MAC of one sparse update op into a rectangle panel.
inline void scalar_mac_rect(double* panel, index_t h, const KernelGather* g,
                            const KernelUpdate& u, const double* vals) {
  for (index_t vq = 0; vq < u.v_len; ++vq) {
    const KernelGather& ve = g[u.v_off + vq];
    const double lv = vals[ve.elem];
    double* col = panel + static_cast<std::size_t>(ve.pos) * static_cast<std::size_t>(h);
    for (index_t uq = 0; uq < u.u_len; ++uq) {
      const KernelGather& ue = g[u.u_off + uq];
      col[ue.pos] -= vals[ue.elem] * lv;
    }
  }
}

/// Same for a triangle panel: only targets with row >= col exist; both
/// gather lists are the same ascending sequence, so a two-pointer start
/// skips the above-diagonal pairs.
inline void scalar_mac_tri(double* panel, index_t m, const KernelGather* g,
                           const KernelUpdate& u, const double* vals) {
  index_t start = 0;
  for (index_t vq = 0; vq < u.v_len; ++vq) {
    const KernelGather& ve = g[u.v_off + vq];
    while (start < u.u_len && g[u.u_off + start].pos < ve.pos) ++start;
    const double lv = vals[ve.elem];
    double* col = panel + static_cast<std::size_t>(ve.pos) * static_cast<std::size_t>(m);
    for (index_t uq = start; uq < u.u_len; ++uq) {
      const KernelGather& ue = g[u.u_off + uq];
      col[ue.pos] -= vals[ue.elem] * lv;
    }
  }
}

}  // namespace

void execute_block_kernel(const KernelPlan& kp, index_t b,
                          std::span<const double> a_values, double* vals,
                          KernelScratch& scratch) {
  const BlockKernel& bk = kp.blocks[static_cast<std::size_t>(b)];
  const KernelGather* g = kp.gathers.data();

  if (bk.kind == BlockKind::kColumn) {
    for (index_t t = 0; t < bk.a_len; ++t) {
      const KernelScatterA& e = kp.ascatter[static_cast<std::size_t>(bk.a_off + t)];
      vals[e.dst] = a_values[static_cast<std::size_t>(e.src)];
    }
    for (index_t t = 0; t < bk.op_len; ++t) {
      const ColumnUpdate& cu = kp.col_updates[static_cast<std::size_t>(bk.op_off + t)];
      const double ljk = vals[cu.ljk];
      const ColumnMac* mac = kp.col_macs.data() + cu.mac_off;
      for (index_t q = 0; q < cu.mac_len; ++q) {
        vals[mac[q].dst] -= vals[mac[q].src] * ljk;
      }
    }
    const count_t base = kp.col_base[static_cast<std::size_t>(bk.colbase_off)];
    const double d = vals[base];
    SPF_REQUIRE(d > 0.0, "matrix is not positive definite (non-positive pivot)");
    const double sq = std::sqrt(d);
    vals[base] = sq;
    for (index_t r = 1; r < bk.h; ++r) vals[base + r] /= sq;
    return;
  }

  const index_t h = bk.h;
  const index_t w = bk.w;
  const bool tri = bk.kind == BlockKind::kTriangle;
  // Lazy sizing: the first dense block a worker executes allocates and
  // zero-fills its scratch, so the pages are first touched — and placed —
  // on that worker's NUMA node.
  if (!scratch.ready) scratch.resize_for(kp);
  // Panel microkernels of the active SIMD tier (numeric/simd.hpp).  Every
  // tier preserves the ascending-k per-element accumulation order, so the
  // blocked path stays bitwise deterministic run-to-run within a tier.
  const DenseKernelTable& kt = active_dense_kernels();
  double* panel = scratch.panel.data();
  std::fill_n(panel, static_cast<std::size_t>(h) * static_cast<std::size_t>(w), 0.0);
  for (index_t t = 0; t < bk.a_len; ++t) {
    const KernelScatterA& e = kp.ascatter[static_cast<std::size_t>(bk.a_off + t)];
    panel[e.dst] = a_values[static_cast<std::size_t>(e.src)];
  }

  // External updates in compiled (ascending-k) order; consecutive dense
  // ops batch into one rank-nb microkernel call.
  const KernelUpdate* ops = kp.updates.data() + bk.op_off;
  index_t t = 0;
  while (t < bk.op_len) {
    if (!ops[t].dense) {
      if (tri) {
        scalar_mac_tri(panel, h, g, ops[t], vals);
      } else {
        scalar_mac_rect(panel, h, g, ops[t], vals);
      }
      ++t;
      continue;
    }
    index_t nb = 1;
    while (t + nb < bk.op_len && nb < kKernelBatch && ops[t + nb].dense) ++nb;
    gather_batch(g, ops + t, nb, /*cols=*/false, vals, scratch.u.data(), h);
    if (tri) {
      kt.syrk_lt(panel, h, h, scratch.u.data(), h, nb);
    } else {
      gather_batch(g, ops + t, nb, /*cols=*/true, vals, scratch.v.data(), w);
      kt.gemm_nt(panel, h, w, h, scratch.u.data(), h, scratch.v.data(), w, nb);
    }
    t += nb;
  }

  if (tri) {
    SPF_REQUIRE(
        dense_panel_cholesky(
            std::span<double>(panel, static_cast<std::size_t>(h) * static_cast<std::size_t>(w)),
            h, w),
        "matrix is not positive definite (non-positive pivot)");
    for (index_t c = 0; c < w; ++c) {
      const count_t base = kp.col_base[static_cast<std::size_t>(bk.colbase_off + c)];
      const double* col = panel + static_cast<std::size_t>(c) * static_cast<std::size_t>(h);
      for (index_t r = c; r < h; ++r) vals[base + (r - c)] = col[r];
    }
  } else {
    double* trip = scratch.tri.data();
    for (index_t c = 0; c < w; ++c) {
      const count_t base = kp.col_base[static_cast<std::size_t>(bk.tribase_off + c)];
      double* col = trip + static_cast<std::size_t>(c) * static_cast<std::size_t>(w);
      for (index_t r = c; r < w; ++r) col[r] = vals[base + (r - c)];
    }
    kt.trsm_rlt(panel, h, w, h, trip, w);
    for (index_t c = 0; c < w; ++c) {
      const count_t base = kp.col_base[static_cast<std::size_t>(bk.colbase_off + c)];
      const double* col = panel + static_cast<std::size_t>(c) * static_cast<std::size_t>(h);
      for (index_t r = 0; r < h; ++r) vals[base + r] = col[r];
    }
  }
}

}  // namespace spf
