// Kernel plans: the sparse indexing of block execution, compiled away.
//
// The elementwise executor (exec/parallel_cholesky) pays two binary
// searches plus one sparse lookup *per flop*.  All of that index
// arithmetic depends only on (pattern, partition), so a KernelPlan
// resolves it once: per unit block it precomputes the scatter map from
// input-matrix entries into factor slots, the per-source-column update
// lists with their factor element ids, and — for triangle/rectangle
// blocks — a dense panel layout (column base element ids into the
// contiguous factor storage the cluster nesting guarantees).  Executing
// a block then is gather → dense microkernel (numeric/dense syrk / gemm /
// trsm / panel Cholesky) → indexed scatter, with no searches on the
// numeric path.
//
// Determinism: a blocked execution applies every block's update ops in
// ascending source-column order with a fixed dense/scalar split and a
// fixed batching, and each element of a dense microkernel accumulates its
// k-terms sequentially — so blocked runs are bitwise reproducible
// run-to-run (any thread count, stealing on or off).  Against the
// elementwise path the per-element *operation sequence* differs only by
// interleaved zero-padding terms of the dense batches, so the two modes
// agree to relative rounding tolerance, not bitwise (the bitwise
// executor-equality guarantees stay with kElementwise).
//
// The plan is immutable after compile; core/plan stores one per solver
// plan so warm SolverEngine::factorize calls replay it with zero
// symbolic or compile work.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "matrix/types.hpp"
#include "partition/partitioner.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

/// Which numeric kernel the parallel executor runs per unit block.
enum class ExecKernel : unsigned char {
  kElementwise,  ///< per-element searches; bitwise-compatible baseline
  kBlocked,      ///< precompiled gather/scatter + dense microkernels
};

std::string to_string(ExecKernel kernel);

/// One matched row (or column) of an update op: `pos` is the offset
/// within the target block's row (column) extent, `elem` the factor
/// element id of (row, k) ((col, k)) supplying the value.
struct KernelGather {
  index_t pos = 0;
  count_t elem = 0;
  friend bool operator==(const KernelGather&, const KernelGather&) = default;
};

/// One input-matrix entry owned by a block: value slot `src` of the
/// (permuted) input lands at `dst` — a factor element id for column
/// blocks, a panel position (col * h + row) for dense blocks.
struct KernelScatterA {
  count_t src = 0;
  count_t dst = 0;
  friend bool operator==(const KernelScatterA&, const KernelScatterA&) = default;
};

/// One source column k contributing updates to a dense block: the row
/// gather [u_off, u_off+u_len) and column gather [v_off, v_off+v_len)
/// into KernelPlan::gathers (triangles share one list: v_off == u_off).
/// `dense` selects the microkernel path (zero-padded rank-1 column of a
/// syrk/gemm batch) over the scalar indexed MAC.
struct KernelUpdate {
  count_t u_off = 0;
  count_t v_off = 0;
  index_t u_len = 0;
  index_t v_len = 0;
  bool dense = false;
  friend bool operator==(const KernelUpdate&, const KernelUpdate&) = default;
};

/// One source column k contributing to a column block: multiplier element
/// (j, k) plus the precomputed MAC pairs in KernelPlan::col_macs.
struct ColumnUpdate {
  count_t ljk = 0;  ///< factor element id of (j, k)
  count_t mac_off = 0;
  index_t mac_len = 0;
  friend bool operator==(const ColumnUpdate&, const ColumnUpdate&) = default;
};

/// One precompiled column-block MAC: vals[dst] -= vals[src] * vals[ljk],
/// dst the target (i, j), src the supplier (i, k).
struct ColumnMac {
  count_t dst = 0;
  count_t src = 0;
  friend bool operator==(const ColumnMac&, const ColumnMac&) = default;
};

/// The compiled execution recipe of one unit block.  Ranges index the
/// KernelPlan pools; `col_base` entries are factor element ids of each
/// panel column's first stored row (for rectangles, `tri_base` adds the
/// diagonal bases of the cluster triangle columns the trsm reads).
struct BlockKernel {
  BlockKind kind = BlockKind::kColumn;
  index_t rows0 = 0;  ///< row extent lo (columns: the column index)
  index_t cols0 = 0;  ///< column extent lo
  index_t h = 0;      ///< rows (columns: stored column length)
  index_t w = 0;      ///< columns (columns: 1)
  count_t a_off = 0;  ///< KernelScatterA range
  index_t a_len = 0;
  count_t op_off = 0;  ///< KernelUpdate range (dense) / ColumnUpdate (column)
  index_t op_len = 0;
  count_t colbase_off = 0;  ///< w entries (columns: 1, the column's base)
  count_t tribase_off = 0;  ///< rectangles: w entries; otherwise unused
  friend bool operator==(const BlockKernel&, const BlockKernel&) = default;
};

/// Dense update ops are batched into panels of at most this many source
/// columns per microkernel call.
inline constexpr index_t kKernelBatch = 8;

/// The compiled plan for one (pattern, partition) pair: per-block recipes
/// over flat pools, plus the shape figures consumers validate against.
struct KernelPlan {
  index_t n = 0;
  count_t input_nnz = 0;   ///< entries of the (permuted) input pattern
  count_t factor_nnz = 0;  ///< entries of the partition's factor
  index_t nblocks = 0;
  index_t max_h = 0;  ///< tallest dense block (scratch sizing)
  index_t max_w = 0;  ///< widest dense block

  std::vector<BlockKernel> blocks;
  std::vector<KernelScatterA> ascatter;
  std::vector<KernelGather> gathers;
  std::vector<KernelUpdate> updates;
  std::vector<ColumnUpdate> col_updates;
  std::vector<ColumnMac> col_macs;
  std::vector<count_t> col_base;

  friend bool operator==(const KernelPlan&, const KernelPlan&) = default;

  /// Approximate resident bytes (pool arrays; plan-cache accounting).
  [[nodiscard]] std::size_t byte_size() const;
};

/// Compile the kernel plan for `partition` against the (permuted) input
/// pattern `a_col_ptr`/`a_row_ind` — the pattern whose value array block
/// execution will gather from — and the factor's row structure.  Pure
/// function of its inputs; O(factor flops) time and metadata for column
/// partitions (wrap), O(updates + block geometry) for dense partitions.
[[nodiscard]] KernelPlan compile_kernel_plan(const Partition& partition,
                                             std::span<const count_t> a_col_ptr,
                                             std::span<const index_t> a_row_ind,
                                             const RowStructure& rows_of);

/// Per-worker scratch for blocked execution; sized once per run.
struct KernelScratch {
  std::vector<double> panel;  ///< max_h x max_w target panel
  std::vector<double> u;      ///< max_h x kKernelBatch row gathers
  std::vector<double> v;      ///< max_w x kKernelBatch column gathers
  std::vector<double> tri;    ///< max_w x max_w trsm triangle gather
  bool ready = false;         ///< buffers sized (and first-touched)?

  /// Size and zero-fill the buffers for `plan`, marking them ready.
  /// execute_block_kernel calls this lazily on first use, so a
  /// default-constructed scratch handed to a worker thread is first
  /// *touched* by that worker — the OS first-touch policy then places
  /// its pages on the worker's NUMA node, not the main thread's.
  void resize_for(const KernelPlan& plan);
};

/// Execute unit block `b`: scatter the block's input entries, apply its
/// compiled update ops (dense batches through the numeric/dense
/// microkernels, scalar ops as indexed MACs), factor/scale, and scatter
/// the results into `vals` (the shared factor value array, indexed by
/// element id).  `a_values` must be the value array of the pattern the
/// plan was compiled against.  Throws spf::invalid_input on a
/// non-positive pivot.
void execute_block_kernel(const KernelPlan& plan, index_t b,
                          std::span<const double> a_values, double* vals,
                          KernelScratch& scratch);

/// Process-wide number of compile_kernel_plan invocations (relaxed
/// counter; lets tests assert the warm engine path compiles nothing).
std::uint64_t kernel_plan_compile_count();

}  // namespace spf
