#include "exec/parallel_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>

#include "exec/elementwise_kernel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/exec_observer.hpp"
#include "support/check.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

double ParallelExecResult::measured_imbalance() const {
  double total = 0.0;
  double mx = 0.0;
  for (double b : busy_seconds) {
    total += b;
    mx = std::max(mx, b);
  }
  if (total <= 0.0) return 0.0;
  const auto n = static_cast<double>(busy_seconds.size());
  return (mx - total / n) * n / total;
}

double ParallelExecResult::busy_fraction() const {
  if (wall_seconds <= 0.0 || nthreads <= 0) return 0.0;
  double total = 0.0;
  for (double b : busy_seconds) total += b;
  return total / (static_cast<double>(nthreads) * wall_seconds);
}

namespace {

/// Everything a block task needs, shared across all workers.  Immutable
/// after construction except `vals` (disjoint single-writer elements),
/// `indeg` (atomics) and the per-thread accounting arrays (each indexed by
/// the executing worker's id, and read only after the pool is idle — the
/// pool's completion protocol orders those reads after the writes).
struct ExecContext {
  const CscMatrix& lower;
  const Partition& partition;
  const BlockDeps& deps;
  const std::vector<count_t>& blk_work;
  const Assignment& assignment;
  const RowStructure* rows_of;  // elementwise path
  const KernelPlan* plan;       // blocked path
  ExecKernel kernel;
  std::unique_ptr<std::atomic<index_t>[]> indeg;
  ThreadPool* pool;  // null on the single-thread inline path
  index_t nthreads;
  obs::ExecObserver* obs = nullptr;
  double* vals = nullptr;
  count_t* work_done = nullptr;      // indexed by worker id
  count_t* blocks_done = nullptr;    // indexed by worker id
  KernelScratch* scratch = nullptr;  // indexed by worker id (blocked path)

  [[nodiscard]] index_t worker_of(index_t block) const {
    return assignment.proc(block) % nthreads;
  }
};

/// Compute unit block b via the shared element-wise kernel
/// (exec/elementwise_kernel.hpp) — the enumeration and per-element
/// operation order every executor agrees on bitwise.  With kObserve set,
/// every factor element this block reads is reported to the observer's
/// traffic accounting (identical arithmetic either way; the
/// instantiation with kObserve = false carries zero observation cost).
template <bool kObserve>
void compute_block(const ExecContext& ctx, index_t b) {
  const UnitBlock& blk = ctx.partition.blocks[static_cast<std::size_t>(b)];
  if constexpr (kObserve) {
    const index_t my_proc = ctx.assignment.proc(b);
    elementwise_factor_block(ctx.lower, ctx.partition.factor, blk, *ctx.rows_of,
                             ctx.vals,
                             [&](count_t e) { ctx.obs->record_read(my_proc, e); });
  } else {
    elementwise_factor_block(ctx.lower, ctx.partition.factor, blk, *ctx.rows_of,
                             ctx.vals, ElemNoObserve{});
  }
}

/// Single-thread fast path: execute the DAG inline on the calling thread
/// in a deterministic topological order (FIFO over release edges), with no
/// pool, no thread spawn, and no atomics.  Values are bitwise identical to
/// the pooled execution at any thread count — every factor element is
/// written exactly once, by a block whose inputs are complete before it
/// runs in *any* topological order — so this is purely an overhead cut:
/// for small matrices thread creation and per-task queue traffic were a
/// large fraction of single-thread factorization time.
ParallelExecResult sequential_cholesky(const CscMatrix& lower,
                                       const Partition& partition,
                                       const BlockDeps& deps,
                                       const std::vector<count_t>& blk_work,
                                       const Assignment& assignment,
                                       const RowStructure* rows_of,
                                       const KernelPlan* plan, ExecKernel kernel,
                                       obs::ExecObserver* observer) {
  const index_t nb = partition.num_blocks();
  ParallelExecResult result;
  result.nthreads = 1;
  result.values.assign(static_cast<std::size_t>(partition.factor.nnz()), 0.0);
  result.work_done.assign(1, 0);
  result.blocks_done.assign(1, 0);
  result.busy_seconds.assign(1, 0.0);

  if (observer != nullptr) observer->begin_run(partition, assignment, 1, &deps);
  obs::Tracer* const tracer = observer != nullptr ? observer->tracer() : nullptr;

  // Replay the precomputed near-front-to-back topological order when the
  // deps carry one (block_dependencies always fills it); fall back to a
  // FIFO release walk for hand-built deps.
  std::vector<index_t> ready;
  std::vector<index_t> indeg;
  if (static_cast<index_t>(deps.seq_order.size()) == nb) {
    ready = deps.seq_order;
  } else {
    indeg.resize(static_cast<std::size_t>(nb));
    for (index_t b = 0; b < nb; ++b) {
      indeg[static_cast<std::size_t>(b)] =
          static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size());
    }
    ready.assign(deps.independent.begin(), deps.independent.end());
    ready.reserve(static_cast<std::size_t>(nb));
  }
  const bool release_walk = indeg.size() == static_cast<std::size_t>(nb);

  KernelScratch scratch;
  ExecContext ctx{lower,
                  partition,
                  deps,
                  blk_work,
                  assignment,
                  rows_of,
                  plan,
                  kernel,
                  nullptr,  // no in-degree atomics
                  nullptr,  // no pool
                  1,
                  observer,
                  result.values.data(),
                  result.work_done.data(),
                  result.blocks_done.data(),
                  &scratch};

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < ready.size(); ++q) {
    const index_t b = ready[q];
    const std::int64_t b0 = observer != nullptr ? obs::now_ns() : 0;
    if (kernel == ExecKernel::kBlocked) {
      execute_block_kernel(*plan, b, lower.values(), result.values.data(), scratch);
    } else if (observer != nullptr && observer->traffic_enabled()) {
      compute_block<true>(ctx, b);
    } else {
      compute_block<false>(ctx, b);
    }
    if (observer != nullptr) {
      const std::int64_t b1 = obs::now_ns();
      observer->record_block(0, assignment.proc(b), b,
                             blk_work[static_cast<std::size_t>(b)], b0, b1,
                             kernel == ExecKernel::kBlocked);
      if (tracer != nullptr) {
        tracer->ring(0).record({b0, b1,
                                static_cast<std::int64_t>(result.blocks_done[0]), 0,
                                obs::SpanKind::kPoolTask});
      }
    }
    result.work_done[0] += blk_work[static_cast<std::size_t>(b)];
    ++result.blocks_done[0];
    if (release_walk) {
      for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
        if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
      }
    }
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  result.wall_seconds = dt;
  result.busy_seconds[0] = dt;
  SPF_CHECK(result.blocks_done[0] == static_cast<count_t>(nb),
            "sequential executor stranded blocks");
  return result;
}

void run_block(ExecContext& ctx, index_t b) {
  const index_t me = ThreadPool::worker_id();
  obs::ExecObserver* const o = ctx.obs;
  const std::int64_t t0 = o != nullptr ? obs::now_ns() : 0;
  if (ctx.kernel == ExecKernel::kBlocked) {
    execute_block_kernel(*ctx.plan, b, ctx.lower.values(), ctx.vals,
                         ctx.scratch[static_cast<std::size_t>(me)]);
  } else if (o != nullptr && o->traffic_enabled()) {
    compute_block<true>(ctx, b);
  } else {
    compute_block<false>(ctx, b);
  }
  if (o != nullptr) {
    o->record_block(me, ctx.assignment.proc(b), b,
                    ctx.blk_work[static_cast<std::size_t>(b)], t0, obs::now_ns(),
                    ctx.kernel == ExecKernel::kBlocked);
  }
  ctx.work_done[static_cast<std::size_t>(me)] +=
      ctx.blk_work[static_cast<std::size_t>(b)];
  ++ctx.blocks_done[static_cast<std::size_t>(me)];
  // Release successors.  acq_rel: the release half publishes this block's
  // values to whoever performs the final decrement; the acquire half makes
  // every earlier predecessor's values visible to the submit below.
  for (index_t s : ctx.deps.succs[static_cast<std::size_t>(b)]) {
    const index_t left =
        ctx.indeg[static_cast<std::size_t>(s)].fetch_sub(1, std::memory_order_acq_rel);
    SPF_CHECK(left >= 1, "block in-degree underflow (double release)");
    if (left == 1) {
      ctx.pool->submit(ctx.worker_of(s), [&ctx, s] { run_block(ctx, s); });
    }
  }
}

}  // namespace

ParallelExecResult parallel_cholesky(const CscMatrix& lower, const Partition& partition,
                                     const BlockDeps& deps,
                                     const std::vector<count_t>& blk_work,
                                     const Assignment& assignment,
                                     const ParallelExecOptions& opt) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");
  SPF_REQUIRE(deps.preds.size() == partition.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(blk_work.size() == partition.blocks.size(), "blk_work/partition mismatch");
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  const index_t nthreads = opt.nthreads > 0 ? opt.nthreads : assignment.nprocs;
  SPF_REQUIRE(nthreads >= 1, "need at least one thread");

  const index_t nb = partition.num_blocks();

  // Symbolic artifacts: replay the caller's precomputed copies when given
  // (the warm engine path does zero symbolic work here), build locally
  // otherwise.
  RowStructure local_rows;
  const RowStructure* rows_of = opt.row_structure;
  KernelPlan local_plan;
  const KernelPlan* plan = opt.kernel_plan;
  if (opt.kernel == ExecKernel::kBlocked) {
    if (plan == nullptr) {
      if (rows_of == nullptr) {
        local_rows = build_row_structure(sf);
        rows_of = &local_rows;
      }
      local_plan = compile_kernel_plan(partition, lower.col_ptr(), lower.row_ind(),
                                       *rows_of);
      plan = &local_plan;
    }
    SPF_REQUIRE(plan->n == sf.n() && plan->factor_nnz == sf.nnz() &&
                    plan->nblocks == nb && plan->input_nnz == lower.nnz(),
                "kernel plan does not match this (matrix, partition)");
  } else if (rows_of == nullptr) {
    local_rows = build_row_structure(sf);
    rows_of = &local_rows;
  }

  obs::ExecObserver* const observer = opt.observer;
  if (observer != nullptr) {
    SPF_REQUIRE(!(observer->traffic_enabled() && opt.kernel == ExecKernel::kBlocked),
                "measured traffic accounting requires the elementwise kernel");
  }
  if (nthreads == 1) {
    return sequential_cholesky(lower, partition, deps, blk_work, assignment, rows_of,
                               plan, opt.kernel, observer);
  }
  if (observer != nullptr) observer->begin_run(partition, assignment, nthreads, &deps);
  ThreadPool pool({.nthreads = nthreads,
                   .allow_stealing = opt.allow_stealing,
                   .tracer = observer != nullptr ? observer->tracer() : nullptr});

  ParallelExecResult result;
  result.nthreads = nthreads;
  result.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);
  result.work_done.assign(static_cast<std::size_t>(nthreads), 0);
  result.blocks_done.assign(static_cast<std::size_t>(nthreads), 0);

  // Scratch stays unsized here: execute_block_kernel sizes each worker's
  // scratch lazily on that worker's thread, so the panel pages are
  // first-touched — and NUMA-placed — where the kernels will run.
  std::vector<KernelScratch> scratch;
  if (opt.kernel == ExecKernel::kBlocked) {
    scratch.resize(static_cast<std::size_t>(nthreads));
  }

  ExecContext ctx{lower,
                  partition,
                  deps,
                  blk_work,
                  assignment,
                  rows_of,
                  plan,
                  opt.kernel,
                  std::make_unique<std::atomic<index_t>[]>(static_cast<std::size_t>(nb)),
                  &pool,
                  nthreads,
                  observer,
                  result.values.data(),
                  result.work_done.data(),
                  result.blocks_done.data(),
                  scratch.data()};
  for (index_t b = 0; b < nb; ++b) {
    ctx.indeg[static_cast<std::size_t>(b)].store(
        static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size()),
        std::memory_order_relaxed);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (index_t b : deps.independent) {
    pool.submit(ctx.worker_of(b), [&ctx, b] { run_block(ctx, b); });
  }
  pool.wait_idle();  // rethrows (e.g. non-SPD pivot failure)
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Every block must have run exactly once (the DAG is connected to the
  // independent set and acyclic; a miscounted in-degree would strand work).
  count_t ran = 0;
  for (count_t c : result.blocks_done) ran += c;
  SPF_CHECK(ran == static_cast<count_t>(nb), "parallel executor stranded blocks");

  result.busy_seconds = pool.busy_seconds();
  for (count_t s : pool.tasks_stolen()) result.blocks_stolen += s;
  for (count_t c : pool.queue_contention()) result.queue_contention += c;
  return result;
}

}  // namespace spf
