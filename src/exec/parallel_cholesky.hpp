// Shared-memory parallel numeric Cholesky over a (partition, schedule).
//
// Executes the paper's mapping on real threads: every worker of a
// work-stealing pool plays one paper "processor", computing the unit
// blocks its Assignment gave it in dependency order.  Atomic in-degree
// counters on the block DAG release successors — when a block finishes,
// each successor's counter is decremented and a successor reaching zero is
// submitted to its owner's queue.  All threads share one factor-value
// array: each element is written exactly once, by the block that owns it,
// and read by successor blocks only after the release edge, so the
// execution is race-free by construction (and verified under
// ThreadSanitizer in CI).
//
// The per-thread busy times and executed work let the *measured* load
// balance and speedup be compared directly against the paper's analytic
// imbalance (MappingReport::lambda) and the event-driven simulator's
// prediction (SimResult::makespan) — closing the loop between the static
// metrics and wall-clock reality.
#pragma once

#include <vector>

#include "exec/kernel_plan.hpp"
#include "matrix/csc.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"
#include "symbolic/row_structure.hpp"

namespace spf {

namespace obs {
class ExecObserver;
}  // namespace obs

struct ParallelExecOptions {
  /// Worker threads; 0 means one per assignment processor.  When fewer
  /// threads than processors are given, processor p folds onto worker
  /// p % nthreads (block-cyclic over workers).
  index_t nthreads = 0;
  /// Allow idle workers to steal queued blocks from their peers.  Disable
  /// to measure the static schedule exactly as the paper models it (each
  /// processor runs only its own blocks).
  bool allow_stealing = true;
  /// Numeric kernel per unit block.  kElementwise keeps the bitwise
  /// executor-equality guarantees; kBlocked replays a precompiled
  /// KernelPlan through the dense microkernels (bitwise deterministic
  /// run-to-run, equal to elementwise to rounding tolerance).
  ExecKernel kernel = ExecKernel::kElementwise;
  /// Precomputed factor row structure (elementwise path).  When null it is
  /// rebuilt from the partition's factor; pass core/plan's copy to make
  /// warm runs free of symbolic work.  Must match partition.factor.
  const RowStructure* row_structure = nullptr;
  /// Precompiled kernel plan (blocked path).  When null and
  /// kernel == kBlocked, one is compiled on entry from `lower`'s pattern.
  /// Must have been compiled against `lower`'s exact pattern and
  /// `partition`.
  const KernelPlan* kernel_plan = nullptr;
  /// Runtime observability (obs/exec_observer.hpp): per-block trace spans,
  /// per-processor executed work, and (elementwise kernel only) measured
  /// data traffic.  The executor calls begin_run on it; read
  /// observer->observation() after this call returns.  Null — the default
  /// — costs one branch per block and nothing per element.
  obs::ExecObserver* observer = nullptr;
};

struct ParallelExecResult {
  /// The factor values, aligned with the partition's symbolic structure
  /// (indexed by element id).
  std::vector<double> values;

  index_t nthreads = 1;
  /// End-to-end factorization wall time (release of the first independent
  /// blocks to completion of the last), in seconds.
  double wall_seconds = 0.0;
  /// Per-thread time spent inside block computations, in seconds.
  std::vector<double> busy_seconds;
  /// Per-thread executed work in the paper's work units (sum of blk_work
  /// over the blocks the thread actually ran).
  std::vector<count_t> work_done;
  /// Per-thread number of blocks executed.
  std::vector<count_t> blocks_done;
  /// Blocks that ran on a worker other than their scheduled owner.
  count_t blocks_stolen = 0;
  /// Queue-lock acquisitions that found the lock held (summed over the
  /// pool's per-worker queues) — the scalability telemetry of the
  /// per-worker-lock pool.  Near zero when queue traffic scales.
  count_t queue_contention = 0;

  /// Measured load imbalance over busy time: (max - mean) * n / total —
  /// the wall-clock analogue of MappingReport::lambda.
  [[nodiscard]] double measured_imbalance() const;
  /// Fraction of nthreads * wall_seconds spent busy (the wall-clock
  /// analogue of SimResult::efficiency).
  [[nodiscard]] double busy_fraction() const;
};

/// Factor the (already permuted) matrix `lower` on `opt.nthreads` threads.
/// With one thread the DAG is executed inline on the calling thread (no
/// pool, no thread spawn, no atomics) in a topological order; the values
/// are bitwise identical to the pooled execution because every factor
/// element is written exactly once from fully-computed inputs regardless
/// of block order.
/// `lower` must match the structure that produced `partition` (its pattern
/// may be a subset when amalgamation added explicit zeros); `blk_work` is
/// the paper's per-block work (metrics/work.hpp), used only for the
/// per-thread accounting.  Throws spf::invalid_input on non-SPD input.
ParallelExecResult parallel_cholesky(const CscMatrix& lower, const Partition& partition,
                                     const BlockDeps& deps,
                                     const std::vector<count_t>& blk_work,
                                     const Assignment& assignment,
                                     const ParallelExecOptions& opt = {});

}  // namespace spf
