#include "exec/thread_pool.hpp"

#include <chrono>

#include "support/check.hpp"

namespace spf {

namespace {
/// Worker index of the current thread.  A thread belongs to at most one
/// pool for its lifetime, so a plain thread-local suffices.
thread_local index_t tl_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions& opt)
    : nthreads_(opt.nthreads), allow_stealing_(opt.allow_stealing), tracer_(opt.tracer) {
  SPF_REQUIRE(opt.nthreads >= 1, "thread pool needs at least one thread");
  SPF_REQUIRE(tracer_ == nullptr || tracer_->num_workers() >= opt.nthreads,
              "tracer has fewer rings than the pool has workers");
  const auto n = static_cast<std::size_t>(opt.nthreads);
  slots_ = std::make_unique<QueueSlot[]>(n);
  busy_.assign(n, 0.0);
  executed_.assign(n, 0);
  stolen_.assign(n, 0);
  workers_.reserve(n);
  for (index_t t = 0; t < opt.nthreads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    ++signal_;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

index_t ThreadPool::worker_id() { return tl_worker_id; }

void ThreadPool::lock_slot(QueueSlot& slot) {
  if (slot.mu.try_lock()) return;
  slot.contended.fetch_add(1, std::memory_order_relaxed);
  slot.mu.lock();
}

void ThreadPool::finish(count_t ntasks) {
  if (pending_.fetch_sub(ntasks, std::memory_order_acq_rel) == ntasks) {
    // The empty lock orders this notify against a waiter that checked the
    // predicate but has not yet blocked.
    { std::lock_guard<std::mutex> lk(idle_mu_); }
    cv_idle_.notify_all();
  }
}

void ThreadPool::submit(index_t home, Task task) {
  SPF_REQUIRE(home >= 0 && home < num_threads(), "submit target out of range");
  if (aborted_.load(std::memory_order_acquire)) return;  // run torn down; drop
  // Count the task before publishing it: wait_idle must not observe zero
  // between the push and the run.
  pending_.fetch_add(1, std::memory_order_relaxed);
  QueueSlot& slot = slots_[static_cast<std::size_t>(home)];
  lock_slot(slot);
  slot.queue.push_back(std::move(task));
  // seq_cst store before the seq_cst nsleepers_ load below: the Dekker
  // half that makes a lost wakeup impossible (see file comment).
  slot.size.store(static_cast<index_t>(slot.queue.size()), std::memory_order_seq_cst);
  slot.mu.unlock();
  if (aborted_.load(std::memory_order_seq_cst)) {
    // An abort raced this push.  Either the aborting worker's discard saw
    // the task (its slot lock followed ours), or its aborted_ store
    // happened before our load here — then the discard missed it and this
    // thread must drain the queue itself so pending_ reaches zero.
    discard_all_queues();
    return;
  }
  if (nsleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      std::lock_guard<std::mutex> lk(sleep_mu_);
      ++signal_;
    }
    // With stealing any worker may take the task; without, only `home`
    // can, and a targeted notify could wake the wrong sleeper.
    if (allow_stealing_) {
      cv_work_.notify_one();
    } else {
      cv_work_.notify_all();
    }
  }
}

void ThreadPool::discard_all_queues() {
  count_t dropped = 0;
  for (index_t q = 0; q < nthreads_; ++q) {
    QueueSlot& slot = slots_[static_cast<std::size_t>(q)];
    lock_slot(slot);
    dropped += static_cast<count_t>(slot.queue.size());
    slot.queue.clear();
    slot.size.store(0, std::memory_order_seq_cst);
    slot.mu.unlock();
  }
  if (dropped > 0) finish(dropped);
}

bool ThreadPool::try_pop(index_t me, Task& out, index_t& from) {
  if (aborted_.load(std::memory_order_seq_cst)) {
    // Discard everything still queued so pending_ can drain to zero.
    discard_all_queues();
    return false;
  }
  QueueSlot& own = slots_[static_cast<std::size_t>(me)];
  if (own.size.load(std::memory_order_seq_cst) > 0) {
    lock_slot(own);
    if (!own.queue.empty()) {
      out = std::move(own.queue.front());
      own.queue.pop_front();
      own.size.store(static_cast<index_t>(own.queue.size()), std::memory_order_seq_cst);
      own.mu.unlock();
      from = me;
      return true;
    }
    own.mu.unlock();
  }
  if (allow_stealing_) {
    const index_t n = nthreads_;
    for (index_t off = 1; off < n; ++off) {
      const auto v = static_cast<std::size_t>((me + off) % n);
      QueueSlot& peer = slots_[v];
      if (peer.size.load(std::memory_order_seq_cst) == 0) continue;
      lock_slot(peer);
      if (!peer.queue.empty()) {
        out = std::move(peer.queue.back());  // steal the coldest task
        peer.queue.pop_back();
        peer.size.store(static_cast<index_t>(peer.queue.size()),
                        std::memory_order_seq_cst);
        peer.mu.unlock();
        from = static_cast<index_t>(v);
        return true;
      }
      peer.mu.unlock();
    }
  }
  return false;
}

void ThreadPool::abort_run(const std::exception_ptr& err) {
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (!first_exception_) first_exception_ = err;
  }
  aborted_.store(true, std::memory_order_seq_cst);
  discard_all_queues();
}

void ThreadPool::worker_loop(index_t me) {
  tl_worker_id = me;
  for (;;) {
    Task task;
    index_t from = -1;
    if (try_pop(me, task, from)) {
      const auto t0 = std::chrono::steady_clock::now();
      std::exception_ptr err;
      try {
        task();
      } catch (...) {
        err = std::current_exception();
      }
      task = nullptr;  // release captures before accounting
      const auto t1 = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(t1 - t0).count();
      if (tracer_ != nullptr) {
        tracer_->ring(me).record(
            {std::chrono::duration_cast<std::chrono::nanoseconds>(t0.time_since_epoch())
                 .count(),
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1.time_since_epoch())
                 .count(),
             static_cast<std::int64_t>(executed_[static_cast<std::size_t>(me)]), from,
             obs::SpanKind::kPoolTask});
      }
      busy_[static_cast<std::size_t>(me)] += dt;
      ++executed_[static_cast<std::size_t>(me)];
      if (from != me) ++stolen_[static_cast<std::size_t>(me)];
      if (err) abort_run(err);
      finish(1);  // the release half publishing the counters to wait_idle
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) return;

    // Sleep protocol.  Register as a sleeper *before* the final queue
    // re-check (both seq_cst): a submitter that published work our
    // try_pop missed either sees nsleepers_ > 0 and bumps the epoch, or
    // stored its size early enough that the re-check here sees it.
    std::unique_lock<std::mutex> lk(sleep_mu_);
    const std::uint64_t seen = signal_;
    nsleepers_.fetch_add(1, std::memory_order_seq_cst);
    bool runnable = stop_.load(std::memory_order_seq_cst);
    if (!runnable) {
      if (allow_stealing_ || aborted_.load(std::memory_order_seq_cst)) {
        for (index_t q = 0; q < nthreads_ && !runnable; ++q) {
          runnable =
              slots_[static_cast<std::size_t>(q)].size.load(std::memory_order_seq_cst) >
              0;
        }
      } else {
        runnable = slots_[static_cast<std::size_t>(me)].size.load(
                       std::memory_order_seq_cst) > 0;
      }
    }
    if (!runnable) cv_work_.wait(lk, [&] { return signal_ != seen; });
    nsleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ThreadPool::wait_idle() {
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    cv_idle_.wait(lk, [this] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (first_exception_) {
      err = first_exception_;
      first_exception_ = nullptr;
    }
  }
  if (err) {
    aborted_.store(false, std::memory_order_seq_cst);  // pool is reusable
    std::rethrow_exception(err);
  }
}

std::vector<count_t> ThreadPool::queue_contention() const {
  std::vector<count_t> out(static_cast<std::size_t>(nthreads_), 0);
  for (index_t q = 0; q < nthreads_; ++q) {
    out[static_cast<std::size_t>(q)] =
        slots_[static_cast<std::size_t>(q)].contended.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::reset_counters() {
  SPF_REQUIRE(pending_.load(std::memory_order_acquire) == 0,
              "reset_counters requires an idle pool");
  busy_.assign(busy_.size(), 0.0);
  executed_.assign(executed_.size(), 0);
  stolen_.assign(stolen_.size(), 0);
  for (index_t q = 0; q < nthreads_; ++q) {
    slots_[static_cast<std::size_t>(q)].contended.store(0, std::memory_order_relaxed);
  }
}

}  // namespace spf
