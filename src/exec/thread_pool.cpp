#include "exec/thread_pool.hpp"

#include <chrono>

#include "support/check.hpp"

namespace spf {

namespace {
/// Worker index of the current thread.  A thread belongs to at most one
/// pool for its lifetime, so a plain thread-local suffices.
thread_local index_t tl_worker_id = -1;
}  // namespace

ThreadPool::ThreadPool(const ThreadPoolOptions& opt)
    : nthreads_(opt.nthreads), allow_stealing_(opt.allow_stealing), tracer_(opt.tracer) {
  SPF_REQUIRE(opt.nthreads >= 1, "thread pool needs at least one thread");
  SPF_REQUIRE(tracer_ == nullptr || tracer_->num_workers() >= opt.nthreads,
              "tracer has fewer rings than the pool has workers");
  const auto n = static_cast<std::size_t>(opt.nthreads);
  queues_.resize(n);
  busy_.assign(n, 0.0);
  executed_.assign(n, 0);
  stolen_.assign(n, 0);
  workers_.reserve(n);
  for (index_t t = 0; t < opt.nthreads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

index_t ThreadPool::worker_id() { return tl_worker_id; }

void ThreadPool::submit(index_t home, Task task) {
  SPF_REQUIRE(home >= 0 && home < num_threads(), "submit target out of range");
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (aborted_) return;  // run is being torn down; drop silently
    queues_[static_cast<std::size_t>(home)].push_back(std::move(task));
    ++pending_;
  }
  // With stealing any worker may take the task; without, only `home` can,
  // and a targeted notify could wake the wrong sleeper.
  if (allow_stealing_) {
    cv_work_.notify_one();
  } else {
    cv_work_.notify_all();
  }
}

bool ThreadPool::pop_task(index_t me, Task& out, index_t& from) {
  if (aborted_) {
    // Discard everything still queued so pending_ can drain to zero.
    for (auto& q : queues_) {
      while (!q.empty()) {
        q.pop_front();
        --pending_;
      }
    }
    if (pending_ == 0) cv_idle_.notify_all();
    return false;
  }
  auto& own = queues_[static_cast<std::size_t>(me)];
  if (!own.empty()) {
    out = std::move(own.front());
    own.pop_front();
    from = me;
    return true;
  }
  if (allow_stealing_) {
    const index_t n = num_threads();
    for (index_t off = 1; off < n; ++off) {
      const auto v = static_cast<std::size_t>((me + off) % n);
      if (!queues_[v].empty()) {
        out = std::move(queues_[v].back());  // steal the coldest task
        queues_[v].pop_back();
        from = static_cast<index_t>(v);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::worker_loop(index_t me) {
  tl_worker_id = me;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    Task task;
    index_t from = -1;
    if (pop_task(me, task, from)) {
      lk.unlock();
      const auto t0 = std::chrono::steady_clock::now();
      std::exception_ptr err;
      try {
        task();
      } catch (...) {
        err = std::current_exception();
      }
      task = nullptr;  // release captures outside the next lock scope
      const auto t1 = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(t1 - t0).count();
      if (tracer_ != nullptr) {
        tracer_->ring(me).record(
            {std::chrono::duration_cast<std::chrono::nanoseconds>(t0.time_since_epoch())
                 .count(),
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1.time_since_epoch())
                 .count(),
             static_cast<std::int64_t>(executed_[static_cast<std::size_t>(me)]), from,
             obs::SpanKind::kPoolTask});
      }
      lk.lock();
      busy_[static_cast<std::size_t>(me)] += dt;
      ++executed_[static_cast<std::size_t>(me)];
      if (from != me) ++stolen_[static_cast<std::size_t>(me)];
      if (err) {
        if (!first_exception_) first_exception_ = err;
        aborted_ = true;
        cv_work_.notify_all();  // peers must wake to discard their queues
      }
      if (--pending_ == 0) cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
    cv_work_.wait(lk);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return pending_ == 0; });
  if (first_exception_) {
    std::exception_ptr err = first_exception_;
    first_exception_ = nullptr;
    aborted_ = false;  // pool is reusable after the failed run
    std::rethrow_exception(err);
  }
}

void ThreadPool::reset_counters() {
  std::lock_guard<std::mutex> lk(mu_);
  SPF_REQUIRE(pending_ == 0, "reset_counters requires an idle pool");
  busy_.assign(busy_.size(), 0.0);
  executed_.assign(executed_.size(), 0);
  stolen_.assign(stolen_.size(), 0);
}

}  // namespace spf
