// Work-stealing thread pool for DAG execution.
//
// Each worker owns a deque of tasks; submit(home, task) targets a specific
// worker so a static schedule (the paper's processor assignment) can be
// honored, and idle workers steal from the back of their peers' deques when
// stealing is enabled.  Every deque has its *own* mutex (plus an atomic
// size mirror for lock-free emptiness peeks), so queue traffic scales with
// workers instead of serializing behind one global lock — at high thread
// counts and small blocks the old single mutex was the bottleneck
// (bench/perf_micro's churn and steal-heavy workloads gate the win).
// Per-slot contention counters record every lock acquisition that had to
// wait; they surface through parallel_cholesky and the engine metrics.
//
// Sleep protocol (no global queue lock to hang a condition variable on): a
// worker that finds all queues empty registers itself in an atomic sleeper
// count, re-checks the queue sizes, and only then blocks on the wakeup
// epoch.  A submitter publishes the new queue size before reading the
// sleeper count (both seq_cst, Dekker-style), so either the worker sees
// the task or the submitter sees the sleeper and bumps the epoch — a
// wakeup cannot be lost.
//
// Completion protocol: wait_idle() returns once every submitted task (and
// every task those tasks submitted) has finished.  The first exception
// thrown by a task aborts the run — queued tasks are discarded, running
// ones finish — and is rethrown from wait_idle().  The pool is reusable
// after wait_idle() returns or throws.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "matrix/types.hpp"
#include "obs/trace.hpp"

namespace spf {

struct ThreadPoolOptions {
  index_t nthreads = 1;
  /// When false, a task only ever runs on the worker it was submitted to
  /// (each worker is exactly one paper "processor"); when true, idle
  /// workers steal queued tasks from their peers.
  bool allow_stealing = true;
  /// When non-null, every executed task records a kPoolTask span into the
  /// worker's ring (span id = the worker's running task count, arg = the
  /// worker the task was popped from, i.e. arg != tid means stolen).  The
  /// tracer must have at least nthreads rings and outlive the pool; a
  /// null tracer costs one branch per task.
  obs::Tracer* tracer = nullptr;
};

/// Move-only type-erased callable with small-buffer storage.  The pool's
/// tasks are tiny capture sets (a context pointer plus a block id), and
/// every submit sits on the shared queue lock — std::function's
/// allocation and indirection were measurable there (bench/perf_micro).
/// Callables up to kInlineBytes whose move cannot throw live inside the
/// task object; larger or throwing-move callables fall back to one heap
/// allocation.
class PoolTask {
 public:
  PoolTask() noexcept = default;
  PoolTask(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::remove_cvref_t<F>>
    requires(!std::is_same_v<D, PoolTask> && std::is_invocable_r_v<void, D&>)
  PoolTask(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVt<D>;
    }
  }

  PoolTask(PoolTask&& other) noexcept { move_from(other); }
  PoolTask& operator=(PoolTask&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  PoolTask& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~PoolTask() { reset(); }

  PoolTask(const PoolTask&) = delete;
  PoolTask& operator=(const PoolTask&) = delete;

  explicit operator bool() const noexcept { return vt_ != nullptr; }
  void operator()() { vt_->invoke(buf_); }

 private:
  static constexpr std::size_t kInlineBytes = 48;

  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void*, void*);  // move-construct dst from src, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); }};

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) { ::new (dst) D*(*static_cast<D**>(src)); },
      [](void* p) { delete *static_cast<D**>(p); }};

  void move_from(PoolTask& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) vt_->relocate(buf_, other.buf_);
    other.vt_ = nullptr;
  }
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

class ThreadPool {
 public:
  using Task = PoolTask;

  explicit ThreadPool(const ThreadPoolOptions& opt);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] index_t num_threads() const { return nthreads_; }

  /// Enqueue `task` on worker `home`'s deque.  Callable from any thread,
  /// including from inside a running task (how DAG successors are
  /// released).
  void submit(index_t home, Task task);

  /// Block until the pool is idle; rethrow the first task exception.
  void wait_idle();

  /// Worker index of the calling thread; -1 when called off-pool.
  [[nodiscard]] static index_t worker_id();

  // ---- Counters.  Stable only while the pool is idle. ----

  /// Wall time each worker spent inside tasks, in seconds.
  [[nodiscard]] const std::vector<double>& busy_seconds() const { return busy_; }
  /// Tasks each worker executed.
  [[nodiscard]] const std::vector<count_t>& tasks_executed() const { return executed_; }
  /// Tasks each worker executed that were submitted to a different worker.
  [[nodiscard]] const std::vector<count_t>& tasks_stolen() const { return stolen_; }
  /// Per-queue count of lock acquisitions that found the lock already held
  /// (snapshot; stable only while the pool is idle).  The scalability
  /// telemetry of the per-worker-lock design: near zero when queue traffic
  /// scales, climbing when workers collide on one hot queue.
  [[nodiscard]] std::vector<count_t> queue_contention() const;
  /// Reset all counters to zero (pool must be idle).
  void reset_counters();

 private:
  /// One worker's deque with its own lock.  `size` mirrors queue.size()
  /// so idle workers can scan for work without touching any mutex; its
  /// seq_cst stores/loads carry the sleep protocol (see file comment).
  /// Cache-line aligned so neighboring slots never false-share.
  struct alignas(64) QueueSlot {
    std::mutex mu;
    std::deque<Task> queue;           // guarded by mu
    std::atomic<index_t> size{0};     // == queue.size(); updated under mu
    std::atomic<count_t> contended{0};
  };

  void worker_loop(index_t me);
  /// Pop the next task for worker `me` (own queue front, else steal from a
  /// peer's back).  Returns false when nothing is runnable; on abort,
  /// discards every queue instead.
  bool try_pop(index_t me, Task& out, index_t& from);
  /// Lock a slot's mutex, counting the acquisition as contended when it
  /// had to wait.
  static void lock_slot(QueueSlot& slot);
  /// Empty every queue (abort path), draining `pending_` accordingly.
  void discard_all_queues();
  /// Record one finished/discarded task; wakes wait_idle at zero.
  void finish(count_t ntasks);
  /// Record `err` as the run's first exception and abort the run.
  void abort_run(const std::exception_ptr& err);

  // Fixed before any worker starts (workers_ itself is still being filled
  // while early workers run, so they must not read its size).
  const index_t nthreads_;
  const bool allow_stealing_;
  obs::Tracer* const tracer_;

  std::unique_ptr<QueueSlot[]> slots_;            // nthreads_ entries
  std::atomic<count_t> pending_{0};               // submitted, not finished
  std::atomic<bool> stop_{false};
  std::atomic<bool> aborted_{false};

  std::mutex sleep_mu_;                // guards signal_ only
  std::condition_variable cv_work_;    // idle workers sleep here
  std::atomic<index_t> nsleepers_{0};  // workers inside the sleep protocol
  std::uint64_t signal_ = 0;           // wakeup epoch (under sleep_mu_)

  std::mutex idle_mu_;                 // wait_idle wakeup ordering
  std::condition_variable cv_idle_;

  std::mutex err_mu_;                  // guards first_exception_
  std::exception_ptr first_exception_;

  // Owner-written per-worker counters; read only while the pool is idle
  // (the completion protocol's release/acquire on pending_ publishes them).
  std::vector<double> busy_;
  std::vector<count_t> executed_;
  std::vector<count_t> stolen_;

  std::vector<std::thread> workers_;
};

}  // namespace spf
