// Work-stealing thread pool for DAG execution.
//
// Each worker owns a deque of tasks; submit(home, task) targets a specific
// worker so a static schedule (the paper's processor assignment) can be
// honored, and idle workers steal from the back of their peers' deques when
// stealing is enabled.  All deques share one mutex: tasks here are unit-
// block factorizations (microseconds to milliseconds), so queue operations
// are a vanishing fraction of runtime and the single lock keeps the pool
// trivially race-free — the numeric kernels running *outside* the lock are
// where the parallelism is.
//
// Completion protocol: wait_idle() returns once every submitted task (and
// every task those tasks submitted) has finished.  The first exception
// thrown by a task aborts the run — queued tasks are discarded, running
// ones finish — and is rethrown from wait_idle().  The pool is reusable
// after wait_idle() returns or throws.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

struct ThreadPoolOptions {
  index_t nthreads = 1;
  /// When false, a task only ever runs on the worker it was submitted to
  /// (each worker is exactly one paper "processor"); when true, idle
  /// workers steal queued tasks from their peers.
  bool allow_stealing = true;
};

class ThreadPool {
 public:
  using Task = std::function<void()>;

  explicit ThreadPool(const ThreadPoolOptions& opt);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] index_t num_threads() const { return nthreads_; }

  /// Enqueue `task` on worker `home`'s deque.  Callable from any thread,
  /// including from inside a running task (how DAG successors are
  /// released).
  void submit(index_t home, Task task);

  /// Block until the pool is idle; rethrow the first task exception.
  void wait_idle();

  /// Worker index of the calling thread; -1 when called off-pool.
  [[nodiscard]] static index_t worker_id();

  // ---- Counters.  Stable only while the pool is idle. ----

  /// Wall time each worker spent inside tasks, in seconds.
  [[nodiscard]] const std::vector<double>& busy_seconds() const { return busy_; }
  /// Tasks each worker executed.
  [[nodiscard]] const std::vector<count_t>& tasks_executed() const { return executed_; }
  /// Tasks each worker executed that were submitted to a different worker.
  [[nodiscard]] const std::vector<count_t>& tasks_stolen() const { return stolen_; }
  /// Reset all counters to zero (pool must be idle).
  void reset_counters();

 private:
  void worker_loop(index_t me);
  /// Pop the next task for worker `me` (own queue front, else steal from a
  /// peer's back).  Requires mu_ held.  Returns false when nothing is
  /// runnable; on abort, discards queued tasks instead.
  bool pop_task(index_t me, Task& out, index_t& from);

  // Fixed before any worker starts (workers_ itself is still being filled
  // while early workers run, so they must not read its size).
  const index_t nthreads_;
  const bool allow_stealing_;

  std::mutex mu_;
  std::condition_variable cv_work_;   // workers sleep here
  std::condition_variable cv_idle_;   // wait_idle sleeps here
  std::vector<std::deque<Task>> queues_;
  index_t pending_ = 0;               // submitted but not yet finished/discarded
  bool stop_ = false;
  bool aborted_ = false;
  std::exception_ptr first_exception_;

  std::vector<double> busy_;
  std::vector<count_t> executed_;
  std::vector<count_t> stolen_;

  std::vector<std::thread> workers_;
};

}  // namespace spf
