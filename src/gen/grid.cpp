#include "gen/grid.hpp"

#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"

namespace spf {

namespace {

CscMatrix grid_laplacian(index_t nx, index_t ny, bool nine_point) {
  SPF_REQUIRE(nx > 0 && ny > 0, "grid dimensions must be positive");
  const index_t n = nx * ny;
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };

  CooBuilder coo(n, n);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  auto edge = [&](index_t u, index_t v) {
    // Store the lower-triangular half only (u > v normalized).
    if (u < v) std::swap(u, v);
    coo.add(u, v, -1.0);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  };

  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t v = id(x, y);
      if (x + 1 < nx) edge(v, id(x + 1, y));
      if (y + 1 < ny) edge(v, id(x, y + 1));
      if (nine_point) {
        if (x + 1 < nx && y + 1 < ny) edge(v, id(x + 1, y + 1));
        if (x > 0 && y + 1 < ny) edge(v, id(x - 1, y + 1));
      }
    }
  }
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

}  // namespace

CscMatrix grid_laplacian_5pt(index_t nx, index_t ny) { return grid_laplacian(nx, ny, false); }

CscMatrix grid_laplacian_9pt(index_t nx, index_t ny) { return grid_laplacian(nx, ny, true); }

}  // namespace spf
