// Regular-grid Laplacian generators.
//
// LAP30 in the paper's Table 1 is "a 9-point discretization of the
// Laplacian on the unit square with Dirichlet boundary conditions" on a
// 30x30 interior grid: n = 900, nnz (lower incl. diagonal) = 4322, which
// `grid_laplacian_9pt(30, 30)` reproduces exactly.  The 5-point variant is
// used for the paper's Figure 2 illustration.
#pragma once

#include "matrix/csc.hpp"

namespace spf {

/// 5-point Laplacian on an nx-by-ny interior grid, Dirichlet boundary.
/// Returned as the lower triangle (incl. diagonal) of an SPD matrix:
/// a(v,v) = degree(v) + 1, a(u,v) = -1 for grid neighbors.
CscMatrix grid_laplacian_5pt(index_t nx, index_t ny);

/// 9-point Laplacian (adds the diagonal couplings).
CscMatrix grid_laplacian_9pt(index_t nx, index_t ny);

}  // namespace spf
