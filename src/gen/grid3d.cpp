#include "gen/grid3d.hpp"

#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"

namespace spf {

CscMatrix grid_laplacian_7pt_3d(index_t nx, index_t ny, index_t nz) {
  SPF_REQUIRE(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  const index_t n = nx * ny * nz;
  auto id = [&](index_t x, index_t y, index_t z) { return (z * ny + y) * nx + x; };
  CooBuilder coo(n, n);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  auto edge = [&](index_t u, index_t v) {
    if (u < v) std::swap(u, v);
    coo.add(u, v, -1.0);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t v = id(x, y, z);
        if (x + 1 < nx) edge(v, id(x + 1, y, z));
        if (y + 1 < ny) edge(v, id(x, y + 1, z));
        if (z + 1 < nz) edge(v, id(x, y, z + 1));
      }
    }
  }
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

}  // namespace spf
