// 3D grid Laplacian (7-point stencil) — beyond the paper's 2D test set.
//
// 3D problems fill far more aggressively (O(n^{4/3}) vs O(n log n) under
// good orderings), producing wider supernodes; the ablation benches use
// this to check that the paper's communication/balance trade-off carries
// over to the harder regime.
#pragma once

#include "matrix/csc.hpp"

namespace spf {

/// 7-point Laplacian on an nx x ny x nz interior grid, Dirichlet boundary
/// (lower triangle, SPD values).
CscMatrix grid_laplacian_7pt_3d(index_t nx, index_t ny, index_t nz);

}  // namespace spf
