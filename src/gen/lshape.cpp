#include "gen/lshape.hpp"

#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"

namespace spf {

CscMatrix lshape_mesh(index_t m, index_t target_n) {
  SPF_REQUIRE(m >= 1, "arm width must be at least 1");
  // Vertex lattice of the L-shaped region: the (2m+1) x (2m+1) square of
  // lattice points minus the open upper-right m x m block of points
  // (x > m and y > m removed).  Point count: (2m+1)^2 - m^2 = 3m^2 + 4m + 1.
  const index_t side = 2 * m + 1;
  std::vector<index_t> vid(static_cast<std::size_t>(side) * static_cast<std::size_t>(side),
                           -1);
  auto inside = [&](index_t x, index_t y) {
    return x >= 0 && y >= 0 && x < side && y < side && !(x > m && y > m);
  };
  index_t n = 0;
  for (index_t y = 0; y < side; ++y) {
    for (index_t x = 0; x < side; ++x) {
      if (inside(x, y)) vid[static_cast<std::size_t>(y) * side + x] = n++;
    }
  }
  if (target_n > 0) {
    SPF_REQUIRE(target_n <= n, "target order exceeds mesh size");
    n = target_n;
  }
  auto id = [&](index_t x, index_t y) -> index_t {
    const index_t v = vid[static_cast<std::size_t>(y) * side + x];
    return (v >= 0 && v < n) ? v : -1;  // trimmed vertices vanish
  };

  CooBuilder coo(n, n);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  auto edge = [&](index_t u, index_t v) {
    if (u < 0 || v < 0) return;
    if (u < v) std::swap(u, v);
    coo.add(u, v, -1.0);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  };
  // Each unit cell [x, x+1] x [y, y+1] inside the region is split along the
  // (x,y)-(x+1,y+1) diagonal: edges right, up, and diagonal.
  for (index_t y = 0; y < side; ++y) {
    for (index_t x = 0; x < side; ++x) {
      if (!inside(x, y)) continue;
      if (inside(x + 1, y)) edge(id(x, y), id(x + 1, y));
      if (inside(x, y + 1)) edge(id(x, y), id(x, y + 1));
      if (inside(x + 1, y) && inside(x, y + 1) && inside(x + 1, y + 1)) {
        edge(id(x, y), id(x + 1, y + 1));
      }
    }
  }
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

CscMatrix lshp1009_like() { return lshape_mesh(18, 1009); }

}  // namespace spf
