// Triangulated L-shaped domain mesh (stand-in for LSHP1009).
//
// Alan George's LSHAPE problems are finite-element triangulations of an
// L-shaped region.  We triangulate the union of three m-by-m blocks of unit
// squares (each square split into two triangles, giving every interior
// vertex up to six neighbors), then trim trailing vertices to hit a target
// matrix order exactly.  With m = 18 and target 1009 this yields n = 1009
// and a nonzero count within a few percent of the Harwell-Boeing original
// (3937 in the paper's Table 1).
#pragma once

#include "matrix/csc.hpp"

namespace spf {

/// Triangulated L-shape built from an arm width of `m` cells.  When
/// `target_n > 0`, vertices with the highest ids are dropped (together with
/// their edges) until exactly `target_n` remain; pass 0 to keep all.
CscMatrix lshape_mesh(index_t m, index_t target_n = 0);

/// The LSHP1009 stand-in used by the experiment suite (m = 18, n = 1009).
CscMatrix lshp1009_like();

}  // namespace spf
