#include "gen/mesh_misc.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace spf {

namespace {

CscMatrix laplacian_from_edges(index_t n, const std::set<std::pair<index_t, index_t>>& edges) {
  CooBuilder coo(n, n);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  for (const auto& [a, b] : edges) {
    coo.add(std::max(a, b), std::min(a, b), -1.0);
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

}  // namespace

CscMatrix cylinder_frame(const CylinderFrameOptions& opt) {
  SPF_REQUIRE(opt.rings >= 2 && opt.segments >= 3, "cylinder too small");
  const index_t n = opt.rings * opt.segments;
  auto id = [&](index_t ring, index_t seg) {
    return ring * opt.segments + (seg % opt.segments);
  };
  std::set<std::pair<index_t, index_t>> edges;
  auto add = [&](index_t u, index_t v) {
    if (u == v) return;
    edges.emplace(std::min(u, v), std::max(u, v));
  };
  // Number of circumferential bays per ring: closed shells wrap around.
  const index_t bays = opt.closed ? opt.segments : opt.segments - 1;
  // Circumferential members within each ring.
  for (index_t r = 0; r < opt.rings; ++r) {
    for (index_t s = 0; s < bays; ++s) add(id(r, s), id(r, s + 1));
  }
  // Axial members between adjacent rings.
  for (index_t r = 0; r + 1 < opt.rings; ++r) {
    for (index_t s = 0; s < opt.segments; ++s) add(id(r, s), id(r + 1, s));
  }
  // Diagonal bracing, one brace per shell quad.  `brace_skip` quads (spread
  // along the hull) get no brace; `x_braces` quads get a second, crossing
  // brace — both knobs exist to hit a nonzero budget exactly.
  index_t skipped = 0, crossed = 0;
  for (index_t r = 0; r + 1 < opt.rings; ++r) {
    for (index_t s = 0; s < bays; ++s) {
      const index_t quad = r * bays + s;
      if (skipped < opt.brace_skip && quad % 53 == 0) {
        ++skipped;
        continue;
      }
      add(id(r, s), id(r + 1, s + 1));
      if (crossed < opt.x_braces && quad % 8 == 3) {
        add(id(r + 1, s), id(r, s + 1));
        ++crossed;
      }
    }
  }
  return laplacian_from_edges(n, edges);
}

CscMatrix dwt512_like() {
  // Open 32 x 16 shell (a hull section, not a full ring): 480
  // circumferential + 496 axial + 465 diagonal members, plus 54 crossing
  // braces = 1495 members; 512 + 1495 = 2007 stored nonzeros, matching the
  // paper's Table 1.  The open shell also matches the original's low fill
  // (DWT512 factors with ~1.9x fill; a fully closed cylinder would fill
  // far more).
  return cylinder_frame(
      {.rings = 32, .segments = 16, .closed = false, .brace_skip = 0, .x_braces = 54});
}

CscMatrix knn_mesh(const KnnMeshOptions& opt) {
  SPF_REQUIRE(opt.n >= 2, "mesh needs at least two nodes");
  SPF_REQUIRE(opt.candidate_k >= 1, "need at least one neighbor candidate");
  SplitMix64 rng(opt.seed);
  const index_t n = opt.n;
  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    px[static_cast<std::size_t>(v)] = rng.uniform();
    py[static_cast<std::size_t>(v)] = rng.uniform();
  }
  auto dist2 = [&](index_t a, index_t b) {
    const double dx = px[static_cast<std::size_t>(a)] - px[static_cast<std::size_t>(b)];
    const double dy = py[static_cast<std::size_t>(a)] - py[static_cast<std::size_t>(b)];
    return dx * dx + dy * dy;
  };

  // Candidate edges: each node's candidate_k nearest neighbors (brute force;
  // n is ~1000).  Deduplicated via the normalized pair set.
  struct Cand {
    double d2;
    index_t u, v;
  };
  std::set<std::pair<index_t, index_t>> seen;
  std::vector<Cand> cands;
  std::vector<std::pair<double, index_t>> near;
  for (index_t u = 0; u < n; ++u) {
    near.clear();
    for (index_t v = 0; v < n; ++v) {
      if (v != u) near.emplace_back(dist2(u, v), v);
    }
    const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(opt.candidate_k),
                                                near.size());
    std::partial_sort(near.begin(), near.begin() + static_cast<std::ptrdiff_t>(k), near.end());
    for (std::size_t i = 0; i < k; ++i) {
      const index_t v = near[i].second;
      const auto key = std::minmax(u, v);
      if (seen.emplace(key.first, key.second).second) {
        cands.push_back({near[i].first, key.first, key.second});
      }
    }
  }
  SPF_REQUIRE(static_cast<count_t>(cands.size()) >= opt.target_edges,
              "candidate_k too small for the requested edge count");
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.d2 != b.d2) return a.d2 < b.d2;
    return std::make_pair(a.u, a.v) < std::make_pair(b.u, b.v);
  });

  std::set<std::pair<index_t, index_t>> edges;
  for (const Cand& c : cands) {
    if (static_cast<count_t>(edges.size()) == opt.target_edges) break;
    edges.emplace(c.u, c.v);
  }
  return laplacian_from_edges(n, edges);
}

CscMatrix can1072_like() {
  // 1072 nodes with 5686 member edges: 1072 + 5686 = 6758 stored nonzeros,
  // matching the paper's Table 1; ~10.6 entries per row like the original.
  return knn_mesh({.n = 1072, .target_edges = 5686, .candidate_k = 16, .seed = 1072});
}

}  // namespace spf
