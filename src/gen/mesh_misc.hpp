// Structural-mesh generators standing in for DWT512 and CAN1072.
//
// DWT512 is the wireframe of a submarine hull section (Naval Ship R&D
// Center); we synthesize a braced cylindrical shell: rings of nodes joined
// axially, circumferentially, and by diagonal bracing, trimmed to the exact
// nonzero count of the original.
//
// CAN1072 is a finite-element pattern from Cannes (Lucien Marro) with a
// much denser local connectivity (~10.6 entries/row).  We synthesize it as
// a k-nearest-neighbor graph over deterministic pseudo-random points in the
// unit square, taking the globally shortest candidate edges until the edge
// budget is met — the classic FE "patch of elements around each node" look.
#pragma once

#include <cstdint>

#include "matrix/csc.hpp"

namespace spf {

struct CylinderFrameOptions {
  index_t rings = 32;      ///< rings along the axis
  index_t segments = 16;   ///< nodes per ring
  bool closed = true;      ///< wrap the rings circumferentially
  index_t brace_skip = 0;  ///< diagonal braces to omit (trims nnz downward)
  index_t x_braces = 0;    ///< quads given a second (crossing) brace (trims nnz upward)
};

/// Braced cylindrical shell frame graph (lower triangle, SPD values).
CscMatrix cylinder_frame(const CylinderFrameOptions& opt);

/// DWT512 stand-in: n = 512, 2007 stored nonzeros (paper Table 1).
CscMatrix dwt512_like();

struct KnnMeshOptions {
  index_t n = 1072;          ///< nodes
  index_t target_edges = 5686;  ///< off-diagonal entries in the lower triangle
  int candidate_k = 16;      ///< nearest-neighbor candidates per node
  std::uint64_t seed = 1072;
};

/// k-nearest-neighbor FE-style mesh (lower triangle, SPD values).
CscMatrix knn_mesh(const KnnMeshOptions& opt);

/// CAN1072 stand-in: n = 1072, 6758 stored nonzeros (paper Table 1).
CscMatrix can1072_like();

}  // namespace spf
