#include "gen/powernet.hpp"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace spf {

CscMatrix power_network(const PowerNetOptions& opt) {
  SPF_REQUIRE(opt.n >= 2, "network needs at least two buses");
  SPF_REQUIRE(opt.extra_edges >= 0, "extra edge count must be non-negative");
  SplitMix64 rng(opt.seed);
  const index_t n = opt.n;

  std::set<std::pair<index_t, index_t>> edges;  // normalized (min, max)
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
  auto add_edge = [&](index_t u, index_t v) {
    if (u == v) return false;
    auto e = std::minmax(u, v);
    if (!edges.emplace(e.first, e.second).second) return false;
    adj[static_cast<std::size_t>(u)].push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
    return true;
  };

  // Spanning tree with mild preferential attachment: half the time a new
  // bus connects to the endpoint of a uniformly random existing edge (which
  // biases toward high-degree substations), otherwise to a uniform bus.
  std::vector<index_t> endpoints;  // one entry per edge endpoint
  for (index_t v = 1; v < n; ++v) {
    index_t parent;
    if (!endpoints.empty() && rng.uniform() < 0.5) {
      parent = endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
    } else {
      parent = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(v)));
    }
    add_edge(v, parent);
    endpoints.push_back(v);
    endpoints.push_back(parent);
  }

  // Meshed transmission backbone: interconnect random pairs among the
  // backbone buses.  This densifies the factor's trailing supernode the
  // way real high-voltage cores do.
  index_t added = 0;
  const index_t backbone = std::min(opt.backbone, n);
  const index_t backbone_edges = std::min(opt.backbone_edges, opt.extra_edges);
  while (added < backbone_edges) {
    const index_t u = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(backbone)));
    const index_t v = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(backbone)));
    if (add_edge(u, v)) ++added;
  }

  // Loop-closing branches between tree-local vertices: start anywhere, walk
  // a short random path, connect the ends.  Local loops are what real grids
  // have (ring feeders), and they keep the factor fill realistic.
  while (added < opt.extra_edges) {
    index_t u = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    index_t v = u;
    const int steps = 2 + static_cast<int>(rng.below(4));  // 2..5 hops
    for (int s = 0; s < steps; ++s) {
      const auto& nb = adj[static_cast<std::size_t>(v)];
      if (nb.empty()) break;
      v = nb[static_cast<std::size_t>(rng.below(nb.size()))];
    }
    if (add_edge(u, v)) ++added;
  }

  CooBuilder coo(n, n);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  for (const auto& [a, b] : edges) {
    coo.add(std::max(a, b), std::min(a, b), -1.0);
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  for (index_t v = 0; v < n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

CscMatrix bus1138_like() {
  // 1138 buses; 1137 tree branches + 321 loop branches = 1458 off-diagonal
  // entries, so 1138 + 1458 = 2596 stored nonzeros as in the paper.
  return power_network({.n = 1138, .extra_edges = 321, .seed = 1138});
}

}  // namespace spf
