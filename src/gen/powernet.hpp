// Synthetic power-system network (stand-in for BUS1138 / BCSPWR class).
//
// Power-grid admittance matrices are extremely sparse: the network is close
// to a tree with a modest number of loop-closing branches, and bus degrees
// follow a short-tailed distribution.  The generator grows a random tree
// with mild preferential attachment (substations collect several feeders)
// and then adds loop branches between vertices that are close in the tree,
// mimicking the local meshing of transmission networks.  All randomness is
// a deterministic function of the seed.
#pragma once

#include <cstdint>

#include "matrix/csc.hpp"

namespace spf {

struct PowerNetOptions {
  index_t n = 1138;           ///< number of buses
  index_t extra_edges = 321;  ///< loop-closing branches beyond the spanning tree
  /// Buses 0..backbone-1 form the transmission backbone; `backbone_edges`
  /// of the extra branches interconnect random backbone pairs (real grids
  /// have a meshed high-voltage core over a radial distribution layer,
  /// which is also what gives their factors a dense trailing supernode).
  index_t backbone = 64;
  index_t backbone_edges = 100;
  std::uint64_t seed = 1138;
};

/// Build the bus-network graph Laplacian (lower triangle, SPD values).
CscMatrix power_network(const PowerNetOptions& opt);

/// The BUS1138 stand-in used by the experiment suite: n = 1138 and
/// 2596 stored nonzeros, matching the paper's Table 1 exactly.
CscMatrix bus1138_like();

}  // namespace spf
