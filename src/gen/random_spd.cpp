#include "gen/random_spd.hpp"

#include <vector>

#include "matrix/coo.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace spf {

CscMatrix random_spd(const RandomSpdOptions& opt) {
  SPF_REQUIRE(opt.n >= 1, "matrix order must be positive");
  SPF_REQUIRE(opt.edge_probability >= 0.0 && opt.edge_probability <= 1.0,
              "edge probability must lie in [0, 1]");
  SplitMix64 rng(opt.seed);
  CooBuilder coo(opt.n, opt.n);
  std::vector<index_t> degree(static_cast<std::size_t>(opt.n), 0);
  for (index_t j = 0; j < opt.n; ++j) {
    for (index_t i = j + 1; i < opt.n; ++i) {
      if (rng.uniform() < opt.edge_probability) {
        coo.add(i, j, -1.0);
        ++degree[static_cast<std::size_t>(i)];
        ++degree[static_cast<std::size_t>(j)];
      }
    }
  }
  for (index_t v = 0; v < opt.n; ++v) {
    coo.add(v, v, static_cast<double>(degree[static_cast<std::size_t>(v)]) + 1.0);
  }
  return coo.to_csc();
}

}  // namespace spf
