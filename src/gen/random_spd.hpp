// Random sparse SPD matrices for property-based testing.
#pragma once

#include <cstdint>

#include "matrix/csc.hpp"

namespace spf {

struct RandomSpdOptions {
  index_t n = 100;
  double edge_probability = 0.05;  ///< probability of each off-diagonal pair
  std::uint64_t seed = 42;
};

/// Random symmetric positive definite matrix (lower triangle): random
/// Erdos-Renyi pattern with value -1 off the diagonal and degree+1 on it
/// (strictly diagonally dominant, hence SPD).
CscMatrix random_spd(const RandomSpdOptions& opt);

}  // namespace spf
