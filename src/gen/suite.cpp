#include "gen/suite.hpp"

#include "gen/grid.hpp"
#include "gen/lshape.hpp"
#include "gen/mesh_misc.hpp"
#include "gen/powernet.hpp"
#include "support/check.hpp"

namespace spf {

std::vector<TestProblem> harwell_boeing_stand_ins() {
  std::vector<TestProblem> out;
  out.push_back({"BUS1138", "power system network (synthetic stand-in)", bus1138_like(),
                 1138, 2596, 3304});
  out.push_back({"CANN1072", "FE pattern, Cannes (synthetic stand-in)", can1072_like(),
                 1072, 6758, 20512});
  out.push_back({"DWT512", "submarine frame (synthetic stand-in)", dwt512_like(),
                 512, 2007, 3786});
  out.push_back({"LAP30", "9-point Laplacian, 30x30 unit square (exact)",
                 grid_laplacian_9pt(30, 30), 900, 4322, 16697});
  out.push_back({"LSHP1009", "L-shaped FE triangulation (synthetic stand-in)",
                 lshp1009_like(), 1009, 3937, 18268});
  return out;
}

TestProblem stand_in(const std::string& name) {
  for (auto& p : harwell_boeing_stand_ins()) {
    if (p.name == name) return p;
  }
  SPF_REQUIRE(false, "unknown test problem: " + name);
  return {};  // unreachable
}

}  // namespace spf
