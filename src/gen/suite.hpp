// The experiment suite: the five Harwell-Boeing test problems from the
// paper's Table 1, realized as deterministic synthetic stand-ins (see
// DESIGN.md section 4 for the substitution rationale; LAP30 is exact).
#pragma once

#include <string>
#include <vector>

#include "matrix/csc.hpp"

namespace spf {

/// One test problem, with the paper's reported figures for comparison.
struct TestProblem {
  std::string name;         ///< paper's name, e.g. "BUS1138"
  std::string description;
  CscMatrix lower;          ///< lower triangle incl. diagonal, SPD values
  index_t paper_n;          ///< Table 1: number of equations
  count_t paper_nnz;        ///< Table 1: stored nonzeros of A
  count_t paper_factor_nnz; ///< Table 1: nonzeros in the factor (their MMD)
};

/// All five problems in the paper's order: BUS1138, CAN1072, DWT512,
/// LAP30, LSHP1009.
std::vector<TestProblem> harwell_boeing_stand_ins();

/// A single problem by name (case sensitive, paper spelling).
TestProblem stand_in(const std::string& name);

}  // namespace spf
