#include "io/harwell_boeing.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace spf {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Minimal Fortran edit-descriptor parser: extracts the field width from
/// strings like "(16I5)", "(10I8)", "(1P5E15.7)", "(4D20.12)", "(F20.12)".
/// Returns the field width in characters; repeat counts are ignored because
/// we slice each data line by width directly.
int fortran_field_width(const std::string& fmt) {
  // Scan for the conversion letter, then parse the integer that follows.
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = static_cast<char>(std::toupper(static_cast<unsigned char>(fmt[i])));
    if (c == 'I' || c == 'E' || c == 'D' || c == 'F' || c == 'G') {
      // 'P' scale factors look like "1P5E15.7": the letter we just hit may
      // be preceded by digits belonging to the repeat count; the width is
      // the digits immediately after the letter.
      std::size_t j = i + 1;
      int w = 0;
      while (j < fmt.size() && std::isdigit(static_cast<unsigned char>(fmt[j]))) {
        w = w * 10 + (fmt[j] - '0');
        ++j;
      }
      if (w > 0) return w;
    }
  }
  SPF_REQUIRE(false, "cannot parse Fortran format: " + fmt);
  return 0;  // unreachable
}

/// Read `count` fixed-width numeric fields from consecutive lines.
template <typename T, typename Parse>
std::vector<T> read_fixed(std::istream& in, std::size_t count, int width, Parse parse) {
  std::vector<T> out;
  out.reserve(count);
  std::string line;
  while (out.size() < count) {
    SPF_REQUIRE(static_cast<bool>(std::getline(in, line)), "truncated Harwell-Boeing data");
    // Strip trailing carriage return from DOS files.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    for (std::size_t pos = 0; pos + 1 <= line.size() && out.size() < count;
         pos += static_cast<std::size_t>(width)) {
      std::string field = trim(line.substr(pos, static_cast<std::size_t>(width)));
      if (field.empty()) continue;  // short last line
      out.push_back(parse(field));
    }
  }
  return out;
}

long long parse_ll(const std::string& s) { return std::stoll(s); }

double parse_double(std::string s) {
  // Fortran 'D' exponents are not understood by strtod.
  for (char& c : s) {
    if (c == 'D' || c == 'd') c = 'E';
  }
  return std::stod(s);
}

}  // namespace

CscMatrix read_harwell_boeing(std::istream& in, HarwellBoeingInfo* info) {
  std::string l1, l2, l3, l4;
  SPF_REQUIRE(static_cast<bool>(std::getline(in, l1)), "missing HB header line 1");
  SPF_REQUIRE(static_cast<bool>(std::getline(in, l2)), "missing HB header line 2");
  SPF_REQUIRE(static_cast<bool>(std::getline(in, l3)), "missing HB header line 3");
  SPF_REQUIRE(static_cast<bool>(std::getline(in, l4)), "missing HB header line 4");

  const std::string title = trim(l1.substr(0, std::min<std::size_t>(72, l1.size())));
  const std::string key = l1.size() > 72 ? trim(l1.substr(72)) : std::string{};

  long long totcrd = 0, ptrcrd = 0, indcrd = 0, valcrd = 0, rhscrd = 0;
  {
    std::istringstream ss(l2);
    ss >> totcrd >> ptrcrd >> indcrd >> valcrd;
    if (!(ss >> rhscrd)) rhscrd = 0;
  }
  std::string type = trim(l3.substr(0, std::min<std::size_t>(3, l3.size())));
  std::transform(type.begin(), type.end(), type.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  SPF_REQUIRE(type.size() == 3, "bad HB matrix type");
  SPF_REQUIRE(type[0] == 'R' || type[0] == 'P', "only real/pattern HB matrices supported");
  SPF_REQUIRE(type[1] == 'S', "only symmetric HB matrices supported");
  SPF_REQUIRE(type[2] == 'A', "only assembled HB matrices supported");

  long long nrow = 0, ncol = 0, nnzero = 0, neltvl = 0;
  {
    std::istringstream ss(l3.substr(std::min<std::size_t>(3, l3.size())));
    ss >> nrow >> ncol >> nnzero >> neltvl;
  }
  SPF_REQUIRE(nrow > 0 && ncol > 0 && nnzero > 0, "bad HB dimensions");
  SPF_REQUIRE(nrow == ncol, "symmetric HB matrix must be square");

  // Formats: PTRFMT (cols 1-16), INDFMT (17-32), VALFMT (33-52).
  auto fmt_at = [&](std::size_t pos, std::size_t len) {
    return pos < l4.size() ? trim(l4.substr(pos, len)) : std::string{};
  };
  const int ptr_w = fortran_field_width(fmt_at(0, 16));
  const int ind_w = fortran_field_width(fmt_at(16, 16));
  const bool pattern = type[0] == 'P' || valcrd == 0;
  const int val_w = pattern ? 0 : fortran_field_width(fmt_at(32, 20));

  if (rhscrd > 0) {
    std::string l5;
    SPF_REQUIRE(static_cast<bool>(std::getline(in, l5)), "missing HB header line 5");
  }

  const auto ptrs = read_fixed<long long>(in, static_cast<std::size_t>(ncol) + 1, ptr_w, parse_ll);
  const auto inds = read_fixed<long long>(in, static_cast<std::size_t>(nnzero), ind_w, parse_ll);
  std::vector<double> vals;
  if (!pattern) {
    vals = read_fixed<double>(in, static_cast<std::size_t>(nnzero), val_w,
                              [](const std::string& s) { return parse_double(s); });
  }

  std::vector<count_t> col_ptr(static_cast<std::size_t>(ncol) + 1);
  for (std::size_t i = 0; i < col_ptr.size(); ++i) {
    col_ptr[i] = static_cast<count_t>(ptrs[i] - 1);  // 1-based -> 0-based
  }
  std::vector<index_t> row_ind(static_cast<std::size_t>(nnzero));
  for (std::size_t i = 0; i < row_ind.size(); ++i) {
    row_ind[i] = static_cast<index_t>(inds[i] - 1);
  }
  if (info != nullptr) {
    info->title = title;
    info->key = key;
    info->type = type;
  }
  CscMatrix m(static_cast<index_t>(nrow), static_cast<index_t>(ncol), std::move(col_ptr),
              std::move(row_ind), std::move(vals));
  // HB symmetric files store the lower triangle; verify that here so later
  // stages can rely on it.
  for (index_t j = 0; j < m.ncols(); ++j) {
    for (index_t r : m.col_rows(j)) {
      SPF_REQUIRE(r >= j, "HB symmetric matrix must store the lower triangle");
    }
  }
  return m;
}

CscMatrix read_harwell_boeing_file(const std::string& path, HarwellBoeingInfo* info) {
  std::ifstream in(path);
  SPF_REQUIRE(in.good(), "cannot open file: " + path);
  return read_harwell_boeing(in, info);
}

void write_harwell_boeing(std::ostream& out, const CscMatrix& lower, const std::string& title,
                          const std::string& key) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "HB output must be square");
  for (index_t j = 0; j < lower.ncols(); ++j) {
    for (index_t r : lower.col_rows(j)) {
      SPF_REQUIRE(r >= j, "HB output must be lower triangular");
    }
  }
  const bool pattern = !lower.has_values();
  const long long n = lower.ncols();
  const long long nnz = lower.nnz();
  const int per_ptr = 10, per_ind = 10, per_val = 4;
  const auto lines = [](long long items, int per) { return (items + per - 1) / per; };
  const long long ptrcrd = lines(n + 1, per_ptr);
  const long long indcrd = lines(nnz, per_ind);
  const long long valcrd = pattern ? 0 : lines(nnz, per_val);
  const long long totcrd = ptrcrd + indcrd + valcrd;

  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-72.72s%-8.8s\n", title.c_str(), key.c_str());
  out << buf;
  std::snprintf(buf, sizeof(buf), "%14lld%14lld%14lld%14lld%14d\n", totcrd, ptrcrd, indcrd,
                valcrd, 0);
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-14.14s%14lld%14lld%14lld%14d\n",
                pattern ? "PSA" : "RSA", n, n, nnz, 0);
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-16.16s%-16.16s%-20.20s%-20.20s\n", "(10I8)", "(10I8)",
                pattern ? "" : "(4E20.12)", "");
  out << buf;

  auto emit_ints = [&](auto begin, auto end, long long offset) {
    int k = 0;
    for (auto it = begin; it != end; ++it) {
      std::snprintf(buf, sizeof(buf), "%8lld", static_cast<long long>(*it) + offset);
      out << buf;
      if (++k == per_ptr) {
        out << '\n';
        k = 0;
      }
    }
    if (k != 0) out << '\n';
  };
  emit_ints(lower.col_ptr().begin(), lower.col_ptr().end(), 1);
  emit_ints(lower.row_ind().begin(), lower.row_ind().end(), 1);
  if (!pattern) {
    int k = 0;
    for (double v : lower.values()) {
      std::snprintf(buf, sizeof(buf), "%20.12E", v);
      out << buf;
      if (++k == per_val) {
        out << '\n';
        k = 0;
      }
    }
    if (k != 0) out << '\n';
  }
}

void write_harwell_boeing_file(const std::string& path, const CscMatrix& lower,
                               const std::string& title, const std::string& key) {
  std::ofstream out(path);
  SPF_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_harwell_boeing(out, lower, title, key);
}

}  // namespace spf
