// Harwell-Boeing (a.k.a. Rutherford-Boeing predecessor) file format.
//
// The paper's test matrices (BUS1138, CAN1072, DWT512, LSHP1009, ...) are
// distributed in this fixed-column Fortran format [Duff, Grimes, Lewis 89].
// We ship synthetic stand-ins (src/gen), but this reader lets the real
// files be dropped in unchanged: types RSA (real symmetric assembled) and
// PSA (pattern symmetric assembled) are supported, which covers the whole
// Harwell-Boeing symmetric test set.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csc.hpp"

namespace spf {

/// Metadata from an HB header.
struct HarwellBoeingInfo {
  std::string title;
  std::string key;
  std::string type;  // e.g. "RSA", "PSA"
};

/// Read an HB stream.  Symmetric matrices are returned as the stored lower
/// triangle (the format stores the lower triangle for *SA types).
CscMatrix read_harwell_boeing(std::istream& in, HarwellBoeingInfo* info = nullptr);

CscMatrix read_harwell_boeing_file(const std::string& path, HarwellBoeingInfo* info = nullptr);

/// Write a lower-triangular symmetric matrix as RSA (or PSA when it has no
/// values), using generous fixed formats.
void write_harwell_boeing(std::ostream& out, const CscMatrix& lower, const std::string& title,
                          const std::string& key);

void write_harwell_boeing_file(const std::string& path, const CscMatrix& lower,
                               const std::string& title, const std::string& key);

}  // namespace spf
