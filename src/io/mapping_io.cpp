#include "io/mapping_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace spf {

namespace {
constexpr const char* kMagic = "spfactor-mapping-v1";
}

void write_mapping(std::ostream& os, const Partition& partition,
                   const Assignment& assignment) {
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  const PartitionOptions& o = partition.options;
  os << kMagic << "\n";
  os << o.grain_triangle << ' ' << o.grain_rectangle << ' ' << o.min_cluster_width << ' '
     << o.allow_zeros << "\n";
  os << o.triangle_unit_caps.size();
  for (index_t c : o.triangle_unit_caps) os << ' ' << c;
  os << "\n";
  os << partition.factor.n() << ' ' << partition.factor.nnz() << ' '
     << partition.num_blocks() << ' ' << assignment.nprocs << "\n";
  for (std::size_t b = 0; b < assignment.proc_of_block.size(); ++b) {
    os << assignment.proc_of_block[b] << (b + 1 == assignment.proc_of_block.size() ? "" : " ");
  }
  os << "\n";
}

LoadedMapping read_mapping(std::istream& is, const SymbolicFactor& sf) {
  std::string magic;
  SPF_REQUIRE(static_cast<bool>(is >> magic) && magic == kMagic,
              "not an spfactor mapping file");
  PartitionOptions opt;
  SPF_REQUIRE(static_cast<bool>(is >> opt.grain_triangle >> opt.grain_rectangle >>
                                opt.min_cluster_width >> opt.allow_zeros),
              "truncated mapping header");
  std::size_t ncaps = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ncaps), "truncated cap count");
  opt.triangle_unit_caps.resize(ncaps);
  for (auto& c : opt.triangle_unit_caps) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated caps");
  }
  index_t n = 0, nblocks = 0, nprocs = 0;
  count_t nnz = 0;
  SPF_REQUIRE(static_cast<bool>(is >> n >> nnz >> nblocks >> nprocs),
              "truncated mapping shape");
  SPF_REQUIRE(n == sf.n(), "mapping was computed for a different matrix order");

  LoadedMapping out;
  out.partition = partition_factor(sf, opt);
  SPF_REQUIRE(out.partition.factor.nnz() == nnz,
              "mapping was computed for a different factor structure");
  SPF_REQUIRE(out.partition.num_blocks() == nblocks,
              "factor does not reproduce the recorded partition shape");
  out.assignment.nprocs = nprocs;
  out.assignment.proc_of_block.resize(static_cast<std::size_t>(nblocks));
  for (auto& p : out.assignment.proc_of_block) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated assignment");
    SPF_REQUIRE(p >= 0 && p < nprocs, "assignment entry out of range");
  }
  return out;
}

void write_mapping_file(const std::string& path, const Partition& partition,
                        const Assignment& assignment) {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open file for writing: " + path);
  write_mapping(os, partition, assignment);
}

LoadedMapping read_mapping_file(const std::string& path, const SymbolicFactor& sf) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open file: " + path);
  return read_mapping(is, sf);
}

}  // namespace spf
