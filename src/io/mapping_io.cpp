#include "io/mapping_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace spf {

namespace {
constexpr const char* kMagic = "spfactor-mapping-v1";
// v2: adds the kernel-plan shape footer (the compiled kernels themselves
// are re-derived on load, like the rest of the analysis).
// v3: adds the scheduler line (scheduler kind + per-processor speeds) after
// the header, so list-scheduled / heterogeneous plans round-trip.
constexpr const char* kPlanMagic = "spfactor-plan-v3";
constexpr const char* kKernelMagic = "spfactor-kplan-v1";

// Distinguish "wrong file kind" from "right kind, wrong version": a magic
// sharing the family stem (e.g. "spfactor-plan-v1" when this build reads
// v2) names the version mismatch so callers know to regenerate, instead of
// getting the generic not-an-X error.
void check_magic(std::istream& is, const std::string& expected,
                 const std::string& family, const std::string& kind) {
  std::string magic;
  SPF_REQUIRE(static_cast<bool>(is >> magic) &&
                  (magic == expected || magic.rfind(family, 0) == 0),
              "not an spfactor " + kind + " file");
  SPF_REQUIRE(magic == expected, "unsupported " + kind + " file version '" + magic +
                                     "': this build reads '" + expected +
                                     "'; regenerate it with the current writer");
}
}

void write_mapping(std::ostream& os, const Partition& partition,
                   const Assignment& assignment) {
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  const PartitionOptions& o = partition.options;
  os << kMagic << "\n";
  os << o.grain_triangle << ' ' << o.grain_rectangle << ' ' << o.min_cluster_width << ' '
     << o.allow_zeros << "\n";
  os << o.triangle_unit_caps.size();
  for (index_t c : o.triangle_unit_caps) os << ' ' << c;
  os << "\n";
  os << partition.factor.n() << ' ' << partition.factor.nnz() << ' '
     << partition.num_blocks() << ' ' << assignment.nprocs << "\n";
  for (std::size_t b = 0; b < assignment.proc_of_block.size(); ++b) {
    os << assignment.proc_of_block[b] << (b + 1 == assignment.proc_of_block.size() ? "" : " ");
  }
  os << "\n";
}

LoadedMapping read_mapping(std::istream& is, const SymbolicFactor& sf) {
  check_magic(is, kMagic, "spfactor-mapping-v", "mapping");
  PartitionOptions opt;
  SPF_REQUIRE(static_cast<bool>(is >> opt.grain_triangle >> opt.grain_rectangle >>
                                opt.min_cluster_width >> opt.allow_zeros),
              "truncated mapping header");
  std::size_t ncaps = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ncaps), "truncated cap count");
  opt.triangle_unit_caps.resize(ncaps);
  for (auto& c : opt.triangle_unit_caps) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated caps");
  }
  index_t n = 0, nblocks = 0, nprocs = 0;
  count_t nnz = 0;
  SPF_REQUIRE(static_cast<bool>(is >> n >> nnz >> nblocks >> nprocs),
              "truncated mapping shape");
  SPF_REQUIRE(n == sf.n(), "mapping was computed for a different matrix order");

  LoadedMapping out;
  out.partition = partition_factor(sf, opt);
  SPF_REQUIRE(out.partition.factor.nnz() == nnz,
              "mapping was computed for a different factor structure");
  SPF_REQUIRE(out.partition.num_blocks() == nblocks,
              "factor does not reproduce the recorded partition shape");
  out.assignment.nprocs = nprocs;
  out.assignment.proc_of_block.resize(static_cast<std::size_t>(nblocks));
  for (auto& p : out.assignment.proc_of_block) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated assignment");
    SPF_REQUIRE(p >= 0 && p < nprocs, "assignment entry out of range");
  }
  return out;
}

void write_plan(std::ostream& os, const Plan& plan) {
  const Mapping& m = plan.mapping;
  SPF_REQUIRE(m.assignment.proc_of_block.size() == m.partition.blocks.size(),
              "plan assignment/partition mismatch");
  SPF_REQUIRE(plan.value_gather.size() == plan.in_row_ind.size(),
              "plan gather/pattern mismatch");
  // Effective options: for adaptive plans these carry the triangle caps.
  const PartitionOptions& o = m.partition.options;
  os << kPlanMagic << "\n";
  os << static_cast<int>(plan.config.ordering) << ' '
     << static_cast<int>(plan.config.scheme) << ' ' << plan.config.nprocs << "\n";
  // v3 scheduler line: kind + per-processor speeds (max_digits10 so the
  // cost model — and thus the rebuilt assignment — round-trips bitwise).
  os << static_cast<int>(plan.config.scheduler) << ' ' << plan.config.proc_speeds.size();
  os << std::setprecision(17);
  for (double s : plan.config.proc_speeds) os << ' ' << s;
  os << "\n";
  os << o.grain_triangle << ' ' << o.grain_rectangle << ' ' << o.min_cluster_width << ' '
     << o.allow_zeros << "\n";
  os << o.triangle_unit_caps.size();
  for (index_t c : o.triangle_unit_caps) os << ' ' << c;
  os << "\n";
  os << plan.n << ' ' << plan.in_row_ind.size() << "\n";
  for (std::size_t k = 0; k < plan.perm.perm().size(); ++k) {
    os << (k ? " " : "") << plan.perm.perm()[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.in_col_ptr.size(); ++k) {
    os << (k ? " " : "") << plan.in_col_ptr[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.in_row_ind.size(); ++k) {
    os << (k ? " " : "") << plan.in_row_ind[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.value_gather.size(); ++k) {
    os << (k ? " " : "") << plan.value_gather[k];
  }
  os << "\n";
  // Shape figures the loader verifies after re-deriving the analysis.
  os << m.partition.factor.nnz() << ' ' << m.partition.num_blocks() << ' '
     << m.assignment.nprocs << "\n";
  for (std::size_t b = 0; b < m.assignment.proc_of_block.size(); ++b) {
    os << (b ? " " : "") << m.assignment.proc_of_block[b];
  }
  os << "\n";
  // Kernel-plan shape figures (v2): the loader recompiles the kernels and
  // verifies its result reproduces these pool sizes exactly.
  const KernelPlan& k = plan.kernels;
  os << k.max_h << ' ' << k.max_w << ' ' << k.ascatter.size() << ' '
     << k.gathers.size() << ' ' << k.updates.size() << ' ' << k.col_updates.size()
     << ' ' << k.col_macs.size() << ' ' << k.col_base.size() << "\n";
}

Plan read_plan(std::istream& is) {
  check_magic(is, kPlanMagic, "spfactor-plan-v", "plan");
  Plan plan;
  int ordering = 0, scheme = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ordering >> scheme >> plan.config.nprocs),
              "truncated plan header");
  SPF_REQUIRE(ordering >= 0 &&
                  ordering <= static_cast<int>(OrderingKind::kNestedDissection),
              "unknown ordering kind");
  SPF_REQUIRE(scheme >= 0 && scheme <= static_cast<int>(MappingScheme::kWrap),
              "unknown mapping scheme");
  SPF_REQUIRE(plan.config.nprocs >= 1, "plan processor count out of range");
  plan.config.ordering = static_cast<OrderingKind>(ordering);
  plan.config.scheme = static_cast<MappingScheme>(scheme);
  int scheduler = 0;
  std::size_t nspeeds = 0;
  SPF_REQUIRE(static_cast<bool>(is >> scheduler >> nspeeds),
              "truncated plan scheduler line");
  SPF_REQUIRE(scheduler >= 0 && scheduler <= static_cast<int>(SchedulerKind::kAlap),
              "unknown scheduler kind");
  plan.config.scheduler = static_cast<SchedulerKind>(scheduler);
  SPF_REQUIRE(nspeeds == 0 || nspeeds == static_cast<std::size_t>(plan.config.nprocs),
              "plan speed count does not match processor count");
  plan.config.proc_speeds.resize(nspeeds);
  for (double& s : plan.config.proc_speeds) {
    SPF_REQUIRE(static_cast<bool>(is >> s), "truncated plan speeds");
    SPF_REQUIRE(std::isfinite(s) && s > 0.0, "plan speeds must be finite and positive");
  }
  PartitionOptions& o = plan.config.partition;
  SPF_REQUIRE(static_cast<bool>(is >> o.grain_triangle >> o.grain_rectangle >>
                                o.min_cluster_width >> o.allow_zeros),
              "truncated plan options");
  std::size_t ncaps = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ncaps), "truncated cap count");
  o.triangle_unit_caps.resize(ncaps);
  for (auto& c : o.triangle_unit_caps) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated caps");
  }
  count_t nnz = 0;
  SPF_REQUIRE(static_cast<bool>(is >> plan.n >> nnz), "truncated plan shape");
  SPF_REQUIRE(plan.n >= 0 && nnz >= 0, "plan shape out of range");

  std::vector<index_t> perm(static_cast<std::size_t>(plan.n));
  for (auto& p : perm) SPF_REQUIRE(static_cast<bool>(is >> p), "truncated permutation");
  plan.perm = Permutation(std::move(perm));  // validates it is a permutation

  plan.in_col_ptr.resize(static_cast<std::size_t>(plan.n) + 1);
  for (auto& p : plan.in_col_ptr) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated column pointers");
  }
  plan.in_row_ind.resize(static_cast<std::size_t>(nnz));
  for (auto& r : plan.in_row_ind) {
    SPF_REQUIRE(static_cast<bool>(is >> r), "truncated row indices");
  }
  plan.value_gather.resize(static_cast<std::size_t>(nnz));
  std::vector<bool> seen(static_cast<std::size_t>(nnz), false);
  for (auto& g : plan.value_gather) {
    SPF_REQUIRE(static_cast<bool>(is >> g), "truncated value gather map");
    SPF_REQUIRE(g >= 0 && g < nnz && !seen[static_cast<std::size_t>(g)],
                "gather map is not a permutation of the input slots");
    seen[static_cast<std::size_t>(g)] = true;
  }

  // Re-derive the analysis; the CscMatrix and symbolic constructors
  // validate the pattern's internal invariants.
  plan.symbolic = symbolic_cholesky(plan.permuted_input({}));
  plan.mapping = build_mapping(
      plan.symbolic,
      plan.config.scheme == MappingScheme::kWrap ? MappingScheme::kWrap
                                                 : MappingScheme::kBlock,
      plan.config.partition, plan.config.nprocs, nullptr, plan.config.schedule_spec());

  count_t factor_nnz = 0;
  index_t nblocks = 0, nprocs = 0;
  SPF_REQUIRE(static_cast<bool>(is >> factor_nnz >> nblocks >> nprocs),
              "truncated plan footer");
  SPF_REQUIRE(plan.mapping.partition.factor.nnz() == factor_nnz,
              "pattern does not reproduce the recorded factor structure");
  SPF_REQUIRE(plan.mapping.partition.num_blocks() == nblocks,
              "pattern does not reproduce the recorded partition shape");
  SPF_REQUIRE(nprocs == plan.config.nprocs, "plan footer processor count mismatch");
  plan.mapping.assignment.nprocs = nprocs;
  plan.mapping.assignment.proc_of_block.resize(static_cast<std::size_t>(nblocks));
  for (auto& p : plan.mapping.assignment.proc_of_block) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated assignment");
    SPF_REQUIRE(p >= 0 && p < nprocs, "assignment entry out of range");
  }

  // Recompile the kernel plan (pure function of the analysis above) and
  // verify it reproduces the recorded shape.
  plan.rows_of = build_row_structure(plan.mapping.partition.factor);
  plan.kernels = compile_kernel_plan(plan.mapping.partition, plan.in_col_ptr,
                                     plan.in_row_ind, plan.rows_of);
  index_t max_h = 0, max_w = 0;
  std::size_t na = 0, ng = 0, nu = 0, ncu = 0, nm = 0, ncb = 0;
  SPF_REQUIRE(static_cast<bool>(is >> max_h >> max_w >> na >> ng >> nu >> ncu >> nm >> ncb),
              "truncated kernel figures");
  SPF_REQUIRE(plan.kernels.max_h == max_h && plan.kernels.max_w == max_w &&
                  plan.kernels.ascatter.size() == na && plan.kernels.gathers.size() == ng &&
                  plan.kernels.updates.size() == nu &&
                  plan.kernels.col_updates.size() == ncu &&
                  plan.kernels.col_macs.size() == nm && plan.kernels.col_base.size() == ncb,
              "pattern does not reproduce the recorded kernel plan");
  return plan;
}

void write_kernel_plan(std::ostream& os, const KernelPlan& kp) {
  os << kKernelMagic << "\n";
  os << kp.n << ' ' << kp.input_nnz << ' ' << kp.factor_nnz << ' ' << kp.nblocks << ' '
     << kp.max_h << ' ' << kp.max_w << "\n";
  os << kp.blocks.size() << ' ' << kp.ascatter.size() << ' ' << kp.gathers.size() << ' '
     << kp.updates.size() << ' ' << kp.col_updates.size() << ' ' << kp.col_macs.size()
     << ' ' << kp.col_base.size() << "\n";
  for (const BlockKernel& b : kp.blocks) {
    os << static_cast<int>(b.kind) << ' ' << b.rows0 << ' ' << b.cols0 << ' ' << b.h
       << ' ' << b.w << ' ' << b.a_off << ' ' << b.a_len << ' ' << b.op_off << ' '
       << b.op_len << ' ' << b.colbase_off << ' ' << b.tribase_off << "\n";
  }
  for (const KernelScatterA& s : kp.ascatter) os << s.src << ' ' << s.dst << "\n";
  for (const KernelGather& g : kp.gathers) os << g.pos << ' ' << g.elem << "\n";
  for (const KernelUpdate& u : kp.updates) {
    os << u.u_off << ' ' << u.v_off << ' ' << u.u_len << ' ' << u.v_len << ' '
       << static_cast<int>(u.dense) << "\n";
  }
  for (const ColumnUpdate& c : kp.col_updates) {
    os << c.ljk << ' ' << c.mac_off << ' ' << c.mac_len << "\n";
  }
  for (const ColumnMac& m : kp.col_macs) os << m.dst << ' ' << m.src << "\n";
  for (std::size_t k = 0; k < kp.col_base.size(); ++k) {
    os << (k ? " " : "") << kp.col_base[k];
  }
  os << "\n";
}

KernelPlan read_kernel_plan(std::istream& is) {
  check_magic(is, kKernelMagic, "spfactor-kplan-v", "kernel-plan");
  KernelPlan kp;
  SPF_REQUIRE(static_cast<bool>(is >> kp.n >> kp.input_nnz >> kp.factor_nnz >>
                                kp.nblocks >> kp.max_h >> kp.max_w),
              "truncated kernel-plan header");
  SPF_REQUIRE(kp.n >= 0 && kp.input_nnz >= 0 && kp.factor_nnz >= 0 && kp.nblocks >= 0 &&
                  kp.max_h >= 0 && kp.max_w >= 0,
              "kernel-plan shape out of range");
  std::size_t nb = 0, na = 0, ng = 0, nu = 0, ncu = 0, nm = 0, ncb = 0;
  SPF_REQUIRE(static_cast<bool>(is >> nb >> na >> ng >> nu >> ncu >> nm >> ncb),
              "truncated kernel-plan pool sizes");
  SPF_REQUIRE(nb == static_cast<std::size_t>(kp.nblocks) &&
                  na == static_cast<std::size_t>(kp.input_nnz),
              "kernel-plan pool sizes inconsistent with header");

  kp.blocks.resize(nb);
  for (BlockKernel& b : kp.blocks) {
    int kind = 0;
    SPF_REQUIRE(static_cast<bool>(is >> kind >> b.rows0 >> b.cols0 >> b.h >> b.w >>
                                  b.a_off >> b.a_len >> b.op_off >> b.op_len >>
                                  b.colbase_off >> b.tribase_off),
                "truncated kernel-plan block");
    SPF_REQUIRE(kind >= 0 && kind <= static_cast<int>(BlockKind::kRectangle),
                "unknown block kind");
    b.kind = static_cast<BlockKind>(kind);
    SPF_REQUIRE(b.h >= 0 && b.w >= 0 &&
                    (b.kind == BlockKind::kColumn || (b.h <= kp.max_h && b.w <= kp.max_w)),
                "kernel-plan block shape out of range");
    SPF_REQUIRE(b.a_off >= 0 && b.a_len >= 0 &&
                    b.a_off + b.a_len <= static_cast<count_t>(na),
                "kernel-plan scatter range out of bounds");
    const auto nops = static_cast<count_t>(b.kind == BlockKind::kColumn ? ncu : nu);
    SPF_REQUIRE(b.op_off >= 0 && b.op_len >= 0 && b.op_off + b.op_len <= nops,
                "kernel-plan op range out of bounds");
    const count_t base_need = b.kind == BlockKind::kColumn ? 1 : static_cast<count_t>(b.w);
    SPF_REQUIRE(b.colbase_off >= 0 &&
                    b.colbase_off + base_need <= static_cast<count_t>(ncb),
                "kernel-plan column-base range out of bounds");
    if (b.kind == BlockKind::kRectangle) {
      SPF_REQUIRE(b.tribase_off >= 0 &&
                      b.tribase_off + static_cast<count_t>(b.w) <=
                          static_cast<count_t>(ncb),
                  "kernel-plan triangle-base range out of bounds");
    }
  }
  kp.ascatter.resize(na);
  for (KernelScatterA& s : kp.ascatter) {
    SPF_REQUIRE(static_cast<bool>(is >> s.src >> s.dst), "truncated kernel-plan scatter");
    SPF_REQUIRE(s.src >= 0 && s.src < kp.input_nnz && s.dst >= 0,
                "kernel-plan scatter entry out of range");
  }
  kp.gathers.resize(ng);
  for (KernelGather& g : kp.gathers) {
    SPF_REQUIRE(static_cast<bool>(is >> g.pos >> g.elem), "truncated kernel-plan gather");
    SPF_REQUIRE(g.pos >= 0 && g.elem >= 0 && g.elem < kp.factor_nnz,
                "kernel-plan gather entry out of range");
  }
  kp.updates.resize(nu);
  for (KernelUpdate& u : kp.updates) {
    int dense = 0;
    SPF_REQUIRE(static_cast<bool>(is >> u.u_off >> u.v_off >> u.u_len >> u.v_len >> dense),
                "truncated kernel-plan update");
    SPF_REQUIRE(dense == 0 || dense == 1, "kernel-plan dense flag out of range");
    u.dense = dense != 0;
    SPF_REQUIRE(u.u_off >= 0 && u.u_len >= 0 &&
                    u.u_off + u.u_len <= static_cast<count_t>(ng) && u.v_off >= 0 &&
                    u.v_len >= 0 && u.v_off + u.v_len <= static_cast<count_t>(ng),
                "kernel-plan update gather range out of bounds");
  }
  kp.col_updates.resize(ncu);
  for (ColumnUpdate& c : kp.col_updates) {
    SPF_REQUIRE(static_cast<bool>(is >> c.ljk >> c.mac_off >> c.mac_len),
                "truncated kernel-plan column update");
    SPF_REQUIRE(c.ljk >= 0 && c.ljk < kp.factor_nnz && c.mac_off >= 0 && c.mac_len >= 0 &&
                    c.mac_off + c.mac_len <= static_cast<count_t>(nm),
                "kernel-plan column update out of range");
  }
  kp.col_macs.resize(nm);
  for (ColumnMac& m : kp.col_macs) {
    SPF_REQUIRE(static_cast<bool>(is >> m.dst >> m.src),
                "truncated kernel-plan column mac");
    SPF_REQUIRE(m.dst >= 0 && m.dst < kp.factor_nnz && m.src >= 0 &&
                    m.src < kp.factor_nnz,
                "kernel-plan column mac out of range");
  }
  kp.col_base.resize(ncb);
  for (count_t& c : kp.col_base) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated kernel-plan column bases");
    SPF_REQUIRE(c >= 0 && c < std::max<count_t>(kp.factor_nnz, 1),
                "kernel-plan column base out of range");
  }
  return kp;
}

void write_plan_file(const std::string& path, const Plan& plan) {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open file for writing: " + path);
  write_plan(os, plan);
}

Plan read_plan_file(const std::string& path) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open file: " + path);
  return read_plan(is);
}

void write_mapping_file(const std::string& path, const Partition& partition,
                        const Assignment& assignment) {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open file for writing: " + path);
  write_mapping(os, partition, assignment);
}

LoadedMapping read_mapping_file(const std::string& path, const SymbolicFactor& sf) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open file: " + path);
  return read_mapping(is, sf);
}

}  // namespace spf
