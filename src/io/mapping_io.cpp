#include "io/mapping_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace spf {

namespace {
constexpr const char* kMagic = "spfactor-mapping-v1";
constexpr const char* kPlanMagic = "spfactor-plan-v1";
}

void write_mapping(std::ostream& os, const Partition& partition,
                   const Assignment& assignment) {
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  const PartitionOptions& o = partition.options;
  os << kMagic << "\n";
  os << o.grain_triangle << ' ' << o.grain_rectangle << ' ' << o.min_cluster_width << ' '
     << o.allow_zeros << "\n";
  os << o.triangle_unit_caps.size();
  for (index_t c : o.triangle_unit_caps) os << ' ' << c;
  os << "\n";
  os << partition.factor.n() << ' ' << partition.factor.nnz() << ' '
     << partition.num_blocks() << ' ' << assignment.nprocs << "\n";
  for (std::size_t b = 0; b < assignment.proc_of_block.size(); ++b) {
    os << assignment.proc_of_block[b] << (b + 1 == assignment.proc_of_block.size() ? "" : " ");
  }
  os << "\n";
}

LoadedMapping read_mapping(std::istream& is, const SymbolicFactor& sf) {
  std::string magic;
  SPF_REQUIRE(static_cast<bool>(is >> magic) && magic == kMagic,
              "not an spfactor mapping file");
  PartitionOptions opt;
  SPF_REQUIRE(static_cast<bool>(is >> opt.grain_triangle >> opt.grain_rectangle >>
                                opt.min_cluster_width >> opt.allow_zeros),
              "truncated mapping header");
  std::size_t ncaps = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ncaps), "truncated cap count");
  opt.triangle_unit_caps.resize(ncaps);
  for (auto& c : opt.triangle_unit_caps) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated caps");
  }
  index_t n = 0, nblocks = 0, nprocs = 0;
  count_t nnz = 0;
  SPF_REQUIRE(static_cast<bool>(is >> n >> nnz >> nblocks >> nprocs),
              "truncated mapping shape");
  SPF_REQUIRE(n == sf.n(), "mapping was computed for a different matrix order");

  LoadedMapping out;
  out.partition = partition_factor(sf, opt);
  SPF_REQUIRE(out.partition.factor.nnz() == nnz,
              "mapping was computed for a different factor structure");
  SPF_REQUIRE(out.partition.num_blocks() == nblocks,
              "factor does not reproduce the recorded partition shape");
  out.assignment.nprocs = nprocs;
  out.assignment.proc_of_block.resize(static_cast<std::size_t>(nblocks));
  for (auto& p : out.assignment.proc_of_block) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated assignment");
    SPF_REQUIRE(p >= 0 && p < nprocs, "assignment entry out of range");
  }
  return out;
}

void write_plan(std::ostream& os, const Plan& plan) {
  const Mapping& m = plan.mapping;
  SPF_REQUIRE(m.assignment.proc_of_block.size() == m.partition.blocks.size(),
              "plan assignment/partition mismatch");
  SPF_REQUIRE(plan.value_gather.size() == plan.in_row_ind.size(),
              "plan gather/pattern mismatch");
  // Effective options: for adaptive plans these carry the triangle caps.
  const PartitionOptions& o = m.partition.options;
  os << kPlanMagic << "\n";
  os << static_cast<int>(plan.config.ordering) << ' '
     << static_cast<int>(plan.config.scheme) << ' ' << plan.config.nprocs << "\n";
  os << o.grain_triangle << ' ' << o.grain_rectangle << ' ' << o.min_cluster_width << ' '
     << o.allow_zeros << "\n";
  os << o.triangle_unit_caps.size();
  for (index_t c : o.triangle_unit_caps) os << ' ' << c;
  os << "\n";
  os << plan.n << ' ' << plan.in_row_ind.size() << "\n";
  for (std::size_t k = 0; k < plan.perm.perm().size(); ++k) {
    os << (k ? " " : "") << plan.perm.perm()[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.in_col_ptr.size(); ++k) {
    os << (k ? " " : "") << plan.in_col_ptr[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.in_row_ind.size(); ++k) {
    os << (k ? " " : "") << plan.in_row_ind[k];
  }
  os << "\n";
  for (std::size_t k = 0; k < plan.value_gather.size(); ++k) {
    os << (k ? " " : "") << plan.value_gather[k];
  }
  os << "\n";
  // Shape figures the loader verifies after re-deriving the analysis.
  os << m.partition.factor.nnz() << ' ' << m.partition.num_blocks() << ' '
     << m.assignment.nprocs << "\n";
  for (std::size_t b = 0; b < m.assignment.proc_of_block.size(); ++b) {
    os << (b ? " " : "") << m.assignment.proc_of_block[b];
  }
  os << "\n";
}

Plan read_plan(std::istream& is) {
  std::string magic;
  SPF_REQUIRE(static_cast<bool>(is >> magic) && magic == kPlanMagic,
              "not an spfactor plan file");
  Plan plan;
  int ordering = 0, scheme = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ordering >> scheme >> plan.config.nprocs),
              "truncated plan header");
  SPF_REQUIRE(ordering >= 0 &&
                  ordering <= static_cast<int>(OrderingKind::kNestedDissection),
              "unknown ordering kind");
  SPF_REQUIRE(scheme >= 0 && scheme <= static_cast<int>(MappingScheme::kWrap),
              "unknown mapping scheme");
  SPF_REQUIRE(plan.config.nprocs >= 1, "plan processor count out of range");
  plan.config.ordering = static_cast<OrderingKind>(ordering);
  plan.config.scheme = static_cast<MappingScheme>(scheme);
  PartitionOptions& o = plan.config.partition;
  SPF_REQUIRE(static_cast<bool>(is >> o.grain_triangle >> o.grain_rectangle >>
                                o.min_cluster_width >> o.allow_zeros),
              "truncated plan options");
  std::size_t ncaps = 0;
  SPF_REQUIRE(static_cast<bool>(is >> ncaps), "truncated cap count");
  o.triangle_unit_caps.resize(ncaps);
  for (auto& c : o.triangle_unit_caps) {
    SPF_REQUIRE(static_cast<bool>(is >> c), "truncated caps");
  }
  count_t nnz = 0;
  SPF_REQUIRE(static_cast<bool>(is >> plan.n >> nnz), "truncated plan shape");
  SPF_REQUIRE(plan.n >= 0 && nnz >= 0, "plan shape out of range");

  std::vector<index_t> perm(static_cast<std::size_t>(plan.n));
  for (auto& p : perm) SPF_REQUIRE(static_cast<bool>(is >> p), "truncated permutation");
  plan.perm = Permutation(std::move(perm));  // validates it is a permutation

  plan.in_col_ptr.resize(static_cast<std::size_t>(plan.n) + 1);
  for (auto& p : plan.in_col_ptr) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated column pointers");
  }
  plan.in_row_ind.resize(static_cast<std::size_t>(nnz));
  for (auto& r : plan.in_row_ind) {
    SPF_REQUIRE(static_cast<bool>(is >> r), "truncated row indices");
  }
  plan.value_gather.resize(static_cast<std::size_t>(nnz));
  std::vector<bool> seen(static_cast<std::size_t>(nnz), false);
  for (auto& g : plan.value_gather) {
    SPF_REQUIRE(static_cast<bool>(is >> g), "truncated value gather map");
    SPF_REQUIRE(g >= 0 && g < nnz && !seen[static_cast<std::size_t>(g)],
                "gather map is not a permutation of the input slots");
    seen[static_cast<std::size_t>(g)] = true;
  }

  // Re-derive the analysis; the CscMatrix and symbolic constructors
  // validate the pattern's internal invariants.
  plan.symbolic = symbolic_cholesky(plan.permuted_input({}));
  plan.mapping = build_mapping(
      plan.symbolic,
      plan.config.scheme == MappingScheme::kWrap ? MappingScheme::kWrap
                                                 : MappingScheme::kBlock,
      plan.config.partition, plan.config.nprocs);

  count_t factor_nnz = 0;
  index_t nblocks = 0, nprocs = 0;
  SPF_REQUIRE(static_cast<bool>(is >> factor_nnz >> nblocks >> nprocs),
              "truncated plan footer");
  SPF_REQUIRE(plan.mapping.partition.factor.nnz() == factor_nnz,
              "pattern does not reproduce the recorded factor structure");
  SPF_REQUIRE(plan.mapping.partition.num_blocks() == nblocks,
              "pattern does not reproduce the recorded partition shape");
  SPF_REQUIRE(nprocs == plan.config.nprocs, "plan footer processor count mismatch");
  plan.mapping.assignment.nprocs = nprocs;
  plan.mapping.assignment.proc_of_block.resize(static_cast<std::size_t>(nblocks));
  for (auto& p : plan.mapping.assignment.proc_of_block) {
    SPF_REQUIRE(static_cast<bool>(is >> p), "truncated assignment");
    SPF_REQUIRE(p >= 0 && p < nprocs, "assignment entry out of range");
  }
  return plan;
}

void write_plan_file(const std::string& path, const Plan& plan) {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open file for writing: " + path);
  write_plan(os, plan);
}

Plan read_plan_file(const std::string& path) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open file: " + path);
  return read_plan(is);
}

void write_mapping_file(const std::string& path, const Partition& partition,
                        const Assignment& assignment) {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open file for writing: " + path);
  write_mapping(os, partition, assignment);
}

LoadedMapping read_mapping_file(const std::string& path, const SymbolicFactor& sf) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open file: " + path);
  return read_mapping(is, sf);
}

}  // namespace spf
