// Save/load of computed mappings.
//
// The paper's pipeline is static: the partition and schedule are computed
// once per matrix structure and reused across numeric factorizations.
// This format persists that product.  Since every stage is deterministic,
// the partition itself is stored as its *options* (re-derived on load and
// verified against the recorded shape); the assignment is stored verbatim.
#pragma once

#include <iosfwd>
#include <string>

#include "core/plan.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Write the mapping (partition recipe + processor assignment).
void write_mapping(std::ostream& os, const Partition& partition,
                   const Assignment& assignment);

struct LoadedMapping {
  Partition partition;
  Assignment assignment;
};

/// Rebuild a mapping against the (identical) symbolic factor it was
/// computed from.  Throws spf::invalid_input when the stream is malformed
/// or the factor does not reproduce the recorded partition shape.
LoadedMapping read_mapping(std::istream& is, const SymbolicFactor& sf);

void write_mapping_file(const std::string& path, const Partition& partition,
                        const Assignment& assignment);
LoadedMapping read_mapping_file(const std::string& path, const SymbolicFactor& sf);

/// Persist a solver plan (core/plan.hpp) so a warmed plan cache survives
/// across processes.  Stored: the plan config, the permutation, the
/// permuted input pattern with its value-gather map, and the processor
/// assignment verbatim; the symbolic factor, partition, dependencies and
/// per-block work are re-derived deterministically on load and verified
/// against recorded shape figures.  For adaptively capped plans the
/// *effective* partition options (including the caps) are stored, so the
/// reload needs no re-capping pass.
void write_plan(std::ostream& os, const Plan& plan);

/// Rebuild a plan written by write_plan.  Throws spf::invalid_input when
/// the stream is malformed, truncated, or internally inconsistent.
Plan read_plan(std::istream& is);

void write_plan_file(const std::string& path, const Plan& plan);
Plan read_plan_file(const std::string& path);

/// Persist a compiled kernel plan (exec/kernel_plan.hpp) verbatim — all
/// pools explicit, no re-derivation, so a loaded plan replays without any
/// compile work.  read_kernel_plan validates every recorded range (block
/// recipes, gather/scatter/op offsets, element ids) and throws
/// spf::invalid_input on malformed, truncated, or inconsistent input.
void write_kernel_plan(std::ostream& os, const KernelPlan& kp);
KernelPlan read_kernel_plan(std::istream& is);

}  // namespace spf
