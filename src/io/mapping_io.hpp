// Save/load of computed mappings.
//
// The paper's pipeline is static: the partition and schedule are computed
// once per matrix structure and reused across numeric factorizations.
// This format persists that product.  Since every stage is deterministic,
// the partition itself is stored as its *options* (re-derived on load and
// verified against the recorded shape); the assignment is stored verbatim.
#pragma once

#include <iosfwd>
#include <string>

#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Write the mapping (partition recipe + processor assignment).
void write_mapping(std::ostream& os, const Partition& partition,
                   const Assignment& assignment);

struct LoadedMapping {
  Partition partition;
  Assignment assignment;
};

/// Rebuild a mapping against the (identical) symbolic factor it was
/// computed from.  Throws spf::invalid_input when the stream is malformed
/// or the factor does not reproduce the recorded partition shape.
LoadedMapping read_mapping(std::istream& is, const SymbolicFactor& sf);

void write_mapping_file(const std::string& path, const Partition& partition,
                        const Assignment& assignment);
LoadedMapping read_mapping_file(const std::string& path, const SymbolicFactor& sf);

}  // namespace spf
