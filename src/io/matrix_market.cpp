#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "matrix/coo.hpp"
#include "support/check.hpp"

namespace spf {

namespace {

std::string lower_copy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in, MatrixMarketInfo* info) {
  std::string line;
  SPF_REQUIRE(static_cast<bool>(std::getline(in, line)), "empty Matrix Market stream");
  std::istringstream header(lower_copy(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SPF_REQUIRE(banner == "%%matrixmarket", "missing %%MatrixMarket banner");
  SPF_REQUIRE(object == "matrix", "only 'matrix' objects are supported");
  SPF_REQUIRE(format == "coordinate", "only coordinate format is supported");
  SPF_REQUIRE(field == "real" || field == "pattern" || field == "integer",
              "unsupported field type: " + field);
  SPF_REQUIRE(symmetry == "general" || symmetry == "symmetric",
              "unsupported symmetry: " + symmetry);
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  if (info != nullptr) {
    info->pattern = pattern;
    info->symmetric = symmetric;
  }

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    break;
  }
  std::istringstream size_line(line);
  long long nrows = 0, ncols = 0, nz = 0;
  size_line >> nrows >> ncols >> nz;
  SPF_REQUIRE(nrows > 0 && ncols > 0 && nz >= 0, "bad Matrix Market size line");

  CooBuilder coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  for (long long k = 0; k < nz; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j)) SPF_REQUIRE(false, "truncated Matrix Market data");
    if (!pattern) {
      SPF_REQUIRE(static_cast<bool>(in >> v), "truncated Matrix Market value");
    }
    SPF_REQUIRE(i >= 1 && i <= nrows && j >= 1 && j <= ncols, "entry out of range");
    index_t r = static_cast<index_t>(i - 1);
    index_t c = static_cast<index_t>(j - 1);
    if (symmetric) {
      // Normalize to lower triangle; files should already satisfy this but
      // be forgiving about transposed entries.
      if (r < c) std::swap(r, c);
    }
    coo.add(r, c, pattern ? 1.0 : v);
  }
  return coo.to_csc();
}

CscMatrix read_matrix_market_file(const std::string& path, MatrixMarketInfo* info) {
  std::ifstream in(path);
  SPF_REQUIRE(in.good(), "cannot open file: " + path);
  return read_matrix_market(in, info);
}

void write_matrix_market(std::ostream& out, const CscMatrix& a, bool symmetric_lower) {
  const bool pattern = !a.has_values();
  out << "%%MatrixMarket matrix coordinate " << (pattern ? "pattern" : "real") << ' '
      << (symmetric_lower ? "symmetric" : "general") << "\n";
  out << a.nrows() << ' ' << a.ncols() << ' ' << a.nnz() << "\n";
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (symmetric_lower) SPF_REQUIRE(rows[k] >= j, "symmetric output must be lower triangular");
      out << (rows[k] + 1) << ' ' << (j + 1);
      if (!pattern) out << ' ' << vals[k];
      out << "\n";
    }
  }
}

void write_matrix_market_file(const std::string& path, const CscMatrix& a,
                              bool symmetric_lower) {
  std::ofstream out(path);
  SPF_REQUIRE(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, a, symmetric_lower);
}

}  // namespace spf
