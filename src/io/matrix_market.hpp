// Matrix Market (coordinate) reader and writer.
//
// Supports the subset relevant to this library: `matrix coordinate
// real|pattern|integer general|symmetric`.  Symmetric files are expanded or
// kept as lower triangle depending on the call used.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csc.hpp"

namespace spf {

/// Result of parsing a Matrix Market header.
struct MatrixMarketInfo {
  bool symmetric = false;
  bool pattern = false;
};

/// Read a Matrix Market stream.  Symmetric files are returned as their lower
/// triangle (diagonal included); general files are returned as stored.
CscMatrix read_matrix_market(std::istream& in, MatrixMarketInfo* info = nullptr);

/// Convenience: read from a file path.
CscMatrix read_matrix_market_file(const std::string& path, MatrixMarketInfo* info = nullptr);

/// Write `a` in coordinate format.  When `symmetric_lower` is true the
/// matrix is declared symmetric and must be lower triangular.
void write_matrix_market(std::ostream& out, const CscMatrix& a, bool symmetric_lower);

void write_matrix_market_file(const std::string& path, const CscMatrix& a,
                              bool symmetric_lower);

}  // namespace spf
