#include "io/pattern_art.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "support/check.hpp"

namespace spf {

namespace {

void print_impl(std::ostream& os, const CscMatrix& lower,
                std::span<const index_t> cluster_first) {
  const index_t n = lower.ncols();
  // Precompute per-row membership by scanning columns once into a dense
  // boolean raster; fine for the display sizes this is meant for.
  std::vector<char> raster(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t r : lower.col_rows(j)) {
      raster[static_cast<std::size_t>(r) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)] = 1;
    }
  }
  std::vector<char> boundary(static_cast<std::size_t>(n) + 1, 0);
  for (index_t c : cluster_first) {
    SPF_REQUIRE(c >= 0 && c < n, "cluster start out of range");
    boundary[static_cast<std::size_t>(c)] = 1;
  }
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (!cluster_first.empty() && j > 0 && boundary[static_cast<std::size_t>(j)]) os << '|';
      if (j > i) {
        os << ' ';
      } else {
        os << (raster[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(j)]
                   ? '#'
                   : '.');
      }
    }
    os << '\n';
  }
}

}  // namespace

void print_lower_pattern(std::ostream& os, const CscMatrix& lower) {
  print_impl(os, lower, {});
}

void print_lower_pattern_with_clusters(std::ostream& os, const CscMatrix& lower,
                                       std::span<const index_t> cluster_first) {
  print_impl(os, lower, cluster_first);
}

}  // namespace spf
