// Text rendering of sparsity patterns.
//
// Used to regenerate the paper's Figure 2 (the filled 41x41 matrix with its
// clusters) as console output, and handy for debugging partitions.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "matrix/csc.hpp"

namespace spf {

/// Print the lower-triangular pattern: '#' for stored entries, '.' for
/// structural zeros below the diagonal, spaces above the diagonal.
void print_lower_pattern(std::ostream& os, const CscMatrix& lower);

/// Same, but overlays cluster boundaries: columns belonging to the same
/// cluster are separated from the next cluster with a '|' gutter, making the
/// dense diagonal triangles and off-diagonal rectangles visible (Figure 2).
/// `cluster_first` holds the first column of each cluster, ascending, and an
/// implicit terminator at n.
void print_lower_pattern_with_clusters(std::ostream& os, const CscMatrix& lower,
                                       std::span<const index_t> cluster_first);

}  // namespace spf
