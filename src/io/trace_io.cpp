#include "io/trace_io.hpp"

#include <fstream>

#include "support/check.hpp"
#include "support/json.hpp"

namespace spf {

void TraceWriter::write(std::ostream& os, const obs::Tracer& tracer) const {
  JsonWriter jw(os);
  jw.begin_object();
  jw.field("displayTimeUnit", "ms");
  jw.begin_array("traceEvents");

  // Process / thread name metadata so the viewer labels the rows.
  jw.begin_object();
  jw.field("ph", "M");
  jw.field("pid", 1);
  jw.field("tid", 0);
  jw.field("name", "process_name");
  jw.begin_object("args");
  jw.field("name", process_name_);
  jw.end();
  jw.end();
  for (index_t w = 0; w < tracer.num_workers(); ++w) {
    jw.begin_object();
    jw.field("ph", "M");
    jw.field("pid", 1);
    jw.field("tid", static_cast<long long>(w));
    jw.field("name", "thread_name");
    jw.begin_object("args");
    jw.field("name", "worker " + std::to_string(w));
    jw.end();
    jw.end();
  }

  const std::int64_t origin = tracer.origin_ns();
  for (index_t w = 0; w < tracer.num_workers(); ++w) {
    for (const obs::Span& s : tracer.ring(w)) {
      jw.begin_object();
      jw.field("ph", "X");
      jw.field("pid", 1);
      jw.field("tid", static_cast<long long>(w));
      jw.field("name", obs::to_string(s.kind));
      // Microseconds, fractional (both viewers accept doubles here).
      jw.field("ts", static_cast<double>(s.t_start_ns - origin) * 1e-3);
      jw.field("dur", static_cast<double>(s.t_end_ns - s.t_start_ns) * 1e-3);
      jw.begin_object("args");
      jw.field("id", static_cast<long long>(s.id));
      jw.field("arg", static_cast<long long>(s.arg));
      jw.end();
      jw.end();
    }
  }
  jw.end();
  jw.field("droppedSpans", static_cast<long long>(tracer.total_dropped()));
  jw.end();
  os << "\n";
}

void TraceWriter::write_file(const std::string& path, const obs::Tracer& tracer) const {
  std::ofstream os(path);
  SPF_REQUIRE(os.good(), "cannot open trace output file " + path);
  write(os, tracer);
  SPF_REQUIRE(os.good(), "failed writing trace output file " + path);
}

}  // namespace spf
