// TraceWriter: export obs::Tracer spans as chrome://tracing JSON.
//
// The format is the Trace Event Format's JSON-object flavor: a top-level
// object with a "traceEvents" array of complete ("ph":"X") events, one per
// recorded span, plus thread-name metadata events so each worker gets a
// labeled row.  Timestamps are microseconds relative to the tracer's
// origin (chrome://tracing and Perfetto both accept fractional "ts"/"dur",
// so sub-microsecond spans survive the export).
//
// Open the result at chrome://tracing ("Load") or https://ui.perfetto.dev.
#pragma once

#include <ostream>
#include <string>

#include "obs/trace.hpp"

namespace spf {

class TraceWriter {
 public:
  /// `process_name` labels the trace's single process row.
  explicit TraceWriter(std::string process_name = "spfactor")
      : process_name_(std::move(process_name)) {}

  /// Write the full chrome-trace JSON document for `tracer`.
  void write(std::ostream& os, const obs::Tracer& tracer) const;

  /// Same, to a file.  Throws spf::invalid_input when the file cannot be
  /// opened or written.
  void write_file(const std::string& path, const obs::Tracer& tracer) const;

 private:
  std::string process_name_;
};

}  // namespace spf
