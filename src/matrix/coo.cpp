#include "matrix/coo.hpp"

#include <algorithm>
#include <numeric>

#include "matrix/csc.hpp"
#include "support/check.hpp"

namespace spf {

CooBuilder::CooBuilder(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
  SPF_REQUIRE(nrows >= 0 && ncols >= 0, "matrix dimensions must be non-negative");
}

void CooBuilder::add(index_t i, index_t j, double v) {
  SPF_REQUIRE(i >= 0 && i < nrows_, "row index out of range");
  SPF_REQUIRE(j >= 0 && j < ncols_, "column index out of range");
  rows_.push_back(i);
  cols_.push_back(j);
  vals_.push_back(v);
}

void CooBuilder::add_symmetric(index_t i, index_t j, double v) {
  add(i, j, v);
  if (i != j) add(j, i, v);
}

CscMatrix CooBuilder::to_csc() const {
  const std::size_t nz = rows_.size();
  // Counting sort by column, then sort each column's slice by row and merge
  // duplicates.  O(nnz log nnz) worst case, no temporary pair array.
  std::vector<count_t> col_ptr(static_cast<std::size_t>(ncols_) + 1, 0);
  for (index_t c : cols_) ++col_ptr[static_cast<std::size_t>(c) + 1];
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());

  std::vector<index_t> row_ind(nz);
  std::vector<double> vals(nz);
  {
    std::vector<count_t> next(col_ptr.begin(), col_ptr.end() - 1);
    for (std::size_t k = 0; k < nz; ++k) {
      const count_t p = next[static_cast<std::size_t>(cols_[k])]++;
      row_ind[static_cast<std::size_t>(p)] = rows_[k];
      vals[static_cast<std::size_t>(p)] = vals_[k];
    }
  }

  // Sort within each column by row index and coalesce duplicates.  The
  // column slice is copied to scratch first so compaction cannot clobber
  // entries that have not been read yet.
  std::vector<count_t> out_ptr(static_cast<std::size_t>(ncols_) + 1, 0);
  std::vector<std::pair<index_t, double>> scratch;
  count_t w = 0;
  for (index_t j = 0; j < ncols_; ++j) {
    const auto lo = static_cast<std::size_t>(col_ptr[static_cast<std::size_t>(j)]);
    const auto hi = static_cast<std::size_t>(col_ptr[static_cast<std::size_t>(j) + 1]);
    scratch.clear();
    scratch.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) scratch.emplace_back(row_ind[k], vals[k]);
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t k = 0;
    while (k < scratch.size()) {
      const index_t r = scratch[k].first;
      double sum = 0.0;
      while (k < scratch.size() && scratch[k].first == r) sum += scratch[k++].second;
      row_ind[static_cast<std::size_t>(w)] = r;
      vals[static_cast<std::size_t>(w)] = sum;
      ++w;
    }
    out_ptr[static_cast<std::size_t>(j) + 1] = w;
  }
  row_ind.resize(static_cast<std::size_t>(w));
  vals.resize(static_cast<std::size_t>(w));
  return CscMatrix(nrows_, ncols_, std::move(out_ptr), std::move(row_ind), std::move(vals));
}

}  // namespace spf
