// Coordinate-format (triplet) sparse matrix builder.
//
// All generators and file readers assemble matrices through this type and
// then convert to compressed sparse column form.  Duplicate entries are
// summed on conversion, matching Matrix Market semantics.
#pragma once

#include <vector>

#include "matrix/types.hpp"

namespace spf {

class CscMatrix;

/// Mutable triplet accumulator.
class CooBuilder {
 public:
  CooBuilder(index_t nrows, index_t ncols);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] count_t entry_count() const { return static_cast<count_t>(rows_.size()); }

  /// Append entry (i, j) = v.  Indices are validated.
  void add(index_t i, index_t j, double v);

  /// Append (i, j) = v and, when i != j, also (j, i) = v.
  void add_symmetric(index_t i, index_t j, double v);

  /// Convert to CSC, summing duplicates; entries within a column sorted by row.
  [[nodiscard]] CscMatrix to_csc() const;

 private:
  index_t nrows_;
  index_t ncols_;
  std::vector<index_t> rows_;
  std::vector<index_t> cols_;
  std::vector<double> vals_;
};

}  // namespace spf
