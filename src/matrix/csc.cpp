#include "matrix/csc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace spf {

CscMatrix::CscMatrix(index_t nrows, index_t ncols, std::vector<count_t> col_ptr,
                     std::vector<index_t> row_ind, std::vector<double> vals)
    : nrows_(nrows),
      ncols_(ncols),
      col_ptr_(std::move(col_ptr)),
      row_ind_(std::move(row_ind)),
      vals_(std::move(vals)) {
  SPF_REQUIRE(nrows_ >= 0 && ncols_ >= 0, "dimensions must be non-negative");
  SPF_REQUIRE(col_ptr_.size() == static_cast<std::size_t>(ncols_) + 1,
              "col_ptr must have ncols+1 entries");
  SPF_REQUIRE(col_ptr_.front() == 0, "col_ptr must start at 0");
  SPF_REQUIRE(col_ptr_.back() == static_cast<count_t>(row_ind_.size()),
              "col_ptr must end at nnz");
  SPF_REQUIRE(vals_.empty() || vals_.size() == row_ind_.size(),
              "values must be empty or match row indices");
  for (index_t j = 0; j < ncols_; ++j) {
    const auto lo = col_ptr_[static_cast<std::size_t>(j)];
    const auto hi = col_ptr_[static_cast<std::size_t>(j) + 1];
    SPF_REQUIRE(lo <= hi, "col_ptr must be monotone");
    for (count_t p = lo; p < hi; ++p) {
      const index_t r = row_ind_[static_cast<std::size_t>(p)];
      SPF_REQUIRE(r >= 0 && r < nrows_, "row index out of range");
      SPF_REQUIRE(p == lo || row_ind_[static_cast<std::size_t>(p) - 1] < r,
                  "row indices must be strictly increasing within a column");
    }
  }
}

std::span<const index_t> CscMatrix::col_rows(index_t j) const {
  SPF_REQUIRE(j >= 0 && j < ncols_, "column index out of range");
  const auto lo = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
  const auto hi = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1]);
  return {row_ind_.data() + lo, hi - lo};
}

std::span<const double> CscMatrix::col_values(index_t j) const {
  SPF_REQUIRE(j >= 0 && j < ncols_, "column index out of range");
  if (vals_.empty()) return {};
  const auto lo = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
  const auto hi = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1]);
  return {vals_.data() + lo, hi - lo};
}

double CscMatrix::at(index_t i, index_t j) const {
  const auto rows = col_rows(j);
  const auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  if (vals_.empty()) return 1.0;  // pattern matrices read as 0/1
  const auto offset = static_cast<std::size_t>(it - rows.begin());
  return col_values(j)[offset];
}

bool CscMatrix::stored(index_t i, index_t j) const {
  const auto rows = col_rows(j);
  return std::binary_search(rows.begin(), rows.end(), i);
}

CscMatrix lower_triangle(const CscMatrix& a) {
  SPF_REQUIRE(a.nrows() == a.ncols(), "lower_triangle requires a square matrix");
  std::vector<count_t> col_ptr(static_cast<std::size_t>(a.ncols()) + 1, 0);
  std::vector<index_t> row_ind;
  std::vector<double> vals;
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto v = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] >= j) {
        row_ind.push_back(rows[k]);
        if (a.has_values()) vals.push_back(v[k]);
      }
    }
    col_ptr[static_cast<std::size_t>(j) + 1] = static_cast<count_t>(row_ind.size());
  }
  return CscMatrix(a.nrows(), a.ncols(), std::move(col_ptr), std::move(row_ind),
                   std::move(vals));
}

CscMatrix transpose(const CscMatrix& a) {
  std::vector<count_t> col_ptr(static_cast<std::size_t>(a.nrows()) + 1, 0);
  for (index_t r : a.row_ind()) ++col_ptr[static_cast<std::size_t>(r) + 1];
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());
  std::vector<index_t> row_ind(static_cast<std::size_t>(a.nnz()));
  std::vector<double> vals(a.has_values() ? static_cast<std::size_t>(a.nnz()) : 0);
  std::vector<count_t> next(col_ptr.begin(), col_ptr.end() - 1);
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto v = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const auto p = static_cast<std::size_t>(next[static_cast<std::size_t>(rows[k])]++);
      row_ind[p] = j;
      if (a.has_values()) vals[p] = v[k];
    }
  }
  return CscMatrix(a.ncols(), a.nrows(), std::move(col_ptr), std::move(row_ind),
                   std::move(vals));
}

CscMatrix full_from_lower(const CscMatrix& lower) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "symmetric matrix must be square");
  std::vector<count_t> col_ptr(static_cast<std::size_t>(lower.ncols()) + 1, 0);
  // Count entries per column of the full matrix.
  for (index_t j = 0; j < lower.ncols(); ++j) {
    for (index_t r : lower.col_rows(j)) {
      SPF_REQUIRE(r >= j, "input must be lower triangular");
      ++col_ptr[static_cast<std::size_t>(j) + 1];
      if (r != j) ++col_ptr[static_cast<std::size_t>(r) + 1];
    }
  }
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());
  std::vector<index_t> row_ind(static_cast<std::size_t>(col_ptr.back()));
  std::vector<double> vals(lower.has_values() ? row_ind.size() : 0);
  std::vector<count_t> next(col_ptr.begin(), col_ptr.end() - 1);
  // Emit in an order that keeps every column sorted: walk target rows 0..n-1.
  // Column j of the full matrix holds {upper part: rows i<j with (j,i) in
  // lower} then {lower part: rows i>=j}.  Walking source columns in order
  // and appending transposed entries first requires care; instead do two
  // passes: first the strict upper entries (from the transpose), then the
  // lower entries.  Within a column, all upper rows (< j) precede lower
  // rows (>= j), and each group is generated in increasing order.
  for (index_t j = 0; j < lower.ncols(); ++j) {
    const auto rows = lower.col_rows(j);
    const auto v = lower.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (rows[k] == j) continue;
      // Entry (rows[k], j) of the lower triangle also appears as
      // (j, rows[k]) in the full matrix; emitted into column rows[k].
      const auto p = static_cast<std::size_t>(next[static_cast<std::size_t>(rows[k])]++);
      row_ind[p] = j;
      if (lower.has_values()) vals[p] = v[k];
    }
  }
  for (index_t j = 0; j < lower.ncols(); ++j) {
    const auto rows = lower.col_rows(j);
    const auto v = lower.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const auto p = static_cast<std::size_t>(next[static_cast<std::size_t>(j)]++);
      row_ind[p] = rows[k];
      if (lower.has_values()) vals[p] = v[k];
    }
  }
  return CscMatrix(lower.nrows(), lower.ncols(), std::move(col_ptr), std::move(row_ind),
                   std::move(vals));
}

bool is_symmetric(const CscMatrix& a, double tol) {
  if (a.nrows() != a.ncols()) return false;
  const CscMatrix t = transpose(a);
  if (t.col_ptr().size() != a.col_ptr().size()) return false;
  for (std::size_t i = 0; i < a.col_ptr().size(); ++i) {
    if (a.col_ptr()[i] != t.col_ptr()[i]) return false;
  }
  for (std::size_t i = 0; i < a.row_ind().size(); ++i) {
    if (a.row_ind()[i] != t.row_ind()[i]) return false;
  }
  if (a.has_values()) {
    for (std::size_t i = 0; i < a.values().size(); ++i) {
      if (std::abs(a.values()[i] - t.values()[i]) > tol) return false;
    }
  }
  return true;
}

CscMatrix permute_lower(const CscMatrix& lower, std::span<const index_t> iperm) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "symmetric matrix must be square");
  SPF_REQUIRE(static_cast<index_t>(iperm.size()) == lower.ncols(),
              "permutation size must match matrix order");
  const index_t n = lower.ncols();
  // Collect permuted entries (new_i >= new_j by swapping when needed), then
  // counting-sort into CSC.
  std::vector<count_t> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  struct E {
    index_t i, j;
    double v;
  };
  std::vector<E> entries;
  entries.reserve(static_cast<std::size_t>(lower.nnz()));
  for (index_t j = 0; j < n; ++j) {
    const auto rows = lower.col_rows(j);
    const auto v = lower.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      index_t ni = iperm[static_cast<std::size_t>(rows[k])];
      index_t nj = iperm[static_cast<std::size_t>(j)];
      if (ni < nj) std::swap(ni, nj);
      entries.push_back({ni, nj, lower.has_values() ? v[k] : 0.0});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const E& a, const E& b) {
    return a.j != b.j ? a.j < b.j : a.i < b.i;
  });
  std::vector<index_t> row_ind(entries.size());
  std::vector<double> vals(lower.has_values() ? entries.size() : 0);
  for (std::size_t k = 0; k < entries.size(); ++k) {
    row_ind[k] = entries[k].i;
    if (lower.has_values()) vals[k] = entries[k].v;
    ++col_ptr[static_cast<std::size_t>(entries[k].j) + 1];
  }
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());
  return CscMatrix(n, n, std::move(col_ptr), std::move(row_ind), std::move(vals));
}

std::vector<double> symmetric_matvec(const CscMatrix& lower, std::span<const double> x) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "symmetric matrix must be square");
  SPF_REQUIRE(lower.has_values(), "matvec needs values");
  SPF_REQUIRE(x.size() == static_cast<std::size_t>(lower.ncols()), "vector size mismatch");
  std::vector<double> y(x.size(), 0.0);
  for (index_t j = 0; j < lower.ncols(); ++j) {
    const auto rows = lower.col_rows(j);
    const auto vals = lower.col_values(j);
    for (std::size_t t = 0; t < rows.size(); ++t) {
      SPF_REQUIRE(rows[t] >= j, "input must be lower triangular");
      y[static_cast<std::size_t>(rows[t])] += vals[t] * x[static_cast<std::size_t>(j)];
      if (rows[t] != j) {
        y[static_cast<std::size_t>(j)] += vals[t] * x[static_cast<std::size_t>(rows[t])];
      }
    }
  }
  return y;
}

std::vector<double> to_dense(const CscMatrix& a) {
  std::vector<double> d(static_cast<std::size_t>(a.nrows()) *
                        static_cast<std::size_t>(a.ncols()));
  for (index_t j = 0; j < a.ncols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto v = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      d[static_cast<std::size_t>(j) * static_cast<std::size_t>(a.nrows()) +
        static_cast<std::size_t>(rows[k])] = a.has_values() ? v[k] : 1.0;
    }
  }
  return d;
}

}  // namespace spf
