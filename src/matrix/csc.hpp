// Compressed sparse column matrix.
//
// Conventions used throughout the library:
//  * Row indices within each column are strictly increasing.
//  * Symmetric matrices are stored as their LOWER triangle including the
//    diagonal, which is the natural form for Cholesky (the paper's Figure 1
//    operates on the lower triangle).
//  * Pattern-only uses keep the value array empty.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

/// Immutable-ish CSC matrix.  Values are optional (empty == pattern only).
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Construct from raw arrays; validates monotone column pointers and
  /// sorted, in-range row indices.  `vals` may be empty for pattern-only.
  CscMatrix(index_t nrows, index_t ncols, std::vector<count_t> col_ptr,
            std::vector<index_t> row_ind, std::vector<double> vals);

  [[nodiscard]] index_t nrows() const { return nrows_; }
  [[nodiscard]] index_t ncols() const { return ncols_; }
  [[nodiscard]] count_t nnz() const { return col_ptr_.empty() ? 0 : col_ptr_.back(); }
  [[nodiscard]] bool has_values() const { return !vals_.empty(); }

  [[nodiscard]] std::span<const count_t> col_ptr() const { return col_ptr_; }
  [[nodiscard]] std::span<const index_t> row_ind() const { return row_ind_; }
  [[nodiscard]] std::span<const double> values() const { return vals_; }
  [[nodiscard]] std::span<double> values_mutable() { return vals_; }

  /// Row indices of column j.
  [[nodiscard]] std::span<const index_t> col_rows(index_t j) const;
  /// Values of column j (empty for pattern-only matrices).
  [[nodiscard]] std::span<const double> col_values(index_t j) const;

  /// Value at (i, j), or 0 when the entry is not stored (binary search).
  [[nodiscard]] double at(index_t i, index_t j) const;
  /// True when entry (i, j) is stored.
  [[nodiscard]] bool stored(index_t i, index_t j) const;

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<count_t> col_ptr_{0};
  std::vector<index_t> row_ind_;
  std::vector<double> vals_;
};

/// Extract the lower triangle (including diagonal) of a square matrix.
[[nodiscard]] CscMatrix lower_triangle(const CscMatrix& a);

/// Expand a lower-triangular symmetric matrix to full storage (both halves).
[[nodiscard]] CscMatrix full_from_lower(const CscMatrix& lower);

/// Transpose.
[[nodiscard]] CscMatrix transpose(const CscMatrix& a);

/// True when the (full-storage) matrix equals its transpose structurally and
/// numerically within `tol`.
[[nodiscard]] bool is_symmetric(const CscMatrix& a, double tol = 0.0);

/// Symmetric permutation of a lower-triangular symmetric matrix: returns the
/// lower triangle of P·A·Pᵀ where `perm[k]` is the original index of the row
/// that becomes row k (i.e. new index of original i is iperm[i]).
[[nodiscard]] CscMatrix permute_lower(const CscMatrix& lower, std::span<const index_t> iperm);

/// Dense column-major copy (tests and small examples only).
[[nodiscard]] std::vector<double> to_dense(const CscMatrix& a);

/// y = A x for a symmetric matrix stored as its lower triangle.
[[nodiscard]] std::vector<double> symmetric_matvec(const CscMatrix& lower,
                                                   std::span<const double> x);

}  // namespace spf
