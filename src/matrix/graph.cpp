#include "matrix/graph.hpp"

#include <numeric>

#include "matrix/csc.hpp"
#include "support/check.hpp"

namespace spf {

AdjacencyGraph AdjacencyGraph::from_lower(const CscMatrix& lower) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "graph requires a square matrix");
  AdjacencyGraph g;
  g.n_ = lower.ncols();
  g.ptr_.assign(static_cast<std::size_t>(g.n_) + 1, 0);
  for (index_t j = 0; j < g.n_; ++j) {
    for (index_t r : lower.col_rows(j)) {
      SPF_REQUIRE(r >= j, "input must be lower triangular");
      if (r != j) {
        ++g.ptr_[static_cast<std::size_t>(j) + 1];
        ++g.ptr_[static_cast<std::size_t>(r) + 1];
      }
    }
  }
  std::partial_sum(g.ptr_.begin(), g.ptr_.end(), g.ptr_.begin());
  g.adj_.resize(static_cast<std::size_t>(g.ptr_.back()));
  std::vector<count_t> next(g.ptr_.begin(), g.ptr_.end() - 1);
  // Two passes keep each vertex's neighbor list sorted: first neighbors with
  // smaller index (from the transpose direction), then larger ones.
  for (index_t j = 0; j < g.n_; ++j) {
    for (index_t r : lower.col_rows(j)) {
      if (r != j) g.adj_[static_cast<std::size_t>(next[static_cast<std::size_t>(r)]++)] = j;
    }
  }
  for (index_t j = 0; j < g.n_; ++j) {
    for (index_t r : lower.col_rows(j)) {
      if (r != j) g.adj_[static_cast<std::size_t>(next[static_cast<std::size_t>(j)]++)] = r;
    }
  }
  return g;
}

std::span<const index_t> AdjacencyGraph::neighbors(index_t v) const {
  SPF_REQUIRE(v >= 0 && v < n_, "vertex out of range");
  const auto lo = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(v)]);
  const auto hi = static_cast<std::size_t>(ptr_[static_cast<std::size_t>(v) + 1]);
  return {adj_.data() + lo, hi - lo};
}

}  // namespace spf
