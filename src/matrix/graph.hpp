// Undirected adjacency structure of a symmetric sparse matrix.
//
// Ordering algorithms (MMD, RCM) operate on the graph of the matrix: one
// vertex per unknown, an edge per off-diagonal nonzero pair.  This type
// stores the full (both halves) adjacency without the diagonal, which is
// exactly the quotient-graph starting point.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

class CscMatrix;

class AdjacencyGraph {
 public:
  AdjacencyGraph() = default;

  /// Build from the lower triangle of a symmetric matrix (diagonal ignored).
  static AdjacencyGraph from_lower(const CscMatrix& lower);

  [[nodiscard]] index_t num_vertices() const { return n_; }
  [[nodiscard]] count_t num_edges() const {
    return ptr_.empty() ? 0 : ptr_.back() / 2;
  }

  /// Neighbors of v, sorted ascending, excluding v itself.
  [[nodiscard]] std::span<const index_t> neighbors(index_t v) const;

  [[nodiscard]] index_t degree(index_t v) const {
    return static_cast<index_t>(neighbors(v).size());
  }

 private:
  index_t n_ = 0;
  std::vector<count_t> ptr_{0};
  std::vector<index_t> adj_;
};

}  // namespace spf
