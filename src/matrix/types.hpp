// Fundamental index and size types shared across the library.
#pragma once

#include <cstdint>

namespace spf {

/// Row/column index.  32-bit signed covers every matrix this library
/// targets (the paper's test set tops out near n = 1200) with headroom to
/// millions of unknowns; signed arithmetic keeps index differences safe.
using index_t = std::int32_t;

/// Offsets into nonzero arrays and element counts (may exceed 2^31 when
/// counting update operations, which scale quadratically in column counts).
using count_t = std::int64_t;

}  // namespace spf
