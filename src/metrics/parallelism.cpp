#include "metrics/parallelism.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace spf {

ParallelismProfile analyze_parallelism(const Partition& p, const BlockDeps& deps,
                                       const std::vector<count_t>& blk_work) {
  const index_t nb = p.num_blocks();
  SPF_REQUIRE(static_cast<index_t>(deps.preds.size()) == nb, "deps/partition mismatch");
  SPF_REQUIRE(static_cast<index_t>(blk_work.size()) == nb, "work/partition mismatch");

  ParallelismProfile out;
  for (count_t w : blk_work) out.total_work += w;
  if (nb == 0) {
    out.avg_parallelism = 1.0;
    return out;
  }

  // Longest path (work-weighted) and level (edge-count depth) per block,
  // over a Kahn traversal.
  std::vector<count_t> path(static_cast<std::size_t>(nb), 0);
  std::vector<index_t> level(static_cast<std::size_t>(nb), 0);
  std::vector<index_t> indeg(static_cast<std::size_t>(nb), 0);
  for (index_t b = 0; b < nb; ++b) {
    indeg[static_cast<std::size_t>(b)] =
        static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size());
  }
  std::queue<index_t> ready;
  for (index_t b = 0; b < nb; ++b) {
    if (indeg[static_cast<std::size_t>(b)] == 0) {
      path[static_cast<std::size_t>(b)] = blk_work[static_cast<std::size_t>(b)];
      ready.push(b);
    }
  }
  index_t consumed = 0;
  while (!ready.empty()) {
    const index_t b = ready.front();
    ready.pop();
    ++consumed;
    for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
      path[static_cast<std::size_t>(s)] =
          std::max(path[static_cast<std::size_t>(s)],
                   path[static_cast<std::size_t>(b)] + blk_work[static_cast<std::size_t>(s)]);
      level[static_cast<std::size_t>(s)] =
          std::max(level[static_cast<std::size_t>(s)],
                   level[static_cast<std::size_t>(b)] + 1);
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  SPF_CHECK(consumed == nb, "dependency DAG has a cycle");

  for (index_t b = 0; b < nb; ++b) {
    out.critical_path = std::max(out.critical_path, path[static_cast<std::size_t>(b)]);
    out.dag_depth = std::max(out.dag_depth, level[static_cast<std::size_t>(b)]);
  }
  out.blocks_per_level.assign(static_cast<std::size_t>(out.dag_depth) + 1, 0);
  out.work_per_level.assign(static_cast<std::size_t>(out.dag_depth) + 1, 0);
  for (index_t b = 0; b < nb; ++b) {
    ++out.blocks_per_level[static_cast<std::size_t>(level[static_cast<std::size_t>(b)])];
    out.work_per_level[static_cast<std::size_t>(level[static_cast<std::size_t>(b)])] +=
        blk_work[static_cast<std::size_t>(b)];
  }
  out.avg_parallelism = out.critical_path > 0
                            ? static_cast<double>(out.total_work) /
                                  static_cast<double>(out.critical_path)
                            : 1.0;
  return out;
}

}  // namespace spf
