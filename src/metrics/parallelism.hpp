// Parallelism analysis of a partitioned factorization.
//
// The paper argues that "if the number of processors is relatively small
// compared to the number of schedulable units, then the allocation scheme
// ... provides enough parallelism to keep the idle time to a minimum."
// These metrics quantify that: the work-weighted critical path through the
// block dependency DAG bounds the parallel time from below regardless of
// processor count, and average parallelism (total work / critical path)
// bounds the processor count that can be used efficiently.
#pragma once

#include <vector>

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"

namespace spf {

struct ParallelismProfile {
  count_t total_work = 0;
  count_t critical_path = 0;   ///< max work along any dependency chain
  double avg_parallelism = 0;  ///< total_work / critical_path
  index_t dag_depth = 0;       ///< longest chain in block count
  /// blocks_per_level[d]: blocks whose longest incoming chain has d edges
  /// (the breadth of the DAG over time).
  std::vector<index_t> blocks_per_level;
  /// work_per_level[d]: their combined work.
  std::vector<count_t> work_per_level;
};

ParallelismProfile analyze_parallelism(const Partition& p, const BlockDeps& deps,
                                       const std::vector<count_t>& blk_work);

}  // namespace spf
