#include "metrics/report.hpp"

#include <algorithm>

#include "sched/bounds.hpp"

namespace spf {

MappingReport evaluate_mapping(const Partition& p, const Assignment& a,
                               const std::vector<count_t>& blk_work_in,
                               const BlockDeps* deps, const CostModel* cost) {
  const std::vector<count_t> blk_work =
      blk_work_in.empty() ? block_work(p) : blk_work_in;

  MappingReport rep;
  rep.nprocs = a.nprocs;
  rep.num_clusters = static_cast<index_t>(p.clusters.clusters.size());
  rep.num_blocks = p.num_blocks();

  const TrafficReport traffic = simulate_traffic(p, a);
  rep.total_traffic = traffic.total();
  rep.mean_traffic = traffic.mean();
  rep.mean_partners = traffic.mean_partners();
  rep.max_served = traffic.max_served();
  rep.per_proc_traffic = traffic.per_proc;

  rep.per_proc_elements.assign(static_cast<std::size_t>(a.nprocs), 0);
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    rep.per_proc_elements[static_cast<std::size_t>(a.proc_of_block[b])] +=
        p.blocks[b].elements;
  }
  for (index_t pr = 0; pr < a.nprocs; ++pr) {
    rep.max_memory = std::max(rep.max_memory,
                              rep.per_proc_elements[static_cast<std::size_t>(pr)] +
                                  traffic.per_proc[static_cast<std::size_t>(pr)]);
  }

  rep.per_proc_work = processor_work(p, a, blk_work);
  rep.total_work = total_work(blk_work);
  rep.mean_work = static_cast<double>(rep.total_work) / static_cast<double>(a.nprocs);
  rep.max_work = *std::max_element(rep.per_proc_work.begin(), rep.per_proc_work.end());
  rep.lambda = load_imbalance(rep.per_proc_work);
  rep.efficiency = balance_efficiency(rep.per_proc_work);

  if (deps != nullptr) {
    const CostModel cm = cost != nullptr ? *cost : CostModel{};
    const ScheduleBound bound = makespan_lower_bound(*deps, blk_work, a.nprocs, cm);
    rep.makespan_lower_bound = bound.lower_bound;
    rep.critical_path = bound.critical_path_time;
    rep.schedule_makespan = schedule_makespan(*deps, blk_work, a, cm);
    rep.schedule_efficiency =
        rep.schedule_makespan > 0.0 ? rep.makespan_lower_bound / rep.schedule_makespan : 1.0;
  }
  return rep;
}

}  // namespace spf
