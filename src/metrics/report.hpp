// Combined evaluation of a (partition, assignment) pair: everything the
// paper's Tables 2-5 report.
#pragma once

#include "metrics/traffic.hpp"
#include "metrics/work.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "sched/cost_model.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct MappingReport {
  index_t nprocs = 1;
  index_t num_clusters = 0;
  index_t num_blocks = 0;

  // Communication (Tables 2, 4, 5).
  count_t total_traffic = 0;
  double mean_traffic = 0.0;
  double mean_partners = 0.0;
  count_t max_served = 0;

  // Work distribution (Tables 3, 4, 5).
  count_t total_work = 0;
  double mean_work = 0.0;
  count_t max_work = 0;
  double lambda = 0.0;      ///< load imbalance factor
  double efficiency = 0.0;  ///< Wtot / (Wmax * N)

  std::vector<count_t> per_proc_traffic;
  std::vector<count_t> per_proc_work;
  /// Factor elements owned by each processor.
  std::vector<count_t> per_proc_elements;
  /// Peak per-processor memory in factor elements: owned storage plus the
  /// cache of fetched non-local elements (fetch-once semantics mean the
  /// cache holds exactly the traffic count).
  count_t max_memory = 0;

  // Schedule quality against the DAG (filled when deps are supplied; zero
  // otherwise).  Times are work units / speed under the cost model.
  double makespan_lower_bound = 0.0;  ///< Quach & Langou bound (sched/bounds)
  double critical_path = 0.0;         ///< CP / s_max component of the bound
  double schedule_makespan = 0.0;     ///< work-only replay of this assignment
  /// makespan_lower_bound / schedule_makespan, in (0, 1]; 1 means the
  /// schedule is provably optimal for this DAG and processor count.
  double schedule_efficiency = 0.0;
};

/// Evaluate an assignment.  `blk_work` may be supplied to avoid
/// recomputation; pass {} to compute internally.  Supplying `deps`
/// additionally fills the schedule-quality block (makespan lower bound,
/// work-only makespan, schedule_efficiency) under `cost` (uniform when
/// null or empty).
MappingReport evaluate_mapping(const Partition& p, const Assignment& a,
                               const std::vector<count_t>& blk_work = {},
                               const BlockDeps* deps = nullptr,
                               const CostModel* cost = nullptr);

}  // namespace spf
