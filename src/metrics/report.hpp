// Combined evaluation of a (partition, assignment) pair: everything the
// paper's Tables 2-5 report.
#pragma once

#include "metrics/traffic.hpp"
#include "metrics/work.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct MappingReport {
  index_t nprocs = 1;
  index_t num_clusters = 0;
  index_t num_blocks = 0;

  // Communication (Tables 2, 4, 5).
  count_t total_traffic = 0;
  double mean_traffic = 0.0;
  double mean_partners = 0.0;
  count_t max_served = 0;

  // Work distribution (Tables 3, 4, 5).
  count_t total_work = 0;
  double mean_work = 0.0;
  count_t max_work = 0;
  double lambda = 0.0;      ///< load imbalance factor
  double efficiency = 0.0;  ///< Wtot / (Wmax * N)

  std::vector<count_t> per_proc_traffic;
  std::vector<count_t> per_proc_work;
  /// Factor elements owned by each processor.
  std::vector<count_t> per_proc_elements;
  /// Peak per-processor memory in factor elements: owned storage plus the
  /// cache of fetched non-local elements (fetch-once semantics mean the
  /// cache holds exactly the traffic count).
  count_t max_memory = 0;
};

/// Evaluate an assignment.  `blk_work` may be supplied to avoid
/// recomputation; pass {} to compute internally.
MappingReport evaluate_mapping(const Partition& p, const Assignment& a,
                               const std::vector<count_t>& blk_work = {});

}  // namespace spf
