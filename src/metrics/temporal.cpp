#include "metrics/temporal.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "support/check.hpp"

namespace spf {

TemporalBalance temporal_imbalance(const Partition& p, const BlockDeps& deps,
                                   const std::vector<count_t>& blk_work,
                                   const Assignment& a) {
  const index_t nb = p.num_blocks();
  SPF_REQUIRE(static_cast<index_t>(deps.preds.size()) == nb, "deps/partition mismatch");
  SPF_REQUIRE(static_cast<index_t>(blk_work.size()) == nb, "work/partition mismatch");
  SPF_REQUIRE(static_cast<index_t>(a.proc_of_block.size()) == nb,
              "assignment/partition mismatch");

  // DAG levels via Kahn.
  std::vector<index_t> level(static_cast<std::size_t>(nb), 0);
  std::vector<index_t> indeg(static_cast<std::size_t>(nb));
  std::queue<index_t> q;
  for (index_t b = 0; b < nb; ++b) {
    indeg[static_cast<std::size_t>(b)] =
        static_cast<index_t>(deps.preds[static_cast<std::size_t>(b)].size());
    if (indeg[static_cast<std::size_t>(b)] == 0) q.push(b);
  }
  index_t depth = 0, seen = 0;
  while (!q.empty()) {
    const index_t b = q.front();
    q.pop();
    ++seen;
    depth = std::max(depth, level[static_cast<std::size_t>(b)]);
    for (index_t s : deps.succs[static_cast<std::size_t>(b)]) {
      level[static_cast<std::size_t>(s)] =
          std::max(level[static_cast<std::size_t>(s)],
                   level[static_cast<std::size_t>(b)] + 1);
      if (--indeg[static_cast<std::size_t>(s)] == 0) q.push(s);
    }
  }
  SPF_CHECK(seen == nb, "dependency DAG has a cycle");

  TemporalBalance out;
  const std::size_t nlevels = static_cast<std::size_t>(depth) + (nb > 0 ? 1 : 0);
  out.level_lambda.assign(nlevels, 0.0);
  out.level_work.assign(nlevels, 0);
  // Per-level, per-processor work.
  std::vector<count_t> proc_work(static_cast<std::size_t>(a.nprocs));
  for (std::size_t l = 0; l < nlevels; ++l) {
    std::fill(proc_work.begin(), proc_work.end(), 0);
    count_t total = 0, worst = 0;
    for (index_t b = 0; b < nb; ++b) {
      if (static_cast<std::size_t>(level[static_cast<std::size_t>(b)]) != l) continue;
      const count_t w = blk_work[static_cast<std::size_t>(b)];
      proc_work[static_cast<std::size_t>(a.proc(b))] += w;
      total += w;
    }
    for (count_t w : proc_work) worst = std::max(worst, w);
    out.level_work[l] = total;
    if (total > 0) {
      const double np = static_cast<double>(a.nprocs);
      out.level_lambda[l] =
          (static_cast<double>(worst) - static_cast<double>(total) / np) * np /
          static_cast<double>(total);
    }
  }
  count_t grand = 0;
  double acc = 0.0;
  for (std::size_t l = 0; l < nlevels; ++l) {
    grand += out.level_work[l];
    acc += out.level_lambda[l] * static_cast<double>(out.level_work[l]);
  }
  out.weighted_lambda = grand > 0 ? acc / static_cast<double>(grand) : 0.0;
  return out;
}

std::vector<count_t> traffic_by_cluster(const Partition& p, const Assignment& a) {
  const SymbolicFactor& sf = p.factor;
  std::vector<count_t> out(p.clusters.clusters.size(), 0);
  std::unordered_set<std::uint64_t> fetched;
  const auto nnz = static_cast<std::uint64_t>(sf.nnz());
  // Cluster of each column (the fetched element's home cluster).
  auto access = [&](index_t dst_proc, count_t element, index_t src_block,
                    index_t src_cluster) {
    if (a.proc(src_block) == dst_proc) return;
    const std::uint64_t key =
        static_cast<std::uint64_t>(dst_proc) * nnz + static_cast<std::uint64_t>(element);
    if (fetched.insert(key).second) ++out[static_cast<std::size_t>(src_cluster)];
  };

  std::vector<index_t> src_blk;
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    const index_t kcluster = p.clusters.cluster_of_col[static_cast<std::size_t>(k)];
    const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
    src_blk.resize(sd.size());
    {
      auto segs = p.emap.column_segments(k);
      std::size_t pos = 0;
      for (std::size_t t = 0; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        src_blk[t] = segs[pos].block;
      }
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      auto segs = p.emap.column_segments(sd[b]);
      std::size_t pos = 0;
      for (std::size_t t = b; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        const index_t target_proc = a.proc(segs[pos].block);
        access(target_proc, kbase + 1 + static_cast<count_t>(t), src_blk[t], kcluster);
        access(target_proc, kbase + 1 + static_cast<count_t>(b), src_blk[b], kcluster);
      }
    }
  }
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    const count_t diag_id = sf.col_ptr()[static_cast<std::size_t>(j)];
    const index_t jcluster = p.clusters.cluster_of_col[static_cast<std::size_t>(j)];
    for (const ColumnSegment& s : segs) {
      access(a.proc(s.block), diag_id, segs.front().block, jcluster);
    }
  }
  return out;
}

}  // namespace spf
