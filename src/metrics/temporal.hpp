// Temporal load balance and traffic attribution.
//
// The paper's introduction demands that "to balance the load, the
// computations must be evenly distributed *at all times*" — a stronger
// requirement than the end-of-run lambda of Table 3, which only measures
// total work.  temporal_imbalance() operationalizes it: the dependency
// DAG's levels act as time steps, and the work-weighted average of the
// per-level imbalance factors exposes mappings that balance overall totals
// while serializing individual phases.
//
// traffic_by_cluster() attributes the traffic metric to the cluster whose
// data is fetched, showing where the communication actually originates
// (typically concentrated in the few large supernodes near the elimination
// tree's top).
#pragma once

#include <vector>

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct TemporalBalance {
  /// lambda restricted to each DAG level's work.
  std::vector<double> level_lambda;
  /// Work at each level (the weights).
  std::vector<count_t> level_work;
  /// Work-weighted mean of level_lambda: 0 = perfectly balanced at every
  /// stage of the elimination; the end-of-run lambda is a lower bound.
  double weighted_lambda = 0.0;
};

TemporalBalance temporal_imbalance(const Partition& p, const BlockDeps& deps,
                                   const std::vector<count_t>& blk_work,
                                   const Assignment& a);

/// Distinct non-local fetches attributed to the cluster owning the fetched
/// element; returns one count per cluster (same totals as
/// simulate_traffic).
std::vector<count_t> traffic_by_cluster(const Partition& p, const Assignment& a);

}  // namespace spf
