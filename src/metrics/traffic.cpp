#include "metrics/traffic.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace spf {

count_t TrafficReport::total() const {
  count_t t = 0;
  for (count_t v : per_proc) t += v;
  return t;
}

double TrafficReport::mean() const {
  return per_proc.empty() ? 0.0
                          : static_cast<double>(total()) / static_cast<double>(per_proc.size());
}

index_t TrafficReport::partners(index_t dst) const {
  index_t c = 0;
  for (index_t src = 0; src < nprocs; ++src) {
    if (volume[static_cast<std::size_t>(dst) * static_cast<std::size_t>(nprocs) +
               static_cast<std::size_t>(src)] > 0) {
      ++c;
    }
  }
  return c;
}

double TrafficReport::mean_partners() const {
  double sum = 0;
  for (index_t d = 0; d < nprocs; ++d) sum += partners(d);
  return nprocs == 0 ? 0.0 : sum / nprocs;
}

count_t TrafficReport::max_served() const {
  count_t best = 0;
  for (index_t src = 0; src < nprocs; ++src) {
    count_t served = 0;
    for (index_t dst = 0; dst < nprocs; ++dst) {
      served += volume[static_cast<std::size_t>(dst) * static_cast<std::size_t>(nprocs) +
                       static_cast<std::size_t>(src)];
    }
    best = std::max(best, served);
  }
  return best;
}

namespace {

/// Walks a sorted row list against a column's segment list.
class SegWalk {
 public:
  explicit SegWalk(std::span<const ColumnSegment> segs) : segs_(segs) {}
  index_t block_for(index_t row) {
    while (pos_ < segs_.size() && segs_[pos_].rows.hi < row) ++pos_;
    SPF_CHECK(pos_ < segs_.size() && segs_[pos_].rows.contains(row),
              "row not covered by column segments");
    return segs_[pos_].block;
  }

 private:
  std::span<const ColumnSegment> segs_;
  std::size_t pos_ = 0;
};

}  // namespace

TrafficReport simulate_traffic(const Partition& p, const Assignment& a) {
  SPF_REQUIRE(a.proc_of_block.size() == p.blocks.size(), "assignment/partition mismatch");
  const SymbolicFactor& sf = p.factor;
  const index_t np = a.nprocs;

  TrafficReport rep;
  rep.nprocs = np;
  rep.per_proc.assign(static_cast<std::size_t>(np), 0);
  rep.volume.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np), 0);

  // fetched: (destination processor, element id) pairs already counted.
  std::unordered_set<std::uint64_t> fetched;
  fetched.reserve(static_cast<std::size_t>(sf.nnz()));
  const auto nnz = static_cast<std::uint64_t>(sf.nnz());
  auto access = [&](index_t dst_proc, count_t element, index_t src_proc) {
    if (dst_proc == src_proc) return;
    const std::uint64_t key =
        static_cast<std::uint64_t>(dst_proc) * nnz + static_cast<std::uint64_t>(element);
    if (fetched.insert(key).second) {
      ++rep.per_proc[static_cast<std::size_t>(dst_proc)];
      ++rep.volume[static_cast<std::size_t>(dst_proc) * static_cast<std::size_t>(np) +
                   static_cast<std::size_t>(src_proc)];
    }
  };

  std::vector<index_t> src_proc(0);
  std::vector<count_t> src_id(0);
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
    // Source elements are the subdiagonal of column k: position t in sd has
    // element id kbase + 1 + t.  Precompute owner processors.
    src_proc.resize(sd.size());
    {
      SegWalk w(p.emap.column_segments(k));
      for (std::size_t t = 0; t < sd.size(); ++t) {
        src_proc[t] = a.proc(w.block_for(sd[t]));
      }
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      const index_t j = sd[b];
      const count_t ej = kbase + 1 + static_cast<count_t>(b);  // element (j,k)
      SegWalk w(p.emap.column_segments(j));
      for (std::size_t t = b; t < sd.size(); ++t) {
        const index_t i = sd[t];
        const count_t ei = kbase + 1 + static_cast<count_t>(t);  // element (i,k)
        const index_t target_proc = a.proc(w.block_for(i));
        access(target_proc, ei, src_proc[t]);
        access(target_proc, ej, src_proc[b]);
      }
    }
  }

  // Scaling: every element of column j reads the diagonal (j,j).
  for (index_t j = 0; j < sf.n(); ++j) {
    const count_t diag_id = sf.col_ptr()[static_cast<std::size_t>(j)];
    const auto segs = p.emap.column_segments(j);
    const index_t diag_proc = a.proc(segs.front().block);
    for (const ColumnSegment& s : segs) {
      access(a.proc(s.block), diag_id, diag_proc);
    }
  }

  return rep;
}

}  // namespace spf
