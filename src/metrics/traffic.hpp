// Data-traffic model — paper Section 4.
//
// "The data traffic is defined as a count of all the non-local data
// accesses.  Accessing a single non-local element constitutes a unit data
// traffic irrespective of the location from where it is fetched.  Once a
// data element is fetched, that element is stored locally and subsequent
// usage ... does not add to the data traffic."
//
// Under owner-computes (the owner of an element performs all its updates),
// a processor's traffic is the number of *distinct* factor elements it
// reads that are owned elsewhere: the two sources of every update
// operation plus the column diagonal used in scaling.
#pragma once

#include <vector>

#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct TrafficReport {
  /// Distinct non-local elements fetched by each processor.
  std::vector<count_t> per_proc;
  /// volume[dst * nprocs + src]: distinct elements processor `dst` fetched
  /// from processor `src` (the paper discusses wrap mappings "communicating
  /// with a large number of other processors" — this matrix quantifies it).
  std::vector<count_t> volume;
  index_t nprocs = 1;

  [[nodiscard]] count_t total() const;
  [[nodiscard]] double mean() const;
  /// Number of distinct source processors `dst` fetches from.
  [[nodiscard]] index_t partners(index_t dst) const;
  /// Average partner count over all processors.
  [[nodiscard]] double mean_partners() const;
  /// Largest number of elements served by any single processor (hot spot).
  [[nodiscard]] count_t max_served() const;
};

/// Simulate the factorization's data accesses under the assignment.
TrafficReport simulate_traffic(const Partition& p, const Assignment& a);

}  // namespace spf
