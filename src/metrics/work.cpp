#include "metrics/work.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf {

std::vector<count_t> element_work(const SymbolicFactor& sf) {
  // updates[e] counts the (i,k),(j,k) pairs hitting element e; every
  // element additionally pays 1 unit for the diagonal scaling.
  std::vector<count_t> work(static_cast<std::size_t>(sf.nnz()), 1);
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    for (std::size_t b = 0; b < sd.size(); ++b) {
      const index_t j = sd[b];
      // Targets (i, j) for i = sd[a], a >= b.  All exist by fill closure;
      // walk column j's rows in lockstep to avoid per-op binary searches.
      const auto jrows = sf.col_rows(j);
      const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
      std::size_t pos = 0;
      for (std::size_t a = b; a < sd.size(); ++a) {
        const index_t i = sd[a];
        while (pos < jrows.size() && jrows[pos] < i) ++pos;
        SPF_CHECK(pos < jrows.size() && jrows[pos] == i,
                  "factor structure is not closed under Cholesky fill");
        work[static_cast<std::size_t>(jbase) + pos] += 2;
      }
    }
  }
  return work;
}

std::vector<count_t> block_work(const Partition& p) {
  const std::vector<count_t> ework = element_work(p.factor);
  std::vector<count_t> out(p.blocks.size(), 0);
  const SymbolicFactor& sf = p.factor;
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto rows = sf.col_rows(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    const auto segs = p.emap.column_segments(j);
    std::size_t si = 0;
    for (std::size_t t = 0; t < rows.size(); ++t) {
      while (si < segs.size() && segs[si].rows.hi < rows[t]) ++si;
      SPF_CHECK(si < segs.size() && segs[si].rows.contains(rows[t]),
                "element not covered by the partition");
      out[static_cast<std::size_t>(segs[si].block)] +=
          ework[static_cast<std::size_t>(base) + static_cast<count_t>(t)];
    }
  }
  return out;
}

std::vector<count_t> processor_work(const Partition& p, const Assignment& a,
                                    const std::vector<count_t>& blk_work) {
  SPF_REQUIRE(blk_work.size() == p.blocks.size(), "block work size mismatch");
  SPF_REQUIRE(a.proc_of_block.size() == p.blocks.size(), "assignment size mismatch");
  std::vector<count_t> out(static_cast<std::size_t>(a.nprocs), 0);
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const index_t proc = a.proc_of_block[b];
    SPF_REQUIRE(proc >= 0 && proc < a.nprocs, "block assigned to invalid processor");
    out[static_cast<std::size_t>(proc)] += blk_work[b];
  }
  return out;
}

count_t total_work(const std::vector<count_t>& blk_work) {
  count_t total = 0;
  for (count_t w : blk_work) total += w;
  return total;
}

double load_imbalance(const std::vector<count_t>& proc_work) {
  SPF_REQUIRE(!proc_work.empty(), "need at least one processor");
  count_t wtot = 0, wmax = 0;
  for (count_t w : proc_work) {
    wtot += w;
    wmax = std::max(wmax, w);
  }
  if (wtot == 0) return 0.0;
  const double n = static_cast<double>(proc_work.size());
  const double wavg = static_cast<double>(wtot) / n;
  return (static_cast<double>(wmax) - wavg) * n / static_cast<double>(wtot);
}

double balance_efficiency(const std::vector<count_t>& proc_work) {
  SPF_REQUIRE(!proc_work.empty(), "need at least one processor");
  count_t wtot = 0, wmax = 0;
  for (count_t w : proc_work) {
    wtot += w;
    wmax = std::max(wmax, w);
  }
  if (wmax == 0) return 1.0;
  return static_cast<double>(wtot) /
         (static_cast<double>(wmax) * static_cast<double>(proc_work.size()));
}

}  // namespace spf
