// Computational work model — paper Section 4.
//
// "The computation cost of updating an element of the matrix by a pair of
// off-diagonal elements is assumed to be two units; updating the element by
// the diagonal element is assumed to cost one unit."
//
// Element (i,j) of L therefore costs 2 * |{k < j : L(i,k)≠0 ∧ L(j,k)≠0}|
// for its updates plus 1 for the final scaling by the diagonal.
#pragma once

#include <vector>

#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Work units per factor element, indexed by the factor's element id.
std::vector<count_t> element_work(const SymbolicFactor& sf);

/// Work per unit block (sum over owned elements).
std::vector<count_t> block_work(const Partition& p);

/// Work per processor under an assignment.
std::vector<count_t> processor_work(const Partition& p, const Assignment& a,
                                    const std::vector<count_t>& blk_work);

/// Total work of the factorization (the paper's Wtot).
count_t total_work(const std::vector<count_t>& blk_work);

/// Load imbalance factor: lambda = (Wmax - Wavg) * N / Wtot.
double load_imbalance(const std::vector<count_t>& proc_work);

/// Efficiency under the zero-idle-time model: Wtot / (Wmax * N).
double balance_efficiency(const std::vector<count_t>& proc_work);

}  // namespace spf
