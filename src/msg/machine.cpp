#include "msg/machine.hpp"

#include <exception>
#include <thread>

#include "support/check.hpp"

namespace spf {

index_t MsgContext::nprocs() const { return machine_->nprocs_; }

void MsgContext::send(index_t dst, int tag, std::vector<count_t> ids,
                      std::vector<double> values) {
  SPF_REQUIRE(dst >= 0 && dst < machine_->nprocs_, "send destination out of range");
  MachineMessage msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.ids = std::move(ids);
  msg.values = std::move(values);
  machine_->deliver(dst, std::move(msg));
}

MachineMessage MsgContext::recv(index_t src, int tag) {
  SPF_REQUIRE(src >= -1 && src < machine_->nprocs_, "recv source out of range");
  return machine_->take(rank_, src, tag);
}

MachineMessage MsgContext::recv_any() { return machine_->take(rank_, -1, -1); }

bool MsgContext::probe() { return machine_->probe(rank_); }

void MsgContext::barrier() { machine_->barrier_wait(); }

Machine::Machine(index_t nprocs) : nprocs_(nprocs), mailboxes_(static_cast<std::size_t>(nprocs)) {
  SPF_REQUIRE(nprocs >= 1, "machine needs at least one rank");
}

void Machine::deliver(index_t dst, MachineMessage msg) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages;
    stats_.volume += static_cast<count_t>(msg.values.size());
    const std::size_t cell = static_cast<std::size_t>(dst) * static_cast<std::size_t>(nprocs_) +
                             static_cast<std::size_t>(msg.src);
    ++stats_.pair_messages[cell];
    stats_.pair_volume[cell] += static_cast<count_t>(msg.values.size());
  }
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

MachineMessage Machine::take(index_t rank, index_t src, int tag) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if ((src == -1 || it->src == src) && (tag == -1 || it->tag == tag)) {
        MachineMessage msg = std::move(*it);
        box.queue.erase(it);
        return msg;
      }
    }
    if (aborted_.load()) {
      throw internal_error("message-passing machine aborted by a peer rank failure");
    }
    box.cv.wait(lock);
  }
}

bool Machine::probe(index_t rank) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(box.mu);
  return !box.queue.empty();
}

void Machine::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const index_t gen = barrier_generation_;
  if (++barrier_count_ == nprocs_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != gen || aborted_.load(); });
    if (barrier_generation_ == gen) {
      throw internal_error("message-passing machine aborted during barrier");
    }
  }
}

MachineStats Machine::run(const Program& program) {
  stats_ = MachineStats{};
  stats_.pair_messages.assign(
      static_cast<std::size_t>(nprocs_) * static_cast<std::size_t>(nprocs_), 0);
  stats_.pair_volume.assign(
      static_cast<std::size_t>(nprocs_) * static_cast<std::size_t>(nprocs_), 0);
  for (auto& box : mailboxes_) box.queue.clear();
  barrier_count_ = 0;
  aborted_.store(false);

  std::vector<std::thread> threads;
  std::mutex error_mu;
  std::exception_ptr first_error;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (index_t r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &program, &error_mu, &first_error] {
      MsgContext ctx(this, r);
      try {
        program(ctx);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Abort the machine so ranks blocked in recv unblock instead of
        // deadlocking the join.
        aborted_.store(true);
        for (auto& box : mailboxes_) {
          std::lock_guard<std::mutex> lock(box.mu);
          box.cv.notify_all();
        }
        barrier_cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  SPF_CHECK(!aborted_.load(), "machine aborted without a recorded error");
  return stats_;
}

}  // namespace spf
