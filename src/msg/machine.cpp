#include "msg/machine.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace spf {

index_t MsgContext::nprocs() const { return machine_->nprocs_; }

void MsgContext::send(index_t dst, int tag, std::vector<count_t> ids,
                      std::vector<double> values) {
  transport_->send(dst, tag, std::move(ids), std::move(values));
}

bool MsgContext::pull(bool blocking) {
  rt::RtMessage msg;
  if (blocking) {
    msg = transport_->recv();
  } else if (!transport_->try_recv(msg)) {
    return false;
  }
  MachineMessage mm;
  mm.src = msg.src;
  mm.tag = static_cast<int>(msg.tag);
  mm.ids = std::move(msg.ids);
  mm.values = std::move(msg.values);
  stash_.push_back(std::move(mm));
  return true;
}

MachineMessage MsgContext::recv(index_t src, int tag) {
  SPF_REQUIRE(src >= -1 && src < machine_->nprocs_, "recv source out of range");
  auto matches = [&](const MachineMessage& m) {
    return (src == -1 || m.src == src) && (tag == -1 || m.tag == tag);
  };
  std::size_t scanned = 0;
  while (true) {
    for (; scanned < stash_.size(); ++scanned) {
      if (matches(stash_[scanned])) {
        MachineMessage out = std::move(stash_[scanned]);
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(scanned));
        return out;
      }
    }
    pull(/*blocking=*/true);
  }
}

MachineMessage MsgContext::recv_any() {
  if (stash_.empty()) pull(/*blocking=*/true);
  MachineMessage out = std::move(stash_.front());
  stash_.pop_front();
  return out;
}

bool MsgContext::probe() {
  if (!stash_.empty()) return true;
  return pull(/*blocking=*/false);
}

void MsgContext::barrier() { transport_->barrier(); }

Machine::Machine(index_t nprocs) : nprocs_(nprocs) {
  SPF_REQUIRE(nprocs >= 1, "machine needs at least one rank");
}

MachineStats Machine::run(const Program& program) {
  fabric_ = std::make_unique<rt::LoopbackFabric>(nprocs_);

  std::vector<std::thread> threads;
  std::mutex error_mu;
  std::exception_ptr first_error;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (index_t r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, r, &program, &error_mu, &first_error] {
      MsgContext ctx(this, r, &fabric_->endpoint(r));
      try {
        program(ctx);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Abort the fabric so ranks blocked in recv unblock (with
        // RtAborted) instead of deadlocking the join.
        fabric_->abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  SPF_CHECK(!fabric_->aborted(), "machine aborted without a recorded error");

  MachineStats stats;
  stats.pair_messages = fabric_->pair_messages();
  stats.pair_volume = fabric_->pair_volume();
  for (count_t c : stats.pair_messages) stats.messages += c;
  for (count_t v : stats.pair_volume) stats.volume += v;
  return stats;
}

}  // namespace spf
