// In-process message-passing machine.
//
// The paper targets "message passing systems"; this is a faithful
// miniature: a fixed set of ranks, each running user code on its own
// thread, exchanging typed messages through per-rank mailboxes.  It gives
// the distributed factorization executor (src/dist) a real send/recv
// substrate whose delivered-byte counts can be compared against the
// analytic traffic model, without requiring an MPI installation.
//
// Since the distributed runtime landed, the machine is a thin veneer
// over its loopback transport (rt/loopback.hpp): one LoopbackFabric per
// run carries the messages and tallies the per-pair statistics, and the
// machine adds what Machine callers historically relied on — selective
// (source, tag) receives out of arrival order, via a per-rank stash of
// messages pulled but not yet claimed.
//
// Semantics:
//  * send() is asynchronous and never blocks (infinite mailbox);
//  * recv() blocks until a message with the given source and tag arrives;
//  * recv_any() blocks for the next message in arrival order;
//  * barrier() synchronizes all ranks;
//  * a message carries a tag plus parallel arrays of element ids and
//    values (the payload shape every sparse-factorization message has).
//
// Any exception thrown by a rank's program aborts the run and is rethrown
// on the calling thread.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "matrix/types.hpp"
#include "rt/loopback.hpp"

namespace spf {

struct MachineMessage {
  index_t src = -1;
  int tag = 0;
  std::vector<count_t> ids;
  std::vector<double> values;
};

struct MachineStats {
  count_t messages = 0;       ///< total messages delivered
  count_t volume = 0;         ///< total payload values delivered
  /// per-pair counts: pair_messages[dst * nprocs + src].
  std::vector<count_t> pair_messages;
  std::vector<count_t> pair_volume;
};

class Machine;

/// Per-rank communication handle, passed to each rank's program.
class MsgContext {
 public:
  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t nprocs() const;

  /// Asynchronous send to `dst` (never blocks; self-sends allowed).
  void send(index_t dst, int tag, std::vector<count_t> ids, std::vector<double> values);

  /// Blocking receive of the next message from `src` with tag `tag`.
  MachineMessage recv(index_t src, int tag);

  /// Blocking receive of the next message from anyone (arrival order).
  MachineMessage recv_any();

  /// True when a message is waiting (non-blocking probe).
  [[nodiscard]] bool probe();

  /// Synchronize all ranks.
  void barrier();

 private:
  friend class Machine;
  MsgContext(Machine* machine, index_t rank, rt::Transport* transport)
      : machine_(machine), rank_(rank), transport_(transport) {}
  /// Pull the next transport message into the stash.  Blocking variant
  /// throws on abort; non-blocking returns false when nothing waits.
  bool pull(bool blocking);

  Machine* machine_;
  index_t rank_;
  rt::Transport* transport_;
  /// Messages received from the transport but not yet claimed by a
  /// selective recv (arrival order preserved).
  std::deque<MachineMessage> stash_;
};

class Machine {
 public:
  explicit Machine(index_t nprocs);

  using Program = std::function<void(MsgContext&)>;

  /// Run `program` on every rank (one thread per rank); returns aggregate
  /// message statistics.  Rethrows the first rank exception, if any.
  MachineStats run(const Program& program);

 private:
  friend class MsgContext;

  index_t nprocs_;
  /// One fabric per run (abort poisons a fabric permanently; statistics
  /// are per-run).
  std::unique_ptr<rt::LoopbackFabric> fabric_;
};

}  // namespace spf
