#include "net/client.hpp"

#include <sstream>
#include <utility>

#include "io/mapping_io.hpp"

namespace spf::net {

SolverClient::SolverClient(const SolverClientOptions& options)
    : stream_(TcpStream::connect(options.host, options.port, options.read_timeout_ms)) {
  HelloMsg hello;
  hello.tenant = options.tenant;
  const std::vector<std::uint8_t> reply = request(encode(hello), MsgType::kHelloAck);
  hello_ack_ = decode_hello_ack(reply);
}

SubmitMatrixAckMsg SolverClient::submit_matrix(const CscMatrix& lower, Priority priority,
                                               std::int64_t deadline_rel_ns) {
  SubmitMatrixMsg msg;
  msg.priority = static_cast<std::uint8_t>(priority);
  msg.deadline_rel_ns = deadline_rel_ns;
  msg.matrix = lower;
  return decode_submit_matrix_ack(request(encode(msg), MsgType::kSubmitMatrixAck));
}

SubmitPlanAckMsg SolverClient::submit_plan(const CscMatrix& pattern, const Plan& plan) {
  std::ostringstream os;
  write_plan(os, plan);
  const std::string bytes = os.str();
  SubmitPlanMsg msg;
  msg.pattern = pattern;
  msg.plan_bytes.assign(bytes.begin(), bytes.end());
  return decode_submit_plan_ack(request(encode(msg), MsgType::kSubmitPlanAck));
}

SolveAckMsg SolverClient::solve(std::uint64_t handle, std::span<const double> rhs,
                                std::uint32_t n, std::uint32_t nrhs, Priority priority,
                                std::int64_t deadline_rel_ns) {
  SolveMsg msg;
  msg.prefix.handle = handle;
  msg.prefix.priority = static_cast<std::uint8_t>(priority);
  msg.prefix.deadline_rel_ns = deadline_rel_ns;
  msg.prefix.n = n;
  msg.prefix.nrhs = nrhs;
  msg.rhs.assign(rhs.begin(), rhs.end());
  return decode_solve_ack(request(encode(msg), MsgType::kSolveAck));
}

std::string SolverClient::stats_json() {
  return decode_stats_ack(request(encode(StatsMsg{}), MsgType::kStatsAck)).json;
}

void SolverClient::bye() {
  const std::vector<std::uint8_t> frame = encode(ByeMsg{});
  stream_->write_all(frame.data(), frame.size());
  stream_->shutdown_both();
}

void SolverClient::send_frame(std::span<const std::uint8_t> bytes) {
  stream_->write_all(bytes.data(), bytes.size());
}

std::optional<SolverClient::RawReply> SolverClient::read_reply() {
  std::uint8_t raw[kHeaderSize];
  if (!read_exact(*stream_, raw, kHeaderSize)) return std::nullopt;
  RawReply reply;
  reply.header = decode_header({raw, kHeaderSize});
  reply.payload.resize(reply.header.payload_len);
  if (reply.header.payload_len > 0 &&
      !read_exact(*stream_, reply.payload.data(), reply.payload.size())) {
    throw NetError("server closed mid-reply");
  }
  return reply;
}

std::vector<std::uint8_t> SolverClient::request(std::span<const std::uint8_t> frame,
                                                MsgType expect) {
  send_frame(frame);
  std::optional<RawReply> reply = read_reply();
  if (!reply.has_value()) {
    throw NetError("server closed the connection without replying");
  }
  if (reply->header.type == MsgType::kError) {
    const ErrorMsg err = decode_error(reply->payload);
    throw ProtocolError(err.code, err.message);
  }
  if (reply->header.type != expect) {
    throw ProtocolError(ErrCode::kBadFrame,
                        std::string("expected ") + to_string(expect) + " reply, got " +
                            to_string(reply->header.type));
  }
  return std::move(reply->payload);
}

}  // namespace spf::net
