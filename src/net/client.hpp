// SolverClient: a blocking SPF1 client for tools, tests, and benches.
//
// One client owns one connection: the constructor connects and completes
// the tenant handshake, after which every call is a synchronous
// request/reply round-trip.  A kError reply surfaces as the same typed
// ProtocolError the server-side codec throws, so callers handle local and
// remote protocol failures identically.  The raw framing primitives
// (send_frame / read_reply) are public for the protocol-robustness tests,
// which need to push malformed bytes at a live server and observe exactly
// what comes back.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "matrix/csc.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/request_queue.hpp"

namespace spf::net {

struct SolverClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string tenant = "default";
  /// SO_RCVTIMEO on the reply path; 0 = wait forever.
  int read_timeout_ms = 0;
};

class SolverClient {
 public:
  /// Connect and complete the Hello handshake (throws NetError on
  /// transport failure, ProtocolError when the server refuses us).
  explicit SolverClient(const SolverClientOptions& options);

  SolverClient(const SolverClient&) = delete;
  SolverClient& operator=(const SolverClient&) = delete;

  /// The server's handshake reply (shard count, per-shard quotas).
  [[nodiscard]] const HelloAckMsg& hello_ack() const { return hello_ack_; }

  /// Factorize `lower` on the server; the ack carries the handle solves
  /// use (when status == kOk).
  [[nodiscard]] SubmitMatrixAckMsg submit_matrix(const CscMatrix& lower,
                                                 Priority priority = Priority::kNormal,
                                                 std::int64_t deadline_rel_ns = 0);

  /// Serialize `plan` and preload it into the tenant shard owning
  /// `pattern`, so the first submit_matrix of that pattern runs warm.
  [[nodiscard]] SubmitPlanAckMsg submit_plan(const CscMatrix& pattern, const Plan& plan);

  /// Solve `nrhs` column-major right-hand sides of length `n` against a
  /// handle from submit_matrix.
  [[nodiscard]] SolveAckMsg solve(std::uint64_t handle, std::span<const double> rhs,
                                  std::uint32_t n, std::uint32_t nrhs = 1,
                                  Priority priority = Priority::kNormal,
                                  std::int64_t deadline_rel_ns = 0);

  /// The server's stats document (net.* counters + per-tenant serve stats).
  [[nodiscard]] std::string stats_json();

  /// Clean goodbye (no reply); the connection is unusable afterwards.
  void bye();

  // --- Raw framing (protocol tests) ---------------------------------------

  /// Push arbitrary bytes at the server.
  void send_frame(std::span<const std::uint8_t> bytes);

  struct RawReply {
    FrameHeader header;
    std::vector<std::uint8_t> payload;
  };
  /// Read one reply frame; nullopt on orderly server close.  The header is
  /// validated (a server that answered garbage would throw ProtocolError).
  [[nodiscard]] std::optional<RawReply> read_reply();

  [[nodiscard]] ByteStream& stream() { return *stream_; }

 private:
  /// One round-trip: send `frame`, read the reply, unwrap kError replies
  /// into a thrown ProtocolError, require `expect` otherwise.
  [[nodiscard]] std::vector<std::uint8_t> request(std::span<const std::uint8_t> frame,
                                                  MsgType expect);

  std::unique_ptr<TcpStream> stream_;
  HelloAckMsg hello_ack_;
};

}  // namespace spf::net
