#include "net/epoll_server.hpp"

#include <algorithm>
#include <cerrno>
#include <utility>

#include "obs/trace.hpp"

#ifdef __linux__
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace spf::net {

#ifndef __linux__

EpollReactor::EpollReactor(SolverServer& server) : server_(server) {
  throw NetError("the epoll transport requires Linux (epoll + eventfd)");
}
EpollReactor::~EpollReactor() = default;
void EpollReactor::start() {}
void EpollReactor::begin_stop() {}
void EpollReactor::finish_stop() {}
void EpollReactor::on_drain(SolverServer::Tenant*) {}

#else

namespace {

/// Buffers above this shrink back on reuse so one huge frame doesn't pin
/// its memory for the connection's lifetime.
constexpr std::size_t kShrinkBytes = std::size_t{1} << 20;

}  // namespace

EpollReactor::EpollReactor(SolverServer& server) : server_(server) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw NetError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw NetError("eventfd failed");
  }
}

EpollReactor::~EpollReactor() {
  // The server's stop() already ran both phases; they are idempotent, so
  // a reactor torn down on an exceptional path still cleans up fully.
  begin_stop();
  finish_stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollReactor::start() {
  const int lfd = server_.listener_.fd();
  const int flags = ::fcntl(lfd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(lfd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError("cannot make the listener nonblocking");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = lfd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, lfd, &ev) != 0) {
    throw NetError("epoll_ctl(listener) failed");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    throw NetError("epoll_ctl(eventfd) failed");
  }
  reactor_ = std::thread([this] { reactor_loop(); });
  const auto nworkers =
      static_cast<std::size_t>(std::max<index_t>(1, server_.config_.epoll_workers));
  workers_.reserve(nworkers);
  for (std::size_t w = 0; w < nworkers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void EpollReactor::begin_stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) kick();
  if (reactor_.joinable()) reactor_.join();
  // The reactor is gone: no thread touches sockets any more, so shutting
  // every connection down here unblocks peers waiting on replies that
  // will never flush.  Workers never touch streams — they may still be
  // blocked on engine futures, which the caller resolves by stopping the
  // tenant services before finish_stop().
  for (auto& [fd, conn] : conns_) conn->stream->shutdown_both();
  work_cv_.notify_all();
}

void EpollReactor::finish_stop() {
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lk(mu_);
    work_.clear();
    completed_.clear();
    parked_.clear();
  }
  for (auto& [fd, conn] : conns_) {
    if (conn->trace_slot >= 0) {
      std::lock_guard<std::mutex> lk(server_.conns_mu_);
      server_.free_trace_slots_.push_back(conn->trace_slot);
    }
    server_.counters_.record_closed();
  }
  conns_.clear();
}

void EpollReactor::on_drain(SolverServer::Tenant* tenant) {
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = parked_.find(tenant);
    if (it == parked_.end()) return;
    const std::int64_t now = obs::now_ns();
    for (Conn* c : it->second) {
      server_.counters_.record_epoll_resume(
          static_cast<std::uint64_t>((now - c->parked_ns) / 1000));
      c->state.store(Conn::State::kDispatching, std::memory_order_relaxed);
      work_.push_back(c);
      resumed = true;
    }
    parked_.erase(it);
  }
  if (resumed) work_cv_.notify_all();
}

void EpollReactor::kick() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  server_.counters_.record_epoll_wakeup();
}

void EpollReactor::reactor_loop() {
  const int lfd = server_.listener_.fd();
  std::vector<epoll_event> events(128);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                     /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; stop() tears the connections down
    }
    if (n > 0) server_.counters_.record_epoll_ready(static_cast<std::uint64_t>(n));
    bool accept_pending = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t buf = 0;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == lfd) {
        // Deferred past the connection events: a fd closed in this batch
        // must not be reused by accept while stale events for it remain.
        accept_pending = true;
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Conn* c = it->second.get();
      const Conn::State st = c->state.load(std::memory_order_acquire);
      if (st == Conn::State::kDispatching || st == Conn::State::kParked) {
        continue;  // a worker / the parked set owns it (ERR/HUP can still
                   // be reported with interest 0; surfaced at flush time)
      }
      if (st == Conn::State::kFlushing) {
        if ((ev & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
          try {
            if (flush_some(c)) finish_request(c);
          } catch (const NetError&) {
            server_.counters_.record_write_failure();
            close_conn(c);
          }
        }
        continue;
      }
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(c);
        continue;
      }
      if ((ev & EPOLLIN) != 0) read_ready(c);
    }
    take_completed();
    if (accept_pending) accept_ready();
    idle_sweep(obs::now_ns());
  }
}

void EpollReactor::accept_ready() {
  while (true) {
    const int cfd =
        ::accept4(server_.listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // EAGAIN (drained) or transient (EMFILE...): retry on the
               // next readiness report
    }
    if (conns_.size() >= server_.config_.max_connections) {
      server_.counters_.record_refused();
      ::close(cfd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->stream = std::make_unique<TcpStream>(cfd);  // arms TCP_NODELAY
    conn->fd = cfd;
    conn->in.resize(kHeaderSize);
    conn->last_progress_ns = obs::now_ns();
    if (server_.config_.tracer != nullptr) {
      std::lock_guard<std::mutex> lk(server_.conns_mu_);
      if (!server_.free_trace_slots_.empty()) {
        conn->trace_slot = server_.free_trace_slots_.back();
        server_.free_trace_slots_.pop_back();
      }
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      if (conn->trace_slot >= 0) {
        std::lock_guard<std::mutex> lk(server_.conns_mu_);
        server_.free_trace_slots_.push_back(conn->trace_slot);
      }
      server_.counters_.record_refused();
      continue;  // conn (and its fd) die with the unique_ptr
    }
    conn->events = EPOLLIN;
    server_.counters_.record_accepted();
    conns_.emplace(cfd, std::move(conn));
  }
}

void EpollReactor::read_ready(Conn* c) {
  while (true) {
    const bool in_header = c->state.load(std::memory_order_relaxed) ==
                           Conn::State::kReadHeader;
    const std::size_t need = in_header ? kHeaderSize : c->in.size();
    while (c->got < need) {
      std::ptrdiff_t r = 0;
      try {
        r = c->stream->read_nb(c->in.data() + c->got, need - c->got);
      } catch (const NetError&) {
        close_conn(c);  // peer reset: reap quietly, like thread mode
        return;
      }
      if (r == TcpStream::kWouldBlock) return;
      if (r == 0) {
        // EOF: orderly at a frame boundary, abrupt mid-frame — either way
        // there is no one left to answer.
        close_conn(c);
        return;
      }
      c->got += static_cast<std::size_t>(r);
      c->last_progress_ns = obs::now_ns();
    }
    if (in_header) {
      c->t0_ns = obs::now_ns();
      c->seq = server_.request_seq_.fetch_add(1, std::memory_order_relaxed);
      c->span_arg = 0;
      try {
        c->header = decode_header({c->in.data(), kHeaderSize});
      } catch (const ProtocolError& e) {
        // Header-level failures (bad magic/version, oversized frame) are
        // all fatal: answer in-band, then close once the error flushes.
        server_.counters_.record_protocol_error();
        c->out = encode(ErrorMsg{e.code(), e.what()});
        server_.counters_.record_error_sent();
        c->out_off = 0;
        c->close_after_flush = true;
        c->state.store(Conn::State::kFlushing, std::memory_order_relaxed);
        set_interest(c, 0);
        start_flush(c);
        return;
      }
      c->span_arg = static_cast<std::uint16_t>(c->header.type);
      server_.counters_.record_frame_rx(kHeaderSize + c->header.payload_len);
      c->in.resize(kHeaderSize + c->header.payload_len);
      c->state.store(Conn::State::kReadPayload, std::memory_order_relaxed);
      continue;  // a zero-length payload completes immediately
    }
    hand_to_worker(c);
    return;
  }
}

void EpollReactor::hand_to_worker(Conn* c) {
  // Interest drops to 0 while the frame is in flight: pipelined bytes
  // stay in the kernel buffer, and — for a parked connection — this IS
  // the backpressure (the peer's sends eventually block on TCP flow
  // control).  Level-triggered epoll re-reports them on rearm.
  set_interest(c, 0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    c->state.store(Conn::State::kDispatching, std::memory_order_relaxed);
    work_.push_back(c);
  }
  work_cv_.notify_one();
}

void EpollReactor::worker_loop() {
  while (true) {
    Conn* c = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_relaxed) || !work_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      c = work_.front();
      work_.pop_front();
    }
    process(c);
  }
}

void EpollReactor::process(Conn* c) {
  const std::span<const std::uint8_t> payload(c->in.data() + kHeaderSize,
                                              c->header.payload_len);
  std::vector<std::uint8_t> reply;
  bool bye = false;
  bool fatal = false;
  SolverServer::Tenant* tenant = c->tenant;
  try {
    reply = server_.dispatch(tenant, c->header, payload, /*stream=*/nullptr,
                             /*allow_backpressure=*/true, bye);
  } catch (const detail::BackpressureWait& bp) {
    // Park on the owning tenant; the frame stays buffered in c->in and is
    // re-dispatched verbatim when the tenant's queue drains.
    c->tenant = tenant;
    const std::int64_t parked_at = obs::now_ns();
    c->parked_ns = parked_at;
    server_.counters_.record_epoll_pause();
    bool resumed = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      // Lost-wakeup guard: the drain that should resume this connection
      // may have fired between the gate's admission probe (inside
      // dispatch) and this critical section — on_drain would have found
      // the parked set empty and, if the queue is now idle, no further
      // drain event ever fires.  Re-probing here is atomic with respect
      // to on_drain (both hold mu_): either the queue admits now and we
      // re-dispatch immediately, or it is still over its limits, in
      // which case queued entries remain whose removal fires a later
      // drain that will find this entry.
      if (bp.service != nullptr && bp.service->would_admit(bp.work)) {
        c->state.store(Conn::State::kDispatching, std::memory_order_relaxed);
        work_.push_back(c);
        resumed = true;
      } else {
        c->state.store(Conn::State::kParked, std::memory_order_relaxed);
        parked_[tenant].push_back(c);
      }
    }
    if (resumed) {
      // `c` may already belong to another worker; only the local
      // timestamp is safe to touch here.
      server_.counters_.record_epoll_resume(
          static_cast<std::uint64_t>((obs::now_ns() - parked_at) / 1000));
      work_cv_.notify_one();
    }
    return;
  } catch (const ProtocolError& e) {
    server_.counters_.record_protocol_error();
    fatal = is_fatal(e.code());
    reply = encode(ErrorMsg{e.code(), e.what()});
    server_.counters_.record_error_sent();
  } catch (const std::exception& e) {
    // Unexpected server-side failure: answer in-band, keep serving (the
    // frame was fully buffered, so the stream stays in sync).
    reply = encode(ErrorMsg{ErrCode::kInternal, e.what()});
    server_.counters_.record_error_sent();
  }
  c->tenant = tenant;
  c->out = std::move(reply);
  c->out_off = 0;
  c->close_after_flush = fatal || bye;
  {
    std::lock_guard<std::mutex> lk(mu_);
    completed_.push_back(c);
  }
  kick();
}

void EpollReactor::take_completed() {
  std::deque<Conn*> done;
  {
    std::lock_guard<std::mutex> lk(mu_);
    done.swap(completed_);
  }
  for (Conn* c : done) {
    c->state.store(Conn::State::kFlushing, std::memory_order_relaxed);
    start_flush(c);
  }
}

void EpollReactor::start_flush(Conn* c) {
  // The stall clock starts at flush time, not frame-receipt time: queue
  // and engine latency are the server's, not the peer's.
  c->last_progress_ns = obs::now_ns();
  try {
    if (flush_some(c)) {
      finish_request(c);
    } else {
      set_interest(c, EPOLLOUT);
    }
  } catch (const NetError&) {
    server_.counters_.record_write_failure();
    close_conn(c);
  }
}

bool EpollReactor::flush_some(Conn* c) {
  while (c->out_off < c->out.size()) {
    const std::ptrdiff_t w =
        c->stream->write_nb(c->out.data() + c->out_off, c->out.size() - c->out_off);
    if (w == TcpStream::kWouldBlock) return false;
    c->out_off += static_cast<std::size_t>(w);
    c->last_progress_ns = obs::now_ns();
  }
  return true;
}

void EpollReactor::finish_request(Conn* c) {
  if (!c->out.empty()) server_.counters_.record_frame_tx(c->out.size());
  const std::int64_t t1 = obs::now_ns();
  server_.counters_.record_request_us(static_cast<std::uint64_t>((t1 - c->t0_ns) / 1000));
  if (server_.config_.tracer != nullptr && c->trace_slot >= 0) {
    obs::Span span;
    span.t_start_ns = c->t0_ns;
    span.t_end_ns = t1;
    span.id = static_cast<std::int64_t>(c->seq);
    span.arg = c->span_arg;
    span.kind = obs::SpanKind::kNetRequest;
    server_.config_.tracer->ring(c->trace_slot).record(span);
  }
  if (c->close_after_flush) {
    close_conn(c);
    return;
  }
  rearm_read(c);
}

void EpollReactor::rearm_read(Conn* c) {
  if (c->in.capacity() > kShrinkBytes) {
    std::vector<std::uint8_t>(kHeaderSize).swap(c->in);
  } else {
    c->in.resize(kHeaderSize);
  }
  c->got = 0;
  if (c->out.capacity() > kShrinkBytes) {
    std::vector<std::uint8_t>().swap(c->out);
  } else {
    c->out.clear();
  }
  c->out_off = 0;
  c->close_after_flush = false;
  c->last_progress_ns = obs::now_ns();
  c->state.store(Conn::State::kReadHeader, std::memory_order_relaxed);
  // Level-triggered: pipelined bytes already in the kernel buffer fire
  // EPOLLIN again on the next epoll_wait.
  set_interest(c, EPOLLIN);
}

void EpollReactor::set_interest(Conn* c, std::uint32_t events) {
  if (c->events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = c->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
  c->events = events;
}

void EpollReactor::close_conn(Conn* c) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  c->stream->shutdown_both();
  if (c->trace_slot >= 0) {
    std::lock_guard<std::mutex> lk(server_.conns_mu_);
    server_.free_trace_slots_.push_back(c->trace_slot);
  }
  server_.counters_.record_closed();
  conns_.erase(c->fd);  // destroys the stream, closing the fd
}

void EpollReactor::idle_sweep(std::int64_t now_ns) {
  const int timeout_ms = server_.config_.read_timeout_ms;
  if (timeout_ms <= 0) return;
  const std::int64_t limit_ns = static_cast<std::int64_t>(timeout_ms) * 1000000;
  std::vector<Conn*> victims;
  std::vector<Conn*> stalled_writers;
  for (auto& [fd, conn] : conns_) {
    const Conn::State st = conn->state.load(std::memory_order_acquire);
    // Reader states and stalled flushes: a parked connection is the
    // server's own doing (backpressure must not turn into a disconnect),
    // and dispatch latency is the server's, not the peer's — but a peer
    // that stops reading its reply (kFlushing with no write progress,
    // clocked from flush start) is holding a bounded connection slot and
    // is swept like one that stopped sending a request.
    const bool reading =
        st == Conn::State::kReadHeader || st == Conn::State::kReadPayload;
    if (!reading && st != Conn::State::kFlushing) continue;
    if (now_ns - conn->last_progress_ns > limit_ns) {
      (reading ? victims : stalled_writers).push_back(conn.get());
    }
  }
  for (Conn* c : victims) {
    server_.counters_.record_read_timeout();
    close_conn(c);
  }
  for (Conn* c : stalled_writers) {
    server_.counters_.record_write_timeout();
    close_conn(c);
  }
}

#endif  // __linux__

}  // namespace spf::net
