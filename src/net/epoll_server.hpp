// Epoll event-loop transport for SolverServer (Transport::kEpoll).
//
//   clients ──TCP──► reactor thread ──frames──► dispatch workers ──► Tenant
//                    (epoll_wait, all I/O,      (SolverServer::dispatch
//                     read/write buffering)      over buffered payloads)
//
// Threading model (single-owner handoff, TSan-clean by construction):
// exactly one reactor thread owns the epoll set and every socket — it is
// the only thread that ever calls epoll_ctl or reads/writes a connection.
// A connection is owned by exactly one party at any time: the reactor
// (reading or flushing), a dispatch worker (running the server's dispatch
// over the frame the reactor buffered), or the parked set (backpressure).
// Every handoff goes through the reactor mutex; workers hand replies back
// via a completion queue plus an eventfd kick.
//
// Backpressure contract: when a request would be refused for queue depth /
// queued work but fits an empty queue, the worker parks the connection
// (its EPOLLIN interest is already dropped while dispatching) instead of
// replying with a rejection.  The owning tenant's RequestQueue fires a
// drain listener whenever entries leave it; the listener re-queues every
// connection parked on that tenant for a fresh dispatch of the SAME
// buffered frame.  Because the drain can fire between the gate's
// admission probe (inside dispatch) and the insert into the parked set,
// the worker re-probes admission atomically with the insert (both under
// the reactor mutex) and re-dispatches immediately when the queue now
// admits — otherwise that wakeup would be lost and the connection could
// hang parked forever.  A request too large to ever fit is rejected
// exactly like thread mode.  net.epoll.paused / resumed / resume_us
// account for every park/resume cycle.
//
// Linux-only (epoll + eventfd); constructing the reactor elsewhere throws
// NetError.  The protocol codec stays the trust boundary: the reactor
// validates nothing beyond decode_header and hands whole frames to the
// same dispatch code the thread transport uses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace spf::net {

class EpollReactor {
 public:
  /// Prepares epoll + eventfd (throws NetError on failure); serving
  /// starts with start().  `server` must outlive the reactor.
  explicit EpollReactor(SolverServer& server);
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Spawn the reactor thread and the dispatch workers.
  void start();

  /// Stop phase 1: stop accepting, join the reactor thread, shut every
  /// connection socket down.  Dispatch workers may still be blocked on
  /// engine futures — the caller must stop the tenant services (which
  /// resolves those futures with kShutdown) before finish_stop().
  void begin_stop();

  /// Stop phase 2: join the dispatch workers, complete the teardown
  /// accounting, destroy every connection.
  void finish_stop();

  /// Drain signal from a tenant's RequestQueue: re-queue every connection
  /// parked on `tenant` for a fresh dispatch attempt.  Safe from any
  /// thread, including queue/dispatcher contexts holding service locks
  /// (only touches the reactor's own queues).
  void on_drain(SolverServer::Tenant* tenant);

 private:
  struct Conn {
    enum class State : std::uint8_t {
      kReadHeader,   // reactor: accumulating the 12-byte header
      kReadPayload,  // reactor: accumulating the payload
      kDispatching,  // a worker owns the buffered frame
      kParked,       // backpressure: waiting for the tenant queue to drain
      kFlushing,     // reactor: writing the reply
    };

    std::unique_ptr<TcpStream> stream;
    int fd = -1;
    SolverServer::Tenant* tenant = nullptr;
    index_t trace_slot = -1;

    // Written only by the owning party at a state boundary; read by the
    // reactor to decide whether an (always-reported) EPOLLERR/EPOLLHUP
    // belongs to it — hence atomic.
    std::atomic<State> state{State::kReadHeader};

    std::vector<std::uint8_t> in;  ///< header + payload accumulator
    std::size_t got = 0;           ///< bytes of `in` filled
    FrameHeader header{};

    std::vector<std::uint8_t> out;  ///< reply being flushed
    std::size_t out_off = 0;
    bool close_after_flush = false;

    std::int64_t t0_ns = 0;  ///< frame-complete time (request_us / span)
    std::uint64_t seq = 0;
    std::uint16_t span_arg = 0;
    std::int64_t parked_ns = 0;  ///< park time (resume latency)
    /// Last byte read or written (and flush start): the sweep closes
    /// connections whose peer has made no progress for read_timeout_ms,
    /// whether it stopped sending a request or reading its reply.
    std::int64_t last_progress_ns = 0;
    std::uint32_t events = 0;     ///< current epoll interest set
  };

  void reactor_loop();
  void worker_loop();
  /// Run SolverServer::dispatch over `c`'s buffered frame (worker thread).
  void process(Conn* c);

  // Reactor-thread-only helpers.
  void accept_ready();
  void read_ready(Conn* c);
  void hand_to_worker(Conn* c);
  void take_completed();
  void start_flush(Conn* c);
  bool flush_some(Conn* c);  ///< true when the reply is fully written
  void finish_request(Conn* c);
  void rearm_read(Conn* c);
  void set_interest(Conn* c, std::uint32_t events);
  void close_conn(Conn* c);
  void idle_sweep(std::int64_t now_ns);
  void kick();  ///< eventfd wakeup of the reactor

  SolverServer& server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread reactor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};

  /// fd -> connection; touched only by the reactor thread (and by
  /// finish_stop after every thread is joined).
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;

  std::mutex mu_;  ///< guards the three queues below
  std::condition_variable work_cv_;
  std::deque<Conn*> work_;       ///< frames ready for a dispatch worker
  std::deque<Conn*> completed_;  ///< dispatched; reactor flushes the reply
  std::unordered_map<SolverServer::Tenant*, std::vector<Conn*>> parked_;
};

}  // namespace spf::net
