#include "net/net_stats.hpp"

namespace spf::net {

NetCounters::NetCounters()
    : connections_accepted_(registry_.counter("net.connections_accepted")),
      connections_refused_(registry_.counter("net.connections_refused")),
      hellos_(registry_.counter("net.hellos")),
      frames_rx_(registry_.counter("net.frames_rx")),
      bytes_rx_(registry_.counter("net.bytes_rx")),
      submits_(registry_.counter("net.submits")),
      solves_(registry_.counter("net.solves")),
      plan_preloads_(registry_.counter("net.plan_preloads")),
      stats_requests_(registry_.counter("net.stats_requests")),
      protocol_errors_(registry_.counter("net.protocol_errors")),
      errors_sent_(registry_.counter("net.errors_sent")),
      write_failures_(registry_.counter("net.write_failures")),
      read_timeouts_(registry_.counter("net.read_timeouts")),
      write_timeouts_(registry_.counter("net.write_timeouts")),
      epoll_ready_events_(registry_.counter("net.epoll.ready_events")),
      epoll_wakeups_(registry_.counter("net.epoll.wakeups")),
      epoll_paused_(registry_.counter("net.epoll.paused")),
      epoll_resumed_(registry_.counter("net.epoll.resumed")),
      frames_tx_(registry_.counter("net.frames_tx")),
      bytes_tx_(registry_.counter("net.bytes_tx")),
      connections_closed_(registry_.counter("net.connections_closed")),
      request_us_(registry_.histogram("net.request_us")),
      epoll_resume_us_(registry_.histogram("net.epoll.resume_us")) {}

}  // namespace spf::net
