// Network front-end observability: NetCounters is the accumulator every
// acceptor and connection thread writes, backed by an owned
// obs::MetricsRegistry with "net.*" names (the same pattern ServeCounters
// and EngineCounters follow, so one exporter walks all three).
//
// Counter discipline: connections_accepted moves before connections_closed
// (which is bumped with release ordering), and frames/bytes received move
// before replies sent, so a registry snapshot — acquire-loaded in reverse
// registration order — never shows more closes than accepts or more
// replies than requests.  The registry also carries the
// net.request_us histogram (frame received -> reply written) that the
// plain counters cannot express.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace spf::net {

class NetCounters {
 public:
  NetCounters();
  NetCounters(const NetCounters&) = delete;
  NetCounters& operator=(const NetCounters&) = delete;

  void record_accepted() { connections_accepted_.add(); }
  void record_refused() { connections_refused_.add(); }
  void record_closed() { connections_closed_.add_release(); }
  void record_hello() { hellos_.add(); }
  void record_frame_rx(std::uint64_t bytes) {
    frames_rx_.add();
    bytes_rx_.add(bytes);
  }
  void record_frame_tx(std::uint64_t bytes) {
    frames_tx_.add_release();
    bytes_tx_.add(bytes);
  }
  /// One submit-matrix / solve frame answered with a reply (epoll
  /// backpressure retries of a parked frame count once, on the dispatch
  /// attempt that produces the reply).
  void record_submit() { submits_.add(); }
  void record_solve() { solves_.add(); }
  void record_plan_preload() { plan_preloads_.add(); }
  void record_stats_request() { stats_requests_.add(); }
  void record_protocol_error() { protocol_errors_.add(); }
  void record_error_sent() { errors_sent_.add(); }
  void record_write_failure() { write_failures_.add(); }
  void record_read_timeout() { read_timeouts_.add(); }
  /// A peer stopped reading its reply for longer than the configured
  /// timeout (thread: SO_SNDTIMEO; epoll: the stalled-flush sweep).
  void record_write_timeout() { write_timeouts_.add(); }
  /// `n` connections reported ready by one epoll_wait return.
  void record_epoll_ready(std::uint64_t n) { epoll_ready_events_.add(n); }
  /// One eventfd kick of the reactor (worker handed back a reply / drain).
  void record_epoll_wakeup() { epoll_wakeups_.add(); }
  /// One connection parked by the backpressure gate (EPOLLIN dropped).
  void record_epoll_pause() { epoll_paused_.add(); }
  /// One parked connection re-dispatched after its tenant's queue drained;
  /// `us` is the pause -> resume latency.
  void record_epoll_resume(std::uint64_t us) {
    epoll_resumed_.add();
    epoll_resume_us_.record(us);
  }
  /// One served request, frame received -> reply handed to the socket.
  void record_request_us(std::uint64_t us) { request_us_.record(us); }

  /// Coherent view (closed <= accepted, replies <= requests).
  [[nodiscard]] obs::MetricsSnapshot snapshot() const { return registry_.snapshot(); }

  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  // Registered in write-path order (upstream first) for snapshot coherence.
  obs::Counter& connections_accepted_;
  obs::Counter& connections_refused_;
  obs::Counter& hellos_;
  obs::Counter& frames_rx_;
  obs::Counter& bytes_rx_;
  obs::Counter& submits_;
  obs::Counter& solves_;
  obs::Counter& plan_preloads_;
  obs::Counter& stats_requests_;
  obs::Counter& protocol_errors_;
  obs::Counter& errors_sent_;
  obs::Counter& write_failures_;
  obs::Counter& read_timeouts_;
  obs::Counter& write_timeouts_;
  // Epoll reactor counters: paused registers before resumed so a snapshot
  // (reverse-order loads) never shows more resumes than pauses.
  obs::Counter& epoll_ready_events_;
  obs::Counter& epoll_wakeups_;
  obs::Counter& epoll_paused_;
  obs::Counter& epoll_resumed_;
  obs::Counter& frames_tx_;
  obs::Counter& bytes_tx_;
  obs::Counter& connections_closed_;
  obs::Histogram& request_us_;
  obs::Histogram& epoll_resume_us_;
};

}  // namespace spf::net
