#include "net/protocol.hpp"

#include <bit>
#include <cstring>

#include "support/check.hpp"

namespace spf::net {

// The direct memcpy codec below (and the server's zero-copy rhs framing)
// assumes a little-endian host, which is every platform this library
// targets; a big-endian port would add byte swaps here and nowhere else.
static_assert(std::endian::native == std::endian::little,
              "SPF1 wire codec requires a little-endian host");

namespace {

[[noreturn]] void bad_frame(const std::string& what) {
  throw ProtocolError(ErrCode::kBadFrame, "bad frame: " + what);
}

/// Bounds-checked sequential reader over a payload view.  Every overrun,
/// oversized count, or out-of-range enum becomes a ProtocolError before
/// any dependent allocation happens.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

  void require(std::size_t n, const char* what) const {
    if (remaining() < n) bad_frame(std::string("truncated ") + what);
  }

  template <typename T>
  [[nodiscard]] T scalar(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T), what);
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::uint8_t u8(const char* what) { return scalar<std::uint8_t>(what); }
  [[nodiscard]] std::uint16_t u16(const char* what) { return scalar<std::uint16_t>(what); }
  [[nodiscard]] std::uint32_t u32(const char* what) { return scalar<std::uint32_t>(what); }
  [[nodiscard]] std::uint64_t u64(const char* what) { return scalar<std::uint64_t>(what); }
  [[nodiscard]] std::int64_t i64(const char* what) { return scalar<std::int64_t>(what); }
  [[nodiscard]] double f64(const char* what) { return scalar<double>(what); }

  [[nodiscard]] std::string str(const char* what) {
    const std::uint32_t len = u32(what);
    if (len > kMaxString) bad_frame(std::string(what) + " string too long");
    require(len, what);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> array(std::size_t count, const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    // The length check precedes the allocation: a fuzzed count can never
    // drive an allocation larger than the (already capped) payload.
    if (count > remaining() / sizeof(T)) bad_frame(std::string("truncated ") + what);
    std::vector<T> v(count);
    if (count != 0) {  // empty vectors have a null data(), which memcpy rejects
      std::memcpy(v.data(), bytes_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return v;
  }

  void finish() const {
    if (remaining() != 0) bad_frame("trailing bytes after payload");
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Appending writer; encode paths are infallible for valid messages.
class WireWriter {
 public:
  explicit WireWriter(MsgType type) : type_(type) {
    buf_.resize(kHeaderSize);  // patched by finish()
  }

  // Appends go through insert() rather than resize()+memcpy: GCC 12's
  // -Warray-bounds mis-analyzes the inlined default-append and flags a
  // bogus out-of-bounds memset under -O2.
  template <typename T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void u8(std::uint8_t v) { scalar(v); }
  void u16(std::uint16_t v) { scalar(v); }
  void u32(std::uint32_t v) { scalar(v); }
  void u64(std::uint64_t v) { scalar(v); }
  void i64(std::int64_t v) { scalar(v); }
  void f64(double v) { scalar(v); }

  void str(const std::string& s) {
    SPF_REQUIRE(s.size() <= kMaxString, "wire string too long");
    u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  template <typename T>
  void array(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size_bytes());
  }

  [[nodiscard]] std::vector<std::uint8_t> finish() {
    const std::size_t payload = buf_.size() - kHeaderSize;
    SPF_REQUIRE(payload <= kMaxPayload, "frame payload exceeds kMaxPayload");
    FrameHeader h;
    h.type = type_;
    h.payload_len = static_cast<std::uint32_t>(payload);
    std::memcpy(buf_.data(), &h.magic, 4);
    std::memcpy(buf_.data() + 4, &h.version, 2);
    std::memcpy(buf_.data() + 6, &h.type, 2);
    std::memcpy(buf_.data() + 8, &h.payload_len, 4);
    return std::move(buf_);
  }

 private:
  MsgType type_;
  std::vector<std::uint8_t> buf_;
};

std::uint8_t checked_priority(std::uint8_t p) {
  if (p >= kNumPriorities) bad_frame("priority out of range");
  return p;
}

std::uint8_t checked_status(std::uint8_t s) {
  if (s > static_cast<std::uint8_t>(ServeStatus::kError)) bad_frame("status out of range");
  return s;
}

std::int64_t checked_deadline(std::int64_t d) {
  if (d < 0) bad_frame("negative deadline");
  return d;
}

/// Matrix body: u32 n, u64 nnz, i64 col_ptr[n+1], i32 row_ind[nnz],
/// u8 has_values, f64 values[nnz]?  Structural validation is CscMatrix's;
/// its invalid_input is re-thrown as a typed kBadMatrix.
void encode_matrix(WireWriter& w, const CscMatrix& m) {
  SPF_REQUIRE(m.nrows() == m.ncols(), "wire matrices are square lower triangles");
  w.u32(static_cast<std::uint32_t>(m.ncols()));
  w.u64(static_cast<std::uint64_t>(m.nnz()));
  w.array(m.col_ptr());
  w.array(m.row_ind());
  w.u8(m.has_values() ? 1 : 0);
  if (m.has_values()) w.array(m.values());
}

CscMatrix decode_matrix(WireReader& r) {
  const std::uint32_t n = r.u32("matrix n");
  if (n == 0 || n > kMaxDim) bad_frame("matrix dimension out of range");
  const std::uint64_t nnz = r.u64("matrix nnz");
  std::vector<count_t> col_ptr =
      r.array<count_t>(static_cast<std::size_t>(n) + 1, "matrix col_ptr");
  std::vector<index_t> row_ind =
      r.array<index_t>(static_cast<std::size_t>(nnz), "matrix row_ind");
  std::vector<double> vals;
  if (r.u8("matrix has_values") != 0) {
    vals = r.array<double>(static_cast<std::size_t>(nnz), "matrix values");
  }
  if (col_ptr.back() != static_cast<count_t>(nnz)) bad_frame("matrix nnz mismatch");
  try {
    return CscMatrix(static_cast<index_t>(n), static_cast<index_t>(n),
                     std::move(col_ptr), std::move(row_ind), std::move(vals));
  } catch (const invalid_input& e) {
    throw ProtocolError(ErrCode::kBadMatrix, std::string("bad matrix: ") + e.what());
  }
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kSubmitMatrix: return "submit_matrix";
    case MsgType::kSubmitMatrixAck: return "submit_matrix_ack";
    case MsgType::kSubmitPlan: return "submit_plan";
    case MsgType::kSubmitPlanAck: return "submit_plan_ack";
    case MsgType::kSolve: return "solve";
    case MsgType::kSolveBatch: return "solve_batch";
    case MsgType::kSolveAck: return "solve_ack";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsAck: return "stats_ack";
    case MsgType::kError: return "error";
    case MsgType::kBye: return "bye";
  }
  return "unknown";
}

const char* to_string(ErrCode c) {
  switch (c) {
    case ErrCode::kBadMagic: return "bad_magic";
    case ErrCode::kBadVersion: return "bad_version";
    case ErrCode::kBadFrame: return "bad_frame";
    case ErrCode::kFrameTooLarge: return "frame_too_large";
    case ErrCode::kUnknownType: return "unknown_type";
    case ErrCode::kNeedHello: return "need_hello";
    case ErrCode::kUnknownHandle: return "unknown_handle";
    case ErrCode::kBadMatrix: return "bad_matrix";
    case ErrCode::kBadPlan: return "bad_plan";
    case ErrCode::kInternal: return "internal";
  }
  return "unknown";
}

bool is_fatal(ErrCode c) {
  switch (c) {
    case ErrCode::kBadMagic:
    case ErrCode::kBadVersion:
    case ErrCode::kBadFrame:
    case ErrCode::kFrameTooLarge:
    case ErrCode::kNeedHello:
      return true;
    default:
      return false;
  }
}

FrameHeader decode_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) bad_frame("short header");
  FrameHeader h;
  std::memcpy(&h.magic, bytes.data(), 4);
  std::memcpy(&h.version, bytes.data() + 4, 2);
  std::uint16_t type = 0;
  std::memcpy(&type, bytes.data() + 6, 2);
  h.type = static_cast<MsgType>(type);
  std::memcpy(&h.payload_len, bytes.data() + 8, 4);
  if (h.magic != kMagic) throw ProtocolError(ErrCode::kBadMagic, "bad magic");
  if (h.version != kProtocolVersion) {
    throw ProtocolError(ErrCode::kBadVersion,
                        "protocol version mismatch: peer speaks v" +
                            std::to_string(h.version) + ", this side speaks v" +
                            std::to_string(kProtocolVersion));
  }
  if (h.payload_len > kMaxPayload) {
    throw ProtocolError(ErrCode::kFrameTooLarge,
                        "payload of " + std::to_string(h.payload_len) +
                            " bytes exceeds the " + std::to_string(kMaxPayload) +
                            " byte cap");
  }
  return h;
}

std::pair<FrameHeader, std::span<const std::uint8_t>> split_frame(
    std::span<const std::uint8_t> frame) {
  const FrameHeader h = decode_header(frame);
  if (frame.size() != kHeaderSize + h.payload_len) {
    bad_frame("frame length does not match header");
  }
  return {h, frame.subspan(kHeaderSize)};
}

// --- Encoders -------------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  WireWriter w(MsgType::kHello);
  w.u32(m.flags);
  w.str(m.tenant);
  return w.finish();
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m) {
  WireWriter w(MsgType::kHelloAck);
  w.u32(m.flags);
  w.u32(m.engine_shards);
  w.u32(m.max_queue_depth);
  w.u64(m.max_queued_work);
  w.str(m.server);
  return w.finish();
}

std::vector<std::uint8_t> encode(const SubmitMatrixMsg& m) {
  WireWriter w(MsgType::kSubmitMatrix);
  w.u8(m.priority);
  w.i64(m.deadline_rel_ns);
  encode_matrix(w, m.matrix);
  return w.finish();
}

std::vector<std::uint8_t> encode(const SubmitMatrixAckMsg& m) {
  WireWriter w(MsgType::kSubmitMatrixAck);
  w.u8(m.status);
  w.u64(m.handle);
  w.u8(m.warm);
  w.u64(m.fp_hi);
  w.u64(m.fp_lo);
  w.f64(m.plan_seconds);
  w.f64(m.numeric_seconds);
  w.str(m.error);
  return w.finish();
}

std::vector<std::uint8_t> encode(const SubmitPlanMsg& m) {
  WireWriter w(MsgType::kSubmitPlan);
  encode_matrix(w, m.pattern);
  w.u64(m.plan_bytes.size());
  w.array(std::span<const std::uint8_t>(m.plan_bytes));
  return w.finish();
}

std::vector<std::uint8_t> encode(const SubmitPlanAckMsg& m) {
  WireWriter w(MsgType::kSubmitPlanAck);
  w.u8(m.accepted);
  w.u64(m.fp_hi);
  w.u64(m.fp_lo);
  w.str(m.error);
  return w.finish();
}

std::vector<std::uint8_t> encode(const SolveMsg& m) {
  SPF_REQUIRE(m.rhs.size() == static_cast<std::size_t>(m.prefix.n) *
                                  static_cast<std::size_t>(m.prefix.nrhs),
              "solve rhs size must be n * nrhs");
  WireWriter w(m.prefix.nrhs == 1 ? MsgType::kSolve : MsgType::kSolveBatch);
  w.u64(m.prefix.handle);
  w.u8(m.prefix.priority);
  w.i64(m.prefix.deadline_rel_ns);
  w.u32(m.prefix.n);
  w.u32(m.prefix.nrhs);
  w.array(std::span<const double>(m.rhs));
  return w.finish();
}

std::vector<std::uint8_t> encode(const SolveAckMsg& m) {
  WireWriter w(MsgType::kSolveAck);
  w.u8(m.status);
  w.u32(m.n);
  w.u32(m.nrhs);
  w.u32(m.batch_rhs);
  w.f64(m.queue_seconds);
  w.f64(m.exec_seconds);
  w.u8(m.x.empty() ? 0 : 1);
  if (!m.x.empty()) {
    SPF_REQUIRE(m.x.size() == static_cast<std::size_t>(m.n) *
                                  static_cast<std::size_t>(m.nrhs),
                "solve ack x size must be n * nrhs");
    w.array(std::span<const double>(m.x));
  }
  w.str(m.error);
  return w.finish();
}

std::vector<std::uint8_t> encode(const StatsMsg&) {
  return WireWriter(MsgType::kStats).finish();
}

std::vector<std::uint8_t> encode(const StatsAckMsg& m) {
  WireWriter w(MsgType::kStatsAck);
  // Stats documents can exceed the general string cap; length-prefix the
  // bytes directly (bounded by the payload cap alone).
  w.u64(m.json.size());
  w.array(std::span<const char>(m.json.data(), m.json.size()));
  return w.finish();
}

std::vector<std::uint8_t> encode(const ErrorMsg& m) {
  WireWriter w(MsgType::kError);
  w.u16(static_cast<std::uint16_t>(m.code));
  w.str(m.message);
  return w.finish();
}

std::vector<std::uint8_t> encode(const ByeMsg&) {
  return WireWriter(MsgType::kBye).finish();
}

// --- Decoders -------------------------------------------------------------

HelloMsg decode_hello(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  HelloMsg m;
  m.flags = r.u32("hello flags");
  m.tenant = r.str("hello tenant");
  if (m.tenant.empty()) bad_frame("empty tenant name");
  r.finish();
  return m;
}

HelloAckMsg decode_hello_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  HelloAckMsg m;
  m.flags = r.u32("hello_ack flags");
  m.engine_shards = r.u32("hello_ack shards");
  m.max_queue_depth = r.u32("hello_ack depth");
  m.max_queued_work = r.u64("hello_ack work");
  m.server = r.str("hello_ack server");
  r.finish();
  return m;
}

SubmitMatrixMsg decode_submit_matrix(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SubmitMatrixMsg m;
  m.priority = checked_priority(r.u8("submit priority"));
  m.deadline_rel_ns = checked_deadline(r.i64("submit deadline"));
  m.matrix = decode_matrix(r);
  if (!m.matrix.has_values()) bad_frame("submit_matrix needs numeric values");
  r.finish();
  return m;
}

SubmitMatrixAckMsg decode_submit_matrix_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SubmitMatrixAckMsg m;
  m.status = checked_status(r.u8("submit_ack status"));
  m.handle = r.u64("submit_ack handle");
  m.warm = r.u8("submit_ack warm");
  m.fp_hi = r.u64("submit_ack fp_hi");
  m.fp_lo = r.u64("submit_ack fp_lo");
  m.plan_seconds = r.f64("submit_ack plan_seconds");
  m.numeric_seconds = r.f64("submit_ack numeric_seconds");
  m.error = r.str("submit_ack error");
  r.finish();
  return m;
}

SubmitPlanMsg decode_submit_plan(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SubmitPlanMsg m;
  m.pattern = decode_matrix(r);
  if (m.pattern.has_values()) bad_frame("submit_plan pattern must be values-free");
  const std::uint64_t len = r.u64("plan bytes length");
  m.plan_bytes = r.array<std::uint8_t>(static_cast<std::size_t>(len), "plan bytes");
  r.finish();
  return m;
}

SubmitPlanAckMsg decode_submit_plan_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SubmitPlanAckMsg m;
  m.accepted = r.u8("plan_ack accepted");
  m.fp_hi = r.u64("plan_ack fp_hi");
  m.fp_lo = r.u64("plan_ack fp_lo");
  m.error = r.str("plan_ack error");
  r.finish();
  return m;
}

SolvePrefix decode_solve_prefix(std::span<const std::uint8_t> prefix,
                                std::size_t payload_len) {
  WireReader r(prefix);
  SolvePrefix p;
  p.handle = r.u64("solve handle");
  p.priority = checked_priority(r.u8("solve priority"));
  p.deadline_rel_ns = checked_deadline(r.i64("solve deadline"));
  p.n = r.u32("solve n");
  p.nrhs = r.u32("solve nrhs");
  r.finish();
  if (p.n == 0 || p.n > kMaxDim) bad_frame("solve n out of range");
  if (p.nrhs == 0) bad_frame("solve nrhs must be >= 1");
  const std::uint64_t want =
      static_cast<std::uint64_t>(p.n) * p.nrhs * sizeof(double) + kSolvePrefixSize;
  if (want != payload_len) bad_frame("solve rhs length does not match n * nrhs");
  return p;
}

SolveMsg decode_solve(std::span<const std::uint8_t> payload) {
  if (payload.size() < kSolvePrefixSize) bad_frame("truncated solve prefix");
  SolveMsg m;
  m.prefix = decode_solve_prefix(payload.first(kSolvePrefixSize), payload.size());
  WireReader r(payload.subspan(kSolvePrefixSize));
  m.rhs = r.array<double>(static_cast<std::size_t>(m.prefix.n) * m.prefix.nrhs,
                          "solve rhs");
  r.finish();
  return m;
}

SolveAckMsg decode_solve_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SolveAckMsg m;
  m.status = checked_status(r.u8("solve_ack status"));
  m.n = r.u32("solve_ack n");
  m.nrhs = r.u32("solve_ack nrhs");
  m.batch_rhs = r.u32("solve_ack batch_rhs");
  m.queue_seconds = r.f64("solve_ack queue_seconds");
  m.exec_seconds = r.f64("solve_ack exec_seconds");
  if (m.n > kMaxDim) bad_frame("solve_ack n out of range");
  if (r.u8("solve_ack has_x") != 0) {
    m.x = r.array<double>(static_cast<std::size_t>(m.n) * m.nrhs, "solve_ack x");
  }
  m.error = r.str("solve_ack error");
  r.finish();
  return m;
}

StatsAckMsg decode_stats_ack(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint64_t len = r.u64("stats json length");
  if (len > r.remaining()) bad_frame("truncated stats json");
  StatsAckMsg m;
  const std::vector<char> bytes =
      r.array<char>(static_cast<std::size_t>(len), "stats json");
  m.json.assign(bytes.begin(), bytes.end());
  r.finish();
  return m;
}

ErrorMsg decode_error(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ErrorMsg m;
  const std::uint16_t code = r.u16("error code");
  if (code < static_cast<std::uint16_t>(ErrCode::kBadMagic) ||
      code > static_cast<std::uint16_t>(ErrCode::kInternal)) {
    bad_frame("error code out of range");
  }
  m.code = static_cast<ErrCode>(code);
  m.message = r.str("error message");
  r.finish();
  return m;
}

Message decode_message(MsgType type, std::span<const std::uint8_t> payload) {
  const auto empty_body = [&](auto msg) -> Message {
    if (!payload.empty()) bad_frame("nonempty payload for empty-bodied message");
    return msg;
  };
  switch (type) {
    case MsgType::kHello: return decode_hello(payload);
    case MsgType::kHelloAck: return decode_hello_ack(payload);
    case MsgType::kSubmitMatrix: return decode_submit_matrix(payload);
    case MsgType::kSubmitMatrixAck: return decode_submit_matrix_ack(payload);
    case MsgType::kSubmitPlan: return decode_submit_plan(payload);
    case MsgType::kSubmitPlanAck: return decode_submit_plan_ack(payload);
    case MsgType::kSolve:
    case MsgType::kSolveBatch: {
      SolveMsg m = decode_solve(payload);
      if ((type == MsgType::kSolve) != (m.prefix.nrhs == 1)) {
        bad_frame("solve type does not match nrhs");
      }
      return m;
    }
    case MsgType::kSolveAck: return decode_solve_ack(payload);
    case MsgType::kStats: return empty_body(StatsMsg{});
    case MsgType::kStatsAck: return decode_stats_ack(payload);
    case MsgType::kError: return decode_error(payload);
    case MsgType::kBye: return empty_body(ByeMsg{});
  }
  throw ProtocolError(ErrCode::kUnknownType,
                      "unknown message type " +
                          std::to_string(static_cast<std::uint16_t>(type)));
}

}  // namespace spf::net
