// The serving layer's wire protocol (version 1).
//
// Everything that crosses a socket is a length-prefixed binary frame:
//
//   offset  size  field
//   0       4     magic        0x31465053 — the bytes "SPF1" on the wire
//   4       2     version      protocol major version (currently 1)
//   6       2     type         MsgType
//   8       4     payload_len  bytes following the header (<= kMaxPayload)
//   12      ...   payload      message-specific, layouts in docs/serving.md
//
// All integers are little-endian; doubles are IEEE-754 binary64 bit
// patterns.  The codec is the trust boundary of the whole serving stack:
// every decode path is bounds-checked before it allocates, validates every
// count and enum it reads, and reports malformed input exclusively as a
// typed ProtocolError — never a crash, an over-allocation, or a partially
// constructed message (the frame fuzzer in tests/test_net.cpp feeds
// truncated, oversized, and bit-flipped frames through every decoder under
// ASan/UBSan to hold that line).
//
// Versioning rules: the header's `version` is a major version — a peer
// speaking a different major is refused with ErrCode::kBadVersion.
// Additive evolution happens by introducing new MsgType values (an
// unknown type yields kUnknownType without desynchronizing the stream,
// since the frame length is always known from the header).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "matrix/csc.hpp"
#include "serve/request_queue.hpp"

namespace spf::net {

inline constexpr std::uint32_t kMagic = 0x31465053u;  // "SPF1" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Hard ceiling on a frame's payload; larger headers are refused before
/// any payload byte is read (kFrameTooLarge).
inline constexpr std::uint32_t kMaxPayload = 1u << 28;  // 256 MiB
/// Ceiling on any length-prefixed string inside a payload.
inline constexpr std::uint32_t kMaxString = 1u << 16;
/// Ceiling on a submitted matrix dimension.
inline constexpr std::uint32_t kMaxDim = 50'000'000;

enum class MsgType : std::uint16_t {
  kHello = 1,        ///< client -> server: tenant handshake
  kHelloAck = 2,     ///< server -> client: accepted, quota echo
  kSubmitMatrix = 3, ///< client -> server: factorize these values
  kSubmitMatrixAck = 4,
  kSubmitPlan = 5,   ///< client -> server: preload a serialized plan
  kSubmitPlanAck = 6,
  kSolve = 7,        ///< client -> server: one right-hand side
  kSolveBatch = 8,   ///< client -> server: nrhs right-hand sides
  kSolveAck = 9,
  kStats = 10,       ///< client -> server: snapshot request
  kStatsAck = 11,
  kError = 12,       ///< server -> client: typed protocol error
  kBye = 13,         ///< client -> server: clean goodbye
};

/// Typed protocol error codes carried by kError frames (and by
/// ProtocolError on the decode path).
enum class ErrCode : std::uint16_t {
  kBadMagic = 1,      ///< header magic mismatch — stream is not SPF1
  kBadVersion = 2,    ///< peer speaks a different protocol major
  kBadFrame = 3,      ///< malformed / truncated / inconsistent payload
  kFrameTooLarge = 4, ///< payload_len exceeds kMaxPayload
  kUnknownType = 5,   ///< unrecognized MsgType (stream stays in sync)
  kNeedHello = 6,     ///< request before the tenant handshake
  kUnknownHandle = 7, ///< solve against a handle the tenant never made
  kBadMatrix = 8,     ///< matrix payload failed structural validation
  kBadPlan = 9,       ///< submitted plan blob failed to deserialize
  kInternal = 10,     ///< unexpected server-side failure
};

[[nodiscard]] const char* to_string(MsgType t);
[[nodiscard]] const char* to_string(ErrCode c);

/// True when the error desynchronizes or poisons the stream: the server
/// sends a best-effort kError frame and closes.  Non-fatal errors (unknown
/// type/handle, bad matrix/plan) are answered in-band and the connection
/// keeps serving.
[[nodiscard]] bool is_fatal(ErrCode c);

/// The codec's one failure mode: every malformed input decodes to this.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  MsgType type = MsgType::kError;
  std::uint32_t payload_len = 0;
};

/// Parse and validate a frame header (throws ProtocolError: kBadFrame on
/// short input, kBadMagic / kBadVersion / kFrameTooLarge as named).
[[nodiscard]] FrameHeader decode_header(std::span<const std::uint8_t> bytes);

/// Split a complete frame into its validated header and payload view.
/// The buffer must hold exactly one frame; a short or trailing-garbage
/// buffer throws kBadFrame.
[[nodiscard]] std::pair<FrameHeader, std::span<const std::uint8_t>> split_frame(
    std::span<const std::uint8_t> frame);

// --- Message bodies -------------------------------------------------------

struct HelloMsg {
  std::string tenant;        ///< tenant identity; shards and quotas are per-tenant
  std::uint32_t flags = 0;   ///< feature negotiation, 0 for v1
};

struct HelloAckMsg {
  std::uint32_t flags = 0;
  std::uint32_t engine_shards = 1;      ///< this tenant's engine shard count
  std::uint32_t max_queue_depth = 0;    ///< per-shard admission depth bound
  std::uint64_t max_queued_work = 0;    ///< per-shard admission work bound
  std::string server;                   ///< server build identity string
};

struct SubmitMatrixMsg {
  std::uint8_t priority = 1;          ///< serve::Priority
  std::int64_t deadline_rel_ns = 0;   ///< relative to arrival, 0 = none
  CscMatrix matrix;                   ///< lower triangle with values
};

struct SubmitMatrixAckMsg {
  std::uint8_t status = 0;  ///< ServeStatus
  std::uint64_t handle = 0; ///< valid iff status == kOk
  std::uint8_t warm = 0;    ///< plan came from the tenant shard's cache
  std::uint64_t fp_hi = 0, fp_lo = 0;  ///< pattern+options fingerprint
  double plan_seconds = 0.0;
  double numeric_seconds = 0.0;
  std::string error;
};

struct SubmitPlanMsg {
  CscMatrix pattern;                     ///< pattern-only lower triangle
  std::vector<std::uint8_t> plan_bytes;  ///< io/mapping_io write_plan stream
};

struct SubmitPlanAckMsg {
  std::uint8_t accepted = 0;
  std::uint64_t fp_hi = 0, fp_lo = 0;
  std::string error;
};

/// Fixed-size prefix of a kSolve / kSolveBatch payload; the rhs doubles
/// follow immediately and are framed zero-copy by the server (read off the
/// socket directly into the buffer handed to solve_batch).
struct SolvePrefix {
  std::uint64_t handle = 0;
  std::uint8_t priority = 1;
  std::int64_t deadline_rel_ns = 0;
  std::uint32_t n = 0;
  std::uint32_t nrhs = 1;
};
inline constexpr std::size_t kSolvePrefixSize = 8 + 1 + 8 + 4 + 4;

struct SolveMsg {
  SolvePrefix prefix;
  std::vector<double> rhs;  ///< n x nrhs column-major
};

struct SolveAckMsg {
  std::uint8_t status = 0;  ///< ServeStatus
  std::uint32_t n = 0;
  std::uint32_t nrhs = 0;
  std::uint32_t batch_rhs = 0;  ///< width of the server-side coalesced batch
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  std::vector<double> x;  ///< n x nrhs column-major, kOk only
  std::string error;
};

struct StatsMsg {};

struct StatsAckMsg {
  std::string json;  ///< server stats document (net.* + per-tenant serve stats)
};

struct ErrorMsg {
  ErrCode code = ErrCode::kInternal;
  std::string message;
};

struct ByeMsg {};

using Message = std::variant<HelloMsg, HelloAckMsg, SubmitMatrixMsg, SubmitMatrixAckMsg,
                             SubmitPlanMsg, SubmitPlanAckMsg, SolveMsg, SolveAckMsg,
                             StatsMsg, StatsAckMsg, ErrorMsg, ByeMsg>;

// --- Encoding (always produces a complete, valid frame) -------------------

[[nodiscard]] std::vector<std::uint8_t> encode(const HelloMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitMatrixMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitMatrixAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitPlanMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SubmitPlanAckMsg& m);
/// kSolve when m.prefix.nrhs == 1, kSolveBatch otherwise.
[[nodiscard]] std::vector<std::uint8_t> encode(const SolveMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const SolveAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const StatsMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const StatsAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ErrorMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ByeMsg& m);

// --- Decoding (payload only; throws ProtocolError on any malformation) ---

[[nodiscard]] HelloMsg decode_hello(std::span<const std::uint8_t> payload);
[[nodiscard]] HelloAckMsg decode_hello_ack(std::span<const std::uint8_t> payload);
[[nodiscard]] SubmitMatrixMsg decode_submit_matrix(std::span<const std::uint8_t> payload);
[[nodiscard]] SubmitMatrixAckMsg decode_submit_matrix_ack(
    std::span<const std::uint8_t> payload);
[[nodiscard]] SubmitPlanMsg decode_submit_plan(std::span<const std::uint8_t> payload);
[[nodiscard]] SubmitPlanAckMsg decode_submit_plan_ack(
    std::span<const std::uint8_t> payload);
/// Validates the prefix against the payload length: the rhs tail must hold
/// exactly n * nrhs doubles.
[[nodiscard]] SolvePrefix decode_solve_prefix(std::span<const std::uint8_t> prefix,
                                              std::size_t payload_len);
[[nodiscard]] SolveMsg decode_solve(std::span<const std::uint8_t> payload);
[[nodiscard]] SolveAckMsg decode_solve_ack(std::span<const std::uint8_t> payload);
[[nodiscard]] StatsAckMsg decode_stats_ack(std::span<const std::uint8_t> payload);
[[nodiscard]] ErrorMsg decode_error(std::span<const std::uint8_t> payload);

/// Dispatch on `type`: decode the matching body (empty-bodied types check
/// the payload is empty).  Unknown types throw kUnknownType.
[[nodiscard]] Message decode_message(MsgType type, std::span<const std::uint8_t> payload);

}  // namespace spf::net
