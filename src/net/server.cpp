#include "net/server.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <utility>

#include "engine/fingerprint.hpp"
#include "io/mapping_io.hpp"
#include "net/epoll_server.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace spf::net {

const char* to_string(Transport t) {
  switch (t) {
    case Transport::kThread: return "thread";
    case Transport::kEpoll: return "epoll";
  }
  return "?";
}

SolverServer::SolverServer(const SolverServerConfig& config)
    : config_(config),
      clock_(config.clock ? config.clock : SteadyClock::instance()),
      listener_(config.host, config.port, config.backlog) {
  SPF_REQUIRE(config_.max_connections >= 1, "max_connections must be >= 1");
  SPF_REQUIRE(config_.transport != Transport::kEpoll || config_.epoll_workers >= 1,
              "epoll transport needs at least one dispatch worker");
  if (config_.tracer != nullptr) {
    SPF_REQUIRE(config_.tracer->num_workers() >=
                    static_cast<index_t>(config_.max_connections),
                "tracer must provide at least max_connections rings");
  }
  // Slot 0 is handed out first (slots are popped from the back).
  free_trace_slots_.reserve(config_.max_connections);
  for (std::size_t i = config_.max_connections; i-- > 0;) {
    free_trace_slots_.push_back(static_cast<index_t>(i));
  }
}

SolverServer::~SolverServer() { stop(); }

void SolverServer::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (started_ || stopped_) return;
  started_ = true;
  if (config_.transport == Transport::kEpoll) {
    reactor_ = std::make_unique<EpollReactor>(*this);
    reactor_->start();
  } else {
    acceptor_ = std::thread([this] { accept_loop(); });
  }
}

void SolverServer::stop() {
  {
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Order matters: quiesce the acceptor before closing its fd, unblock
  // connection reads before stopping the services their replies wait on,
  // and only then join the connection threads (service stop resolves any
  // future a connection is blocked on, with kShutdown).  The epoll shape
  // is the same: join the reactor and shut every socket down, stop the
  // services (resolving futures the dispatch workers block on — their
  // drain hooks may still call into the reactor's queues), then join the
  // workers and destroy the connections.
  stopping_.store(true, std::memory_order_release);
  if (reactor_ != nullptr) reactor_->begin_stop();
  if (acceptor_.joinable()) acceptor_.join();
  if (reactor_ == nullptr) listener_.close();
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& conn : conns_) conn->stream->shutdown_both();
  }
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (auto& [name, tenant] : tenants_) {
      for (Shard& shard : tenant->shards) shard.service->stop();
    }
  }
  if (reactor_ != nullptr) {
    reactor_->finish_stop();
    listener_.close();
  }
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

bool SolverServer::pause_tenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  for (Shard& shard : it->second->shards) shard.service->pause();
  return true;
}

bool SolverServer::resume_tenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  for (Shard& shard : it->second->shards) shard.service->resume();
  return true;
}

std::vector<ServeStats> SolverServer::tenant_stats(const std::string& tenant) const {
  std::vector<ServeStats> out;
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return out;
  out.reserve(it->second->shards.size());
  for (const Shard& shard : it->second->shards) out.push_back(shard.service->stats());
  return out;
}

std::string SolverServer::stats_json() const {
  std::ostringstream os;
  JsonWriter jw(os);
  jw.begin_object();
  jw.field("server", "spfactor");
  jw.field("protocol_version", static_cast<int>(kProtocolVersion));
  jw.field("transport", to_string(config_.transport));
  jw.begin_object("net");
  counters_.snapshot().write_json(jw);
  jw.end();
  jw.begin_array("tenants");
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    for (const auto& [name, tenant] : tenants_) {
      jw.begin_object();
      jw.field("tenant", name);
      jw.field("engine_shards", static_cast<long long>(tenant->shards.size()));
      jw.begin_array("shards");
      for (const Shard& shard : tenant->shards) {
        jw.begin_object();
        shard.service->stats().write_json(jw);
        jw.end();
      }
      jw.end();
      jw.end();
    }
  }
  jw.end();
  jw.end();
  return os.str();
}

SolverServer::Tenant& SolverServer::find_or_create_tenant(const std::string& name) {
  std::lock_guard<std::mutex> lk(tenants_mu_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return *it->second;

  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  auto quota_it = config_.tenant_quotas.find(name);
  tenant->quota =
      quota_it != config_.tenant_quotas.end() ? quota_it->second : config_.default_quota;
  tenant->quota.engine_shards = std::max<index_t>(1, tenant->quota.engine_shards);
  tenant->quota.max_handles = std::max<std::size_t>(1, tenant->quota.max_handles);

  const auto nshards = static_cast<std::size_t>(tenant->quota.engine_shards);
  tenant->shards.reserve(nshards);
  Tenant* raw_tenant = tenant.get();
  for (std::size_t s = 0; s < nshards; ++s) {
    Shard shard;
    shard.engine = std::make_shared<SolverEngine>(config_.engine);
    SolverServiceConfig sc;
    sc.workers = std::max<index_t>(1, config_.workers_per_shard);
    if (config_.transport == Transport::kEpoll) {
      // Queue drained -> re-dispatch connections parked on this tenant.
      // reactor_ outlives every service (stop() tears services down before
      // finish_stop, and the unique_ptr dies with the server).
      sc.on_drain = [this, raw_tenant] {
        if (reactor_ != nullptr) reactor_->on_drain(raw_tenant);
      };
    }
    sc.queue.max_depth = std::max<std::size_t>(1, tenant->quota.max_queue_depth / nshards);
    sc.queue.max_queued_work =
        tenant->quota.max_queued_work == 0
            ? 0
            : std::max<std::uint64_t>(1, tenant->quota.max_queued_work / nshards);
    sc.coalesce = config_.coalesce;
    sc.clock = clock_;
    sc.start_paused = config_.start_paused;
    shard.service = std::make_unique<SolverService>(shard.engine, sc);
    tenant->shards.push_back(std::move(shard));
  }
  auto [ins, inserted] = tenants_.emplace(name, std::move(tenant));
  return *ins->second;
}

std::size_t SolverServer::shard_of(const Tenant& t, const Fingerprint& fp) const {
  return FingerprintHasher{}(fp) % t.shards.size();
}

ClockNs SolverServer::deadline_from(std::int64_t rel_ns) const {
  if (rel_ns <= 0) return kClockNever;
  return clock_->now_ns() + rel_ns;
}

void SolverServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::unique_ptr<TcpStream> stream;
    try {
      stream = listener_.accept(/*timeout_ms=*/100);
    } catch (const NetError&) {
      continue;  // transient accept failure; the stop flag bounds the loop
    }
    if (stream == nullptr) continue;
    std::lock_guard<std::mutex> lk(conns_mu_);
    reap_finished_locked();
    if (stopping_.load(std::memory_order_acquire) ||
        conns_.size() >= config_.max_connections) {
      counters_.record_refused();
      stream->shutdown_both();  // dropped stream closes the fd
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->stream = std::move(stream);
    if (config_.read_timeout_ms > 0) {
      conn->stream->set_read_timeout_ms(config_.read_timeout_ms);
      // A peer that stops reading its replies must not pin a connection
      // slot forever either; per-send progress is bounded by the same
      // budget (the epoll transport's stalled-flush sweep is the analog).
      conn->stream->set_write_timeout_ms(config_.read_timeout_ms);
    }
    if (config_.tracer != nullptr && !free_trace_slots_.empty()) {
      conn->trace_slot = free_trace_slots_.back();
      free_trace_slots_.pop_back();
    }
    counters_.record_accepted();
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void SolverServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = **it;
    if (conn.done.load(std::memory_order_acquire)) {
      if (conn.thread.joinable()) conn.thread.join();
      if (conn.trace_slot >= 0) free_trace_slots_.push_back(conn.trace_slot);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SolverServer::serve_connection(Connection* conn) {
  TcpStream& stream = *conn->stream;
  Tenant* tenant = nullptr;
  try {
    bool bye = false;
    while (!bye && !stopping_.load(std::memory_order_acquire)) {
      std::uint8_t raw[kHeaderSize];
      if (!read_exact(stream, raw, kHeaderSize)) break;  // orderly close
      const std::int64_t t0 = obs::now_ns();
      const std::uint64_t seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::uint8_t> reply;
      bool fatal = false;
      std::uint16_t span_arg = 0;
      try {
        const FrameHeader header = decode_header({raw, kHeaderSize});
        span_arg = static_cast<std::uint16_t>(header.type);
        counters_.record_frame_rx(kHeaderSize + header.payload_len);
        const bool is_solve =
            header.type == MsgType::kSolve || header.type == MsgType::kSolveBatch;
        // Solve frames are framed zero-copy: only the fixed prefix lands
        // here; handle_solve reads the rhs doubles straight off the
        // socket into the buffer that reaches solve_batch.
        const std::size_t want =
            is_solve ? std::min<std::size_t>(header.payload_len, kSolvePrefixSize)
                     : header.payload_len;
        std::vector<std::uint8_t> payload(want);
        if (want > 0 && !read_exact(stream, payload.data(), want)) {
          throw NetError("peer closed before the payload");
        }
        reply = dispatch(tenant, header, std::span<const std::uint8_t>(payload),
                         &stream, /*allow_backpressure=*/false, bye);
      } catch (const ProtocolError& e) {
        counters_.record_protocol_error();
        fatal = is_fatal(e.code());
        reply = encode(ErrorMsg{e.code(), e.what()});
        counters_.record_error_sent();
      } catch (const NetError&) {
        throw;  // transport failure: nothing sensible left to reply to
      } catch (const std::exception& e) {
        // Unexpected server-side failure: answer in-band, keep serving
        // (the request's frame was fully consumed before execution).
        reply = encode(ErrorMsg{ErrCode::kInternal, e.what()});
        counters_.record_error_sent();
      }
      if (!reply.empty()) {
        try {
          stream.write_all(reply.data(), reply.size());
          counters_.record_frame_tx(reply.size());
        } catch (const NetTimeout&) {
          counters_.record_write_timeout();
          break;
        } catch (const NetError&) {
          counters_.record_write_failure();
          break;
        }
      }
      const std::int64_t t1 = obs::now_ns();
      counters_.record_request_us(static_cast<std::uint64_t>((t1 - t0) / 1000));
      if (config_.tracer != nullptr && conn->trace_slot >= 0) {
        obs::Span span;
        span.t_start_ns = t0;
        span.t_end_ns = t1;
        span.id = static_cast<std::int64_t>(seq);
        span.arg = span_arg;
        span.kind = obs::SpanKind::kNetRequest;
        config_.tracer->ring(conn->trace_slot).record(span);
      }
      if (fatal) break;
    }
  } catch (const NetTimeout&) {
    counters_.record_read_timeout();
  } catch (const NetError&) {
    // Peer vanished (reset / mid-frame close): reap quietly.
  } catch (const std::exception&) {
    // Nothing may escape a connection thread.
  }
  stream.shutdown_both();
  counters_.record_closed();
  conn->done.store(true, std::memory_order_release);
}

std::vector<std::uint8_t> SolverServer::dispatch(Tenant*& tenant,
                                                 const FrameHeader& header,
                                                 std::span<const std::uint8_t> payload,
                                                 TcpStream* stream,
                                                 bool allow_backpressure, bool& bye) {
  const std::span<const std::uint8_t> body(payload);
  switch (header.type) {
    case MsgType::kHello: {
      HelloMsg msg = decode_hello(body);
      counters_.record_hello();
      Tenant& t = find_or_create_tenant(msg.tenant);
      tenant = &t;
      HelloAckMsg ack;
      ack.flags = 0;
      ack.engine_shards = static_cast<std::uint32_t>(t.shards.size());
      ack.max_queue_depth = static_cast<std::uint32_t>(
          t.shards.front().service->config().queue.max_depth);
      ack.max_queued_work = t.shards.front().service->config().queue.max_queued_work;
      ack.server = "spfactor";
      return encode(ack);
    }
    case MsgType::kSubmitMatrix: {
      if (tenant == nullptr) {
        throw ProtocolError(ErrCode::kNeedHello, "submit-matrix before hello");
      }
      // Counted after the handler so a backpressure park (which re-runs
      // dispatch over the same buffered frame) bumps net.submits once,
      // on the attempt that actually produces a reply.
      auto reply = handle_submit_matrix(*tenant, decode_submit_matrix(body),
                                        allow_backpressure);
      counters_.record_submit();
      return reply;
    }
    case MsgType::kSubmitPlan: {
      if (tenant == nullptr) {
        throw ProtocolError(ErrCode::kNeedHello, "submit-plan before hello");
      }
      counters_.record_plan_preload();
      return handle_submit_plan(*tenant, decode_submit_plan(body));
    }
    case MsgType::kSolve:
    case MsgType::kSolveBatch: {
      if (tenant == nullptr) {
        throw ProtocolError(ErrCode::kNeedHello, "solve before hello");
      }
      // Same once-per-reply accounting as net.submits (see above).
      auto reply = handle_solve(*tenant, header, body, stream, allow_backpressure);
      counters_.record_solve();
      return reply;
    }
    case MsgType::kStats: {
      if (tenant == nullptr) {
        throw ProtocolError(ErrCode::kNeedHello, "stats before hello");
      }
      if (!body.empty()) {
        throw ProtocolError(ErrCode::kBadFrame, "stats frame carries a payload");
      }
      counters_.record_stats_request();
      return encode(StatsAckMsg{stats_json()});
    }
    case MsgType::kBye: {
      if (!body.empty()) {
        throw ProtocolError(ErrCode::kBadFrame, "bye frame carries a payload");
      }
      bye = true;
      return {};
    }
    default:
      // Includes server->client types echoed back at the server; the frame
      // was consumed whole, so the stream stays in sync.
      throw ProtocolError(ErrCode::kUnknownType,
                          "unexpected client frame type " +
                              std::to_string(static_cast<unsigned>(header.type)));
  }
}

namespace {

/// Epoll backpressure gate: park (throw) when admission would refuse the
/// request for a capacity reason that draining can cure.  A request that
/// does not even fit an empty queue is rejected like in thread mode — no
/// amount of waiting helps it.
[[noreturn]] void park_for_drain(SolverService& svc, std::uint64_t work) {
  throw detail::BackpressureWait{&svc, work};
}

bool capacity_reject(RejectReason reason) {
  return reason == RejectReason::kQueueDepth || reason == RejectReason::kQueuedWork;
}

}  // namespace

std::vector<std::uint8_t> SolverServer::handle_submit_matrix(Tenant& t,
                                                             SubmitMatrixMsg msg,
                                                             bool allow_backpressure) {
  const Fingerprint fp = fingerprint_request(msg.matrix, config_.engine.plan);
  const std::size_t shard = shard_of(t, fp);
  SolverService& svc = *t.shards[shard].service;
  SubmitOptions opts;
  opts.priority = static_cast<Priority>(msg.priority);
  opts.deadline_ns = deadline_from(msg.deadline_rel_ns);

  const auto work = static_cast<std::uint64_t>(msg.matrix.nnz());
  if (allow_backpressure && svc.admits_when_empty(work) && !svc.would_admit(work)) {
    park_for_drain(svc, work);
  }

  SubmitMatrixAckMsg ack;
  ack.fp_hi = fp.hi;
  ack.fp_lo = fp.lo;
  FactorizeTicket ticket = svc.submit_factorize(std::move(msg.matrix), opts);
  if (!ticket.admitted) {
    // Lost the would_admit race (another connection filled the queue in
    // between): still park rather than reply with a capacity rejection.
    if (allow_backpressure && capacity_reject(ticket.reject_reason) &&
        svc.admits_when_empty(work)) {
      park_for_drain(svc, work);
    }
    ack.status = static_cast<std::uint8_t>(ServeStatus::kRejected);
    ack.error = std::string("rejected: ") + to_string(ticket.reject_reason);
    return encode(ack);
  }
  FactorizeResult res = ticket.result.get();
  ack.status = static_cast<std::uint8_t>(res.status);
  if (res.status == ServeStatus::kOk) {
    ack.warm = res.factorization->warm() ? 1 : 0;
    ack.plan_seconds = res.factorization->plan_seconds();
    ack.numeric_seconds = res.factorization->numeric_seconds();
    std::lock_guard<std::mutex> lk(t.mu);
    const std::uint64_t handle = t.next_handle++;
    t.handles.emplace(handle, HandleEntry{res.factorization, shard});
    // FIFO eviction: handles are issued in increasing order.
    while (t.handles.size() > t.quota.max_handles) t.handles.erase(t.handles.begin());
    ack.handle = handle;
  } else {
    ack.error = res.error.empty() ? to_string(res.status) : res.error;
  }
  return encode(ack);
}

std::vector<std::uint8_t> SolverServer::handle_submit_plan(Tenant& t, SubmitPlanMsg msg) {
  const Fingerprint fp = fingerprint_request(msg.pattern, config_.engine.plan);
  SubmitPlanAckMsg ack;
  ack.fp_hi = fp.hi;
  ack.fp_lo = fp.lo;

  Plan plan;
  try {
    std::istringstream is(
        std::string(msg.plan_bytes.begin(), msg.plan_bytes.end()));
    plan = read_plan(is);
  } catch (const std::exception& e) {
    throw ProtocolError(ErrCode::kBadPlan,
                        std::string("plan deserialization failed: ") + e.what());
  }
  // Decoded but not applicable: answered in the ack, not as an error frame.
  if (plan.n != msg.pattern.ncols()) {
    ack.accepted = 0;
    ack.error = "plan dimension " + std::to_string(plan.n) +
                " does not match pattern dimension " + std::to_string(msg.pattern.ncols());
    return encode(ack);
  }
  if (plan.config.nprocs != config_.engine.plan.nprocs) {
    ack.accepted = 0;
    ack.error = "plan was mapped for " + std::to_string(plan.config.nprocs) +
                " processors; this server maps for " +
                std::to_string(config_.engine.plan.nprocs);
    return encode(ack);
  }
  const std::size_t shard = shard_of(t, fp);
  t.shards[shard].engine->preload(msg.pattern,
                                  std::make_shared<const Plan>(std::move(plan)));
  ack.accepted = 1;
  return encode(ack);
}

std::vector<std::uint8_t> SolverServer::handle_solve(Tenant& t, const FrameHeader& header,
                                                     std::span<const std::uint8_t> payload,
                                                     TcpStream* stream,
                                                     bool allow_backpressure) {
  const SolvePrefix sp = decode_solve_prefix(
      payload.first(std::min<std::size_t>(payload.size(), kSolvePrefixSize)),
      header.payload_len);
  if (header.type == MsgType::kSolve && sp.nrhs != 1) {
    throw ProtocolError(ErrCode::kBadFrame, "solve frame with nrhs != 1");
  }
  // Thread transport: the rhs doubles stream off the socket directly into
  // the buffer handed to the service (and on to solve_batch) — no
  // intermediate copy.  They are consumed before any lookup so a
  // non-fatal in-band error reply leaves the stream at the next frame
  // boundary.  Epoll transport (stream == nullptr): the reactor already
  // buffered the whole frame; copy the tail out of it (the buffer must
  // survive for a backpressure retry).
  const std::size_t count = static_cast<std::size_t>(sp.n) * sp.nrhs;
  std::vector<double> rhs(count);
  if (stream != nullptr) {
    if (count > 0 && !read_exact(*stream, rhs.data(), count * sizeof(double))) {
      throw NetError("peer closed mid right-hand side");
    }
  } else if (count > 0) {
    // decode_solve_prefix validated payload_len == prefix + count doubles,
    // and the reactor read exactly payload_len bytes.
    std::memcpy(rhs.data(), payload.data() + kSolvePrefixSize, count * sizeof(double));
  }

  std::shared_ptr<const Factorization> target;
  std::size_t shard = 0;
  {
    std::lock_guard<std::mutex> lk(t.mu);
    auto it = t.handles.find(sp.handle);
    if (it != t.handles.end()) {
      target = it->second.factorization;
      shard = it->second.shard;
    }
  }
  if (target == nullptr) {
    throw ProtocolError(ErrCode::kUnknownHandle,
                        "handle " + std::to_string(sp.handle) +
                            " is unknown to tenant '" + t.name + "'");
  }
  if (static_cast<index_t>(sp.n) != target->plan().n) {
    throw ProtocolError(ErrCode::kBadMatrix,
                        "rhs length " + std::to_string(sp.n) +
                            " does not match factor dimension " +
                            std::to_string(target->plan().n));
  }

  SubmitOptions opts;
  opts.priority = static_cast<Priority>(sp.priority);
  opts.deadline_ns = deadline_from(sp.deadline_rel_ns);

  SolverService& svc = *t.shards[shard].service;
  const std::uint64_t work =
      static_cast<std::uint64_t>(sp.n) * static_cast<std::uint64_t>(sp.nrhs);
  if (allow_backpressure && svc.admits_when_empty(work) && !svc.would_admit(work)) {
    park_for_drain(svc, work);
  }

  SolveAckMsg ack;
  ack.n = sp.n;
  ack.nrhs = sp.nrhs;
  SolveTicket ticket = svc.submit_solve(std::move(target), std::move(rhs),
                                        static_cast<index_t>(sp.nrhs), opts);
  if (!ticket.admitted) {
    if (allow_backpressure && capacity_reject(ticket.reject_reason) &&
        svc.admits_when_empty(work)) {
      park_for_drain(svc, work);
    }
    ack.status = static_cast<std::uint8_t>(ServeStatus::kRejected);
    ack.error = std::string("rejected: ") + to_string(ticket.reject_reason);
    return encode(ack);
  }
  SolveResult res = ticket.result.get();
  ack.status = static_cast<std::uint8_t>(res.status);
  ack.batch_rhs = static_cast<std::uint32_t>(res.batch_rhs);
  ack.queue_seconds = res.queue_seconds;
  ack.exec_seconds = res.exec_seconds;
  if (res.status == ServeStatus::kOk) {
    ack.x = std::move(res.x);
  } else {
    ack.error = res.error.empty() ? to_string(res.status) : res.error;
  }
  return encode(ack);
}

}  // namespace spf::net
