// The networked serving front-end: SPF1 protocol over TCP, multi-tenant
// SolverEngine shards behind the in-process serving layer.
//
//   clients ──TCP──► acceptor ──► connection threads ──► Tenant
//                                                          ├─ shard 0: SolverEngine + SolverService
//                                                          ├─ shard 1: SolverEngine + SolverService
//                                                          └─ handles: id -> Factorization
//
// Each tenant (named in the Hello handshake) owns engine shards keyed by
// pattern fingerprint: a submitted matrix is fingerprinted and routed to
// shard hash(fp) % shards, so one tenant's plan cache, dispatcher pool,
// and admission quotas are entirely its own — a tenant saturating its
// queued-work quota is rejected with a reason by its own RequestQueue
// while every other tenant's traffic flows untouched.  Quotas are divided
// evenly across a tenant's shards.
//
// Two transports share the protocol and dispatch code unchanged:
//
//  - kThread (default): blocking thread-per-connection over the ByteStream
//    interface.  Requests on one connection are served synchronously in
//    arrival order (clients may pipeline — replies come back in order).
//    Solve right-hand sides are framed zero-copy: the connection reads the
//    rhs doubles off the socket directly into the buffer that reaches
//    solve_batch, with no intermediate payload copy.
//
//  - kEpoll (Linux): a level-triggered epoll reactor (epoll_server.hpp)
//    with a small dispatch-worker pool.  One reactor thread owns all
//    socket I/O and buffers whole frames; workers run the same dispatch()
//    over the buffered payload.  Connection-level backpressure: a request
//    that would be rejected for queue depth / queued work — but fits an
//    empty queue — parks its connection (EPOLLIN interest dropped) and is
//    re-dispatched when the tenant's queue drains, instead of replying
//    with an error.  Idle connections cost a ~100-byte struct, not a
//    kernel thread.
//
// Failure containment: every malformed frame becomes a typed kError reply
// or a clean disconnect (never a crash or a wedged thread), and a client
// that vanishes mid-request leaks nothing — its engine-side work completes
// into a discarded reply and the connection is reaped (observable via the
// net.* counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/solver_engine.hpp"
#include "net/net_stats.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"

namespace spf::net {

class EpollReactor;

namespace detail {
/// Thrown by the backpressure gate in handle_solve / handle_submit_matrix
/// (epoll transport only): the request would be refused for queue depth or
/// queued work but fits an empty queue, so the connection parks until the
/// tenant's queue drains instead of receiving a rejection.  Carries the
/// shard service and work estimate that failed admission so the reactor
/// can re-probe after inserting into the parked set — the drain that
/// should resume the connection may fire between the gate's probe and the
/// insert, and without the re-probe that wakeup is lost for good.  Never
/// escapes the reactor's dispatch workers.
struct BackpressureWait {
  SolverService* service = nullptr;
  std::uint64_t work = 0;
};
}  // namespace detail

/// Connection transport of a SolverServer.
enum class Transport {
  kThread,  ///< blocking thread-per-connection (default, portable)
  kEpoll,   ///< level-triggered epoll reactor + worker pool (Linux only)
};

[[nodiscard]] const char* to_string(Transport t);

/// Per-tenant resource limits.  Queue quotas are totals for the tenant,
/// divided evenly across its engine shards.
struct TenantQuota {
  index_t engine_shards = 1;          ///< SolverEngine shards (>= 1)
  std::size_t max_queue_depth = 256;  ///< queued requests across all shards
  std::uint64_t max_queued_work = 0;  ///< queued work estimate; 0 = unlimited
  std::size_t max_handles = 64;       ///< resident factorization handles
};

struct SolverServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see SolverServer::port()
  int backlog = 64;
  std::size_t max_connections = 64;
  /// > 0 disconnects a peer that makes no progress longer than this (0 =
  /// wait forever) — idle mid-request, or not reading its reply (a slow
  /// reader must not pin one of the bounded connection slots).  Thread
  /// transport: SO_RCVTIMEO + SO_SNDTIMEO; epoll transport: the reactor's
  /// sweep over reading and flush-stalled connections (paused connections
  /// are exempt — backpressure must not turn into a disconnect).
  int read_timeout_ms = 0;
  /// Connection transport; kThread stays the default until epoll parity
  /// is proven everywhere it matters.
  Transport transport = Transport::kThread;
  /// Dispatch workers draining buffered frames (epoll transport only).
  /// Workers block on engine futures, so this bounds the number of
  /// concurrently awaited requests.
  index_t epoll_workers = 4;
  /// Template for every tenant shard's engine (plan options, threads,
  /// kernel, cache geometry).
  SolverEngineConfig engine{};
  /// Dispatcher threads per shard service.
  index_t workers_per_shard = 1;
  CoalescerConfig coalesce{};
  TenantQuota default_quota{};
  /// Per-tenant overrides of default_quota, by tenant name.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Clock injected into every shard service (tests: ManualClock).
  std::shared_ptr<const Clock> clock;
  /// Start every shard service paused (tests fill queues deterministically).
  bool start_paused = false;
  /// When non-null, each served request records a kNetRequest span (id =
  /// server-wide request seq, arg = message type).  Must have at least
  /// `max_connections` rings and outlive the server.
  obs::Tracer* tracer = nullptr;
};

class SolverServer {
 public:
  /// Bind + listen immediately; throws NetError on failure (spf_serve
  /// turns this into a non-zero exit).  Serving starts with start().
  explicit SolverServer(const SolverServerConfig& config);
  ~SolverServer();

  SolverServer(const SolverServer&) = delete;
  SolverServer& operator=(const SolverServer&) = delete;

  /// Spawn the acceptor.  Idempotent.
  void start();
  /// Stop accepting, shut every connection down, stop every tenant shard
  /// service, join all threads.  Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const NetCounters& counters() const { return counters_; }
  /// Per-shard serve stats of one tenant (empty when the tenant has not
  /// connected yet).
  [[nodiscard]] std::vector<ServeStats> tenant_stats(const std::string& tenant) const;
  /// Full stats document: net.* registry plus per-tenant per-shard serve
  /// stats (this is what a kStats request returns).
  [[nodiscard]] std::string stats_json() const;
  [[nodiscard]] const SolverServerConfig& config() const { return config_; }

  /// Pause / resume dispatch on every shard service of `tenant` (ops and
  /// deterministic-test hook; paused tenants accumulate queued work, which
  /// is what triggers epoll backpressure).  Returns false for a tenant
  /// that has never connected.
  bool pause_tenant(const std::string& tenant);
  bool resume_tenant(const std::string& tenant);

 private:
  friend class EpollReactor;  // drives dispatch() over buffered frames

  struct Shard {
    std::shared_ptr<SolverEngine> engine;
    std::unique_ptr<SolverService> service;
  };
  struct HandleEntry {
    std::shared_ptr<const Factorization> factorization;
    std::size_t shard = 0;
  };
  struct Tenant {
    std::string name;
    TenantQuota quota;
    std::vector<Shard> shards;
    mutable std::mutex mu;  ///< guards handles / next_handle
    std::map<std::uint64_t, HandleEntry> handles;
    std::uint64_t next_handle = 1;
  };
  struct Connection {
    std::unique_ptr<TcpStream> stream;
    std::thread thread;
    std::atomic<bool> done{false};
    index_t trace_slot = -1;
  };

  Tenant& find_or_create_tenant(const std::string& name);
  [[nodiscard]] std::size_t shard_of(const Tenant& t, const Fingerprint& fp) const;

  void accept_loop();
  void reap_finished_locked();
  void serve_connection(Connection* conn);
  /// One request frame -> one reply frame (or empty for kBye).  Throws
  /// ProtocolError for protocol-level failures.  Thread transport passes
  /// the live stream (solve reads its rhs tail zero-copy; `payload` is
  /// only the fixed prefix); the epoll reactor passes stream == nullptr
  /// and the whole buffered payload.  `allow_backpressure` arms the
  /// park-instead-of-reject gate (throws detail::BackpressureWait).
  [[nodiscard]] std::vector<std::uint8_t> dispatch(Tenant*& tenant,
                                                   const FrameHeader& header,
                                                   std::span<const std::uint8_t> payload,
                                                   TcpStream* stream,
                                                   bool allow_backpressure, bool& bye);
  [[nodiscard]] std::vector<std::uint8_t> handle_submit_matrix(Tenant& t,
                                                               SubmitMatrixMsg msg,
                                                               bool allow_backpressure);
  [[nodiscard]] std::vector<std::uint8_t> handle_submit_plan(Tenant& t,
                                                             SubmitPlanMsg msg);
  /// Solve path.  stream != nullptr: zero-copy, the rhs tail is read off
  /// the socket; stream == nullptr: `payload` carries the whole frame and
  /// the rhs is copied out of it.
  [[nodiscard]] std::vector<std::uint8_t> handle_solve(
      Tenant& t, const FrameHeader& header, std::span<const std::uint8_t> payload,
      TcpStream* stream, bool allow_backpressure);
  [[nodiscard]] ClockNs deadline_from(std::int64_t rel_ns) const;

  SolverServerConfig config_;
  std::shared_ptr<const Clock> clock_;
  TcpListener listener_;
  NetCounters counters_;
  std::atomic<std::uint64_t> request_seq_{0};

  mutable std::mutex tenants_mu_;
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;
  std::vector<index_t> free_trace_slots_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;
  std::thread acceptor_;
  /// The epoll transport's reactor (null in thread mode); defined in
  /// epoll_server.cpp, so the destructor lives out-of-line in server.cpp.
  std::unique_ptr<EpollReactor> reactor_;
};

}  // namespace spf::net
