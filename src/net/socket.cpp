#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace spf::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

struct AddrInfo {
  addrinfo* res = nullptr;
  ~AddrInfo() {
    if (res != nullptr) ::freeaddrinfo(res);
  }
};

AddrInfo resolve(const std::string& host, std::uint16_t port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  AddrInfo out;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                               &hints, &out.res);
  if (rc != 0) {
    throw NetError("cannot resolve " + host + ":" + service + ": " +
                   ::gai_strerror(rc));
  }
  return out;
}

}  // namespace

bool read_exact(ByteStream& s, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t k = s.read_some(p + got, n - got);
    if (k == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw NetError("peer closed mid-frame (" + std::to_string(got) + "/" +
                     std::to_string(n) + " bytes)");
    }
    got += k;
  }
  return true;
}

TcpStream::TcpStream(int fd) : fd_(fd) { set_nodelay(fd_); }

TcpStream::~TcpStream() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpStream> TcpStream::connect(const std::string& host,
                                              std::uint16_t port, int read_timeout_ms) {
  const AddrInfo ai = resolve(host, port, /*passive=*/false);
  int fd = -1;
  std::string last_error = "no addresses resolved";
  for (addrinfo* a = ai.res; a != nullptr; a = a->ai_next) {
    fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, a->ai_addr, a->ai_addrlen) == 0) break;
    last_error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  if (fd < 0) {
    throw NetError("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                   last_error);
  }
  auto stream = std::make_unique<TcpStream>(fd);
  if (read_timeout_ms > 0) stream->set_read_timeout_ms(read_timeout_ms);
  return stream;
}

std::unique_ptr<TcpStream> connect_retry(const std::string& host, std::uint16_t port,
                                         int timeout_ms, int read_timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    try {
      return TcpStream::connect(host, port, read_timeout_ms);
    } catch (const NetError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void TcpStream::set_read_timeout_ms(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpStream::set_write_timeout_ms(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

std::size_t TcpStream::read_some(void* buf, std::size_t n) {
  while (true) {
    const ssize_t k = ::recv(fd_, buf, n, 0);
    if (k >= 0) return static_cast<std::size_t>(k);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw NetTimeout("read timed out");
    }
    fail("recv");
  }
}

void TcpStream::write_all(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      // Only reachable with SO_SNDTIMEO armed (blocking sockets never
      // EAGAIN otherwise): the peer stopped draining its receive window.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetTimeout("write timed out");
      }
      fail("send");
    }
    sent += static_cast<std::size_t>(k);
  }
}

void TcpStream::shutdown_both() noexcept { ::shutdown(fd_, SHUT_RDWR); }

void TcpStream::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) < 0) fail("fcntl(F_SETFL)");
}

std::ptrdiff_t TcpStream::read_nb(void* buf, std::size_t n) {
  while (true) {
    const ssize_t k = ::recv(fd_, buf, n, 0);
    if (k >= 0) return static_cast<std::ptrdiff_t>(k);  // 0 = orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    fail("recv");
  }
}

std::ptrdiff_t TcpStream::write_nb(const void* buf, std::size_t n) {
  while (true) {
    const ssize_t k = ::send(fd_, buf, n, MSG_NOSIGNAL);
    if (k >= 0) return static_cast<std::ptrdiff_t>(k);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    fail("send");
  }
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port, int backlog) {
  const AddrInfo ai = resolve(host, port, /*passive=*/true);
  std::string last_error = "no addresses resolved";
  for (addrinfo* a = ai.res; a != nullptr; a = a->ai_next) {
    fd_ = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd_ < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, a->ai_addr, a->ai_addrlen) == 0 && ::listen(fd_, backlog) == 0) {
      break;
    }
    last_error = std::string(errno == EADDRINUSE ? "bind" : "bind/listen") + ": " +
                 std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
  }
  if (fd_ < 0) {
    throw NetError("cannot listen on " + host + ":" + std::to_string(port) + ": " +
                   last_error);
  }
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    fail("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    port_ = ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  } else {
    port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<TcpStream> TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return nullptr;
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc == 0) return nullptr;
  if (rc < 0) {
    if (errno == EINTR) return nullptr;
    fail("poll");
  }
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    // Benign races (peer reset before accept, fd closed by close()).
    if (errno == ECONNABORTED || errno == EINTR || errno == EBADF ||
        errno == EINVAL) {
      return nullptr;
    }
    fail("accept");
  }
  return std::make_unique<TcpStream>(cfd);
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace spf::net
