// Minimal POSIX TCP transport behind a byte-stream interface.
//
// The server and client speak the SPF1 protocol over ByteStream, not over
// raw file descriptors, so the blocking thread-per-connection transport
// shipped here can later be joined by an epoll (or in-memory test) backend
// without touching the protocol or dispatch code.  Streams set TCP_NODELAY
// (request/response traffic must not wait on Nagle) and write with
// MSG_NOSIGNAL (a peer that vanished mid-reply must surface as an error,
// never as SIGPIPE).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace spf::net {

/// Transport failure (connect/bind/read/write); carries the errno text.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A read (or write) exceeded the stream's configured receive (send)
/// timeout (the server counts these separately from abrupt disconnects).
class NetTimeout : public NetError {
 public:
  explicit NetTimeout(const std::string& what) : NetError(what) {}
};

/// A connected, bidirectional byte stream.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Read up to `n` bytes; returns the count read, 0 on orderly EOF.
  /// Throws NetError on failure (including a configured receive timeout).
  virtual std::size_t read_some(void* buf, std::size_t n) = 0;

  /// Write all `n` bytes or throw NetError.
  virtual void write_all(const void* buf, std::size_t n) = 0;

  /// Shut down both directions; any blocked reader/writer (in any thread)
  /// unblocks with EOF / an error.  Idempotent.
  virtual void shutdown_both() noexcept = 0;
};

/// Fill `buf` exactly.  Returns false on EOF before the first byte (a
/// clean close at a frame boundary); throws NetError when the peer
/// vanishes mid-buffer.
bool read_exact(ByteStream& s, void* buf, std::size_t n);

class TcpStream final : public ByteStream {
 public:
  /// read_nb / write_nb sentinel: the operation would block.
  static constexpr std::ptrdiff_t kWouldBlock = -1;

  /// Connect to host:port (throws NetError).  `read_timeout_ms > 0` arms
  /// SO_RCVTIMEO: a read blocked longer than that fails with NetError.
  static std::unique_ptr<TcpStream> connect(const std::string& host, std::uint16_t port,
                                            int read_timeout_ms = 0);

  /// Adopt an already connected fd (the listener's accept path).
  explicit TcpStream(int fd);
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  std::size_t read_some(void* buf, std::size_t n) override;
  void write_all(const void* buf, std::size_t n) override;
  void shutdown_both() noexcept override;

  /// Arm (or, with 0, disarm) SO_RCVTIMEO on the underlying socket.
  void set_read_timeout_ms(int timeout_ms);

  /// Arm (or, with 0, disarm) SO_SNDTIMEO: a blocking write that makes no
  /// progress for this long throws NetTimeout from write_all — the thread
  /// transport's guard against peers that stop reading their replies.
  void set_write_timeout_ms(int timeout_ms);

  /// Toggle O_NONBLOCK (the epoll reactor's mode; blocking is the default).
  void set_nonblocking(bool on);

  /// Nonblocking read: > 0 bytes read, 0 on orderly EOF, kWouldBlock when
  /// no data is available.  Throws NetError on a hard failure.  `n` must
  /// be > 0 (otherwise 0 is ambiguous with EOF).
  [[nodiscard]] std::ptrdiff_t read_nb(void* buf, std::size_t n);

  /// Nonblocking write (MSG_NOSIGNAL): bytes written (possibly short) or
  /// kWouldBlock when the send buffer is full.  Throws NetError on a hard
  /// failure (peer reset and the like).
  [[nodiscard]] std::ptrdiff_t write_nb(const void* buf, std::size_t n);

  /// The underlying socket fd (epoll registration; tests).
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Connect with retries until `timeout_ms` elapses — the mesh-rendezvous
/// helper shared by every subsystem that dials a peer which may not have
/// bound its listener yet (src/rt's rank mesh, tools).  Each refused or
/// unreachable attempt sleeps briefly and retries; the final failure is
/// rethrown as-is.  `read_timeout_ms` is applied to the returned stream.
std::unique_ptr<TcpStream> connect_retry(const std::string& host, std::uint16_t port,
                                         int timeout_ms, int read_timeout_ms = 0);

class TcpListener {
 public:
  /// Bind and listen on host:port (port 0 = ephemeral; see port()).
  /// Throws NetError with the errno text on any failure — callers like
  /// spf_serve turn that into a non-zero exit, never a silent no-op.
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 64);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// The listening socket fd (epoll registration); -1 after close().
  [[nodiscard]] int fd() const { return fd_; }

  /// Wait up to `timeout_ms` for a connection; nullptr on timeout or
  /// after close().  Throws NetError on unexpected accept failures.
  [[nodiscard]] std::unique_ptr<TcpStream> accept(int timeout_ms);

  /// Stop accepting; a blocked accept() returns nullptr.  Idempotent.
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace spf::net
