#include "numeric/cholesky.hpp"

#include <cmath>

#include "support/check.hpp"

namespace spf {

CscMatrix CholeskyFactor::to_csc() const {
  SPF_REQUIRE(structure != nullptr, "factor has no structure");
  return CscMatrix(structure->n(), structure->n(),
                   {structure->col_ptr().begin(), structure->col_ptr().end()},
                   {structure->row_ind().begin(), structure->row_ind().end()},
                   std::vector<double>(values));
}

CholeskyFactor numeric_cholesky(const CscMatrix& lower, const SymbolicFactor& sf) {
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/structure size mismatch");
  const index_t n = sf.n();

  CholeskyFactor f;
  f.structure = &sf;
  f.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);

  // link[j]: head of the list of columns whose next uneliminated row is j;
  // next_in_list chains them; col_pos[k]: position within column k of that
  // next row.
  std::vector<index_t> link(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_in_list(static_cast<std::size_t>(n), -1);
  std::vector<count_t> col_pos(static_cast<std::size_t>(n), 0);
  // Dense accumulation workspace for the current column.
  std::vector<double> work(static_cast<std::size_t>(n), 0.0);

  for (index_t j = 0; j < n; ++j) {
    const auto jrows = sf.col_rows(j);
    const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];

    // Scatter A(:, j) (lower part).
    {
      const auto arows = lower.col_rows(j);
      const auto avals = lower.col_values(j);
      for (std::size_t t = 0; t < arows.size(); ++t) {
        work[static_cast<std::size_t>(arows[t])] = avals[t];
      }
    }

    // Apply updates from every column k with L(j,k) != 0.
    index_t k = link[static_cast<std::size_t>(j)];
    link[static_cast<std::size_t>(j)] = -1;
    while (k != -1) {
      const index_t knext = next_in_list[static_cast<std::size_t>(k)];
      const auto krows = sf.col_rows(k);
      const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
      const count_t pos = col_pos[static_cast<std::size_t>(k)];  // row j's position
      const double ljk = f.values[static_cast<std::size_t>(kbase + pos)];
      for (count_t t = pos; t < static_cast<count_t>(krows.size()); ++t) {
        work[static_cast<std::size_t>(krows[static_cast<std::size_t>(t)])] -=
            ljk * f.values[static_cast<std::size_t>(kbase + t)];
      }
      // Re-link column k to its next uneliminated row.
      if (pos + 1 < static_cast<count_t>(krows.size())) {
        col_pos[static_cast<std::size_t>(k)] = pos + 1;
        const index_t r = krows[static_cast<std::size_t>(pos + 1)];
        next_in_list[static_cast<std::size_t>(k)] = link[static_cast<std::size_t>(r)];
        link[static_cast<std::size_t>(r)] = k;
      }
      k = knext;
    }

    // Scale and gather column j.
    const double d = work[static_cast<std::size_t>(j)];
    SPF_REQUIRE(d > 0.0, "matrix is not positive definite (non-positive pivot)");
    const double ljj = std::sqrt(d);
    f.values[static_cast<std::size_t>(jbase)] = ljj;
    work[static_cast<std::size_t>(j)] = 0.0;
    for (std::size_t t = 1; t < jrows.size(); ++t) {
      const index_t i = jrows[t];
      f.values[static_cast<std::size_t>(jbase) + t] =
          work[static_cast<std::size_t>(i)] / ljj;
      work[static_cast<std::size_t>(i)] = 0.0;
    }

    // Link column j to its first subdiagonal row.
    if (jrows.size() > 1) {
      col_pos[static_cast<std::size_t>(j)] = 1;
      const index_t r = jrows[1];
      next_in_list[static_cast<std::size_t>(j)] = link[static_cast<std::size_t>(r)];
      link[static_cast<std::size_t>(r)] = j;
    }
  }
  return f;
}

}  // namespace spf
