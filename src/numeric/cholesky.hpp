// Sparse numeric Cholesky factorization (left-looking / fan-in).
//
// Step 3 of the paper's direct solution.  The factor's structure comes
// from symbolic_cholesky(); values are computed with the classical
// link-list left-looking algorithm: when column j is formed, every column
// k with L(j,k) != 0 contributes the update  L(j:n,j) -= L(j,k)*L(j:n,k).
#pragma once

#include <vector>

#include "matrix/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Numeric factor: the symbolic structure plus one value per element.
struct CholeskyFactor {
  const SymbolicFactor* structure = nullptr;
  std::vector<double> values;  ///< indexed by element id

  [[nodiscard]] index_t n() const { return structure->n(); }

  /// Export as a CSC matrix (copies).
  [[nodiscard]] CscMatrix to_csc() const;
};

/// Factor the (already permuted) lower-triangular SPD matrix `lower` using
/// the precomputed structure `sf`.  Throws spf::invalid_input if the matrix
/// is not positive definite.
CholeskyFactor numeric_cholesky(const CscMatrix& lower, const SymbolicFactor& sf);

}  // namespace spf
