#include "numeric/dense.hpp"

#include <cmath>

#include "support/check.hpp"

namespace spf {

bool dense_cholesky(std::span<double> a, index_t n) {
  SPF_REQUIRE(a.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
              "matrix buffer size mismatch");
  auto at = [&](index_t i, index_t j) -> double& {
    return a[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(i)];
  };
  for (index_t j = 0; j < n; ++j) {
    double d = at(j, j);
    for (index_t k = 0; k < j; ++k) d -= at(j, k) * at(j, k);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    at(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double s = at(i, j);
      for (index_t k = 0; k < j; ++k) s -= at(i, k) * at(j, k);
      at(i, j) = s / ljj;
    }
  }
  return true;
}

std::vector<double> dense_lower_solve(std::span<const double> l, index_t n,
                                      std::span<const double> b) {
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> y(b.begin(), b.end());
  for (index_t j = 0; j < n; ++j) {
    y[static_cast<std::size_t>(j)] /=
        l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)];
    for (index_t i = j + 1; i < n; ++i) {
      y[static_cast<std::size_t>(i)] -=
          l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(i)] *
          y[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

std::vector<double> dense_upper_solve_transposed(std::span<const double> l, index_t n,
                                                 std::span<const double> y) {
  SPF_REQUIRE(y.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> x(y.begin(), y.end());
  for (index_t j = n - 1; j >= 0; --j) {
    for (index_t i = j + 1; i < n; ++i) {
      x[static_cast<std::size_t>(j)] -=
          l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(i)];
    }
    x[static_cast<std::size_t>(j)] /=
        l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)];
  }
  return x;
}

}  // namespace spf
