#include "numeric/dense.hpp"

#include <cmath>

#include "numeric/dense_tails.hpp"
#include "support/check.hpp"

namespace spf {

bool dense_cholesky(std::span<double> a, index_t n) {
  SPF_REQUIRE(a.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
              "matrix buffer size mismatch");
  auto at = [&](index_t i, index_t j) -> double& {
    return a[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(i)];
  };
  for (index_t j = 0; j < n; ++j) {
    double d = at(j, j);
    for (index_t k = 0; k < j; ++k) d -= at(j, k) * at(j, k);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    at(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double s = at(i, j);
      for (index_t k = 0; k < j; ++k) s -= at(i, k) * at(j, k);
      at(i, j) = s / ljj;
    }
  }
  return true;
}

bool dense_panel_cholesky(std::span<double> panel, index_t nr, index_t w) {
  SPF_REQUIRE(panel.size() == static_cast<std::size_t>(nr) * static_cast<std::size_t>(w),
              "panel buffer size mismatch");
  SPF_REQUIRE(nr >= w && w >= 0, "panel must be at least as tall as wide");
  auto pe = [&](index_t r, index_t c) -> double& {
    return panel[static_cast<std::size_t>(c) * static_cast<std::size_t>(nr) +
                 static_cast<std::size_t>(r)];
  };
  for (index_t c = 0; c < w; ++c) {
    double d = pe(c, c);
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    pe(c, c) = ljj;
    for (index_t r = c + 1; r < nr; ++r) pe(r, c) /= ljj;
    for (index_t c2 = c + 1; c2 < w; ++c2) {
      const double l = pe(c2, c);
      if (l == 0.0) continue;
      for (index_t r = c2; r < nr; ++r) pe(r, c2) -= pe(r, c) * l;
    }
  }
  return true;
}

using dense_detail::gemm_nt_scalar;
using dense_detail::gemm_nt_tile4x4;

void dense_gemm_nt(double* c, index_t m, index_t n, index_t ldc, const double* a,
                   index_t lda, const double* b, index_t ldb, index_t k) {
  index_t j = 0;
  for (; j + 4 <= n; j += 4) {
    index_t i = 0;
    for (; i + 4 <= m; i += 4) gemm_nt_tile4x4(c, i, j, ldc, a, lda, b, ldb, k);
    gemm_nt_scalar(c, i, m, j, j + 4, ldc, a, lda, b, ldb, k);
  }
  gemm_nt_scalar(c, 0, m, j, n, ldc, a, lda, b, ldb, k);
}

void dense_syrk_lt(double* c, index_t n, index_t ldc, const double* a, index_t lda,
                   index_t k) {
  index_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // Triangular 4x4 tile on the diagonal: scalar, lower entries only.
    for (index_t jj = j; jj < j + 4; ++jj) {
      gemm_nt_scalar(c, jj, j + 4, jj, jj + 1, ldc, a, lda, a, lda, k);
    }
    index_t i = j + 4;
    for (; i + 4 <= n; i += 4) gemm_nt_tile4x4(c, i, j, ldc, a, lda, a, lda, k);
    gemm_nt_scalar(c, i, n, j, j + 4, ldc, a, lda, a, lda, k);
  }
  for (; j < n; ++j) gemm_nt_scalar(c, j, n, j, j + 1, ldc, a, lda, a, lda, k);
}

void dense_trsm_rlt(double* b, index_t m, index_t n, index_t ldb, const double* t,
                    index_t ldt) {
  for (index_t c = 0; c < n; ++c) {
    double* bc = b + static_cast<std::size_t>(c) * static_cast<std::size_t>(ldb);
    for (index_t p = 0; p < c; ++p) {
      // T is dense within a cluster, so no zero-skip here: the elementwise
      // path subtracts every structural term and this must match its
      // per-element operation sequence.
      const double tcp = t[static_cast<std::size_t>(p) * static_cast<std::size_t>(ldt) +
                           static_cast<std::size_t>(c)];
      const double* bp = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb);
      for (index_t i = 0; i < m; ++i) bc[i] -= bp[i] * tcp;
    }
    const double d = t[static_cast<std::size_t>(c) * static_cast<std::size_t>(ldt) +
                       static_cast<std::size_t>(c)];
    for (index_t i = 0; i < m; ++i) bc[i] /= d;
  }
}

std::vector<double> dense_lower_solve(std::span<const double> l, index_t n,
                                      std::span<const double> b) {
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> y(b.begin(), b.end());
  for (index_t j = 0; j < n; ++j) {
    y[static_cast<std::size_t>(j)] /=
        l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)];
    for (index_t i = j + 1; i < n; ++i) {
      y[static_cast<std::size_t>(i)] -=
          l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(i)] *
          y[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

std::vector<double> dense_upper_solve_transposed(std::span<const double> l, index_t n,
                                                 std::span<const double> y) {
  SPF_REQUIRE(y.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> x(y.begin(), y.end());
  for (index_t j = n - 1; j >= 0; --j) {
    for (index_t i = j + 1; i < n; ++i) {
      x[static_cast<std::size_t>(j)] -=
          l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(i)] *
          x[static_cast<std::size_t>(i)];
    }
    x[static_cast<std::size_t>(j)] /=
        l[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)];
  }
  return x;
}

}  // namespace spf
