// Small dense linear algebra used for cross-checking the sparse kernels.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

/// In-place dense Cholesky of a column-major n x n SPD matrix: on return
/// the lower triangle holds L (upper triangle untouched).  Returns false
/// when a non-positive pivot is met.
bool dense_cholesky(std::span<double> a, index_t n);

/// Dense forward solve L y = b (L lower triangular, column-major).
std::vector<double> dense_lower_solve(std::span<const double> l, index_t n,
                                      std::span<const double> b);

/// Dense backward solve L^T x = y.
std::vector<double> dense_upper_solve_transposed(std::span<const double> l, index_t n,
                                                 std::span<const double> y);

}  // namespace spf
