// Small dense linear algebra: the reference routines used for
// cross-checking the sparse kernels, plus the register-blocked panel
// microkernels shared by supernodal_cholesky and the blocked executor
// path (exec/kernel_plan).
//
// Determinism contract of the microkernels: every output element
// accumulates its k-terms sequentially in ascending k — the same
// per-element summation order as one scalar loop — so results do not
// depend on the blocking factors, and two runs of the same binary agree
// bitwise.  Keep -ffp-contract=off on this translation unit (see
// src/CMakeLists.txt): FP contraction would change results between
// compilers/flags without changing this source.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

/// In-place dense Cholesky of a column-major n x n SPD matrix: on return
/// the lower triangle holds L (upper triangle untouched).  Returns false
/// when a non-positive pivot is met.
bool dense_cholesky(std::span<double> a, index_t n);

/// In-place right-looking factorization of a dense trapezoidal panel
/// (nr x w column-major, nr >= w): the top w x w triangle becomes its
/// Cholesky factor and the rows below are scaled and updated along the
/// way — exactly the supernodal panel loop.  Entries above the panel
/// diagonal (r < c) are never read or written.  Returns false when a
/// non-positive pivot is met (panel left partially factored).
bool dense_panel_cholesky(std::span<double> panel, index_t nr, index_t w);

/// C -= A · Aᵀ on the lower triangle only: C is n x n column-major with
/// leading dimension ldc (entries with r < c untouched), A is n x k with
/// leading dimension lda.
void dense_syrk_lt(double* c, index_t n, index_t ldc, const double* a, index_t lda,
                   index_t k);

/// C -= A · Bᵀ: C is m x n column-major (ldc), A is m x k (lda), B is
/// n x k (ldb).
void dense_gemm_nt(double* c, index_t m, index_t n, index_t ldc, const double* a,
                   index_t lda, const double* b, index_t ldb, index_t k);

/// B := B · T⁻ᵀ for a lower-triangular T: B is m x n column-major (ldb),
/// T is n x n column-major (ldt, upper triangle never read).  Column c of
/// B receives the columns before it in ascending order, then divides by
/// T(c, c) — the update order of a right-looking sparse Cholesky column.
void dense_trsm_rlt(double* b, index_t m, index_t n, index_t ldb, const double* t,
                    index_t ldt);

/// Dense forward solve L y = b (L lower triangular, column-major).
std::vector<double> dense_lower_solve(std::span<const double> l, index_t n,
                                      std::span<const double> b);

/// Dense backward solve L^T x = y.
std::vector<double> dense_upper_solve_transposed(std::span<const double> l, index_t n,
                                                 std::span<const double> y);

}  // namespace spf
