// AVX2+FMA tier of the dense panel microkernels.  This translation
// unit is the only one compiled with -mavx2 -mfma (src/CMakeLists.txt);
// when those flags are absent — non-x86 target or an unwilling
// compiler — it degrades to a null table and the dispatcher skips the
// tier.  Remainder rows fall back to the shared scalar tails.
#include "numeric/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "numeric/dense_simd_impl.hpp"

namespace spf::detail {
namespace {

struct V256 {
  static constexpr index_t width = 4;
  static constexpr bool has_mask = false;
  using reg = __m256d;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg broadcast(double x) { return _mm256_set1_pd(x); }
  static reg fnmadd(reg a, reg b, reg acc) { return _mm256_fnmadd_pd(a, b, acc); }
  static reg div(reg a, reg b) { return _mm256_div_pd(a, b); }
};

}  // namespace

const DenseKernelTable* avx2_kernel_table() {
  static const DenseKernelTable table{&simd_impl::syrk_lt<V256>,
                                      &simd_impl::gemm_nt<V256>,
                                      &simd_impl::trsm_rlt<V256>};
  return &table;
}

}  // namespace spf::detail

#else

namespace spf::detail {
const DenseKernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace spf::detail

#endif
