// AVX-512F tier of the dense panel microkernels.  Compiled with
// -mavx512f only (src/CMakeLists.txt); every intrinsic used here is
// plain AVX-512F so no VL/DQ/BW subset is required.  Remainder rows use
// masked loads/stores instead of a scalar tail — the lanes beyond the
// panel edge are never read or written.
#include "numeric/simd.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "numeric/dense_simd_impl.hpp"

namespace spf::detail {
namespace {

struct V512 {
  static constexpr index_t width = 8;
  static constexpr bool has_mask = true;
  using reg = __m512d;
  using mask = __mmask8;
  static reg load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, reg v) { _mm512_storeu_pd(p, v); }
  static reg broadcast(double x) { return _mm512_set1_pd(x); }
  static reg fnmadd(reg a, reg b, reg acc) { return _mm512_fnmadd_pd(a, b, acc); }
  static reg div(reg a, reg b) { return _mm512_div_pd(a, b); }
  static mask tail_mask(index_t rem) {
    return static_cast<mask>((1u << static_cast<unsigned>(rem)) - 1u);
  }
  static reg maskz_load(mask m, const double* p) { return _mm512_maskz_loadu_pd(m, p); }
  static void mask_store(double* p, mask m, reg v) { _mm512_mask_storeu_pd(p, m, v); }
};

}  // namespace

const DenseKernelTable* avx512_kernel_table() {
  static const DenseKernelTable table{&simd_impl::syrk_lt<V512>,
                                      &simd_impl::gemm_nt<V512>,
                                      &simd_impl::trsm_rlt<V512>};
  return &table;
}

}  // namespace spf::detail

#else

namespace spf::detail {
const DenseKernelTable* avx512_kernel_table() { return nullptr; }
}  // namespace spf::detail

#endif
