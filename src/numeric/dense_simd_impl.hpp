// Generic SIMD bodies of the panel microkernels, parameterized over a
// per-ISA vector abstraction V.  Included ONLY by the per-ISA
// translation units (numeric/dense_simd_*.cpp), each compiled with its
// own -m flags plus -ffp-contract=off.
//
// V must provide:
//   static constexpr index_t width;         // doubles per register
//   static constexpr bool has_mask;         // masked loads/stores?
//   using reg = ...;
//   static reg  load(const double*);
//   static void store(double*, reg);
//   static reg  broadcast(double);
//   static reg  fnmadd(reg a, reg b, reg acc);   // acc - a*b (fused)
//   static reg  div(reg a, reg b);
// and, when has_mask:
//   using mask = ...;
//   static mask tail_mask(index_t rem);          // low `rem` lanes
//   static reg  maskz_load(mask, const double*); // off lanes read as 0
//   static void mask_store(double*, mask, reg);  // off lanes untouched
//
// Determinism: vectors run along rows (i); each output element still
// accumulates its k-terms in ascending k, so per-element operation
// order is fixed and every tier is run-to-run deterministic.  Only the
// FMA rounding differs from the scalar tier.
#pragma once

#include "matrix/types.hpp"
#include "numeric/dense_tails.hpp"

namespace spf::simd_impl {

/// Rows [i0, i1) of four columns j..j+3 of C -= A · Bᵀ.  Four
/// independent accumulator chains per row chunk keep the FMA pipeline
/// full, and each A load is reused across all four columns.
template <class V>
inline void gemm_cols4(double* c, index_t i0, index_t i1, index_t j, index_t ldc,
                       const double* a, index_t lda, const double* b, index_t ldb,
                       index_t k) {
  double* c0 = c + static_cast<std::size_t>(j) * static_cast<std::size_t>(ldc);
  double* c1 = c0 + static_cast<std::size_t>(ldc);
  double* c2 = c1 + static_cast<std::size_t>(ldc);
  double* c3 = c2 + static_cast<std::size_t>(ldc);
  index_t i = i0;
  for (; i + V::width <= i1; i += V::width) {
    typename V::reg acc0 = V::load(c0 + i);
    typename V::reg acc1 = V::load(c1 + i);
    typename V::reg acc2 = V::load(c2 + i);
    typename V::reg acc3 = V::load(c3 + i);
    for (index_t p = 0; p < k; ++p) {
      const typename V::reg av =
          V::load(a + static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                  static_cast<std::size_t>(i));
      const double* bp = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb) +
                         static_cast<std::size_t>(j);
      acc0 = V::fnmadd(av, V::broadcast(bp[0]), acc0);
      acc1 = V::fnmadd(av, V::broadcast(bp[1]), acc1);
      acc2 = V::fnmadd(av, V::broadcast(bp[2]), acc2);
      acc3 = V::fnmadd(av, V::broadcast(bp[3]), acc3);
    }
    V::store(c0 + i, acc0);
    V::store(c1 + i, acc1);
    V::store(c2 + i, acc2);
    V::store(c3 + i, acc3);
  }
  if (i >= i1) return;
  if constexpr (V::has_mask) {
    const typename V::mask tail = V::tail_mask(i1 - i);
    typename V::reg acc0 = V::maskz_load(tail, c0 + i);
    typename V::reg acc1 = V::maskz_load(tail, c1 + i);
    typename V::reg acc2 = V::maskz_load(tail, c2 + i);
    typename V::reg acc3 = V::maskz_load(tail, c3 + i);
    for (index_t p = 0; p < k; ++p) {
      const typename V::reg av = V::maskz_load(
          tail, a + static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                    static_cast<std::size_t>(i));
      const double* bp = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb) +
                         static_cast<std::size_t>(j);
      acc0 = V::fnmadd(av, V::broadcast(bp[0]), acc0);
      acc1 = V::fnmadd(av, V::broadcast(bp[1]), acc1);
      acc2 = V::fnmadd(av, V::broadcast(bp[2]), acc2);
      acc3 = V::fnmadd(av, V::broadcast(bp[3]), acc3);
    }
    V::mask_store(c0 + i, tail, acc0);
    V::mask_store(c1 + i, tail, acc1);
    V::mask_store(c2 + i, tail, acc2);
    V::mask_store(c3 + i, tail, acc3);
  } else {
    dense_detail::gemm_nt_scalar(c, i, i1, j, j + 4, ldc, a, lda, b, ldb, k);
  }
}

/// Rows [i0, i1) of the single column j of C -= A · Bᵀ.
template <class V>
inline void gemm_cols1(double* c, index_t i0, index_t i1, index_t j, index_t ldc,
                       const double* a, index_t lda, const double* b, index_t ldb,
                       index_t k) {
  double* cj = c + static_cast<std::size_t>(j) * static_cast<std::size_t>(ldc);
  index_t i = i0;
  for (; i + V::width <= i1; i += V::width) {
    typename V::reg acc = V::load(cj + i);
    for (index_t p = 0; p < k; ++p) {
      const typename V::reg av =
          V::load(a + static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                  static_cast<std::size_t>(i));
      acc = V::fnmadd(av,
                      V::broadcast(b[static_cast<std::size_t>(p) *
                                         static_cast<std::size_t>(ldb) +
                                     static_cast<std::size_t>(j)]),
                      acc);
    }
    V::store(cj + i, acc);
  }
  if (i >= i1) return;
  if constexpr (V::has_mask) {
    const typename V::mask tail = V::tail_mask(i1 - i);
    typename V::reg acc = V::maskz_load(tail, cj + i);
    for (index_t p = 0; p < k; ++p) {
      const typename V::reg av = V::maskz_load(
          tail, a + static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                    static_cast<std::size_t>(i));
      acc = V::fnmadd(av,
                      V::broadcast(b[static_cast<std::size_t>(p) *
                                         static_cast<std::size_t>(ldb) +
                                     static_cast<std::size_t>(j)]),
                      acc);
    }
    V::mask_store(cj + i, tail, acc);
  } else {
    dense_detail::gemm_nt_scalar(c, i, i1, j, j + 1, ldc, a, lda, b, ldb, k);
  }
}

/// C -= A · Bᵀ (see dense_gemm_nt).
template <class V>
void gemm_nt(double* c, index_t m, index_t n, index_t ldc, const double* a, index_t lda,
             const double* b, index_t ldb, index_t k) {
  index_t j = 0;
  for (; j + 4 <= n; j += 4) gemm_cols4<V>(c, 0, m, j, ldc, a, lda, b, ldb, k);
  for (; j < n; ++j) gemm_cols1<V>(c, 0, m, j, ldc, a, lda, b, ldb, k);
}

/// C -= A · Aᵀ, lower triangle only (see dense_syrk_lt).  The 4x4
/// triangular corner of each column block stays scalar; the rectangular
/// interior below it uses the vector microkernel.
template <class V>
void syrk_lt(double* c, index_t n, index_t ldc, const double* a, index_t lda,
             index_t k) {
  index_t j = 0;
  for (; j + 4 <= n; j += 4) {
    for (index_t jj = j; jj < j + 4; ++jj) {
      dense_detail::gemm_nt_scalar(c, jj, j + 4, jj, jj + 1, ldc, a, lda, a, lda, k);
    }
    gemm_cols4<V>(c, j + 4, n, j, ldc, a, lda, a, lda, k);
  }
  for (; j < n; ++j) gemm_cols1<V>(c, j, n, j, ldc, a, lda, a, lda, k);
}

/// B := B · T⁻ᵀ (see dense_trsm_rlt): column c receives every earlier
/// column in ascending order, then divides by the pivot — vectorized
/// down the rows of each column.
template <class V>
void trsm_rlt(double* b, index_t m, index_t n, index_t ldb, const double* t,
              index_t ldt) {
  for (index_t c = 0; c < n; ++c) {
    double* bc = b + static_cast<std::size_t>(c) * static_cast<std::size_t>(ldb);
    for (index_t p = 0; p < c; ++p) {
      const double tcp = t[static_cast<std::size_t>(p) * static_cast<std::size_t>(ldt) +
                           static_cast<std::size_t>(c)];
      const double* bp = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb);
      const typename V::reg tv = V::broadcast(tcp);
      index_t i = 0;
      for (; i + V::width <= m; i += V::width) {
        V::store(bc + i, V::fnmadd(V::load(bp + i), tv, V::load(bc + i)));
      }
      for (; i < m; ++i) bc[i] -= bp[i] * tcp;
    }
    const double d = t[static_cast<std::size_t>(c) * static_cast<std::size_t>(ldt) +
                       static_cast<std::size_t>(c)];
    const typename V::reg dv = V::broadcast(d);
    index_t i = 0;
    for (; i + V::width <= m; i += V::width) {
      V::store(bc + i, V::div(V::load(bc + i), dv));
    }
    for (; i < m; ++i) bc[i] /= d;
  }
}

}  // namespace spf::simd_impl
