// NEON tier of the dense panel microkernels.  AArch64 mandates NEON
// (Advanced SIMD) in the base ABI, so this tier needs no extra -m flags
// and no runtime probe — it is simply the best tier on arm64 builds.
// On other targets it degrades to a null table.
#include "numeric/simd.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "numeric/dense_simd_impl.hpp"

namespace spf::detail {
namespace {

struct VNeon {
  static constexpr index_t width = 2;
  static constexpr bool has_mask = false;
  using reg = float64x2_t;
  static reg load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, reg v) { vst1q_f64(p, v); }
  static reg broadcast(double x) { return vdupq_n_f64(x); }
  // vfmsq_f64(acc, a, b) = acc - a*b, fused.
  static reg fnmadd(reg a, reg b, reg acc) { return vfmsq_f64(acc, a, b); }
  static reg div(reg a, reg b) { return vdivq_f64(a, b); }
};

}  // namespace

const DenseKernelTable* neon_kernel_table() {
  static const DenseKernelTable table{&simd_impl::syrk_lt<VNeon>,
                                      &simd_impl::gemm_nt<VNeon>,
                                      &simd_impl::trsm_rlt<VNeon>};
  return &table;
}

}  // namespace spf::detail

#else

namespace spf::detail {
const DenseKernelTable* neon_kernel_table() { return nullptr; }
}  // namespace spf::detail

#endif
