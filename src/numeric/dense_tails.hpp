// Scalar building blocks of the register-blocked panel microkernels,
// shared between the portable scalar tier (numeric/dense.cpp) and the
// per-ISA SIMD translation units (numeric/dense_simd_*.cpp), which use
// them for remainder rows/columns and triangular corners.
//
// Determinism contract: every output element accumulates its k-terms
// sequentially in ascending k.  Each including translation unit must be
// compiled with -ffp-contract=off (see src/CMakeLists.txt) so the
// written arithmetic is the executed arithmetic.
#pragma once

#include "matrix/types.hpp"

namespace spf::dense_detail {

/// Scalar tail of the rank-k update: C(i, j) -= Σ_p A(i, p) · B(j, p) for
/// the element rectangle [i0, i1) x [j0, j1), k ascending per element.
inline void gemm_nt_scalar(double* c, index_t i0, index_t i1, index_t j0, index_t j1,
                           index_t ldc, const double* a, index_t lda, const double* b,
                           index_t ldb, index_t k) {
  for (index_t j = j0; j < j1; ++j) {
    for (index_t i = i0; i < i1; ++i) {
      double acc = c[static_cast<std::size_t>(j) * static_cast<std::size_t>(ldc) +
                     static_cast<std::size_t>(i)];
      for (index_t p = 0; p < k; ++p) {
        acc -= a[static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                 static_cast<std::size_t>(i)] *
               b[static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb) +
                 static_cast<std::size_t>(j)];
      }
      c[static_cast<std::size_t>(j) * static_cast<std::size_t>(ldc) +
        static_cast<std::size_t>(i)] = acc;
    }
  }
}

/// One 4x4 register tile of C -= A · Bᵀ at (i, j); k ascending, sixteen
/// independent accumulators so the compiler keeps them in registers.
inline void gemm_nt_tile4x4(double* c, index_t i, index_t j, index_t ldc,
                            const double* a, index_t lda, const double* b, index_t ldb,
                            index_t k) {
  double acc[4][4];
  for (int jj = 0; jj < 4; ++jj) {
    for (int ii = 0; ii < 4; ++ii) {
      acc[jj][ii] = c[static_cast<std::size_t>(j + jj) * static_cast<std::size_t>(ldc) +
                      static_cast<std::size_t>(i + ii)];
    }
  }
  for (index_t p = 0; p < k; ++p) {
    const double* ap = a + static_cast<std::size_t>(p) * static_cast<std::size_t>(lda) +
                       static_cast<std::size_t>(i);
    const double* bp = b + static_cast<std::size_t>(p) * static_cast<std::size_t>(ldb) +
                       static_cast<std::size_t>(j);
    for (int jj = 0; jj < 4; ++jj) {
      const double bv = bp[jj];
      for (int ii = 0; ii < 4; ++ii) acc[jj][ii] -= ap[ii] * bv;
    }
  }
  for (int jj = 0; jj < 4; ++jj) {
    for (int ii = 0; ii < 4; ++ii) {
      c[static_cast<std::size_t>(j + jj) * static_cast<std::size_t>(ldc) +
        static_cast<std::size_t>(i + ii)] = acc[jj][ii];
    }
  }
}

}  // namespace spf::dense_detail
