#include "numeric/ldlt.hpp"

#include <cmath>

#include "support/check.hpp"

namespace spf {

LdltFactor ldlt_factorize(const CscMatrix& lower, const SymbolicFactor& sf) {
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/structure size mismatch");
  const index_t n = sf.n();

  LdltFactor f;
  f.structure = &sf;
  f.l_values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);
  f.d.assign(static_cast<std::size_t>(n), 0.0);

  // Left-looking with the same link-list machinery as numeric_cholesky:
  // column j receives the update d_k * L(j,k) * L(i,k) from every k with
  // L(j,k) != 0.
  std::vector<index_t> link(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_in_list(static_cast<std::size_t>(n), -1);
  std::vector<count_t> col_pos(static_cast<std::size_t>(n), 0);
  std::vector<double> work(static_cast<std::size_t>(n), 0.0);

  for (index_t j = 0; j < n; ++j) {
    const auto jrows = sf.col_rows(j);
    const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];

    {
      const auto arows = lower.col_rows(j);
      const auto avals = lower.col_values(j);
      for (std::size_t t = 0; t < arows.size(); ++t) {
        work[static_cast<std::size_t>(arows[t])] = avals[t];
      }
    }

    index_t k = link[static_cast<std::size_t>(j)];
    link[static_cast<std::size_t>(j)] = -1;
    while (k != -1) {
      const index_t knext = next_in_list[static_cast<std::size_t>(k)];
      const auto krows = sf.col_rows(k);
      const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
      const count_t pos = col_pos[static_cast<std::size_t>(k)];
      const double ljk_dk = f.l_values[static_cast<std::size_t>(kbase + pos)] *
                            f.d[static_cast<std::size_t>(k)];
      for (count_t t = pos; t < static_cast<count_t>(krows.size()); ++t) {
        work[static_cast<std::size_t>(krows[static_cast<std::size_t>(t)])] -=
            ljk_dk * f.l_values[static_cast<std::size_t>(kbase + t)];
      }
      if (pos + 1 < static_cast<count_t>(krows.size())) {
        col_pos[static_cast<std::size_t>(k)] = pos + 1;
        const index_t r = krows[static_cast<std::size_t>(pos + 1)];
        next_in_list[static_cast<std::size_t>(k)] = link[static_cast<std::size_t>(r)];
        link[static_cast<std::size_t>(r)] = k;
      }
      k = knext;
    }

    const double dj = work[static_cast<std::size_t>(j)];
    SPF_REQUIRE(dj != 0.0, "zero pivot in LDL^T factorization");
    f.d[static_cast<std::size_t>(j)] = dj;
    f.l_values[static_cast<std::size_t>(jbase)] = 1.0;
    work[static_cast<std::size_t>(j)] = 0.0;
    for (std::size_t t = 1; t < jrows.size(); ++t) {
      const index_t i = jrows[t];
      f.l_values[static_cast<std::size_t>(jbase) + t] =
          work[static_cast<std::size_t>(i)] / dj;
      work[static_cast<std::size_t>(i)] = 0.0;
    }

    if (jrows.size() > 1) {
      col_pos[static_cast<std::size_t>(j)] = 1;
      const index_t r = jrows[1];
      next_in_list[static_cast<std::size_t>(j)] = link[static_cast<std::size_t>(r)];
      link[static_cast<std::size_t>(r)] = j;
    }
  }
  return f;
}

std::vector<double> ldlt_solve(const LdltFactor& f, std::span<const double> b) {
  const SymbolicFactor& sf = *f.structure;
  const index_t n = sf.n();
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());
  // Forward: L z = b (unit diagonal).
  for (index_t j = 0; j < n; ++j) {
    const auto rows = sf.col_rows(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    const double xj = x[static_cast<std::size_t>(j)];
    for (std::size_t t = 1; t < rows.size(); ++t) {
      x[static_cast<std::size_t>(rows[t])] -=
          f.l_values[static_cast<std::size_t>(base) + t] * xj;
    }
  }
  // Diagonal: D w = z.
  for (index_t j = 0; j < n; ++j) {
    x[static_cast<std::size_t>(j)] /= f.d[static_cast<std::size_t>(j)];
  }
  // Backward: L^T v = w.
  for (index_t j = n - 1; j >= 0; --j) {
    const auto rows = sf.col_rows(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    double s = x[static_cast<std::size_t>(j)];
    for (std::size_t t = 1; t < rows.size(); ++t) {
      s -= f.l_values[static_cast<std::size_t>(base) + t] *
           x[static_cast<std::size_t>(rows[t])];
    }
    x[static_cast<std::size_t>(j)] = s;
  }
  return x;
}

}  // namespace spf
