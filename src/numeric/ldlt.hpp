// Sparse LDL^T factorization (square-root-free Cholesky).
//
// "Note, however, that the techniques presented here are applicable to
// other factoring methods as well" (paper, Section 2).  LDL^T shares
// struct(L) with Cholesky, so the same partition/schedule/metrics apply
// verbatim; this kernel plus its solve path demonstrates the claim.
#pragma once

#include <span>
#include <vector>

#include "matrix/csc.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Numeric LDL^T factor: unit lower-triangular L (diagonal elements of the
/// stored structure hold 1) and diagonal D.
struct LdltFactor {
  const SymbolicFactor* structure = nullptr;
  std::vector<double> l_values;  ///< indexed by element id; diagonals are 1
  std::vector<double> d;         ///< D(j,j)

  [[nodiscard]] index_t n() const { return structure->n(); }
};

/// Factor the (already permuted) symmetric matrix; requires nonzero D
/// pivots (SPD gives positive D).
LdltFactor ldlt_factorize(const CscMatrix& lower, const SymbolicFactor& sf);

/// Solve L D L^T x = b.
std::vector<double> ldlt_solve(const LdltFactor& f, std::span<const double> b);

}  // namespace spf
