#include "numeric/multifrontal.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace spf {

CholeskyFactor multifrontal_cholesky(const CscMatrix& lower, const Partition& partition) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");
  const auto& clusters = partition.clusters.clusters;
  const auto nc = static_cast<index_t>(clusters.size());

  CholeskyFactor f;
  f.structure = &sf;
  f.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);

  // Assembly tree: the parent of cluster c is the cluster containing the
  // elimination-tree parent of c's last column.  Ascending cluster index is
  // a topological order (a parent's first column exceeds the child's last).
  std::vector<index_t> parent_cluster(static_cast<std::size_t>(nc), -1);
  std::vector<std::vector<index_t>> children(static_cast<std::size_t>(nc));
  for (index_t c = 0; c < nc; ++c) {
    const index_t pcol = sf.parent()[static_cast<std::size_t>(clusters[static_cast<std::size_t>(c)].last())];
    if (pcol != -1) {
      const index_t pc = partition.clusters.cluster_of_col[static_cast<std::size_t>(pcol)];
      SPF_CHECK(pc > c, "assembly tree parent must come later");
      parent_cluster[static_cast<std::size_t>(c)] = pc;
      children[static_cast<std::size_t>(pc)].push_back(c);
    }
  }

  // Contribution blocks: cb[c] is the dense lower triangle (row-major
  // packed: entry (a, b), a >= b, at a*(a+1)/2 + b) over cb_rows[c].
  std::vector<std::vector<double>> cb(static_cast<std::size_t>(nc));
  std::vector<std::vector<index_t>> cb_rows(static_cast<std::size_t>(nc));

  std::vector<index_t> front_pos(static_cast<std::size_t>(sf.n()), -1);
  std::vector<index_t> rows;
  std::vector<double> front;

  for (index_t c = 0; c < nc; ++c) {
    const Cluster& cl = clusters[static_cast<std::size_t>(c)];
    const index_t w = cl.width;
    // Front row set (triangle columns then the shared subdiagonal rows).
    rows.clear();
    if (w == 1) {
      const auto cr = sf.col_rows(cl.first);
      rows.assign(cr.begin(), cr.end());
    } else {
      for (index_t r = cl.first; r <= cl.last(); ++r) rows.push_back(r);
      for (const auto& run : cl.rect_rows) {
        for (index_t r = run.lo; r <= run.hi; ++r) rows.push_back(r);
      }
    }
    const index_t nr = static_cast<index_t>(rows.size());
    for (index_t r = 0; r < nr; ++r) {
      front_pos[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])] = r;
    }
    front.assign(static_cast<std::size_t>(nr) * static_cast<std::size_t>(nr), 0.0);
    auto fe = [&](index_t r, index_t col) -> double& {
      return front[static_cast<std::size_t>(col) * static_cast<std::size_t>(nr) +
                   static_cast<std::size_t>(r)];
    };

    // Assemble original entries of this cluster's columns.
    for (index_t q = 0; q < w; ++q) {
      const index_t col = cl.first + q;
      const auto arows = lower.col_rows(col);
      const auto avals = lower.col_values(col);
      for (std::size_t t = 0; t < arows.size(); ++t) {
        fe(front_pos[static_cast<std::size_t>(arows[t])], q) += avals[t];
      }
    }
    // Extend-add the children's contribution blocks.
    for (index_t child : children[static_cast<std::size_t>(c)]) {
      const auto& crows = cb_rows[static_cast<std::size_t>(child)];
      const auto& cvals = cb[static_cast<std::size_t>(child)];
      for (std::size_t a = 0; a < crows.size(); ++a) {
        const index_t ra = front_pos[static_cast<std::size_t>(crows[a])];
        SPF_CHECK(ra >= 0, "child contribution row missing from parent front");
        for (std::size_t b = 0; b <= a; ++b) {
          const index_t rb = front_pos[static_cast<std::size_t>(crows[b])];
          // The contribution is symmetric; store into the lower half of
          // the front (larger position is the row).
          const index_t hi = std::max(ra, rb), lo = std::min(ra, rb);
          fe(hi, lo) += cvals[a * (a + 1) / 2 + b];
        }
      }
      cb[static_cast<std::size_t>(child)].clear();
      cb[static_cast<std::size_t>(child)].shrink_to_fit();
    }

    // Partial dense factorization of the first w columns.
    for (index_t q = 0; q < w; ++q) {
      double d = fe(q, q);
      SPF_REQUIRE(d > 0.0, "matrix is not positive definite (non-positive pivot)");
      const double ljj = std::sqrt(d);
      fe(q, q) = ljj;
      for (index_t r = q + 1; r < nr; ++r) fe(r, q) /= ljj;
      for (index_t q2 = q + 1; q2 < nr; ++q2) {
        const double l = fe(q2, q);
        if (l == 0.0) continue;
        for (index_t r = q2; r < nr; ++r) fe(r, q2) -= fe(r, q) * l;
      }
    }

    // Store the factored columns.
    for (index_t q = 0; q < w; ++q) {
      const index_t col = cl.first + q;
      const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
      const auto crows = sf.col_rows(col);
      SPF_CHECK(static_cast<index_t>(crows.size()) == nr - q,
                "cluster columns must share the front structure");
      for (index_t r = q; r < nr; ++r) {
        f.values[static_cast<std::size_t>(base) + (r - q)] = fe(r, q);
      }
    }

    // The trailing Schur complement is this node's contribution block.
    const index_t m = nr - w;
    if (m > 0) {
      auto& out_rows = cb_rows[static_cast<std::size_t>(c)];
      out_rows.assign(rows.begin() + w, rows.end());
      auto& out = cb[static_cast<std::size_t>(c)];
      out.resize(static_cast<std::size_t>(m) * (static_cast<std::size_t>(m) + 1) / 2);
      for (index_t a = 0; a < m; ++a) {
        for (index_t b = 0; b <= a; ++b) {
          out[static_cast<std::size_t>(a) * (static_cast<std::size_t>(a) + 1) / 2 +
              static_cast<std::size_t>(b)] = fe(w + a, w + b);
        }
      }
      SPF_CHECK(parent_cluster[static_cast<std::size_t>(c)] != -1,
                "non-empty contribution block at an assembly-tree root");
    }
    for (index_t r : rows) front_pos[static_cast<std::size_t>(r)] = -1;
  }
  return f;
}

}  // namespace spf
