// Multifrontal Cholesky factorization (Duff & Reid organization).
//
// The paper notes its methodology "can very easily be adapted to other
// factoring methods used in sparse matrix computations"; the multifrontal
// method is the canonical other organization.  Each cluster (supernode)
// becomes a node of the assembly tree: its *frontal matrix* gathers the
// original entries of its columns plus the children's contribution blocks
// (extend-add), the first `width` columns are factored densely, and the
// Schur complement of the remaining rows is passed up as this node's
// contribution block.
//
// Produces exactly the same factor as the left-looking and supernodal
// kernels (tested), exercising the cluster structure a third way.
#pragma once

#include "matrix/csc.hpp"
#include "numeric/cholesky.hpp"
#include "partition/partitioner.hpp"

namespace spf {

/// Factor `lower` multifrontally over `partition`'s cluster (assembly)
/// tree.  Throws spf::invalid_input on non-SPD input.
CholeskyFactor multifrontal_cholesky(const CscMatrix& lower, const Partition& partition);

}  // namespace spf
