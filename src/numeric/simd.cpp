#include "numeric/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "numeric/dense.hpp"
#include "support/check.hpp"

namespace spf {

namespace {

const DenseKernelTable& scalar_kernel_table() {
  static const DenseKernelTable table{&dense_syrk_lt, &dense_gemm_nt, &dense_trsm_rlt};
  return table;
}

const DenseKernelTable* tier_table(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return &scalar_kernel_table();
    case SimdTier::kNeon:
      return detail::neon_kernel_table();
    case SimdTier::kAvx2:
      return detail::avx2_kernel_table();
    case SimdTier::kAvx512:
      return detail::avx512_kernel_table();
  }
  return nullptr;
}

bool cpu_runs(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kNeon:
      // NEON is baseline on aarch64; the table is null everywhere else.
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case SimdTier::kAvx2:
    case SimdTier::kAvx512:
      return false;
#endif
  }
  return false;
}

SimdTier initial_tier() {
  SimdTier tier = best_simd_tier();
  if (const char* env = std::getenv("SPF_FORCE_ISA")) {
    const std::string_view req(env);
    if (!req.empty() && req != "auto") {
      const std::optional<SimdTier> parsed = parse_simd_tier(req);
      if (parsed.has_value() && simd_tier_available(*parsed)) {
        tier = *parsed;
      } else {
        std::fprintf(stderr,
                     "spf: SPF_FORCE_ISA=%s is not available on this host; "
                     "using %s\n",
                     env, simd_tier_name(tier));
      }
    }
  }
  return tier;
}

std::atomic<int>& active_slot() {
  static std::atomic<int> slot{static_cast<int>(initial_tier())};
  return slot;
}

}  // namespace

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kNeon:
      return "neon";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) {
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "neon") return SimdTier::kNeon;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "avx512") return SimdTier::kAvx512;
  return std::nullopt;
}

bool simd_tier_available(SimdTier tier) {
  return tier_table(tier) != nullptr && cpu_runs(tier);
}

SimdTier best_simd_tier() {
  for (SimdTier tier :
       {SimdTier::kAvx512, SimdTier::kAvx2, SimdTier::kNeon, SimdTier::kScalar}) {
    if (simd_tier_available(tier)) return tier;
  }
  return SimdTier::kScalar;
}

SimdTier active_simd_tier() {
  return static_cast<SimdTier>(active_slot().load(std::memory_order_relaxed));
}

bool set_active_simd_tier(SimdTier tier) {
  if (!simd_tier_available(tier)) return false;
  active_slot().store(static_cast<int>(tier), std::memory_order_relaxed);
  return true;
}

const DenseKernelTable& dense_kernel_table(SimdTier tier) {
  const DenseKernelTable* table = tier_table(tier);
  SPF_REQUIRE(table != nullptr && cpu_runs(tier), "SIMD tier unavailable on this host");
  return *table;
}

const DenseKernelTable& active_dense_kernels() {
  return dense_kernel_table(active_simd_tier());
}

}  // namespace spf
