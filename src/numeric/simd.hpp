// Runtime SIMD dispatch for the dense panel microkernels.
//
// The blocked executor path (exec/kernel_plan) routes dense_syrk_lt /
// dense_gemm_nt / dense_trsm_rlt through a per-tier function table
// chosen once at startup from a CPUID/HWCAP probe: AVX-512F, AVX2+FMA,
// NEON, or the always-available register-blocked scalar tier.  Each
// SIMD tier lives in its own translation unit compiled with the right
// -m flags (src/CMakeLists.txt) so the rest of the library never emits
// an instruction the host may lack; a tier that was not compiled in, or
// that the CPU cannot run, reports a null table and is skipped.
//
// Determinism contract (docs/simd.md): every tier accumulates each
// output element's k-terms in ascending k, so any single tier is
// bitwise run-to-run deterministic at any thread count.  Tiers differ
// from one another only in FMA rounding, so cross-tier results agree to
// tolerance — the elementwise kernel stays the bitwise reference.
//
// Overrides: SPF_FORCE_ISA={auto,avx512,avx2,neon,scalar} at process
// start, or set_active_simd_tier() programmatically (used by the --isa
// flag of spf_analyze and bench/kernel_throughput).  Forcing a tier the
// host cannot run falls back to the best available tier with a warning.
#pragma once

#include <optional>
#include <string_view>

#include "matrix/types.hpp"

namespace spf {

/// Instruction-set tiers, worst to best.  kScalar is always available.
enum class SimdTier { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// Dispatch table for the three panel microkernels.  Signatures match
/// the scalar reference routines in numeric/dense.hpp exactly.
struct DenseKernelTable {
  void (*syrk_lt)(double* c, index_t n, index_t ldc, const double* a, index_t lda,
                  index_t k);
  void (*gemm_nt)(double* c, index_t m, index_t n, index_t ldc, const double* a,
                  index_t lda, const double* b, index_t ldb, index_t k);
  void (*trsm_rlt)(double* b, index_t m, index_t n, index_t ldb, const double* t,
                   index_t ldt);
};

/// Stable lowercase name: "scalar", "neon", "avx2", "avx512".
const char* simd_tier_name(SimdTier tier);

/// Parse a tier name ("scalar", "neon", "avx2", "avx512").  Returns
/// nullopt for anything else — including "auto", which callers map to
/// best_simd_tier() themselves.
std::optional<SimdTier> parse_simd_tier(std::string_view name);

/// True when the tier was compiled into this binary AND the running CPU
/// supports it.  kScalar is always true.
bool simd_tier_available(SimdTier tier);

/// Best tier this process can run, from the startup CPU probe.
SimdTier best_simd_tier();

/// The tier currently used by the blocked executor path.  Initialized
/// on first use to best_simd_tier(), unless SPF_FORCE_ISA names an
/// available tier.
SimdTier active_simd_tier();

/// Force the active tier.  Returns false (tier unchanged) when the
/// requested tier is unavailable on this host/build.
bool set_active_simd_tier(SimdTier tier);

/// Kernel table for an available tier (aborts if unavailable).
const DenseKernelTable& dense_kernel_table(SimdTier tier);

/// Kernel table for active_simd_tier().
const DenseKernelTable& active_dense_kernels();

namespace detail {
// Per-ISA tables, defined in numeric/dense_simd_*.cpp.  Null when the
// tier was not compiled for this target.
const DenseKernelTable* avx2_kernel_table();
const DenseKernelTable* avx512_kernel_table();
const DenseKernelTable* neon_kernel_table();
}  // namespace detail

}  // namespace spf
