#include "numeric/solver.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace spf {

DirectSolver::DirectSolver(const CscMatrix& lower, OrderingKind ordering)
    : perm_(compute_ordering(lower, ordering)),
      permuted_(permute_lower(lower, perm_.iperm())),
      symbolic_(symbolic_cholesky(permuted_)),
      factor_(numeric_cholesky(permuted_, symbolic_)),
      nnz_a_(lower.nnz()) {}

std::vector<double> DirectSolver::solve(std::span<const double> b) const {
  SPF_REQUIRE(static_cast<index_t>(b.size()) == perm_.size(), "rhs size mismatch");
  const std::vector<double> pb = apply_perm(perm_, b);
  const std::vector<double> u = lower_solve(factor_, pb);
  const std::vector<double> v = lower_transpose_solve(factor_, u);
  return apply_inverse_perm(perm_, v);
}

std::vector<double> DirectSolver::solve_refined(std::span<const double> b,
                                                int max_iterations) const {
  SPF_REQUIRE(max_iterations >= 0, "iteration count must be non-negative");
  std::vector<double> x = solve(b);
  double best = residual_norm(x, b);
  for (int it = 0; it < max_iterations; ++it) {
    // r = b - A x (original ordering); correction solve; accept if better.
    const std::vector<double> px = apply_perm(perm_, x);
    const std::vector<double> ax = symmetric_matvec(permuted_, px);
    std::vector<double> r = apply_perm(perm_, b);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] -= ax[i];
    const std::vector<double> du = lower_solve(factor_, r);
    const std::vector<double> dv = lower_transpose_solve(factor_, du);
    const std::vector<double> d = apply_inverse_perm(perm_, dv);
    std::vector<double> candidate = x;
    for (std::size_t i = 0; i < candidate.size(); ++i) candidate[i] += d[i];
    const double norm = residual_norm(candidate, b);
    if (norm >= best) break;
    best = norm;
    x = std::move(candidate);
  }
  return x;
}

double DirectSolver::residual_norm(std::span<const double> x,
                                   std::span<const double> b) const {
  SPF_REQUIRE(x.size() == b.size(), "vector size mismatch");
  const std::vector<double> px = apply_perm(perm_, x);
  const std::vector<double> ax = symmetric_matvec(permuted_, px);
  const std::vector<double> pb = apply_perm(perm_, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    worst = std::max(worst, std::abs(ax[i] - pb[i]));
  }
  return worst;
}

double DirectSolver::fill_ratio() const {
  return nnz_a_ == 0 ? 0.0
                     : static_cast<double>(symbolic_.nnz()) / static_cast<double>(nnz_a_);
}

}  // namespace spf
