// End-to-end direct solver: the paper's four steps (ordering, symbolic
// factorization, numeric factorization, triangular solutions) behind one
// API.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "matrix/csc.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/trisolve.hpp"
#include "order/ordering.hpp"
#include "order/permutation.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// Direct solver for symmetric positive definite systems A x = b, with A
/// supplied as its lower triangle.
class DirectSolver {
 public:
  /// Steps 1-3: order, symbolically factor, numerically factor.
  DirectSolver(const CscMatrix& lower, OrderingKind ordering);

  /// Step 4: solve for one right-hand side (in the original ordering).
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Solve with fixed-precision iterative refinement: after the direct
  /// solve, up to `max_iterations` residual-correction passes are applied
  /// (stopping early once the residual norm stops improving).  Recovers a
  /// digit or two on ill-conditioned systems at the cost of one matvec and
  /// one pair of triangular solves per pass.
  [[nodiscard]] std::vector<double> solve_refined(std::span<const double> b,
                                                  int max_iterations = 2) const;

  /// Infinity-norm residual ||A x - b|| in the original ordering.
  [[nodiscard]] double residual_norm(std::span<const double> x,
                                     std::span<const double> b) const;

  [[nodiscard]] const Permutation& permutation() const { return perm_; }
  [[nodiscard]] const SymbolicFactor& symbolic() const { return symbolic_; }
  [[nodiscard]] const CholeskyFactor& factor() const { return factor_; }
  [[nodiscard]] const CscMatrix& permuted_matrix() const { return permuted_; }

  /// Fill ratio nnz(L) / nnz(A).
  [[nodiscard]] double fill_ratio() const;

 private:
  Permutation perm_;
  CscMatrix permuted_;
  SymbolicFactor symbolic_;
  CholeskyFactor factor_;
  count_t nnz_a_ = 0;
};

}  // namespace spf
