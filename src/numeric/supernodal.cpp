#include "numeric/supernodal.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace spf {

CholeskyFactor supernodal_cholesky(const CscMatrix& lower, const Partition& partition) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");

  CholeskyFactor f;
  f.structure = &sf;
  f.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);

  // Right-looking accumulation: vals starts as the A values scattered into
  // the factor structure; every processed cluster subtracts its outer
  // products from the ancestors' entries in place.
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto arows = lower.col_rows(j);
    const auto avals = lower.col_values(j);
    for (std::size_t t = 0; t < arows.size(); ++t) {
      f.values[static_cast<std::size_t>(sf.element_id(arows[t], j))] = avals[t];
    }
  }

  std::vector<index_t> rows;        // global row index per panel row
  std::vector<double> panel;        // dense nr x w, column-major
  for (const Cluster& cl : partition.clusters.clusters) {
    const index_t w = cl.width;
    const index_t f0 = cl.first;
    // Panel row set: the triangle rows then the shared subdiagonal rows
    // (for single-column clusters: the column's sparse structure).
    rows.clear();
    if (w == 1) {
      const auto cr = sf.col_rows(f0);
      rows.assign(cr.begin(), cr.end());
    } else {
      for (index_t r = f0; r <= cl.last(); ++r) rows.push_back(r);
      for (const auto& run : cl.rect_rows) {
        for (index_t r = run.lo; r <= run.hi; ++r) rows.push_back(r);
      }
    }
    const index_t nr = static_cast<index_t>(rows.size());

    // Load the panel from the accumulated values.  Column c of the panel
    // is factor column f0 + c; its entries start at panel row c (the
    // diagonal) — entries above the within-cluster diagonal are zero.
    panel.assign(static_cast<std::size_t>(nr) * static_cast<std::size_t>(w), 0.0);
    auto pe = [&](index_t r, index_t c) -> double& {
      return panel[static_cast<std::size_t>(c) * static_cast<std::size_t>(nr) +
                   static_cast<std::size_t>(r)];
    };
    for (index_t c = 0; c < w; ++c) {
      const index_t col = f0 + c;
      const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
      const auto crows = sf.col_rows(col);
      // Column col's structure is exactly rows[c..nr): dense nesting within
      // the cluster.
      SPF_CHECK(static_cast<index_t>(crows.size()) == nr - c,
                "cluster columns must share the panel structure");
      for (index_t r = c; r < nr; ++r) {
        pe(r, c) = f.values[static_cast<std::size_t>(base) + (r - c)];
      }
    }

    // Dense Cholesky of the w x w triangle, updating the rows below as we
    // go (classic panel factorization).
    for (index_t c = 0; c < w; ++c) {
      double d = pe(c, c);
      SPF_REQUIRE(d > 0.0, "matrix is not positive definite (non-positive pivot)");
      const double ljj = std::sqrt(d);
      pe(c, c) = ljj;
      for (index_t r = c + 1; r < nr; ++r) pe(r, c) /= ljj;
      for (index_t c2 = c + 1; c2 < w; ++c2) {
        const double l = pe(c2, c);
        if (l == 0.0) continue;
        for (index_t r = c2; r < nr; ++r) pe(r, c2) -= pe(r, c) * l;
      }
    }

    // Store the factored panel back.
    for (index_t c = 0; c < w; ++c) {
      const index_t col = f0 + c;
      const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
      for (index_t r = c; r < nr; ++r) {
        f.values[static_cast<std::size_t>(base) + (r - c)] = pe(r, c);
      }
    }

    // Right-looking update of the ancestors: for every pair of
    // below-triangle panel rows (r1 >= r2 >= w), subtract the outer
    // product sum over the cluster's columns from element
    // (rows[r1], rows[r2]).
    for (index_t r2 = w; r2 < nr; ++r2) {
      const index_t j = rows[static_cast<std::size_t>(r2)];
      const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
      const auto jrows = sf.col_rows(j);
      std::size_t pos = 0;
      for (index_t r1 = r2; r1 < nr; ++r1) {
        const index_t i = rows[static_cast<std::size_t>(r1)];
        double s = 0.0;
        for (index_t c = 0; c < w; ++c) s += pe(r1, c) * pe(r2, c);
        while (pos < jrows.size() && jrows[pos] < i) ++pos;
        SPF_CHECK(pos < jrows.size() && jrows[pos] == i,
                  "fill closure violated in supernodal update");
        f.values[static_cast<std::size_t>(jbase) + static_cast<count_t>(pos)] -= s;
      }
    }
  }
  return f;
}

}  // namespace spf
