#include "numeric/supernodal.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/dense.hpp"
#include "support/check.hpp"

namespace spf {

CholeskyFactor supernodal_cholesky(const CscMatrix& lower, const Partition& partition) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");

  CholeskyFactor f;
  f.structure = &sf;
  f.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);

  // Right-looking accumulation: vals starts as the A values scattered into
  // the factor structure; every processed cluster subtracts its outer
  // products from the ancestors' entries in place.
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto arows = lower.col_rows(j);
    const auto avals = lower.col_values(j);
    for (std::size_t t = 0; t < arows.size(); ++t) {
      f.values[static_cast<std::size_t>(sf.element_id(arows[t], j))] = avals[t];
    }
  }

  std::vector<index_t> rows;        // global row index per panel row
  std::vector<double> panel;        // dense nr x w, column-major
  std::vector<double> schur;        // dense (nr-w) x (nr-w) lower, column-major
  for (const Cluster& cl : partition.clusters.clusters) {
    const index_t w = cl.width;
    const index_t f0 = cl.first;
    // Panel row set: the triangle rows then the shared subdiagonal rows
    // (for single-column clusters: the column's sparse structure).
    rows.clear();
    if (w == 1) {
      const auto cr = sf.col_rows(f0);
      rows.assign(cr.begin(), cr.end());
    } else {
      for (index_t r = f0; r <= cl.last(); ++r) rows.push_back(r);
      for (const auto& run : cl.rect_rows) {
        for (index_t r = run.lo; r <= run.hi; ++r) rows.push_back(r);
      }
    }
    const index_t nr = static_cast<index_t>(rows.size());

    // Load the panel from the accumulated values.  Column c of the panel
    // is factor column f0 + c; its entries start at panel row c (the
    // diagonal) — entries above the within-cluster diagonal are zero.
    panel.assign(static_cast<std::size_t>(nr) * static_cast<std::size_t>(w), 0.0);
    auto pe = [&](index_t r, index_t c) -> double& {
      return panel[static_cast<std::size_t>(c) * static_cast<std::size_t>(nr) +
                   static_cast<std::size_t>(r)];
    };
    for (index_t c = 0; c < w; ++c) {
      const index_t col = f0 + c;
      const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
      const auto crows = sf.col_rows(col);
      // Column col's structure is exactly rows[c..nr): dense nesting within
      // the cluster.
      SPF_CHECK(static_cast<index_t>(crows.size()) == nr - c,
                "cluster columns must share the panel structure");
      for (index_t r = c; r < nr; ++r) {
        pe(r, c) = f.values[static_cast<std::size_t>(base) + (r - c)];
      }
    }

    // Dense Cholesky of the w x w triangle, updating the rows below as we
    // go (classic panel factorization; numeric/dense microkernel).
    SPF_REQUIRE(dense_panel_cholesky(panel, nr, w),
                "matrix is not positive definite (non-positive pivot)");

    // Store the factored panel back.
    for (index_t c = 0; c < w; ++c) {
      const index_t col = f0 + c;
      const count_t base = sf.col_ptr()[static_cast<std::size_t>(col)];
      for (index_t r = c; r < nr; ++r) {
        f.values[static_cast<std::size_t>(base) + (r - c)] = pe(r, c);
      }
    }

    // Right-looking update of the ancestors: the lower triangle of
    // B·Bᵀ for the below-triangle panel rows B, formed by the syrk
    // microkernel into a zeroed Schur scratch (so it holds the negated
    // sums), then scattered onto (rows[r1], rows[r2]).  Bitwise identical
    // to accumulating each sum in place: per element the k-order is the
    // same and IEEE rounding is sign-symmetric.
    const index_t n2 = nr - w;
    if (n2 > 0) {
      const std::size_t used = static_cast<std::size_t>(n2) * static_cast<std::size_t>(n2);
      if (schur.size() < used) schur.resize(used);
      std::fill(schur.begin(), schur.begin() + static_cast<std::ptrdiff_t>(used), 0.0);
      dense_syrk_lt(schur.data(), n2, n2, &pe(w, 0), nr, w);
      for (index_t r2 = w; r2 < nr; ++r2) {
        const index_t j = rows[static_cast<std::size_t>(r2)];
        const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
        const auto jrows = sf.col_rows(j);
        std::size_t pos = 0;
        for (index_t r1 = r2; r1 < nr; ++r1) {
          const index_t i = rows[static_cast<std::size_t>(r1)];
          while (pos < jrows.size() && jrows[pos] < i) ++pos;
          SPF_CHECK(pos < jrows.size() && jrows[pos] == i,
                    "fill closure violated in supernodal update");
          f.values[static_cast<std::size_t>(jbase) + static_cast<count_t>(pos)] +=
              schur[static_cast<std::size_t>(r2 - w) * static_cast<std::size_t>(n2) +
                    static_cast<std::size_t>(r1 - w)];
        }
      }
    }
  }
  return f;
}

}  // namespace spf
