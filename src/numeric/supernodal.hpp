// Supernodal (cluster-panel) numeric Cholesky.
//
// The paper motivates blocking with "with blocking, it is possible to
// achieve a high ratio of computation to communication per block" — dense
// blocks admit dense kernels.  This factorization realizes that: it
// processes the partitioner's clusters left to right, holding each
// cluster's columns as a dense panel (triangle + its rectangle rows),
// factoring the diagonal triangle with a dense kernel, solving the panel
// against it, and scattering right-looking outer-product updates into the
// ancestors.  It produces the same factor as the column-wise left-looking
// kernel (tested to agree to roundoff).
#pragma once

#include "matrix/csc.hpp"
#include "numeric/cholesky.hpp"
#include "partition/partitioner.hpp"

namespace spf {

/// Factor `lower` using the cluster structure of `partition` (which must
/// have been computed from this matrix's symbolic factor).
CholeskyFactor supernodal_cholesky(const CscMatrix& lower, const Partition& partition);

}  // namespace spf
