#include "numeric/trisolve.hpp"

#include "support/check.hpp"

namespace spf {

std::vector<double> lower_solve(const CholeskyFactor& f, std::span<const double> b) {
  const SymbolicFactor& sf = *f.structure;
  const index_t n = sf.n();
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> y(b.begin(), b.end());
  for (index_t j = 0; j < n; ++j) {
    const auto rows = sf.col_rows(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    const double yj = y[static_cast<std::size_t>(j)] /
                      f.values[static_cast<std::size_t>(base)];
    y[static_cast<std::size_t>(j)] = yj;
    for (std::size_t t = 1; t < rows.size(); ++t) {
      y[static_cast<std::size_t>(rows[t])] -=
          f.values[static_cast<std::size_t>(base) + t] * yj;
    }
  }
  return y;
}

std::vector<double> lower_transpose_solve(const CholeskyFactor& f,
                                          std::span<const double> yin) {
  const SymbolicFactor& sf = *f.structure;
  const index_t n = sf.n();
  SPF_REQUIRE(yin.size() == static_cast<std::size_t>(n), "rhs size mismatch");
  std::vector<double> x(yin.begin(), yin.end());
  for (index_t j = n - 1; j >= 0; --j) {
    const auto rows = sf.col_rows(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    double s = x[static_cast<std::size_t>(j)];
    for (std::size_t t = 1; t < rows.size(); ++t) {
      s -= f.values[static_cast<std::size_t>(base) + t] *
           x[static_cast<std::size_t>(rows[t])];
    }
    x[static_cast<std::size_t>(j)] = s / f.values[static_cast<std::size_t>(base)];
  }
  return x;
}

}  // namespace spf
