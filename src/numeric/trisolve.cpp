#include "numeric/trisolve.hpp"

#include "support/check.hpp"

namespace spf {

void lower_solve_batch(const SymbolicFactor& sf, std::span<const double> lvals,
                       std::span<double> b, index_t nrhs) {
  const index_t n = sf.n();
  SPF_REQUIRE(nrhs >= 1, "need at least one right-hand side");
  SPF_REQUIRE(lvals.size() == static_cast<std::size_t>(sf.nnz()), "factor value mismatch");
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(nrhs),
              "rhs size mismatch");
  for (index_t j = 0; j < n; ++j) {
    const auto rows = sf.col_rows(j);
    const auto base = static_cast<std::size_t>(sf.col_ptr()[static_cast<std::size_t>(j)]);
    const double diag = lvals[base];
    for (index_t r = 0; r < nrhs; ++r) {
      double* const y = b.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(n);
      const double yj = y[static_cast<std::size_t>(j)] / diag;
      y[static_cast<std::size_t>(j)] = yj;
      for (std::size_t t = 1; t < rows.size(); ++t) {
        y[static_cast<std::size_t>(rows[t])] -= lvals[base + t] * yj;
      }
    }
  }
}

void lower_transpose_solve_batch(const SymbolicFactor& sf, std::span<const double> lvals,
                                 std::span<double> y, index_t nrhs) {
  const index_t n = sf.n();
  SPF_REQUIRE(nrhs >= 1, "need at least one right-hand side");
  SPF_REQUIRE(lvals.size() == static_cast<std::size_t>(sf.nnz()), "factor value mismatch");
  SPF_REQUIRE(y.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(nrhs),
              "rhs size mismatch");
  for (index_t j = n - 1; j >= 0; --j) {
    const auto rows = sf.col_rows(j);
    const auto base = static_cast<std::size_t>(sf.col_ptr()[static_cast<std::size_t>(j)]);
    const double diag = lvals[base];
    for (index_t r = 0; r < nrhs; ++r) {
      double* const x = y.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(n);
      double s = x[static_cast<std::size_t>(j)];
      for (std::size_t t = 1; t < rows.size(); ++t) {
        s -= lvals[base + t] * x[static_cast<std::size_t>(rows[t])];
      }
      x[static_cast<std::size_t>(j)] = s / diag;
    }
  }
}

std::vector<double> lower_solve(const CholeskyFactor& f, std::span<const double> b) {
  const SymbolicFactor& sf = *f.structure;
  SPF_REQUIRE(b.size() == static_cast<std::size_t>(sf.n()), "rhs size mismatch");
  std::vector<double> y(b.begin(), b.end());
  lower_solve_batch(sf, f.values, y, 1);
  return y;
}

std::vector<double> lower_transpose_solve(const CholeskyFactor& f,
                                          std::span<const double> yin) {
  const SymbolicFactor& sf = *f.structure;
  SPF_REQUIRE(yin.size() == static_cast<std::size_t>(sf.n()), "rhs size mismatch");
  std::vector<double> x(yin.begin(), yin.end());
  lower_transpose_solve_batch(sf, f.values, x, 1);
  return x;
}

}  // namespace spf
