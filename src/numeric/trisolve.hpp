// Sparse triangular solves — step 4 of the paper's direct solution:
// L u = P b, then L^T v = u.
//
// The batched variants solve every right-hand side of a column-major
// block in one structure walk (the factor's column pattern is loaded once
// per column, not once per column per RHS) — the serving path for
// engine/solver_engine's multi-RHS requests.  For nrhs == 1 they perform
// the exact operation sequence of the single-RHS functions, which
// delegate to them.
#pragma once

#include <span>
#include <vector>

#include "numeric/cholesky.hpp"

namespace spf {

/// Forward solve L y = b.
std::vector<double> lower_solve(const CholeskyFactor& f, std::span<const double> b);

/// Backward solve L^T x = y.
std::vector<double> lower_transpose_solve(const CholeskyFactor& f, std::span<const double> y);

/// In-place batched forward solve: `b` holds nrhs column-major vectors of
/// length sf.n(); on return each holds its y with L y = b.  `lvals` are
/// the factor values aligned with sf's element ids.
void lower_solve_batch(const SymbolicFactor& sf, std::span<const double> lvals,
                       std::span<double> b, index_t nrhs);

/// In-place batched backward solve: each column of `y` becomes x with
/// L^T x = y.
void lower_transpose_solve_batch(const SymbolicFactor& sf, std::span<const double> lvals,
                                 std::span<double> y, index_t nrhs);

}  // namespace spf
