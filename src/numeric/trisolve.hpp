// Sparse triangular solves — step 4 of the paper's direct solution:
// L u = P b, then L^T v = u.
#pragma once

#include <span>
#include <vector>

#include "numeric/cholesky.hpp"

namespace spf {

/// Forward solve L y = b.
std::vector<double> lower_solve(const CholeskyFactor& f, std::span<const double> b);

/// Backward solve L^T x = y.
std::vector<double> lower_transpose_solve(const CholeskyFactor& f, std::span<const double> y);

}  // namespace spf
