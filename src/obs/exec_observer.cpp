#include "obs/exec_observer.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf::obs {

namespace {

double lambda_of(const std::vector<count_t>& work) {
  count_t total = 0;
  count_t mx = 0;
  for (count_t w : work) {
    total += w;
    mx = std::max(mx, w);
  }
  if (total == 0 || work.empty()) return 0.0;
  const auto n = static_cast<double>(work.size());
  return static_cast<double>(mx) * n / static_cast<double>(total) - 1.0;
}

std::vector<count_t> unatomic(const std::vector<std::atomic<count_t>>& v) {
  std::vector<count_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i].load(std::memory_order_relaxed);
  return out;
}

}  // namespace

count_t ExecObservation::total_work() const {
  count_t t = 0;
  for (count_t w : proc_work) t += w;
  return t;
}

count_t ExecObservation::total_traffic() const {
  count_t t = 0;
  for (count_t w : proc_traffic) t += w;
  return t;
}

double ExecObservation::measured_lambda() const { return lambda_of(proc_work); }

double ExecObservation::worker_lambda() const { return lambda_of(worker_work); }

void ExecObserver::begin_run(const Partition& partition, const Assignment& assignment,
                             index_t nworkers, const BlockDeps* deps) {
  SPF_REQUIRE(nworkers >= 1, "observer needs at least one worker");
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  nprocs_ = assignment.nprocs;
  nworkers_ = nworkers;
  nnz_ = partition.factor.nnz();

  deps_ = deps;
  completed_.store(0, std::memory_order_relaxed);
  if (deps != nullptr) {
    SPF_REQUIRE(deps->preds.size() == partition.blocks.size(),
                "deps/partition mismatch");
    completion_.assign(partition.blocks.size(), 0);
    blk_work_rec_.assign(partition.blocks.size(), 0);
    proc_of_block_ = assignment.proc_of_block;
  } else {
    completion_.clear();
    blk_work_rec_.clear();
    proc_of_block_.clear();
  }

  const auto np = static_cast<std::size_t>(nprocs_);
  proc_work_ = std::vector<std::atomic<count_t>>(np);
  proc_blocks_ = std::vector<std::atomic<count_t>>(np);
  worker_work_.assign(static_cast<std::size_t>(nworkers_), 0);
  worker_blocks_.assign(static_cast<std::size_t>(nworkers_), 0);
  tracer_ = cfg_.trace ? std::make_unique<Tracer>(nworkers_, cfg_.trace_capacity)
                       : nullptr;

  if (!cfg_.traffic) {
    proc_traffic_.clear();
    volume_.clear();
    elem_owner_.clear();
    seen_.reset();
    return;
  }
  proc_traffic_ = std::vector<std::atomic<count_t>>(np);
  volume_ = std::vector<std::atomic<count_t>>(np * np);
  // Element -> owning processor: walk each column's sorted rows against
  // its sorted block segments (the ElementMap invariant).
  const SymbolicFactor& sf = partition.factor;
  elem_owner_.assign(static_cast<std::size_t>(nnz_), 0);
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto rows = sf.col_rows(j);
    const auto segs = partition.emap.column_segments(j);
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(j)];
    std::size_t si = 0;
    for (std::size_t t = 0; t < rows.size(); ++t) {
      while (si < segs.size() && segs[si].rows.hi < rows[t]) ++si;
      SPF_CHECK(si < segs.size() && segs[si].rows.contains(rows[t]),
                "factor element not covered by the partition's element map");
      elem_owner_[static_cast<std::size_t>(base) + t] = assignment.proc(segs[si].block);
    }
  }
  // One fetched-flag per (processor, element); value-initialized to 0.
  seen_ = std::make_unique<std::atomic<std::uint8_t>[]>(
      np * static_cast<std::size_t>(nnz_));
}

ExecObservation ExecObserver::observation() const {
  ExecObservation o;
  o.nprocs = nprocs_;
  o.nworkers = nworkers_;
  o.proc_work = unatomic(proc_work_);
  o.proc_blocks = unatomic(proc_blocks_);
  o.proc_traffic = unatomic(proc_traffic_);
  o.volume = unatomic(volume_);
  o.worker_work = worker_work_;
  o.worker_blocks = worker_blocks_;

  // Replay the recorded completion order against the DAG: every block
  // starts no earlier than its processor's previous block and its last
  // predecessor, in the paper's work units.  The order is topological
  // (successors are released only after the completion hook), so finish
  // times of all predecessors are final when a block is replayed.
  const auto done = static_cast<std::size_t>(completed_.load(std::memory_order_relaxed));
  if (deps_ != nullptr && done == completion_.size() && !completion_.empty()) {
    std::vector<double> finish(completion_.size(), 0.0);
    std::vector<double> proc_free(static_cast<std::size_t>(nprocs_), 0.0);
    for (std::size_t i = 0; i < done; ++i) {
      const auto b = static_cast<std::size_t>(completion_[i]);
      double start = proc_free[static_cast<std::size_t>(proc_of_block_[b])];
      for (const index_t pred : deps_->preds[b]) {
        start = std::max(start, finish[static_cast<std::size_t>(pred)]);
      }
      finish[b] = start + static_cast<double>(blk_work_rec_[b]);
      proc_free[static_cast<std::size_t>(proc_of_block_[b])] = finish[b];
      o.schedule_makespan = std::max(o.schedule_makespan, finish[b]);
    }
  }
  return o;
}

}  // namespace spf::obs
