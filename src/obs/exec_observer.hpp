// Live load / traffic accounting for the parallel executor.
//
// The paper predicts load imbalance (lambda = N*Wmax/Wtot - 1) and data
// traffic (distinct non-local element fetches per processor) from the
// static schedule alone; an ExecObserver measures both during a real
// execute_parallel run so prediction and reality can sit side by side.
// Per-processor work is accumulated in the paper's 2/1 cost units as
// blocks complete; traffic is counted read-by-read inside the elementwise
// kernel against the same owner-computes, fetch-once semantics as
// metrics/traffic.hpp — on a deterministic run both measurements equal
// the analytic model exactly (asserted in tests/test_obs.cpp).
//
// Cost discipline: everything is preallocated in begin_run(); the
// per-block hook is a handful of atomic adds plus an optional ring-buffer
// span, and the per-read hook (traffic mode only) is one flag exchange.
// A null observer costs the executor one predicted-not-taken branch per
// block — nothing per element.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf::obs {

struct ExecObserverConfig {
  /// Record per-block spans into per-worker ring buffers.
  bool trace = false;
  std::size_t trace_capacity = 1 << 15;
  /// Count distinct non-local element reads per processor (the paper's
  /// data-traffic measure).  Elementwise kernel only.
  bool traffic = false;
};

/// Plain measurement results, read after the run completes.
struct ExecObservation {
  index_t nprocs = 0;
  index_t nworkers = 0;
  /// Executed work units per scheduled processor (paper 2/1 cost model).
  std::vector<count_t> proc_work;
  std::vector<count_t> proc_blocks;
  /// Distinct non-local factor elements fetched per processor (empty when
  /// traffic accounting was off).
  std::vector<count_t> proc_traffic;
  /// volume[dst * nprocs + src]: distinct elements dst fetched from src.
  std::vector<count_t> volume;
  /// Executed work units per worker thread (differs from proc_work when
  /// processors fold onto fewer threads or stealing moves blocks).
  std::vector<count_t> worker_work;
  std::vector<count_t> worker_blocks;
  /// Measured makespan of the run in the paper's work units: the observed
  /// completion order replayed against the DAG (finish = max(processor
  /// free, last predecessor) + work).  The executor releases successors
  /// only after the completion hook fires, so the recorded order is a
  /// topological linearization of a real feasible schedule — it is always
  /// >= the Quach & Langou lower bound (asserted in tests/test_sched.cpp).
  /// Zero when begin_run got no deps.
  double schedule_makespan = 0.0;

  [[nodiscard]] count_t total_work() const;
  [[nodiscard]] count_t total_traffic() const;
  /// Measured load imbalance over per-processor executed work — the
  /// runtime analogue of MappingReport::lambda.
  [[nodiscard]] double measured_lambda() const;
  /// Same, over per-worker executed work (how imbalance lands on threads).
  [[nodiscard]] double worker_lambda() const;
};

class ExecObserver {
 public:
  explicit ExecObserver(const ExecObserverConfig& config = {}) : cfg_(config) {}

  ExecObserver(const ExecObserver&) = delete;
  ExecObserver& operator=(const ExecObserver&) = delete;

  /// Size every accumulator for one run (called by parallel_cholesky; all
  /// allocation happens here).  A fresh begin_run resets prior state.
  /// `deps`, when given, must outlive the run and enables the measured
  /// schedule-makespan replay (ExecObservation::schedule_makespan).
  void begin_run(const Partition& partition, const Assignment& assignment,
                 index_t nworkers, const BlockDeps* deps = nullptr);

  [[nodiscard]] bool traffic_enabled() const { return cfg_.traffic; }
  /// Null when tracing is off or begin_run has not happened yet.
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const Tracer* tracer() const { return tracer_.get(); }

  /// Measurements of the last completed run.
  [[nodiscard]] ExecObservation observation() const;

  // ---- Hot-path hooks (called from the executor's workers). ----

  /// One completed block: `worker` executed block `block` of scheduled
  /// processor `proc`, costing `work` units, between the two timestamps.
  void record_block(index_t worker, index_t proc, index_t block, count_t work,
                    std::int64_t t_start_ns, std::int64_t t_end_ns,
                    bool fused_kernel) noexcept {
    proc_work_[static_cast<std::size_t>(proc)].fetch_add(work,
                                                         std::memory_order_relaxed);
    proc_blocks_[static_cast<std::size_t>(proc)].fetch_add(1, std::memory_order_relaxed);
    worker_work_[static_cast<std::size_t>(worker)] += work;
    ++worker_blocks_[static_cast<std::size_t>(worker)];
    if (!completion_.empty()) {
      // The executor calls this hook before releasing successors, so the
      // fetch_add's modification order is a topological linearization.
      const count_t seq = completed_.fetch_add(1, std::memory_order_relaxed);
      completion_[static_cast<std::size_t>(seq)] = block;
      blk_work_rec_[static_cast<std::size_t>(block)] = work;
    }
    if (tracer_) {
      tracer_->ring(worker).record({t_start_ns, t_end_ns, block, proc,
                                    fused_kernel ? SpanKind::kBlockFused
                                                 : SpanKind::kBlock});
    }
  }

  /// One element read by a block of processor `dst` (traffic mode only;
  /// elementwise kernel).  Counts the first non-local read of each
  /// (processor, element) pair, exactly as the analytic model does.
  void record_read(index_t dst, count_t element) noexcept {
    const index_t src = elem_owner_[static_cast<std::size_t>(element)];
    if (src == dst) return;
    std::atomic<std::uint8_t>& flag =
        seen_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(nnz_) +
              static_cast<std::size_t>(element)];
    if (flag.exchange(1, std::memory_order_relaxed) != 0) return;
    proc_traffic_[static_cast<std::size_t>(dst)].fetch_add(1, std::memory_order_relaxed);
    volume_[static_cast<std::size_t>(dst) * static_cast<std::size_t>(nprocs_) +
            static_cast<std::size_t>(src)]
        .fetch_add(1, std::memory_order_relaxed);
  }

 private:
  ExecObserverConfig cfg_;
  index_t nprocs_ = 0;
  index_t nworkers_ = 0;
  count_t nnz_ = 0;

  std::unique_ptr<Tracer> tracer_;
  std::vector<std::atomic<count_t>> proc_work_;
  std::vector<std::atomic<count_t>> proc_blocks_;
  std::vector<std::atomic<count_t>> proc_traffic_;
  std::vector<std::atomic<count_t>> volume_;
  // Per-worker accounting: plain counters, each written only by its
  // worker and read after the pool quiesces.
  std::vector<count_t> worker_work_;
  std::vector<count_t> worker_blocks_;
  // Completion-order recording for the measured-makespan replay (sized in
  // begin_run only when deps were supplied; empty otherwise).  Each slot
  // is written once by the worker that claimed it and read after quiesce.
  const BlockDeps* deps_ = nullptr;
  std::atomic<count_t> completed_{0};
  std::vector<index_t> completion_;
  std::vector<count_t> blk_work_rec_;
  std::vector<index_t> proc_of_block_;
  // Traffic state: element -> owning processor, and one seen flag per
  // (processor, element) pair implementing fetch-once counting.
  std::vector<index_t> elem_owner_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> seen_;
};

}  // namespace spf::obs
