#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace spf::obs {

std::uint64_t HistogramSnapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > target) {
      // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
      const std::uint64_t bound =
          b == 0 ? 0 : (b >= 64 ? max : (std::uint64_t{1} << b) - 1);
      return std::min(bound, max);
    }
  }
  return max;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::sum(const std::string& name) const {
  for (const auto& [n, v] : sums) {
    if (n == name) return v;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::write_json(JsonWriter& jw) const {
  jw.begin_object("counters");
  for (const auto& [n, v] : counters) jw.field(n, static_cast<long long>(v));
  jw.end();
  jw.begin_object("sums");
  for (const auto& [n, v] : sums) jw.field(n, v);
  jw.end();
  jw.begin_object("histograms");
  for (const HistogramSnapshot& h : histograms) {
    jw.begin_object(h.name);
    jw.field("count", static_cast<long long>(h.count));
    jw.field("mean", h.mean());
    jw.field("max", static_cast<long long>(h.max));
    jw.field("p50", static_cast<long long>(h.quantile_bound(0.50)));
    jw.field("p99", static_cast<long long>(h.quantile_bound(0.99)));
    jw.end();
  }
  jw.end();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    write_json(jw);
    jw.end();
  }
  return os.str();
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    SPF_REQUIRE(e.kind == kind, "metric '" + name + "' registered with another kind");
    return e;
  }
  Entry e;
  e.name = name;
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kSum:
      e.sum = std::make_unique<Sum>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<Histogram>();
      break;
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(e));
  return entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Sum& MetricsRegistry::sum(const std::string& name) {
  return *find_or_create(name, Kind::kSum).sum;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  // Acquire-load in reverse registration order, then flip back for
  // presentation: a counter registered after (and bumped with release
  // after) another can never exceed it in the snapshot.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const Entry& e = *it;
    switch (e.kind) {
      case Kind::kCounter:
        s.counters.emplace_back(e.name, e.counter->load(std::memory_order_acquire));
        break;
      case Kind::kSum:
        s.sums.emplace_back(e.name, e.sum->load());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.name = e.name;
        h.count = e.histogram->count_.load(std::memory_order_acquire);
        h.sum = e.histogram->sum_.load(std::memory_order_relaxed);
        h.max = e.histogram->max_.load(std::memory_order_relaxed);
        h.buckets.resize(Histogram::kBuckets + 1);
        for (int b = 0; b <= Histogram::kBuckets; ++b) {
          h.buckets[static_cast<std::size_t>(b)] =
              e.histogram->buckets_[static_cast<std::size_t>(b)].load(
                  std::memory_order_relaxed);
        }
        s.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  std::reverse(s.counters.begin(), s.counters.end());
  std::reverse(s.sums.begin(), s.sums.end());
  std::reverse(s.histograms.begin(), s.histograms.end());
  return s;
}

}  // namespace spf::obs
