// Unified metrics registry: named counters, double accumulators, and
// log2-bucket histograms behind stable lock-free handles.
//
// Registration (counter()/sum()/histogram()) takes a mutex and may
// allocate; it happens once at subsystem construction.  The returned
// references are stable for the registry's lifetime, and every record
// operation on them is a single atomic RMW — the hot path never touches
// the registry again.
//
// Snapshot coherence: snapshot() acquire-loads counters in REVERSE
// registration order.  A writer that bumps an upstream counter first and
// a later-registered downstream counter with release ordering (the
// discipline engine/stats established: requests before hits/misses before
// plans/factorizations) therefore never yields a snapshot with more
// downstream events than upstream ones — register counters in the order
// they move on the write path and the whole registry inherits the
// guarantee.  Double sums and histogram contents remain best-effort under
// concurrent writers (as in EngineStats).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace spf::obs {

/// Monotonic unsigned counter.
class Counter {
 public:
  void add(std::uint64_t d = 1,
           std::memory_order order = std::memory_order_relaxed) noexcept {
    v_.fetch_add(d, order);
  }
  /// Increment that publishes every prior write (the downstream half of
  /// the registry's snapshot-coherence contract).
  void add_release(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t load(
      std::memory_order order = std::memory_order_acquire) const noexcept {
    return v_.load(order);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Double accumulator (wall-second totals and the like).
class Sum {
 public:
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double load() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-free histogram over unsigned values (e.g. latencies in
/// microseconds).  Bucket b counts values whose bit width is b: bucket 0
/// holds value 0, bucket b >= 1 holds [2^(b-1), 2^b).  Also tracks count,
/// total, and max for exact means and tail reporting.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) noexcept {
    const int b = v == 0 ? 0 : 64 - std::countl_zero(v);
    buckets_[static_cast<std::size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < v && !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Plain (non-atomic) view of a histogram at snapshot time.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< kBuckets + 1 entries

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket containing quantile `q` in [0, 1] — a
  /// conservative percentile estimate (within 2x of the true value).
  [[nodiscard]] std::uint64_t quantile_bound(double q) const;
};

/// Plain view of a whole registry at snapshot time.  Lookup helpers
/// return 0 / empty for unknown names so tests and reporters stay terse.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> sums;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double sum(const std::string& name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(const std::string& name) const;

  /// Emit into the writer's currently open object: counters and sums as
  /// flat fields, histograms as objects with count/mean/max/p50/p99.
  void write_json(JsonWriter& jw) const;
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the reference is stable for the registry's lifetime.
  /// Registering the same name with a different kind throws.
  Counter& counter(const std::string& name);
  Sum& sum(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Coherent view (see the header comment for the ordering contract).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kSum, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Sum> sum;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< registration order
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace spf::obs
