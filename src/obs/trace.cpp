#include "obs/trace.hpp"

namespace spf::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPoolTask:
      return "task";
    case SpanKind::kBlock:
      return "block";
    case SpanKind::kBlockFused:
      return "block-fused";
    case SpanKind::kFactorize:
      return "factorize";
    case SpanKind::kSolveBatch:
      return "solve-batch";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kNetRequest:
      return "net-request";
  }
  return "?";
}

}  // namespace spf::obs
