// Low-overhead per-worker span tracing.
//
// The paper's analysis is entirely static; this is the runtime half: every
// task the executor (or the serving layer) runs can record a span — who
// ran it, what it was, when it started and ended on a monotonic clock —
// into a per-worker ring buffer that is preallocated up front, so the hot
// path never allocates, locks, or touches another worker's cache lines.
// When the ring fills, new spans are dropped (and counted) rather than
// overwriting older ones: a truncated trace stays well-nested, a wrapped
// one would not.
//
// Export to the chrome://tracing / Perfetto JSON format lives in
// io/trace_io.hpp (TraceWriter); this header is the recording side only.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "matrix/types.hpp"

namespace spf::obs {

/// Monotonic nanoseconds (std::chrono::steady_clock).
[[nodiscard]] inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What a span covers; names are emitted into the exported trace.
enum class SpanKind : std::uint8_t {
  kPoolTask,    ///< one ThreadPool task (outer envelope of a block)
  kBlock,       ///< one unit-block factorization (elementwise kernel)
  kBlockFused,  ///< one unit-block factorization (blocked kernel plan)
  kFactorize,   ///< a serving-layer factorize request
  kSolveBatch,  ///< a serving-layer coalesced solve batch
  kPhase,       ///< a named pipeline/analysis phase
  kNetRequest,  ///< one request frame served by the network front-end
};

[[nodiscard]] const char* to_string(SpanKind kind);

/// One closed span.  `id` identifies the unit (block id, request seq, …);
/// `arg` is a kind-specific extra (e.g. the scheduled processor of a
/// block, the width of a solve batch).
struct Span {
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;
  std::int64_t id = 0;
  std::int32_t arg = 0;
  SpanKind kind = SpanKind::kPoolTask;
};

/// Fixed-capacity span buffer owned by exactly one worker.  record() is
/// wait-free and allocation-free; spans beyond the capacity are dropped
/// and counted.  Reading (events()/dropped()) is only defined once the
/// owning worker has quiesced (e.g. after ThreadPool::wait_idle()).
class TraceRing {
 public:
  TraceRing() = default;

  /// Allocate storage for `capacity` spans (not hot-path safe).
  void reserve(std::size_t capacity) {
    buf_.assign(capacity, Span{});
    size_ = 0;
    dropped_ = 0;
  }

  /// Record one span.  Never allocates; drops (and counts) when full.
  void record(const Span& s) noexcept {
    if (size_ < buf_.size()) {
      buf_[size_] = s;
      ++size_;
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const Span* begin() const { return buf_.data(); }
  [[nodiscard]] const Span* end() const { return buf_.data() + size_; }

 private:
  std::vector<Span> buf_;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// A set of per-worker rings plus the common time origin.  Workers index
/// their ring by worker id; rings never share cache lines with each other
/// beyond the ring headers (each ring's storage is its own allocation).
class Tracer {
 public:
  /// `capacity_per_worker` spans are preallocated for each worker.
  explicit Tracer(index_t nworkers, std::size_t capacity_per_worker = 1 << 15)
      : origin_ns_(now_ns()), rings_(static_cast<std::size_t>(nworkers)) {
    for (TraceRing& r : rings_) r.reserve(capacity_per_worker);
  }

  [[nodiscard]] index_t num_workers() const { return static_cast<index_t>(rings_.size()); }
  [[nodiscard]] TraceRing& ring(index_t worker) {
    return rings_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] const TraceRing& ring(index_t worker) const {
    return rings_[static_cast<std::size_t>(worker)];
  }

  /// Timestamp origin: exported trace timestamps are relative to this.
  [[nodiscard]] std::int64_t origin_ns() const { return origin_ns_; }

  /// Spans dropped across all rings (0 means the trace is complete).
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t d = 0;
    for (const TraceRing& r : rings_) d += r.dropped();
    return d;
  }

 private:
  std::int64_t origin_ns_;
  std::vector<TraceRing> rings_;
};

}  // namespace spf::obs
