#include "order/mmd.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace spf {

namespace {

/// Quotient-graph state for minimum-degree elimination.
class QuotientGraph {
 public:
  explicit QuotientGraph(const AdjacencyGraph& g)
      : n_(g.num_vertices()),
        state_(static_cast<std::size_t>(n_), State::kActive),
        weight_(static_cast<std::size_t>(n_), 1),
        degree_(static_cast<std::size_t>(n_), 0),
        adj_vars_(static_cast<std::size_t>(n_)),
        adj_elems_(static_cast<std::size_t>(n_)),
        boundary_(static_cast<std::size_t>(n_)),
        members_(static_cast<std::size_t>(n_)),
        marker_(static_cast<std::size_t>(n_), 0),
        stamp_(static_cast<std::size_t>(n_), 0) {
    for (index_t v = 0; v < n_; ++v) {
      const auto nb = g.neighbors(v);
      adj_vars_[static_cast<std::size_t>(v)].assign(nb.begin(), nb.end());
      degree_[static_cast<std::size_t>(v)] = static_cast<index_t>(nb.size());
      members_[static_cast<std::size_t>(v)].push_back(v);
    }
  }

  /// Run the elimination; returns the permutation (original ids in
  /// elimination order).
  std::vector<index_t> eliminate(index_t delta) {
    std::vector<index_t> order;
    order.reserve(static_cast<std::size_t>(n_));
    index_t remaining = n_;
    index_t pass = 0;

    while (remaining > 0) {
      ++pass;
      // Minimum external degree among active supervariables.
      index_t mindeg = -1;
      for (index_t v = 0; v < n_; ++v) {
        if (state_[static_cast<std::size_t>(v)] == State::kActive &&
            (mindeg < 0 || degree_[static_cast<std::size_t>(v)] < mindeg)) {
          mindeg = degree_[static_cast<std::size_t>(v)];
        }
      }
      SPF_CHECK(mindeg >= 0, "active vertices must remain while remaining > 0");
      const index_t threshold = mindeg + delta;

      // Multiple elimination: take every active supervariable whose degree
      // is within the threshold and which is independent of the nodes
      // already eliminated this pass (i.e. untouched by a new element).
      std::vector<index_t> new_elems;
      for (index_t v = 0; v < n_; ++v) {
        if (state_[static_cast<std::size_t>(v)] != State::kActive) continue;
        if (degree_[static_cast<std::size_t>(v)] > threshold) continue;
        if (stamp_[static_cast<std::size_t>(v)] == pass) continue;  // touched this pass
        eliminate_one(v, pass);
        new_elems.push_back(v);
        remaining -= static_cast<index_t>(members_[static_cast<std::size_t>(v)].size());
        for (index_t m : members_[static_cast<std::size_t>(v)]) order.push_back(m);
      }
      SPF_CHECK(!new_elems.empty(), "every pass must eliminate at least one vertex");

      // Degree update phase: every supervariable on the boundary of a new
      // element gets pruned adjacency, indistinguishability merging, and a
      // fresh external degree.
      std::vector<index_t> affected;
      for (index_t e : new_elems) {
        const auto& bnd = boundary_[static_cast<std::size_t>(e)];
        affected.insert(affected.end(), bnd.begin(), bnd.end());
      }
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

      for (index_t s : affected) {
        if (state_[static_cast<std::size_t>(s)] != State::kActive) continue;
        prune(s);
      }
      merge_indistinguishable(affected);
      for (index_t s : affected) {
        if (state_[static_cast<std::size_t>(s)] != State::kActive) continue;
        degree_[static_cast<std::size_t>(s)] = external_degree(s);
      }
    }
    SPF_CHECK(static_cast<index_t>(order.size()) == n_, "all vertices must be ordered");
    return order;
  }

 private:
  enum class State : unsigned char { kActive, kMerged, kElement, kAbsorbed };

  /// Turn supervariable p into an element: compute its boundary (the clique
  /// of active supervariables its elimination connects), absorb reached
  /// elements, and stamp boundary members as touched this pass.
  void eliminate_one(index_t p, index_t pass) {
    auto& bnd = boundary_[static_cast<std::size_t>(p)];
    bnd.clear();
    ++mark_epoch_;
    marker_[static_cast<std::size_t>(p)] = mark_epoch_;
    // Direct supervariable neighbors.
    for (index_t u : adj_vars_[static_cast<std::size_t>(p)]) {
      if (state_[static_cast<std::size_t>(u)] != State::kActive) continue;
      if (marker_[static_cast<std::size_t>(u)] == mark_epoch_) continue;
      marker_[static_cast<std::size_t>(u)] = mark_epoch_;
      bnd.push_back(u);
    }
    // Supervariables reached through adjacent elements; those elements are
    // absorbed into the new one.
    for (index_t e : adj_elems_[static_cast<std::size_t>(p)]) {
      if (state_[static_cast<std::size_t>(e)] != State::kElement) continue;
      for (index_t u : boundary_[static_cast<std::size_t>(e)]) {
        if (state_[static_cast<std::size_t>(u)] != State::kActive) continue;
        if (marker_[static_cast<std::size_t>(u)] == mark_epoch_) continue;
        marker_[static_cast<std::size_t>(u)] = mark_epoch_;
        bnd.push_back(u);
      }
      state_[static_cast<std::size_t>(e)] = State::kAbsorbed;
      boundary_[static_cast<std::size_t>(e)].clear();
      boundary_[static_cast<std::size_t>(e)].shrink_to_fit();
    }
    std::sort(bnd.begin(), bnd.end());
    state_[static_cast<std::size_t>(p)] = State::kElement;
    adj_vars_[static_cast<std::size_t>(p)].clear();
    adj_elems_[static_cast<std::size_t>(p)].clear();
    for (index_t u : bnd) {
      adj_elems_[static_cast<std::size_t>(u)].push_back(p);
      stamp_[static_cast<std::size_t>(u)] = pass;
    }
  }

  /// Drop dead entries from s's adjacency lists: merged/eliminated
  /// supervariables and absorbed elements.
  void prune(index_t s) {
    auto& av = adj_vars_[static_cast<std::size_t>(s)];
    av.erase(std::remove_if(av.begin(), av.end(),
                            [&](index_t u) {
                              return state_[static_cast<std::size_t>(u)] != State::kActive;
                            }),
             av.end());
    auto& ae = adj_elems_[static_cast<std::size_t>(s)];
    ae.erase(std::remove_if(ae.begin(), ae.end(),
                            [&](index_t e) {
                              return state_[static_cast<std::size_t>(e)] != State::kElement;
                            }),
             ae.end());
    std::sort(ae.begin(), ae.end());
    ae.erase(std::unique(ae.begin(), ae.end()), ae.end());
    std::sort(av.begin(), av.end());
    av.erase(std::unique(av.begin(), av.end()), av.end());
  }

  /// Weighted external degree of s: original vertices reachable in one
  /// quotient-graph step, not counting s's own members.
  index_t external_degree(index_t s) {
    ++mark_epoch_;
    marker_[static_cast<std::size_t>(s)] = mark_epoch_;
    index_t deg = 0;
    for (index_t u : adj_vars_[static_cast<std::size_t>(s)]) {
      if (marker_[static_cast<std::size_t>(u)] == mark_epoch_) continue;
      marker_[static_cast<std::size_t>(u)] = mark_epoch_;
      deg += weight_[static_cast<std::size_t>(u)];
    }
    for (index_t e : adj_elems_[static_cast<std::size_t>(s)]) {
      for (index_t u : boundary_[static_cast<std::size_t>(e)]) {
        if (state_[static_cast<std::size_t>(u)] != State::kActive) continue;
        if (marker_[static_cast<std::size_t>(u)] == mark_epoch_) continue;
        marker_[static_cast<std::size_t>(u)] = mark_epoch_;
        deg += weight_[static_cast<std::size_t>(u)];
      }
    }
    return deg;
  }

  /// Detect and merge indistinguishable supervariables among `affected`:
  /// u == v iff they see the same elements and the same supervariables
  /// (ignoring each other).  Hash first, verify exactly.
  void merge_indistinguishable(const std::vector<index_t>& affected) {
    std::vector<std::pair<std::uint64_t, index_t>> hashed;
    hashed.reserve(affected.size());
    for (index_t s : affected) {
      if (state_[static_cast<std::size_t>(s)] != State::kActive) continue;
      std::uint64_t h = 0;
      for (index_t u : adj_vars_[static_cast<std::size_t>(s)]) {
        h += 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(u) + 1);
      }
      for (index_t e : adj_elems_[static_cast<std::size_t>(s)]) {
        h += 0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(e) + 1);
      }
      hashed.emplace_back(h, s);
    }
    std::sort(hashed.begin(), hashed.end());
    for (std::size_t i = 0; i < hashed.size(); ++i) {
      const index_t u = hashed[i].second;
      if (state_[static_cast<std::size_t>(u)] != State::kActive) continue;
      for (std::size_t j = i + 1; j < hashed.size() && hashed[j].first == hashed[i].first;
           ++j) {
        const index_t v = hashed[j].second;
        if (state_[static_cast<std::size_t>(v)] != State::kActive) continue;
        if (indistinguishable(u, v)) merge(u, v);
      }
    }
  }

  bool indistinguishable(index_t u, index_t v) {
    const auto& eu = adj_elems_[static_cast<std::size_t>(u)];
    const auto& ev = adj_elems_[static_cast<std::size_t>(v)];
    if (eu != ev) return false;  // both sorted and pruned
    // Supervariable adjacency must match after ignoring u and v themselves.
    const auto& au = adj_vars_[static_cast<std::size_t>(u)];
    const auto& av = adj_vars_[static_cast<std::size_t>(v)];
    std::size_t i = 0, j = 0;
    while (true) {
      while (i < au.size() && (au[i] == v || au[i] == u)) ++i;
      while (j < av.size() && (av[j] == u || av[j] == v)) ++j;
      if (i == au.size() || j == av.size()) break;
      if (au[i] != av[j]) return false;
      ++i;
      ++j;
    }
    while (i < au.size() && (au[i] == v || au[i] == u)) ++i;
    while (j < av.size() && (av[j] == u || av[j] == v)) ++j;
    return i == au.size() && j == av.size();
  }

  /// Merge v into u (mass elimination bookkeeping).
  void merge(index_t u, index_t v) {
    state_[static_cast<std::size_t>(v)] = State::kMerged;
    weight_[static_cast<std::size_t>(u)] += weight_[static_cast<std::size_t>(v)];
    auto& mu = members_[static_cast<std::size_t>(u)];
    auto& mv = members_[static_cast<std::size_t>(v)];
    mu.insert(mu.end(), mv.begin(), mv.end());
    mv.clear();
    mv.shrink_to_fit();
    adj_vars_[static_cast<std::size_t>(v)].clear();
    adj_elems_[static_cast<std::size_t>(v)].clear();
  }

  index_t n_;
  std::vector<State> state_;
  std::vector<index_t> weight_;
  std::vector<index_t> degree_;
  std::vector<std::vector<index_t>> adj_vars_;   // supervariable adjacency
  std::vector<std::vector<index_t>> adj_elems_;  // element adjacency
  std::vector<std::vector<index_t>> boundary_;   // element -> supervariables
  std::vector<std::vector<index_t>> members_;    // representative -> originals
  std::vector<index_t> marker_;
  index_t mark_epoch_ = 0;
  std::vector<index_t> stamp_;  // pass number that last touched a vertex
};

}  // namespace

Permutation mmd_order(const AdjacencyGraph& g, const MmdOptions& opt) {
  SPF_REQUIRE(opt.delta >= 0, "delta must be non-negative");
  if (g.num_vertices() == 0) return Permutation(std::vector<index_t>{});
  QuotientGraph qg(g);
  return Permutation(qg.eliminate(opt.delta));
}

}  // namespace spf
