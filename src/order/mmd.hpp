// Liu's Multiple Minimum Degree ordering [Liu, TOMS 11(2), 1985].
//
// This is the ordering the paper uses for every experiment ("the test
// matrices were ordered using Liu's modified multiple minimum degree
// ordering scheme").  The implementation follows the classical quotient
// graph formulation:
//
//  * supervariables: indistinguishable vertices are merged and eliminated
//    together (mass elimination);
//  * elements: eliminated vertices become elements whose boundary stands
//    for the clique their elimination created; elements reached through an
//    eliminated vertex are absorbed;
//  * external degree: a supervariable's degree counts original vertices
//    outside itself, which is the quantity minimized;
//  * multiple elimination: each pass eliminates an independent set of
//    vertices with degree within `delta` of the minimum before any degree
//    updates are performed — this is what makes it *multiple* MD.
//
// Tie-breaking is by lowest vertex id, so orderings are deterministic.
// Exact fill counts therefore differ slightly from other MMD codes (the
// paper's tables were produced with GENMMD-era tie-breaking); DESIGN.md
// discusses the impact on reproduced numbers.
#pragma once

#include "matrix/graph.hpp"
#include "order/permutation.hpp"

namespace spf {

struct MmdOptions {
  index_t delta = 0;  ///< multiple-elimination slack (0 = classic MMD)
};

/// Compute the MMD permutation of the graph of a symmetric matrix.
Permutation mmd_order(const AdjacencyGraph& g, const MmdOptions& opt = {});

}  // namespace spf
