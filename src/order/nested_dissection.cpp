#include "order/nested_dissection.hpp"

#include <algorithm>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csc.hpp"
#include "order/mmd.hpp"
#include "support/check.hpp"

namespace spf {

namespace {

/// Recursive dissection over the full graph with an activity mask: ordered
/// vertices (and separators under recursion) are deactivated; components
/// are gathered with a stamp array so gathering never mutates the mask.
class Dissector {
 public:
  Dissector(const AdjacencyGraph& g, index_t leaf_size)
      : g_(g),
        leaf_size_(std::max<index_t>(leaf_size, 4)),
        active_(static_cast<std::size_t>(g.num_vertices()), 1),
        stamp_(static_cast<std::size_t>(g.num_vertices()), 0),
        level_(static_cast<std::size_t>(g.num_vertices()), -1) {
    order_.reserve(static_cast<std::size_t>(g.num_vertices()));
  }

  std::vector<index_t> run() {
    for (index_t s = 0; s < g_.num_vertices(); ++s) {
      if (active_[static_cast<std::size_t>(s)]) dissect(gather_component(s));
    }
    SPF_CHECK(static_cast<index_t>(order_.size()) == g_.num_vertices(),
              "nested dissection must order every vertex");
    return std::move(order_);
  }

 private:
  /// Active component containing s (BFS over active vertices, stamp-based).
  std::vector<index_t> gather_component(index_t s) {
    ++epoch_;
    std::vector<index_t> comp{s};
    stamp_[static_cast<std::size_t>(s)] = epoch_;
    for (std::size_t head = 0; head < comp.size(); ++head) {
      for (index_t nb : g_.neighbors(comp[head])) {
        if (active_[static_cast<std::size_t>(nb)] &&
            stamp_[static_cast<std::size_t>(nb)] != epoch_) {
          stamp_[static_cast<std::size_t>(nb)] = epoch_;
          comp.push_back(nb);
        }
      }
    }
    return comp;
  }

  /// BFS level structure within the active set from `root`.
  struct Levels {
    std::vector<index_t> order;
    std::vector<std::size_t> begin;  // begin[l] = start index of level l
  };

  Levels level_structure(index_t root) {
    Levels out;
    out.order.push_back(root);
    level_[static_cast<std::size_t>(root)] = 0;
    out.begin.push_back(0);
    std::size_t lo = 0;
    index_t lev = 0;
    while (true) {
      const std::size_t hi = out.order.size();
      for (std::size_t i = lo; i < hi; ++i) {
        for (index_t nb : g_.neighbors(out.order[i])) {
          if (active_[static_cast<std::size_t>(nb)] &&
              level_[static_cast<std::size_t>(nb)] < 0) {
            level_[static_cast<std::size_t>(nb)] = lev + 1;
            out.order.push_back(nb);
          }
        }
      }
      if (hi == out.order.size()) break;
      out.begin.push_back(hi);
      ++lev;
      lo = hi;
    }
    return out;
  }

  void clear_levels(const std::vector<index_t>& vertices) {
    for (index_t v : vertices) level_[static_cast<std::size_t>(v)] = -1;
  }

  /// Order a component with minimum degree on the induced subgraph and
  /// deactivate it.
  void order_leaf(const std::vector<index_t>& comp) {
    std::vector<index_t> local(static_cast<std::size_t>(g_.num_vertices()), -1);
    for (std::size_t i = 0; i < comp.size(); ++i) {
      local[static_cast<std::size_t>(comp[i])] = static_cast<index_t>(i);
    }
    CooBuilder coo(static_cast<index_t>(comp.size()), static_cast<index_t>(comp.size()));
    for (std::size_t i = 0; i < comp.size(); ++i) {
      coo.add(static_cast<index_t>(i), static_cast<index_t>(i), 1.0);
      for (index_t nb : g_.neighbors(comp[i])) {
        if (!active_[static_cast<std::size_t>(nb)]) continue;
        const index_t lj = local[static_cast<std::size_t>(nb)];
        if (lj >= 0 && lj < static_cast<index_t>(i)) {
          coo.add(static_cast<index_t>(i), lj, 1.0);
        }
      }
    }
    const Permutation sub = mmd_order(AdjacencyGraph::from_lower(coo.to_csc()));
    for (index_t k = 0; k < sub.size(); ++k) {
      const index_t v = comp[static_cast<std::size_t>(sub.old_of_new(k))];
      active_[static_cast<std::size_t>(v)] = 0;
      order_.push_back(v);
    }
  }

  void dissect(const std::vector<index_t>& comp) {
    if (static_cast<index_t>(comp.size()) <= leaf_size_) {
      order_leaf(comp);
      return;
    }
    // Pseudo-peripheral-ish root: one BFS from a minimum-degree vertex,
    // restart from the deepest vertex found.
    index_t root = comp.front();
    for (index_t v : comp) {
      if (g_.degree(v) < g_.degree(root)) root = v;
    }
    Levels lv = level_structure(root);
    {
      const index_t deep = lv.order.back();
      if (deep != root) {
        clear_levels(lv.order);
        lv = level_structure(deep);
      }
    }
    if (lv.begin.size() < 3) {
      // Diameter too small to yield a separator (e.g. a dense blob).
      clear_levels(lv.order);
      order_leaf(comp);
      return;
    }
    const std::size_t mid = lv.begin.size() / 2;
    const std::size_t sep_lo = lv.begin[mid];
    const std::size_t sep_hi =
        mid + 1 < lv.begin.size() ? lv.begin[mid + 1] : lv.order.size();
    const std::vector<index_t> separator(
        lv.order.begin() + static_cast<std::ptrdiff_t>(sep_lo),
        lv.order.begin() + static_cast<std::ptrdiff_t>(sep_hi));
    clear_levels(lv.order);

    // Remove the separator, recurse on the remaining components, then
    // number the separator last.
    for (index_t v : separator) active_[static_cast<std::size_t>(v)] = 0;
    std::vector<std::vector<index_t>> parts;
    {
      // Epochs increase monotonically, so "stamped during this loop" is
      // simply "stamp >= loop_floor".
      const index_t loop_floor = ++epoch_;
      for (index_t v : comp) {
        if (!active_[static_cast<std::size_t>(v)] ||
            stamp_[static_cast<std::size_t>(v)] >= loop_floor) {
          continue;
        }
        parts.push_back(gather_component(v));
      }
    }
    for (const auto& part : parts) dissect(part);
    for (index_t v : separator) order_.push_back(v);
  }

  const AdjacencyGraph& g_;
  index_t leaf_size_;
  std::vector<char> active_;
  std::vector<index_t> stamp_;
  index_t epoch_ = 0;
  std::vector<index_t> level_;
  std::vector<index_t> order_;
};

}  // namespace

Permutation nested_dissection_order(const AdjacencyGraph& g,
                                    const NestedDissectionOptions& opt) {
  SPF_REQUIRE(opt.leaf_size >= 1, "leaf size must be positive");
  if (g.num_vertices() == 0) return Permutation(std::vector<index_t>{});
  Dissector d(g, opt.leaf_size);
  return Permutation(d.run());
}

}  // namespace spf
