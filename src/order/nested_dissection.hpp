// Nested dissection ordering (George), generalized to arbitrary graphs via
// level-structure vertex separators.
//
// Included as an ablation ordering: nested dissection produces large,
// regular supernodes (the separators), which is the structure the paper's
// block partitioner exploits best; comparing it against MMD isolates how
// much of the communication saving comes from cluster geometry.
#pragma once

#include "matrix/graph.hpp"
#include "order/permutation.hpp"

namespace spf {

struct NestedDissectionOptions {
  /// Subgraphs at or below this size are ordered by minimum degree.
  index_t leaf_size = 32;
};

/// Compute a nested dissection permutation.
Permutation nested_dissection_order(const AdjacencyGraph& g,
                                    const NestedDissectionOptions& opt = {});

}  // namespace spf
