#include "order/ordering.hpp"

#include "matrix/graph.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "order/rcm.hpp"
#include "support/check.hpp"

namespace spf {

std::string to_string(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNatural:
      return "natural";
    case OrderingKind::kRcm:
      return "rcm";
    case OrderingKind::kMmd:
      return "mmd";
    case OrderingKind::kNestedDissection:
      return "nested-dissection";
  }
  return "unknown";
}

Permutation compute_ordering(const CscMatrix& lower, OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kNatural:
      return Permutation::identity(lower.ncols());
    case OrderingKind::kRcm:
      return rcm_order(AdjacencyGraph::from_lower(lower));
    case OrderingKind::kMmd:
      return mmd_order(AdjacencyGraph::from_lower(lower));
    case OrderingKind::kNestedDissection:
      return nested_dissection_order(AdjacencyGraph::from_lower(lower));
  }
  SPF_REQUIRE(false, "unknown ordering kind");
  return Permutation{};
}

}  // namespace spf
