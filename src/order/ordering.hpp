// Ordering selection facade.
#pragma once

#include <string>

#include "matrix/csc.hpp"
#include "order/permutation.hpp"

namespace spf {

enum class OrderingKind {
  kNatural,  ///< identity (no reordering)
  kRcm,      ///< reverse Cuthill-McKee
  kMmd,      ///< Liu's multiple minimum degree (the paper's choice)
  kNestedDissection,  ///< George's nested dissection (level-set separators)
};

/// Human-readable name.
std::string to_string(OrderingKind kind);

/// Compute the selected fill-reducing ordering for a lower-triangular
/// symmetric matrix.
Permutation compute_ordering(const CscMatrix& lower, OrderingKind kind);

}  // namespace spf
