#include "order/permutation.hpp"

#include <numeric>

#include "support/check.hpp"

namespace spf {

Permutation::Permutation(std::vector<index_t> perm) : perm_(std::move(perm)) {
  const index_t n = static_cast<index_t>(perm_.size());
  iperm_.assign(perm_.size(), -1);
  for (index_t k = 0; k < n; ++k) {
    const index_t old = perm_[static_cast<std::size_t>(k)];
    SPF_REQUIRE(old >= 0 && old < n, "permutation entry out of range");
    SPF_REQUIRE(iperm_[static_cast<std::size_t>(old)] == -1, "duplicate permutation entry");
    iperm_[static_cast<std::size_t>(old)] = k;
  }
}

Permutation Permutation::identity(index_t n) {
  std::vector<index_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), index_t{0});
  return Permutation(std::move(p));
}

Permutation Permutation::then(const Permutation& second) const {
  SPF_REQUIRE(size() == second.size(), "permutation sizes must match");
  std::vector<index_t> p(perm_.size());
  for (index_t k = 0; k < size(); ++k) {
    p[static_cast<std::size_t>(k)] = perm_[static_cast<std::size_t>(
        second.perm()[static_cast<std::size_t>(k)])];
  }
  return Permutation(std::move(p));
}

std::vector<double> apply_perm(const Permutation& p, std::span<const double> x) {
  SPF_REQUIRE(static_cast<index_t>(x.size()) == p.size(), "vector size mismatch");
  std::vector<double> out(x.size());
  for (index_t k = 0; k < p.size(); ++k) {
    out[static_cast<std::size_t>(k)] = x[static_cast<std::size_t>(p.old_of_new(k))];
  }
  return out;
}

std::vector<double> apply_inverse_perm(const Permutation& p, std::span<const double> x) {
  SPF_REQUIRE(static_cast<index_t>(x.size()) == p.size(), "vector size mismatch");
  std::vector<double> out(x.size());
  for (index_t k = 0; k < p.size(); ++k) {
    out[static_cast<std::size_t>(p.old_of_new(k))] = x[static_cast<std::size_t>(k)];
  }
  return out;
}

}  // namespace spf
