// Permutation of matrix indices.
//
// Convention: `perm[k]` is the ORIGINAL index of the unknown eliminated
// k-th; `iperm[i]` is the NEW position of original index i.  This matches
// the classical sparse-matrix literature (George & Liu).
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

class Permutation {
 public:
  Permutation() = default;

  /// Build from the perm vector (original index of each new position).
  /// Validates that it is a permutation of 0..n-1.
  explicit Permutation(std::vector<index_t> perm);

  /// Identity permutation of order n.
  static Permutation identity(index_t n);

  [[nodiscard]] index_t size() const { return static_cast<index_t>(perm_.size()); }
  [[nodiscard]] std::span<const index_t> perm() const { return perm_; }
  [[nodiscard]] std::span<const index_t> iperm() const { return iperm_; }

  /// Original index of new position k.
  [[nodiscard]] index_t old_of_new(index_t k) const { return perm_[static_cast<std::size_t>(k)]; }
  /// New position of original index i.
  [[nodiscard]] index_t new_of_old(index_t i) const { return iperm_[static_cast<std::size_t>(i)]; }

  /// Compose: result maps new positions of `second` through this one
  /// (apply `*this` first, then `second`).
  [[nodiscard]] Permutation then(const Permutation& second) const;

 private:
  std::vector<index_t> perm_;
  std::vector<index_t> iperm_;
};

/// Permute a vector into the new ordering: out[k] = x[perm[k]].
std::vector<double> apply_perm(const Permutation& p, std::span<const double> x);

/// Scatter a vector back to the original ordering: out[perm[k]] = x[k].
std::vector<double> apply_inverse_perm(const Permutation& p, std::span<const double> x);

}  // namespace spf
