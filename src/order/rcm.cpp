#include "order/rcm.hpp"

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace spf {

namespace {

/// BFS from `root` over unvisited vertices; returns the level structure as
/// the flat visit order plus the index of the first vertex of the last
/// level.  Does not mark `visited`.
struct Bfs {
  std::vector<index_t> order;
  std::size_t last_level_begin = 0;
  index_t depth = 0;
};

Bfs bfs(const AdjacencyGraph& g, index_t root, const std::vector<char>& visited) {
  Bfs out;
  std::vector<char> seen(visited.begin(), visited.end());
  out.order.push_back(root);
  seen[static_cast<std::size_t>(root)] = 1;
  std::size_t level_begin = 0;
  while (level_begin < out.order.size()) {
    const std::size_t level_end = out.order.size();
    for (std::size_t i = level_begin; i < level_end; ++i) {
      for (index_t nb : g.neighbors(out.order[i])) {
        if (!seen[static_cast<std::size_t>(nb)]) {
          seen[static_cast<std::size_t>(nb)] = 1;
          out.order.push_back(nb);
        }
      }
    }
    if (level_end == out.order.size()) break;
    out.last_level_begin = level_end;
    ++out.depth;
    level_begin = level_end;
  }
  return out;
}

/// George-Liu pseudo-peripheral vertex: repeat BFS from a min-degree vertex
/// of the deepest level until the eccentricity stops growing.
index_t pseudo_peripheral(const AdjacencyGraph& g, index_t start,
                          const std::vector<char>& visited) {
  index_t root = start;
  index_t depth = -1;
  for (int iter = 0; iter < 8; ++iter) {  // converges in 2-3 iterations
    const Bfs b = bfs(g, root, visited);
    if (b.depth <= depth) break;
    depth = b.depth;
    index_t best = b.order[b.last_level_begin];
    for (std::size_t i = b.last_level_begin; i < b.order.size(); ++i) {
      if (g.degree(b.order[i]) < g.degree(best)) best = b.order[i];
    }
    if (best == root) break;
    root = best;
  }
  return root;
}

}  // namespace

Permutation rcm_order(const AdjacencyGraph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> nbrs;

  for (index_t s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    const index_t root = pseudo_peripheral(g, s, visited);
    // Cuthill-McKee: BFS, neighbors appended in increasing-degree order.
    std::size_t head = order.size();
    order.push_back(root);
    visited[static_cast<std::size_t>(root)] = 1;
    while (head < order.size()) {
      const index_t v = order[head++];
      nbrs.clear();
      for (index_t nb : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(nb)]) {
          visited[static_cast<std::size_t>(nb)] = 1;
          nbrs.push_back(nb);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        const index_t da = g.degree(a), db = g.degree(b);
        return da != db ? da < db : a < b;
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }
  SPF_CHECK(static_cast<index_t>(order.size()) == n, "RCM must visit every vertex");
  std::reverse(order.begin(), order.end());  // the "reverse" in RCM
  return Permutation(std::move(order));
}

}  // namespace spf
