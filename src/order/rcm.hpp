// Reverse Cuthill-McKee ordering (bandwidth/profile reduction).
//
// Included as a classical alternative to minimum degree; the experiment
// harness uses it for ablations on how the ordering interacts with the
// partitioner's cluster structure.
#pragma once

#include "matrix/graph.hpp"
#include "order/permutation.hpp"

namespace spf {

/// RCM over each connected component; pseudo-peripheral start vertices.
Permutation rcm_order(const AdjacencyGraph& g);

}  // namespace spf
