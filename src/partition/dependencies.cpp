#include "partition/dependencies.hpp"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_set>

#include "support/check.hpp"

namespace spf {

std::string to_string(DepCategory c) {
  switch (c) {
    case DepCategory::kColUpdatesCol:
      return "1: column updates column";
    case DepCategory::kColUpdatesTri:
      return "2: column updates triangle";
    case DepCategory::kColUpdatesRect:
      return "3: column updates rectangle";
    case DepCategory::kTriUpdatesRect:
      return "4: triangle updates rectangle";
    case DepCategory::kTriRectUpdatesRect:
      return "5: triangle + rectangle update rectangle";
    case DepCategory::kRectUpdatesCol:
      return "6: rectangle updates column";
    case DepCategory::kRectRectUpdatesCol:
      return "7: two rectangles update column";
    case DepCategory::kRectUpdatesTri:
      return "8: rectangle updates triangle";
    case DepCategory::kRectRectUpdatesTri:
      return "9: two rectangles update triangle";
    case DepCategory::kRectRectUpdatesRect:
      return "10: two rectangles update rectangle";
    case DepCategory::kOther:
      return "other (outside the paper's taxonomy)";
    case DepCategory::kCount:
      break;
  }
  return "unknown";
}

DepCategory classify_dependency(BlockKind src_i, BlockKind src_j, bool same_block,
                                BlockKind target) {
  using K = BlockKind;
  if (same_block) {
    switch (src_i) {
      case K::kColumn:
        if (target == K::kColumn) return DepCategory::kColUpdatesCol;
        if (target == K::kTriangle) return DepCategory::kColUpdatesTri;
        return DepCategory::kColUpdatesRect;
      case K::kTriangle:
        if (target == K::kRectangle) return DepCategory::kTriUpdatesRect;
        return DepCategory::kOther;
      case K::kRectangle:
        if (target == K::kColumn) return DepCategory::kRectUpdatesCol;
        if (target == K::kTriangle) return DepCategory::kRectUpdatesTri;
        return DepCategory::kOther;  // single rectangle updating a rectangle
    }
    return DepCategory::kOther;
  }
  // Two distinct source blocks share column k, so neither can be a column
  // unit (a column unit always covers the whole column).
  if (src_i == K::kRectangle && src_j == K::kRectangle) {
    if (target == K::kColumn) return DepCategory::kRectRectUpdatesCol;
    if (target == K::kTriangle) return DepCategory::kRectRectUpdatesTri;
    return DepCategory::kRectRectUpdatesRect;
  }
  if (src_i == K::kRectangle && src_j == K::kTriangle) {
    // The triangle holds L(j,k) (small rows), the rectangle L(i,k).
    if (target == K::kRectangle) return DepCategory::kTriRectUpdatesRect;
    return DepCategory::kOther;
  }
  return DepCategory::kOther;
}

count_t BlockDeps::num_edges() const {
  count_t total = 0;
  for (const auto& p : preds) total += static_cast<count_t>(p.size());
  return total;
}

namespace {

/// Walks a sorted row list against a column's segment list, yielding the
/// owning block for each row.
class SegmentWalker {
 public:
  explicit SegmentWalker(std::span<const ColumnSegment> segs) : segs_(segs) {}

  /// Block owning `row`; rows must be queried in non-decreasing order.
  index_t block_for(index_t row) {
    while (pos_ < segs_.size() && segs_[pos_].rows.hi < row) ++pos_;
    SPF_CHECK(pos_ < segs_.size() && segs_[pos_].rows.contains(row),
              "row not covered by column segments");
    return segs_[pos_].block;
  }

 private:
  std::span<const ColumnSegment> segs_;
  std::size_t pos_ = 0;
};

/// Shared enumeration of block-level update dependencies: invokes
/// `emit(src_i_block, src_j_block, target_block)` for every update
/// operation, with a run cache so consecutive identical triples are
/// emitted once.
template <typename Emit>
void enumerate_update_deps(const Partition& p, Emit&& emit) {
  const SymbolicFactor& sf = p.factor;
  std::vector<index_t> src_blocks;
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    src_blocks.resize(sd.size());
    {
      SegmentWalker w(p.emap.column_segments(k));
      for (std::size_t t = 0; t < sd.size(); ++t) src_blocks[t] = w.block_for(sd[t]);
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      const index_t j = sd[b];
      const index_t s_j = src_blocks[b];
      SegmentWalker w(p.emap.column_segments(j));
      index_t last_si = -1, last_t = -1;
      for (std::size_t a = b; a < sd.size(); ++a) {
        const index_t i = sd[a];
        const index_t s_i = src_blocks[a];
        const index_t t = w.block_for(i);
        if (s_i == last_si && t == last_t) continue;  // run cache
        last_si = s_i;
        last_t = t;
        emit(s_i, s_j, t);
      }
    }
  }
}

/// Sort the adjacency lists, collect the independent set, and precompute
/// seq_order once the edge lists are complete (shared by both engines, so
/// they produce identical BlockDeps for identical DAGs).
void finalize_deps(BlockDeps& out) {
  const auto nb = static_cast<index_t>(out.preds.size());
  for (auto& v : out.preds) std::sort(v.begin(), v.end());
  for (auto& v : out.succs) std::sort(v.begin(), v.end());
  for (index_t b = 0; b < nb; ++b) {
    if (out.preds[static_cast<std::size_t>(b)].empty()) out.independent.push_back(b);
  }
  // Lexicographically smallest topological order: Kahn's algorithm,
  // always releasing the smallest ready block id.
  std::vector<index_t> indeg(static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) {
    indeg[static_cast<std::size_t>(b)] =
        static_cast<index_t>(out.preds[static_cast<std::size_t>(b)].size());
  }
  std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready(
      std::greater<>(), {out.independent.begin(), out.independent.end()});
  out.seq_order.reserve(static_cast<std::size_t>(nb));
  while (!ready.empty()) {
    const index_t b = ready.top();
    ready.pop();
    out.seq_order.push_back(b);
    for (index_t s : out.succs[static_cast<std::size_t>(b)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  SPF_CHECK(static_cast<index_t>(out.seq_order.size()) == nb,
            "block dependency graph has a cycle");
}

}  // namespace

BlockDeps block_dependencies(const Partition& p) {
  const auto nb = static_cast<std::uint64_t>(p.num_blocks());
  BlockDeps out;
  out.preds.resize(p.blocks.size());
  out.succs.resize(p.blocks.size());

  std::unordered_set<std::uint64_t> seen;
  auto add_edge = [&](index_t src, index_t dst) {
    if (src == dst) return;
    const std::uint64_t key = static_cast<std::uint64_t>(src) * nb +
                              static_cast<std::uint64_t>(dst);
    if (seen.insert(key).second) {
      out.preds[static_cast<std::size_t>(dst)].push_back(src);
      out.succs[static_cast<std::size_t>(src)].push_back(dst);
    }
  };

  enumerate_update_deps(p, [&](index_t s_i, index_t s_j, index_t t) {
    add_edge(s_i, t);
    add_edge(s_j, t);
  });

  // Scaling: every element of column k needs the diagonal (k,k), owned by
  // the first segment's block.
  for (index_t k = 0; k < p.factor.n(); ++k) {
    const auto segs = p.emap.column_segments(k);
    SPF_CHECK(!segs.empty(), "every column must be covered");
    const index_t diag_block = segs.front().block;
    for (const ColumnSegment& s : segs) add_edge(diag_block, s.block);
  }

  finalize_deps(out);
  return out;
}

BlockDeps block_dependencies_geometric(const Partition& p) {
  const SymbolicFactor& sf = p.factor;
  const auto nb = static_cast<std::uint64_t>(p.num_blocks());

  BlockDeps out;
  out.preds.resize(p.blocks.size());
  out.succs.resize(p.blocks.size());
  std::unordered_set<std::uint64_t> seen;
  auto add_edge = [&](index_t src, index_t dst) {
    if (src == dst) return;
    const std::uint64_t key = static_cast<std::uint64_t>(src) * nb +
                              static_cast<std::uint64_t>(dst);
    if (seen.insert(key).second) {
      out.preds[static_cast<std::size_t>(dst)].push_back(src);
      out.succs[static_cast<std::size_t>(src)].push_back(dst);
    }
  };

  // Interval tree over block column extents: the geometric query "which
  // blocks could own targets in columns J".
  IntervalTree<index_t, index_t> by_cols([&] {
    std::vector<IntervalTree<index_t, index_t>::Entry> entries;
    entries.reserve(p.blocks.size());
    for (index_t b = 0; b < p.num_blocks(); ++b) {
      entries.push_back({p.blocks[static_cast<std::size_t>(b)].cols, b});
    }
    return entries;
  }());

  // True when some element (i, j) with i >= j, j in jt, i in it exists
  // inside block T (dense blocks: pick j = jt.lo, i = it.hi; column
  // blocks: consult the sparse row structure).
  auto target_feasible = [&](const UnitBlock& t, Interval<index_t> jt,
                             Interval<index_t> it) {
    if (jt.empty() || it.empty() || it.hi < jt.lo) return false;
    if (t.kind != BlockKind::kColumn) return true;
    const index_t j = jt.lo;  // column blocks span a single column
    const auto rows = sf.col_rows(j);
    const auto first = std::lower_bound(rows.begin(), rows.end(), std::max(it.lo, j));
    return first != rows.end() && *first <= it.hi;
  };

  // Dependencies whose sources live in column k, with `segs` describing
  // column k's segments (dense clusters pass a whole column group at once
  // by using the group's lowest column as k).
  auto process_dense_column_group = [&](index_t k,
                                        std::span<const ColumnSegment> segs) {
    for (std::size_t b = 0; b < segs.size(); ++b) {
      // j-source segment: targets live in columns J.
      Interval<index_t> j_rows = segs[b].rows;
      j_rows.lo = std::max(j_rows.lo, k + 1);
      if (j_rows.empty()) continue;
      for (std::size_t a = b; a < segs.size(); ++a) {
        const Interval<index_t> i_rows = segs[a].rows;
        if (i_rows.hi < j_rows.lo) continue;
        by_cols.visit_overlaps(j_rows, [&](const auto& entry) {
          const UnitBlock& t = p.blocks[static_cast<std::size_t>(entry.value)];
          const Interval<index_t> jt = intersect(j_rows, t.cols);
          const Interval<index_t> it = intersect(i_rows, t.rows);
          if (!target_feasible(t, jt, it)) return;
          add_edge(segs[a].block, entry.value);
          add_edge(segs[b].block, entry.value);
        });
      }
    }
  };

  // Sparse (single-column) sources: walk the actual rows, as the
  // element-level engine does, restricted to this column.
  auto process_sparse_column = [&](index_t k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) return;
    std::vector<index_t> src_blocks(sd.size());
    {
      SegmentWalker w(p.emap.column_segments(k));
      for (std::size_t t = 0; t < sd.size(); ++t) src_blocks[t] = w.block_for(sd[t]);
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      SegmentWalker w(p.emap.column_segments(sd[b]));
      index_t last_si = -1, last_t = -1;
      for (std::size_t a = b; a < sd.size(); ++a) {
        const index_t t = w.block_for(sd[a]);
        if (src_blocks[a] == last_si && t == last_t) continue;
        last_si = src_blocks[a];
        last_t = t;
        add_edge(src_blocks[a], t);
        add_edge(src_blocks[b], t);
      }
    }
  };

  for (const Cluster& cl : p.clusters.clusters) {
    if (cl.width == 1) {
      process_sparse_column(cl.first);
    } else {
      // Group consecutive columns sharing the same segment block layout;
      // the union of their operations equals the group's first column's
      // (its triangle row range subsumes the others').
      index_t k = cl.first;
      while (k <= cl.last()) {
        const auto segs = p.emap.column_segments(k);
        index_t k2 = k + 1;
        while (k2 <= cl.last()) {
          const auto segs2 = p.emap.column_segments(k2);
          bool same = segs2.size() == segs.size();
          for (std::size_t s = 0; same && s < segs.size(); ++s) {
            same = segs2[s].block == segs[s].block;
          }
          if (!same) break;
          ++k2;
        }
        process_dense_column_group(k, segs);
        k = k2;
      }
    }
  }

  // Scaling reads: the diagonal's block feeds every other block of its
  // column; uniform within a cluster column group, but cheap enough to
  // emit per column.
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    for (const ColumnSegment& s : segs) add_edge(segs.front().block, s.block);
  }

  finalize_deps(out);
  return out;
}

std::array<count_t, static_cast<std::size_t>(DepCategory::kCount)> dependency_census(
    const Partition& p) {
  std::array<count_t, static_cast<std::size_t>(DepCategory::kCount)> census{};
  const auto nb = static_cast<std::uint64_t>(p.num_blocks());
  std::unordered_set<std::uint64_t> seen;
  enumerate_update_deps(p, [&](index_t s_i, index_t s_j, index_t t) {
    if (s_i == t && s_j == t) return;  // purely internal to one block
    const std::uint64_t key =
        (static_cast<std::uint64_t>(s_i) * nb + static_cast<std::uint64_t>(s_j)) * nb +
        static_cast<std::uint64_t>(t);
    if (!seen.insert(key).second) return;
    const DepCategory c = classify_dependency(
        p.blocks[static_cast<std::size_t>(s_i)].kind,
        p.blocks[static_cast<std::size_t>(s_j)].kind, s_i == s_j,
        p.blocks[static_cast<std::size_t>(t)].kind);
    ++census[static_cast<std::size_t>(c)];
  });
  return census;
}

}  // namespace spf
