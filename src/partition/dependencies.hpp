// Inter-block dependency identification — paper Section 3.3.
//
// Every Cholesky single-update L(i,j) -= L(i,k) * L(j,k) makes the block
// owning the target (i,j) depend on the block(s) owning the two sources in
// column k; the final scaling of (i,j) additionally depends on the block
// owning the diagonal (j,j).  The engine enumerates update operations
// column by column, compressing runs of rows that stay inside one block so
// that dense clusters are processed at block granularity, and deduplicates
// edges on the fly.
//
// Each block-level dependency is also classified into the paper's ten
// categories (Figure 4).  Two combinations that are geometrically possible
// but absent from the paper's list — a single rectangle updating a
// rectangle, and a triangle-rectangle pair updating a column or triangle —
// are reported under kOther so the census stays exhaustive.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "partition/partitioner.hpp"

namespace spf {

/// The paper's ten dependency categories plus a catch-all.
enum class DepCategory : unsigned char {
  kColUpdatesCol = 0,       // 1
  kColUpdatesTri,           // 2
  kColUpdatesRect,          // 3
  kTriUpdatesRect,          // 4
  kTriRectUpdatesRect,      // 5
  kRectUpdatesCol,          // 6
  kRectRectUpdatesCol,      // 7
  kRectUpdatesTri,          // 8
  kRectRectUpdatesTri,      // 9
  kRectRectUpdatesRect,     // 10
  kOther,                   // outside the paper's taxonomy
  kCount,
};

std::string to_string(DepCategory c);

/// Block-level dependency DAG.
struct BlockDeps {
  /// preds[b]: sorted unique blocks whose data block b reads.
  std::vector<std::vector<index_t>> preds;
  /// succs[b]: sorted unique blocks reading block b's data.
  std::vector<std::vector<index_t>> succs;
  /// Blocks with no predecessors ("independent" units; the paper
  /// wrap-maps the independent columns first).
  std::vector<index_t> independent;
  /// All blocks in the lexicographically smallest topological order (Kahn
  /// with a min-heap over ready block ids).  Because block ids ascend with
  /// factor columns, this order walks the factor nearly front to back —
  /// the cache-friendly schedule the single-thread executor replays
  /// without any per-run release bookkeeping.  Precomputed here (and so
  /// cached with the engine's plan) because it only depends on the DAG.
  std::vector<index_t> seq_order;

  [[nodiscard]] count_t num_edges() const;
};

/// Compute the dependency DAG of a partition (element-level enumeration
/// with run compression — the authoritative engine).
BlockDeps block_dependencies(const Partition& p);

/// Geometric engine: computes the same DAG from block extents, the way the
/// paper describes ("using this classification and the interval tree
/// structure, the partitioner computes the dependencies efficiently").
/// Dense clusters are handled per column *group* (columns sharing a
/// segment layout) with interval-tree queries over block column extents,
/// instead of per element; single-column clusters fall back to walking
/// their sparse rows.  Produces exactly the relation of
/// block_dependencies() (tested), typically in far fewer operations on
/// supernode-rich problems.
BlockDeps block_dependencies_geometric(const Partition& p);

/// Census of distinct block-level update dependencies per category
/// (scaling dependencies are not update operations and are excluded, as in
/// the paper's taxonomy).
std::array<count_t, static_cast<std::size_t>(DepCategory::kCount)> dependency_census(
    const Partition& p);

/// Classify one update dependency: `src_i`/`src_j` are the kinds of the
/// blocks supplying L(i,k) and L(j,k), `same_block` whether they are the
/// same unit, `target` the kind of the block owning (i,j).
DepCategory classify_dependency(BlockKind src_i, BlockKind src_j, bool same_block,
                                BlockKind target);

}  // namespace spf
