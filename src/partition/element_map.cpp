#include "partition/element_map.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf {

void ElementMap::add_segment(index_t j, Interval<index_t> rows, index_t block) {
  SPF_REQUIRE(j >= 0 && j < n(), "column out of range");
  SPF_REQUIRE(!rows.empty(), "segment must be non-empty");
  SPF_REQUIRE(block >= 0, "segment needs a valid block");
  auto& col = segs_[static_cast<std::size_t>(j)];
  SPF_REQUIRE(col.empty() || col.back().rows.hi < rows.lo,
              "segments must be added in increasing, disjoint row order");
  col.push_back({rows, block});
}

index_t ElementMap::block_of(index_t i, index_t j) const {
  const auto col = column_segments(j);
  // Binary search the last segment starting at or before i.
  const auto it = std::upper_bound(col.begin(), col.end(), i,
                                   [](index_t x, const ColumnSegment& s) {
                                     return x < s.rows.lo;
                                   });
  SPF_REQUIRE(it != col.begin(), "element not covered by any segment");
  const ColumnSegment& s = *(it - 1);
  SPF_REQUIRE(s.rows.contains(i), "element falls in a segment gap");
  return s.block;
}

std::span<const ColumnSegment> ElementMap::column_segments(index_t j) const {
  SPF_REQUIRE(j >= 0 && j < n(), "column out of range");
  return segs_[static_cast<std::size_t>(j)];
}

void ElementMap::validate_covers(const SymbolicFactor& sf) const {
  SPF_REQUIRE(sf.n() == n(), "map/factor size mismatch");
  for (index_t j = 0; j < n(); ++j) {
    for (index_t i : sf.col_rows(j)) {
      (void)block_of(i, j);  // throws when uncovered
    }
  }
}

}  // namespace spf
