// Element-to-unit-block map.
//
// Every structural nonzero of the factor belongs to exactly one unit block.
// Because dense blocks are contiguous row ranges within their columns, the
// map is stored as per-column sorted segment lists, giving O(log s) lookup
// and O(1) amortized scans.
#pragma once

#include <span>
#include <vector>

#include "matrix/types.hpp"
#include "support/interval_tree.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

/// One row segment of a column mapped to a block.
struct ColumnSegment {
  Interval<index_t> rows;
  index_t block = -1;
};

class ElementMap {
 public:
  ElementMap() = default;
  explicit ElementMap(index_t n) : segs_(static_cast<std::size_t>(n)) {}

  /// Register that rows `rows` of column j belong to `block`.  Segments of
  /// a column must be added in increasing, non-overlapping row order.
  void add_segment(index_t j, Interval<index_t> rows, index_t block);

  /// Block owning element (i, j); the element must be covered.
  [[nodiscard]] index_t block_of(index_t i, index_t j) const;

  /// All segments of column j, ascending by row.
  [[nodiscard]] std::span<const ColumnSegment> column_segments(index_t j) const;

  [[nodiscard]] index_t n() const { return static_cast<index_t>(segs_.size()); }

  /// Verify that the map covers exactly the structural nonzeros of `sf`
  /// (each entry inside some segment, segments within the column's row
  /// span).  Throws on violation; used by tests and debug assertions.
  void validate_covers(const SymbolicFactor& sf) const;

 private:
  std::vector<std::vector<ColumnSegment>> segs_;
};

}  // namespace spf
