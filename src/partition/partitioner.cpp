#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace spf {

std::string to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kColumn:
      return "column";
    case BlockKind::kTriangle:
      return "triangle";
    case BlockKind::kRectangle:
      return "rectangle";
  }
  return "unknown";
}

std::vector<Interval<index_t>> split_extent(Interval<index_t> extent, index_t parts) {
  SPF_REQUIRE(!extent.empty(), "cannot split an empty extent");
  const index_t len = extent.length();
  parts = std::clamp<index_t>(parts, 1, len);
  std::vector<Interval<index_t>> out;
  out.reserve(static_cast<std::size_t>(parts));
  const index_t base = len / parts;
  const index_t rem = len % parts;
  index_t lo = extent.lo;
  for (index_t q = 0; q < parts; ++q) {
    const index_t sz = base + (q < rem ? 1 : 0);
    out.push_back({lo, lo + sz - 1});
    lo += sz;
  }
  SPF_CHECK(lo == extent.hi + 1, "segments must tile the extent");
  return out;
}

index_t triangle_segments(index_t width, index_t max_parts) {
  SPF_REQUIRE(width >= 1, "triangle width must be positive");
  SPF_REQUIRE(max_parts >= 1, "need at least one part");
  index_t s = 1;
  while ((s + 1) * (s + 2) / 2 <= max_parts && s + 1 <= width) ++s;
  return s;
}

std::pair<index_t, index_t> choose_grid(index_t height, index_t width, index_t max_parts) {
  SPF_REQUIRE(height >= 1 && width >= 1, "rectangle must be non-empty");
  SPF_REQUIRE(max_parts >= 1, "need at least one part");
  index_t best_r = 1, best_c = 1;
  count_t best_count = 1;
  double best_aspect = 1e300;
  for (index_t c = 1; c <= std::min(width, max_parts); ++c) {
    const index_t r = std::min(height, max_parts / c);
    if (r < 1) break;
    const count_t cnt = static_cast<count_t>(r) * c;
    // Piece shape: (height/r) x (width/c); prefer pieces close to square.
    const double aspect = std::abs(std::log((static_cast<double>(height) / r) /
                                            (static_cast<double>(width) / c)));
    if (cnt > best_count || (cnt == best_count && aspect < best_aspect)) {
      best_count = cnt;
      best_aspect = aspect;
      best_r = r;
      best_c = c;
    }
  }
  return {best_r, best_c};
}

namespace {

/// Emits the unit blocks of one multi-column cluster in allocation order
/// and fills the element map for its columns.
void partition_cluster(const SymbolicFactor& sf, const Cluster& cl, index_t cluster_id,
                       const PartitionOptions& opt, std::vector<UnitBlock>& blocks,
                       ElementMap& emap, ClusterBlocks& out) {
  const index_t w = cl.width;
  const Interval<index_t> tri_cols{cl.first, cl.last()};

  // ---- Diagonal triangle -> s column segments -> s unit triangles plus
  //      s(s-1)/2 in-triangle unit rectangles.
  const count_t tri_elems = static_cast<count_t>(w) * (w + 1) / 2;
  index_t tri_parts = static_cast<index_t>(
      std::max<count_t>(1, tri_elems / std::max<index_t>(1, opt.grain_triangle)));
  // Section 3.2 parameter (a): cap by the processor count of the
  // triangle's predecessors, when the caller supplied one.
  if (static_cast<std::size_t>(cluster_id) < opt.triangle_unit_caps.size()) {
    const index_t cap = opt.triangle_unit_caps[static_cast<std::size_t>(cluster_id)];
    if (cap >= 1) tri_parts = std::min(tri_parts, cap);
  }
  const index_t s = triangle_segments(w, tri_parts);
  const std::vector<Interval<index_t>> seg = split_extent(tri_cols, s);

  // Unit triangles, top to bottom.
  std::vector<index_t> unit_tri_ids(static_cast<std::size_t>(s));
  for (index_t q = 0; q < s; ++q) {
    const index_t id = static_cast<index_t>(blocks.size());
    unit_tri_ids[static_cast<std::size_t>(q)] = id;
    const index_t m = seg[static_cast<std::size_t>(q)].length();
    blocks.push_back({BlockKind::kTriangle, cluster_id, seg[static_cast<std::size_t>(q)],
                      seg[static_cast<std::size_t>(q)],
                      static_cast<count_t>(m) * (m + 1) / 2});
    out.triangle_units.push_back(id);
  }
  // In-triangle rectangles, top-to-bottom (row band), left-to-right (col
  // band) — the paper's t2, t4, t5 order.
  std::vector<std::vector<index_t>> intri(static_cast<std::size_t>(s),
                                          std::vector<index_t>(static_cast<std::size_t>(s), -1));
  for (index_t q2 = 1; q2 < s; ++q2) {
    for (index_t q1 = 0; q1 < q2; ++q1) {
      const index_t id = static_cast<index_t>(blocks.size());
      intri[static_cast<std::size_t>(q2)][static_cast<std::size_t>(q1)] = id;
      blocks.push_back({BlockKind::kRectangle, cluster_id, seg[static_cast<std::size_t>(q1)],
                        seg[static_cast<std::size_t>(q2)],
                        static_cast<count_t>(seg[static_cast<std::size_t>(q1)].length()) *
                            seg[static_cast<std::size_t>(q2)].length()});
      out.triangle_units.push_back(id);
    }
  }

  // ---- Off-diagonal rectangles, top to bottom.
  struct RectGrid {
    std::vector<Interval<index_t>> row_strips;
    std::vector<Interval<index_t>> col_strips;
    std::vector<index_t> ids;  // row-major: strip (ri, ci)
  };
  std::vector<RectGrid> grids;
  for (const Interval<index_t>& rows : cl.rect_rows) {
    const count_t elems = static_cast<count_t>(w) * rows.length();
    const index_t parts = static_cast<index_t>(
        std::max<count_t>(1, elems / std::max<index_t>(1, opt.grain_rectangle)));
    const auto [r, c] = choose_grid(rows.length(), w, parts);
    RectGrid g;
    g.row_strips = split_extent(rows, r);
    g.col_strips = split_extent(tri_cols, c);
    out.rect_units.emplace_back();
    for (index_t ri = 0; ri < r; ++ri) {
      for (index_t ci = 0; ci < c; ++ci) {
        const index_t id = static_cast<index_t>(blocks.size());
        blocks.push_back({BlockKind::kRectangle, cluster_id,
                          g.col_strips[static_cast<std::size_t>(ci)],
                          g.row_strips[static_cast<std::size_t>(ri)],
                          static_cast<count_t>(
                              g.col_strips[static_cast<std::size_t>(ci)].length()) *
                              g.row_strips[static_cast<std::size_t>(ri)].length()});
        g.ids.push_back(id);
        out.rect_units.back().push_back(id);
      }
    }
    grids.push_back(std::move(g));
  }

  // ---- Element map for the cluster's columns.
  for (index_t j = cl.first; j <= cl.last(); ++j) {
    // Column j lives in triangle segment q.
    index_t q = 0;
    while (!seg[static_cast<std::size_t>(q)].contains(j)) ++q;
    emap.add_segment(j, {j, seg[static_cast<std::size_t>(q)].hi},
                     unit_tri_ids[static_cast<std::size_t>(q)]);
    for (index_t q2 = q + 1; q2 < s; ++q2) {
      emap.add_segment(j, seg[static_cast<std::size_t>(q2)],
                       intri[static_cast<std::size_t>(q2)][static_cast<std::size_t>(q)]);
    }
    for (const RectGrid& g : grids) {
      index_t ci = 0;
      while (!g.col_strips[static_cast<std::size_t>(ci)].contains(j)) ++ci;
      const index_t c = static_cast<index_t>(g.col_strips.size());
      for (index_t ri = 0; ri < static_cast<index_t>(g.row_strips.size()); ++ri) {
        emap.add_segment(j, g.row_strips[static_cast<std::size_t>(ri)],
                         g.ids[static_cast<std::size_t>(ri * c + ci)]);
      }
    }
  }
  (void)sf;
}

}  // namespace

Partition partition_factor(const SymbolicFactor& sf, const PartitionOptions& opt) {
  SPF_REQUIRE(opt.grain_triangle >= 1 && opt.grain_rectangle >= 1, "grain must be >= 1");
  Partition p;
  p.options = opt;
  p.factor = amalgamate(sf, opt.allow_zeros);
  p.clusters = find_clusters(p.factor, opt.min_cluster_width);
  p.emap = ElementMap(p.factor.n());
  p.layout.resize(p.clusters.clusters.size());

  for (std::size_t ci = 0; ci < p.clusters.clusters.size(); ++ci) {
    const Cluster& cl = p.clusters.clusters[ci];
    ClusterBlocks& lay = p.layout[ci];
    if (cl.width == 1) {
      const index_t j = cl.first;
      const index_t id = static_cast<index_t>(p.blocks.size());
      const auto rows = p.factor.col_rows(j);
      p.blocks.push_back({BlockKind::kColumn, static_cast<index_t>(ci),
                          {j, j},
                          {j, rows.back()},
                          static_cast<count_t>(rows.size())});
      lay.column_unit = id;
      p.emap.add_segment(j, {j, rows.back()}, id);
    } else {
      partition_cluster(p.factor, cl, static_cast<index_t>(ci), opt, p.blocks, p.emap, lay);
    }
  }
  return p;
}

}  // namespace spf
