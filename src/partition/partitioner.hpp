// Block partitioner — paper Sections 3.1 and 3.2.
//
// Turns the symbolic factor into clusters and then into grain-sized unit
// blocks (columns, triangles, rectangles), producing the element->block map
// and the per-cluster layout the scheduler walks.
#pragma once

#include <vector>

#include "partition/element_map.hpp"
#include "partition/region.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic_factor.hpp"

namespace spf {

struct PartitionOptions {
  /// Minimum elements per unit block cut from a triangle ("the grain size
  /// ... the minimum number of matrix elements required in each unit
  /// block"; the paper uses one value for triangles and one for
  /// rectangles).
  index_t grain_triangle = 4;
  /// Minimum elements per unit block cut from a rectangle.
  index_t grain_rectangle = 4;
  /// Strips narrower than this become single-column clusters (Table 4).
  index_t min_cluster_width = 4;
  /// Supernode-amalgamation zero budget per column (0 = strict clusters).
  index_t allow_zeros = 0;
  /// Optional per-cluster cap on the number of unit blocks a triangle may
  /// be cut into — the paper's Section 3.2 parameter (a): "the number of
  /// processors that are assigned to the blocks on which the triangle
  /// depends", which "restricts communication to the group of processors
  /// that work on the triangle and its predecessors".  Indexed by cluster
  /// id; empty disables the cap (the paper's fixed-grain experiments).
  /// Pipeline::block_mapping_adaptive() computes these caps.
  std::vector<index_t> triangle_unit_caps;

  /// Set both grain sizes at once (the tables use a single g).
  static PartitionOptions with_grain(index_t g, index_t min_width = 4) {
    return {g, g, min_width, 0, {}};
  }
};

/// Layout of one cluster's unit blocks in allocation order (Section 3.4).
struct ClusterBlocks {
  /// Width-1 clusters: the single column unit; -1 otherwise.
  index_t column_unit = -1;
  /// Units of the diagonal triangle: unit triangles top-to-bottom first,
  /// then in-triangle rectangles top-to-bottom / left-to-right.
  std::vector<index_t> triangle_units;
  /// Units of each below-diagonal rectangle (outer: rectangles top to
  /// bottom; inner: units top-to-bottom / left-to-right).
  std::vector<std::vector<index_t>> rect_units;
};

struct Partition {
  /// The factor structure the partition covers (amalgamation may have
  /// augmented the input with explicit zeros).
  SymbolicFactor factor;
  ClusterSet clusters;
  std::vector<UnitBlock> blocks;
  ElementMap emap;
  std::vector<ClusterBlocks> layout;  ///< one per cluster
  PartitionOptions options;

  [[nodiscard]] index_t num_blocks() const { return static_cast<index_t>(blocks.size()); }
};

/// Run the partitioner.
Partition partition_factor(const SymbolicFactor& sf, const PartitionOptions& opt);

/// Split `width` into `parts` contiguous segments as equally as possible
/// (remainder spread over the leading segments).  Exposed for tests.
std::vector<Interval<index_t>> split_extent(Interval<index_t> extent, index_t parts);

/// Choose the (row_strips, col_strips) grid for partitioning a rectangle of
/// `height` x `width` into at most `max_parts` units.  Exposed for tests.
std::pair<index_t, index_t> choose_grid(index_t height, index_t width, index_t max_parts);

/// Largest s with s(s+1)/2 <= max_parts, clamped to [1, width]: the number
/// of column segments a triangle is cut into.  Exposed for tests.
index_t triangle_segments(index_t width, index_t max_parts);

}  // namespace spf
