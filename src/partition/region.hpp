// Unit-block model — paper Section 3.2.
//
// After clustering, each dense block is partitioned into schedulable unit
// blocks of regular shape: "each unit block is either a column, a rectangle
// or a triangle".
#pragma once

#include <string>

#include "matrix/types.hpp"
#include "support/interval_tree.hpp"

namespace spf {

enum class BlockKind : unsigned char {
  kColumn,     ///< a whole (sparse) column of the factor
  kTriangle,   ///< dense lower-triangular diagonal block; rows == cols
  kRectangle,  ///< dense off-diagonal block
};

std::string to_string(BlockKind kind);

/// One schedulable unit block.
struct UnitBlock {
  BlockKind kind = BlockKind::kColumn;
  index_t cluster = 0;           ///< owning cluster id
  Interval<index_t> cols{0, 0};  ///< column extent (inclusive)
  Interval<index_t> rows{0, 0};  ///< row extent (for kColumn: the full
                                 ///< subdiagonal span; sparse within it)
  count_t elements = 0;          ///< factor elements covered

  [[nodiscard]] bool is_dense() const { return kind != BlockKind::kColumn; }
};

}  // namespace spf
