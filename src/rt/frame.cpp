#include "rt/frame.hpp"

#include <cstring>

namespace spf::rt {

namespace {

// Little-endian primitive writers/readers.  The readers take a cursor
// into a bounds-checked span: `need` has already verified the size, so
// the memcpy can never overrun.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void malformed(RtErrCode code, const std::string& what) {
  throw RtFrameError(code, what);
}

void need(std::span<const std::uint8_t> payload, std::size_t n, const char* what) {
  if (payload.size() < n) {
    malformed(RtErrCode::kBadFrame,
              std::string("runtime frame truncated reading ") + what + " (" +
                  std::to_string(payload.size()) + " of " + std::to_string(n) +
                  " bytes)");
  }
}

std::vector<std::uint8_t> make_frame(RtFrameType type, std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kRtHeaderSize + payload_len);
  put_u32(out, kRtMagic);
  put_u16(out, kRtWireVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload_len));
  return out;
}

}  // namespace

const char* to_string(RtErrCode c) {
  switch (c) {
    case RtErrCode::kBadMagic: return "bad-magic";
    case RtErrCode::kBadVersion: return "bad-version";
    case RtErrCode::kBadFrame: return "bad-frame";
    case RtErrCode::kFrameTooLarge: return "frame-too-large";
    case RtErrCode::kUnknownType: return "unknown-type";
  }
  return "unknown";
}

std::vector<std::uint8_t> rt_encode_hello(index_t rank, index_t nranks) {
  auto out = make_frame(RtFrameType::kHello, 8);
  put_u32(out, static_cast<std::uint32_t>(rank));
  put_u32(out, static_cast<std::uint32_t>(nranks));
  return out;
}

std::vector<std::uint8_t> rt_encode_data(std::int32_t tag,
                                         const std::vector<count_t>& ids,
                                         const std::vector<double>& values) {
  const std::size_t payload = 12 + 8 * ids.size() + 8 * values.size();
  auto out = make_frame(RtFrameType::kData, payload);
  put_u32(out, static_cast<std::uint32_t>(tag));
  put_u32(out, static_cast<std::uint32_t>(ids.size()));
  put_u32(out, static_cast<std::uint32_t>(values.size()));
  for (count_t id : ids) put_u64(out, static_cast<std::uint64_t>(id));
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
  }
  return out;
}

std::vector<std::uint8_t> rt_encode_barrier(std::uint32_t epoch) {
  auto out = make_frame(RtFrameType::kBarrier, 4);
  put_u32(out, epoch);
  return out;
}

std::vector<std::uint8_t> rt_encode_bye() { return make_frame(RtFrameType::kBye, 0); }

RtFrameHeader rt_decode_header(std::span<const std::uint8_t> bytes) {
  need(bytes, kRtHeaderSize, "frame header");
  const std::uint32_t magic = get_u32(bytes.data());
  if (magic != kRtMagic) {
    malformed(RtErrCode::kBadMagic, "runtime frame magic mismatch (got 0x" +
                                        std::to_string(magic) + ", stream is not SPFR)");
  }
  const std::uint16_t version = get_u16(bytes.data() + 4);
  if (version != kRtWireVersion) {
    malformed(RtErrCode::kBadVersion,
              "runtime wire version mismatch (peer speaks v" + std::to_string(version) +
                  ", this build speaks v" + std::to_string(kRtWireVersion) + ")");
  }
  const std::uint16_t type = get_u16(bytes.data() + 6);
  const std::uint32_t payload_len = get_u32(bytes.data() + 8);
  if (payload_len > kRtMaxPayload) {
    malformed(RtErrCode::kFrameTooLarge,
              "runtime frame payload of " + std::to_string(payload_len) +
                  " bytes exceeds the " + std::to_string(kRtMaxPayload) + " ceiling");
  }
  if (type < static_cast<std::uint16_t>(RtFrameType::kHello) ||
      type > static_cast<std::uint16_t>(RtFrameType::kBye)) {
    malformed(RtErrCode::kUnknownType,
              "unknown runtime frame type " + std::to_string(type));
  }
  return {static_cast<RtFrameType>(type), payload_len};
}

RtHelloBody rt_decode_hello(std::span<const std::uint8_t> payload) {
  if (payload.size() != 8) {
    malformed(RtErrCode::kBadFrame, "hello payload must be 8 bytes, got " +
                                        std::to_string(payload.size()));
  }
  RtHelloBody body;
  const std::uint32_t rank = get_u32(payload.data());
  const std::uint32_t nranks = get_u32(payload.data() + 4);
  // A flipped bit in either field must not alias a plausible peer.
  if (nranks == 0 || nranks > (1u << 20) || rank >= nranks) {
    malformed(RtErrCode::kBadFrame, "hello names rank " + std::to_string(rank) +
                                        " of " + std::to_string(nranks));
  }
  body.rank = static_cast<index_t>(rank);
  body.nranks = static_cast<index_t>(nranks);
  return body;
}

RtDataBody rt_decode_data(std::span<const std::uint8_t> payload) {
  need(payload, 12, "data prefix");
  RtDataBody body;
  body.tag = static_cast<std::int32_t>(get_u32(payload.data()));
  const std::uint64_t n_ids = get_u32(payload.data() + 4);
  const std::uint64_t n_values = get_u32(payload.data() + 8);
  // Exact-length check before any allocation: the counts alone could
  // otherwise demand gigabytes from a 12-byte frame.
  if (12 + 8 * n_ids + 8 * n_values != payload.size()) {
    malformed(RtErrCode::kBadFrame,
              "data payload length mismatch (" + std::to_string(payload.size()) +
                  " bytes for " + std::to_string(n_ids) + " ids + " +
                  std::to_string(n_values) + " values)");
  }
  body.ids.resize(static_cast<std::size_t>(n_ids));
  body.values.resize(static_cast<std::size_t>(n_values));
  const std::uint8_t* p = payload.data() + 12;
  for (std::size_t t = 0; t < body.ids.size(); ++t, p += 8) {
    body.ids[t] = static_cast<count_t>(get_u64(p));
  }
  for (std::size_t t = 0; t < body.values.size(); ++t, p += 8) {
    const std::uint64_t bits = get_u64(p);
    std::memcpy(&body.values[t], &bits, sizeof(double));
  }
  return body;
}

std::uint32_t rt_decode_barrier(std::span<const std::uint8_t> payload) {
  if (payload.size() != 4) {
    malformed(RtErrCode::kBadFrame, "barrier payload must be 4 bytes, got " +
                                        std::to_string(payload.size()));
  }
  return get_u32(payload.data());
}

void rt_decode_bye(std::span<const std::uint8_t> payload) {
  if (!payload.empty()) {
    malformed(RtErrCode::kBadFrame,
              "bye payload must be empty, got " + std::to_string(payload.size()) +
                  " bytes");
  }
}

}  // namespace spf::rt
