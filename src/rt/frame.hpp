// The distributed runtime's wire format (RtFrame, version 1).
//
// Everything a TcpTransport puts on a socket is a length-prefixed binary
// frame in the SPF1 style (net/protocol.hpp), with its own magic so a
// runtime peer miswired into a serving port (or vice versa) is refused
// on the first four bytes:
//
//   offset  size  field
//   0       4     magic        0x52465053 — the bytes "SPFR" on the wire
//   4       2     version      wire major version (currently 1)
//   6       2     type         RtFrameType
//   8       4     payload_len  bytes following the header (<= kRtMaxPayload)
//   12      ...   payload
//
// Payload layouts (all integers little-endian, doubles IEEE-754 binary64
// bit patterns — factor values cross the wire bit-exactly, which is what
// makes the distributed factor bitwise identical to the shared-memory
// one):
//
//   kHello    u32 rank, u32 nranks        (connection handshake)
//   kData     i32 tag, u32 n_ids, u32 n_values,
//             n_ids x i64 element ids, n_values x f64 values
//   kBarrier  u32 epoch
//   kBye      (empty)                     (orderly goodbye)
//
// The codec is the trust boundary of the runtime: every decode path is
// bounds-checked before it allocates, counts must match payload_len
// exactly, and malformed input is reported exclusively as a typed
// RtFrameError — never a crash or an over-allocation (fuzzed with
// truncated, oversized, bit-flipped, and random-garbage frames in
// tests/test_rt.cpp, including against live sockets).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rt/transport.hpp"

namespace spf::rt {

inline constexpr std::uint32_t kRtMagic = 0x52465053u;  // "SPFR" little-endian
inline constexpr std::uint16_t kRtWireVersion = 1;
inline constexpr std::size_t kRtHeaderSize = 12;
/// Hard ceiling on a frame's payload; larger headers are refused before
/// any payload byte is read.
inline constexpr std::uint32_t kRtMaxPayload = 1u << 28;  // 256 MiB

enum class RtFrameType : std::uint16_t {
  kHello = 1,    ///< connection handshake: who is dialing in
  kData = 2,     ///< one tagged (ids, values) message
  kBarrier = 3,  ///< barrier epoch announcement
  kBye = 4,      ///< orderly goodbye; EOF after this is clean
};

/// Typed malformation codes carried by RtFrameError.
enum class RtErrCode : std::uint16_t {
  kBadMagic = 1,      ///< header magic mismatch — stream is not SPFR
  kBadVersion = 2,    ///< peer speaks a different wire major
  kBadFrame = 3,      ///< malformed / truncated / inconsistent payload
  kFrameTooLarge = 4, ///< payload_len exceeds kRtMaxPayload
  kUnknownType = 5,   ///< unrecognized RtFrameType
};

[[nodiscard]] const char* to_string(RtErrCode c);

/// The codec's one failure mode: every malformed input decodes to this.
class RtFrameError : public RtError {
 public:
  RtFrameError(RtErrCode code, const std::string& what) : RtError(what), code_(code) {}
  [[nodiscard]] RtErrCode code() const { return code_; }

 private:
  RtErrCode code_;
};

struct RtFrameHeader {
  RtFrameType type = RtFrameType::kBye;
  std::uint32_t payload_len = 0;
};

struct RtHelloBody {
  index_t rank = -1;
  index_t nranks = 0;
};

/// A decoded kData payload (the source rank comes from the connection).
struct RtDataBody {
  std::int32_t tag = 0;
  std::vector<count_t> ids;
  std::vector<double> values;
};

// --- Encoding (always produces a complete, valid frame) -------------------

[[nodiscard]] std::vector<std::uint8_t> rt_encode_hello(index_t rank, index_t nranks);
[[nodiscard]] std::vector<std::uint8_t> rt_encode_data(std::int32_t tag,
                                                       const std::vector<count_t>& ids,
                                                       const std::vector<double>& values);
[[nodiscard]] std::vector<std::uint8_t> rt_encode_barrier(std::uint32_t epoch);
[[nodiscard]] std::vector<std::uint8_t> rt_encode_bye();

// --- Decoding (throws RtFrameError on any malformation) -------------------

/// Parse and validate a frame header (exactly kRtHeaderSize bytes).
[[nodiscard]] RtFrameHeader rt_decode_header(std::span<const std::uint8_t> bytes);

[[nodiscard]] RtHelloBody rt_decode_hello(std::span<const std::uint8_t> payload);
[[nodiscard]] RtDataBody rt_decode_data(std::span<const std::uint8_t> payload);
[[nodiscard]] std::uint32_t rt_decode_barrier(std::span<const std::uint8_t> payload);
/// kBye carries nothing; a non-empty payload is malformed.
void rt_decode_bye(std::span<const std::uint8_t> payload);

}  // namespace spf::rt
