#include "rt/loopback.hpp"

#include "rt/frame.hpp"
#include "support/check.hpp"

namespace spf::rt {

namespace {

/// What this message would occupy as a kData RtFrame on the TCP wire —
/// keeps the loopback byte accounting comparable to the socket backend
/// without serializing anything.
count_t wire_bytes(const RtMessage& msg) {
  return static_cast<count_t>(kRtHeaderSize + 12 + 8 * msg.ids.size() +
                              8 * msg.values.size());
}

}  // namespace

class LoopbackFabric::Endpoint final : public Transport {
 public:
  Endpoint(LoopbackFabric* fabric, index_t rank) : fabric_(fabric), rank_(rank) {}

  [[nodiscard]] index_t rank() const override { return rank_; }
  [[nodiscard]] index_t nranks() const override { return fabric_->nranks_; }

  void send(index_t dst, std::int32_t tag, std::vector<count_t> ids,
            std::vector<double> values) override {
    SPF_REQUIRE(dst >= 0 && dst < fabric_->nranks_, "send destination out of range");
    RtMessage msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.ids = std::move(ids);
    msg.values = std::move(values);
    bytes_sent_.fetch_add(wire_bytes(msg), std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    fabric_->deliver(rank_, dst, std::move(msg), blocked_sends_);
  }

  RtMessage recv() override {
    RtMessage out;
    fabric_->take(rank_, out, /*blocking=*/true);
    return out;
  }

  bool try_recv(RtMessage& out) override {
    return fabric_->take(rank_, out, /*blocking=*/false);
  }

  void barrier() override { fabric_->barrier_wait(); }

  [[nodiscard]] TransportStats stats() const override {
    TransportStats s;
    s.rank = rank_;
    s.nranks = fabric_->nranks_;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.blocked_sends = blocked_sends_.load(std::memory_order_relaxed);
    const auto np = static_cast<std::size_t>(fabric_->nranks_);
    s.recv_messages.assign(np, 0);
    s.recv_volume.assign(np, 0);
    s.recv_bytes.assign(np, 0);
    std::lock_guard<std::mutex> lock(fabric_->stats_mu_);
    for (std::size_t src = 0; src < np; ++src) {
      const std::size_t cell = static_cast<std::size_t>(rank_) * np + src;
      s.recv_messages[src] = fabric_->pair_messages_[cell];
      s.recv_volume[src] = fabric_->pair_volume_[cell];
      s.recv_bytes[src] = fabric_->pair_bytes_[cell];
      s.messages_received += s.recv_messages[src];
      s.bytes_received += s.recv_bytes[src];
    }
    return s;
  }

  void shutdown() noexcept override {
    // A loopback rank cannot vanish on its own: its "crash" takes the
    // whole in-process machine down, exactly as Machine always modeled it.
    fabric_->abort();
  }

 private:
  friend class LoopbackFabric;
  LoopbackFabric* fabric_;
  index_t rank_;
  // Atomics: a rank's worker threads may send concurrently with another
  // thread snapshotting stats().
  std::atomic<count_t> messages_sent_{0};
  std::atomic<count_t> bytes_sent_{0};
  std::atomic<count_t> blocked_sends_{0};
};

LoopbackFabric::LoopbackFabric(index_t nranks, const LoopbackOptions& opt)
    : nranks_(nranks),
      capacity_(opt.capacity),
      mailboxes_(static_cast<std::size_t>(nranks)) {
  SPF_REQUIRE(nranks >= 1, "loopback fabric needs at least one rank");
  const auto np = static_cast<std::size_t>(nranks);
  pair_messages_.assign(np * np, 0);
  pair_volume_.assign(np * np, 0);
  pair_bytes_.assign(np * np, 0);
  endpoints_.reserve(np);
  for (index_t r = 0; r < nranks; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(this, r));
  }
}

LoopbackFabric::~LoopbackFabric() = default;

Transport& LoopbackFabric::endpoint(index_t r) {
  SPF_REQUIRE(r >= 0 && r < nranks_, "endpoint rank out of range");
  return *endpoints_[static_cast<std::size_t>(r)];
}

void LoopbackFabric::deliver(index_t src, index_t dst, RtMessage msg,
                             std::atomic<count_t>& blocked_counter) {
  const count_t bytes = wire_bytes(msg);
  const auto nvalues = static_cast<count_t>(msg.values.size());
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::unique_lock<std::mutex> lock(box.mu);
    if (capacity_ > 0 && box.queue.size() >= capacity_) {
      // Backpressure: block until the receiver drains.  Count the send as
      // blocked once, however long the wait lasts.
      blocked_counter.fetch_add(1, std::memory_order_relaxed);
      box.cv_space.wait(lock, [&] {
        return box.queue.size() < capacity_ || aborted_.load(std::memory_order_relaxed);
      });
      if (aborted_.load(std::memory_order_relaxed)) {
        throw RtAborted("loopback fabric aborted while a send was blocked");
      }
    }
    // Record the delivery BEFORE the message becomes visible: a receiver
    // that pops it, completes, and snapshots stats must find it counted.
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      const std::size_t cell =
          static_cast<std::size_t>(dst) * static_cast<std::size_t>(nranks_) +
          static_cast<std::size_t>(src);
      ++pair_messages_[cell];
      pair_volume_[cell] += nvalues;
      pair_bytes_[cell] += bytes;
    }
    box.queue.push_back(std::move(msg));
  }
  box.cv_recv.notify_all();
}

bool LoopbackFabric::take(index_t rank, RtMessage& out, bool blocking) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  while (box.queue.empty()) {
    if (aborted_.load(std::memory_order_relaxed)) {
      throw RtAborted("loopback fabric aborted by a peer rank failure");
    }
    if (!blocking) return false;
    box.cv_recv.wait(lock);
  }
  out = std::move(box.queue.front());
  box.queue.pop_front();
  lock.unlock();
  box.cv_space.notify_all();
  return true;
}

void LoopbackFabric::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (aborted_.load(std::memory_order_relaxed)) {
    throw RtAborted("loopback fabric aborted before the barrier");
  }
  const index_t gen = barrier_generation_;
  if (++barrier_count_ == nranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] {
      return barrier_generation_ != gen || aborted_.load(std::memory_order_relaxed);
    });
    if (barrier_generation_ == gen) {
      throw RtAborted("loopback fabric aborted during the barrier");
    }
  }
}

void LoopbackFabric::abort() noexcept {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box.mu);
    box.cv_recv.notify_all();
    box.cv_space.notify_all();
  }
  std::lock_guard<std::mutex> lock(barrier_mu_);
  barrier_cv_.notify_all();
}

std::vector<count_t> LoopbackFabric::pair_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pair_messages_;
}

std::vector<count_t> LoopbackFabric::pair_volume() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pair_volume_;
}

std::vector<count_t> LoopbackFabric::pair_bytes() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return pair_bytes_;
}

count_t LoopbackFabric::total_messages() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  count_t total = 0;
  for (count_t c : pair_messages_) total += c;
  return total;
}

count_t LoopbackFabric::total_volume() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  count_t total = 0;
  for (count_t c : pair_volume_) total += c;
  return total;
}

count_t LoopbackFabric::blocked_sends() const {
  count_t total = 0;
  for (const auto& ep : endpoints_) {
    total += ep->blocked_sends_.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace spf::rt
