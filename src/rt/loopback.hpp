// In-process loopback transport: the deterministic backend of the
// distributed runtime, and the substrate msg/Machine now runs on.
//
// A LoopbackFabric owns one mailbox per rank; endpoint(r) hands out rank
// r's Transport.  Delivery is a queue push under a mutex, so every byte
// is accountable: the fabric tallies the same per-(dst, src) message and
// volume matrices the analytic traffic model predicts, and what a data
// message *would* occupy on the TCP wire (the exact RtFrame size) so the
// two backends report comparable byte counts.
//
// Bounded mode: `LoopbackOptions::capacity` caps each mailbox's queued
// message count.  A send into a full mailbox blocks until the receiver
// drains (incrementing the sender's blocked-send counter once per
// blocked call), which makes backpressure — the thing an infinite
// mailbox can never exhibit — deterministically testable.  The default
// capacity 0 keeps the historical never-blocking behavior.
//
// abort() models a rank crash: every blocked or future send/recv/barrier
// on any endpoint throws RtAborted instead of deadlocking the run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "rt/transport.hpp"

namespace spf::rt {

struct LoopbackOptions {
  /// Maximum messages queued per mailbox; 0 = unbounded (never blocks).
  std::size_t capacity = 0;
};

class LoopbackFabric {
 public:
  explicit LoopbackFabric(index_t nranks, const LoopbackOptions& opt = {});
  ~LoopbackFabric();

  LoopbackFabric(const LoopbackFabric&) = delete;
  LoopbackFabric& operator=(const LoopbackFabric&) = delete;

  [[nodiscard]] index_t nranks() const { return nranks_; }

  /// Rank r's endpoint.  Valid for the fabric's lifetime.
  [[nodiscard]] Transport& endpoint(index_t r);

  /// Wake every blocked operation with RtAborted and poison future ones.
  void abort() noexcept;

  /// True once abort() has been called (by anyone).
  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_relaxed); }

  // ---- Fabric-wide accounting (stable once all ranks are quiescent). ----

  /// messages[dst * nranks + src] data messages delivered.
  [[nodiscard]] std::vector<count_t> pair_messages() const;
  /// volume[dst * nranks + src] data values delivered.
  [[nodiscard]] std::vector<count_t> pair_volume() const;
  /// bytes[dst * nranks + src] equivalent RtFrame wire bytes delivered.
  [[nodiscard]] std::vector<count_t> pair_bytes() const;
  [[nodiscard]] count_t total_messages() const;
  [[nodiscard]] count_t total_volume() const;
  /// Sends that blocked on a full mailbox, across all ranks.
  [[nodiscard]] count_t blocked_sends() const;

 private:
  class Endpoint;
  friend class Endpoint;

  struct Mailbox {
    mutable std::mutex mu;
    std::condition_variable cv_recv;   // sleepers waiting for a message
    std::condition_variable cv_space;  // senders waiting for capacity
    std::deque<RtMessage> queue;
  };

  void deliver(index_t src, index_t dst, RtMessage msg,
               std::atomic<count_t>& blocked_counter);
  bool take(index_t rank, RtMessage& out, bool blocking);
  void barrier_wait();

  const index_t nranks_;
  const std::size_t capacity_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<bool> aborted_{false};

  mutable std::mutex stats_mu_;
  std::vector<count_t> pair_messages_;
  std::vector<count_t> pair_volume_;
  std::vector<count_t> pair_bytes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  index_t barrier_count_ = 0;
  index_t barrier_generation_ = 0;
};

}  // namespace spf::rt
