#include "rt/rt_cholesky.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>

#include "exec/elementwise_kernel.hpp"
#include "exec/thread_pool.hpp"
#include "rt/send_plan.hpp"
#include "support/check.hpp"

namespace spf::rt {

namespace {

/// Tag of the post-factorization gather messages (block tags are >= 0).
constexpr std::int32_t kGatherTag = -1;

/// Everything one rank's block tasks share.
struct RankContext {
  Transport& t;
  const CscMatrix& lower;
  const Partition& partition;
  const BlockDeps& deps;
  const Assignment& assignment;
  const RowStructure& rows_of;
  const SendPlan& plan;
  const RtExecOptions& opt;
  index_t me = 0;
  double* vals = nullptr;
};

/// Compute block b with the shared kernel, then ship its finished
/// elements per the consolidated plan plus empty release messages to
/// processors that own successors but need no data.
void compute_and_ship(const RankContext& ctx, index_t b, index_t worker) {
  obs::ExecObserver* const o = ctx.opt.observer;
  const std::int64_t t0 = o != nullptr ? obs::now_ns() : 0;
  elementwise_factor_block(ctx.lower, ctx.partition.factor,
                           ctx.partition.blocks[static_cast<std::size_t>(b)],
                           ctx.rows_of, ctx.vals, ElemNoObserve{});
  if (o != nullptr) {
    const count_t work = ctx.opt.blk_work != nullptr
                             ? (*ctx.opt.blk_work)[static_cast<std::size_t>(b)]
                             : 0;
    o->record_block(worker, ctx.me, b, work, t0, obs::now_ns(), false);
  }
  const auto& entries = ctx.plan.plan[static_cast<std::size_t>(b)];
  for (const auto& [dst, ids] : entries) {
    std::vector<double> payload(ids.size());
    for (std::size_t t = 0; t < ids.size(); ++t) {
      payload[t] = ctx.vals[static_cast<std::size_t>(ids[t])];
    }
    ctx.t.send(dst, b, ids, std::move(payload));
  }
  // The in-degree protocol needs one message per (block, remote proc
  // with a successor) pair even when no elements ship: empty releases.
  std::vector<char> notified(static_cast<std::size_t>(ctx.assignment.nprocs), 0);
  notified[static_cast<std::size_t>(ctx.me)] = 1;
  for (const auto& [dst, ids] : entries) notified[static_cast<std::size_t>(dst)] = 1;
  for (index_t s : ctx.deps.succs[static_cast<std::size_t>(b)]) {
    const index_t sp = ctx.assignment.proc(s);
    if (notified[static_cast<std::size_t>(sp)] == 0) {
      notified[static_cast<std::size_t>(sp)] = 1;
      ctx.t.send(sp, b, {}, {});
    }
  }
}

/// Deterministic inline loop: compute ready blocks lowest-id first,
/// receive when no owned block is ready.
count_t run_single_threaded(const RankContext& ctx, count_t expected) {
  const index_t nb = ctx.partition.num_blocks();
  std::vector<index_t> indeg(static_cast<std::size_t>(nb), 0);
  std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready;
  count_t owned_remaining = 0;
  for (index_t b = 0; b < nb; ++b) {
    indeg[static_cast<std::size_t>(b)] =
        static_cast<index_t>(ctx.deps.preds[static_cast<std::size_t>(b)].size());
    if (ctx.assignment.proc(b) != ctx.me) continue;
    ++owned_remaining;
    if (indeg[static_cast<std::size_t>(b)] == 0) ready.push(b);
  }
  const count_t owned_total = owned_remaining;

  auto release_successors = [&](index_t pred) {
    for (index_t s : ctx.deps.succs[static_cast<std::size_t>(pred)]) {
      if (ctx.assignment.proc(s) != ctx.me) continue;
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  };

  count_t received = 0;
  while (owned_remaining > 0 || received < expected) {
    if (!ready.empty()) {
      const index_t b = ready.top();
      ready.pop();
      compute_and_ship(ctx, b, /*worker=*/0);
      --owned_remaining;
      release_successors(b);
    } else {
      const RtMessage msg = ctx.t.recv();
      ++received;
      for (std::size_t t = 0; t < msg.ids.size(); ++t) {
        ctx.vals[static_cast<std::size_t>(msg.ids[t])] = msg.values[t];
      }
      release_successors(static_cast<index_t>(msg.tag));
    }
  }
  return owned_total;
}

/// Pool variant: workers compute, the driver thread absorbs the exact
/// expected message count.  A failing worker shuts the transport down so
/// the blocked driver (and every peer) fails fast instead of hanging.
count_t run_with_pool(const RankContext& ctx, count_t expected, index_t nthreads) {
  const index_t nb = ctx.partition.num_blocks();
  auto indeg = std::make_unique<std::atomic<index_t>[]>(static_cast<std::size_t>(nb));
  count_t owned_total = 0;
  for (index_t b = 0; b < nb; ++b) {
    indeg[static_cast<std::size_t>(b)].store(
        static_cast<index_t>(ctx.deps.preds[static_cast<std::size_t>(b)].size()),
        std::memory_order_relaxed);
    if (ctx.assignment.proc(b) == ctx.me) ++owned_total;
  }

  obs::ExecObserver* const o = ctx.opt.observer;
  ThreadPool pool({.nthreads = nthreads,
                   .allow_stealing = ctx.opt.allow_stealing,
                   .tracer = o != nullptr ? o->tracer() : nullptr});

  // Submitted from worker tasks and the driver's absorb path alike; the
  // acq_rel decrement publishes predecessor values to the final releaser.
  std::function<void(index_t)> run_block = [&](index_t b) {
    try {
      compute_and_ship(ctx, b, ThreadPool::worker_id());
    } catch (...) {
      // Poison the transport so the driver's blocking recv (and every
      // peer) fails fast; the pool rethrows the root cause at wait_idle.
      ctx.t.shutdown();
      throw;
    }
    for (index_t s : ctx.deps.succs[static_cast<std::size_t>(b)]) {
      if (ctx.assignment.proc(s) != ctx.me) continue;
      const index_t left =
          indeg[static_cast<std::size_t>(s)].fetch_sub(1, std::memory_order_acq_rel);
      SPF_CHECK(left >= 1, "rt block in-degree underflow (double release)");
      if (left == 1) {
        pool.submit(s % nthreads, [&run_block, s] { run_block(s); });
      }
    }
  };

  // Seed on the static predecessor count, NOT the live atomic: workers
  // running already-seeded blocks decrement successors concurrently with
  // this loop, and a block released to zero mid-seed has been submitted
  // by its releaser already — seeding it again would compute it twice.
  for (index_t b = 0; b < nb; ++b) {
    if (ctx.assignment.proc(b) != ctx.me) continue;
    if (ctx.deps.preds[static_cast<std::size_t>(b)].empty()) {
      pool.submit(b % nthreads, [&run_block, b] { run_block(b); });
    }
  }

  try {
    for (count_t received = 0; received < expected; ++received) {
      const RtMessage msg = ctx.t.recv();
      for (std::size_t t = 0; t < msg.ids.size(); ++t) {
        ctx.vals[static_cast<std::size_t>(msg.ids[t])] = msg.values[t];
      }
      for (index_t s : ctx.deps.succs[static_cast<std::size_t>(msg.tag)]) {
        if (ctx.assignment.proc(s) != ctx.me) continue;
        const index_t left =
            indeg[static_cast<std::size_t>(s)].fetch_sub(1, std::memory_order_acq_rel);
        SPF_CHECK(left >= 1, "rt block in-degree underflow (double release)");
        if (left == 1) {
          pool.submit(s % nthreads, [&run_block, s] { run_block(s); });
        }
      }
    }
    pool.wait_idle();  // rethrows the first worker failure
  } catch (const RtError&) {
    // The transport failed under us — but a worker exception is the
    // likelier root cause (workers poison the transport on the way out).
    pool.wait_idle();
    throw;
  }
  return owned_total;
}

}  // namespace

RtRankResult rt_cholesky_rank(Transport& transport, const CscMatrix& lower,
                              const Partition& partition, const BlockDeps& deps,
                              const Assignment& assignment, const RtExecOptions& opt) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(lower.has_values(), "numeric factorization needs values");
  SPF_REQUIRE(lower.ncols() == sf.n(), "matrix/partition size mismatch");
  SPF_REQUIRE(deps.preds.size() == partition.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(assignment.proc_of_block.size() == partition.blocks.size(),
              "assignment/partition mismatch");
  SPF_REQUIRE(assignment.nprocs == transport.nranks(),
              "mapping processor count must equal the transport rank count");
  const index_t nthreads = opt.nthreads > 0 ? opt.nthreads : 1;
  const index_t me = transport.rank();

  RowStructure local_rows;
  const RowStructure* rows_of = opt.row_structure;
  if (rows_of == nullptr) {
    local_rows = build_row_structure(sf);
    rows_of = &local_rows;
  }
  const SendPlan plan = build_send_plan(partition, assignment);
  const count_t expected = count_expected_messages(plan, deps, assignment, me);

  if (opt.observer != nullptr) opt.observer->begin_run(partition, assignment, nthreads);

  RtRankResult result;
  result.values.assign(static_cast<std::size_t>(sf.nnz()), 0.0);
  const RankContext ctx{transport, lower,     partition, deps, assignment,
                        *rows_of,  plan,      opt,       me,   result.values.data()};

  const auto t0 = std::chrono::steady_clock::now();
  result.blocks_computed = nthreads == 1 ? run_single_threaded(ctx, expected)
                                         : run_with_pool(ctx, expected, nthreads);
  // All factorization traffic into this rank has arrived (the expected
  // count is exact), so the data accounting is final here.  Snapshot
  // BEFORE the barrier: a peer may start sending gather traffic the
  // moment it passes the barrier, and it can only pass after this rank
  // enters it — i.e. after this snapshot.
  result.transport = transport.stats();
  transport.barrier();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (opt.metrics != nullptr) {
    auto& m = *opt.metrics;
    const TransportStats& s = result.transport;
    m.counter("rt.messages_sent").add(static_cast<std::uint64_t>(s.messages_sent));
    m.counter("rt.messages_received")
        .add(static_cast<std::uint64_t>(s.messages_received));
    m.counter("rt.bytes_sent").add(static_cast<std::uint64_t>(s.bytes_sent));
    m.counter("rt.bytes_received").add(static_cast<std::uint64_t>(s.bytes_received));
    m.counter("rt.volume_received").add(static_cast<std::uint64_t>(s.volume_received()));
    m.counter("rt.blocked_sends").add(static_cast<std::uint64_t>(s.blocked_sends));
    m.counter("rt.blocks_computed").add(static_cast<std::uint64_t>(result.blocks_computed));
    m.sum("rt.rank_seconds").add(result.wall_seconds);
  }
  return result;
}

std::vector<double> rt_gather_factor(Transport& transport, const Partition& partition,
                                     const Assignment& assignment,
                                     const std::vector<double>& local_values) {
  const SymbolicFactor& sf = partition.factor;
  SPF_REQUIRE(assignment.nprocs == transport.nranks(),
              "mapping processor count must equal the transport rank count");
  SPF_REQUIRE(local_values.size() == static_cast<std::size_t>(sf.nnz()),
              "gather input must cover the factor");
  const index_t me = transport.rank();
  if (me != 0) {
    const auto owner = element_owner_proc(partition, assignment);
    std::vector<count_t> ids;
    std::vector<double> values;
    for (std::size_t e = 0; e < owner.size(); ++e) {
      if (owner[e] != me) continue;
      ids.push_back(static_cast<count_t>(e));
      values.push_back(local_values[e]);
    }
    transport.send(0, kGatherTag, std::move(ids), std::move(values));
    return {};
  }
  std::vector<double> out(local_values);
  for (index_t r = 1; r < transport.nranks(); ++r) {
    const RtMessage msg = transport.recv();
    SPF_CHECK(msg.tag == kGatherTag, "unexpected message during factor gather");
    for (std::size_t t = 0; t < msg.ids.size(); ++t) {
      out[static_cast<std::size_t>(msg.ids[t])] = msg.values[t];
    }
  }
  return out;
}

RtRunResult rt_cholesky_run(const std::vector<Transport*>& endpoints,
                            const CscMatrix& lower, const Partition& partition,
                            const BlockDeps& deps, const Assignment& assignment,
                            const RtExecOptions& opt) {
  SPF_REQUIRE(!endpoints.empty(), "rt run needs at least one endpoint");
  SPF_REQUIRE(static_cast<index_t>(endpoints.size()) == assignment.nprocs,
              "endpoint count must equal the mapping processor count");
  for (Transport* t : endpoints) {
    SPF_REQUIRE(t != nullptr, "rt run endpoint is null");
  }
  // Share one row structure across all rank threads.
  const RowStructure rows_of =
      opt.row_structure != nullptr ? *opt.row_structure : build_row_structure(partition.factor);
  RtExecOptions rank_opt = opt;
  rank_opt.row_structure = &rows_of;

  RtRunResult result;
  result.per_rank.resize(endpoints.size());
  std::mutex err_mu;
  std::exception_ptr error;
  bool error_is_rt = false;
  std::atomic<count_t> blocks{0};
  std::vector<std::thread> threads;
  threads.reserve(endpoints.size());
  for (std::size_t r = 0; r < endpoints.size(); ++r) {
    threads.emplace_back([&, r] {
      try {
        RtRankResult rank = rt_cholesky_rank(*endpoints[r], lower, partition, deps,
                                             assignment, rank_opt);
        std::vector<double> gathered =
            rt_gather_factor(*endpoints[r], partition, assignment, rank.values);
        result.per_rank[r] = std::move(rank.transport);
        blocks.fetch_add(rank.blocks_computed, std::memory_order_relaxed);
        if (r == 0) result.values = std::move(gathered);
      } catch (...) {
        const std::exception_ptr eptr = std::current_exception();
        bool is_rt = false;
        try {
          std::rethrow_exception(eptr);
        } catch (const RtError&) {
          is_rt = true;
        } catch (...) {
        }
        {
          // Keep the root cause: a non-transport exception (say, a
          // non-SPD pivot) beats the secondary RtAborted/RtPeerLost the
          // other ranks observe once the transport is poisoned.
          std::lock_guard<std::mutex> lock(err_mu);
          if (error == nullptr || (error_is_rt && !is_rt)) {
            error = eptr;
            error_is_rt = is_rt;
          }
        }
        endpoints[r]->shutdown();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  if (error != nullptr) std::rethrow_exception(error);
  result.blocks_computed = blocks.load(std::memory_order_relaxed);
  return result;
}

}  // namespace spf::rt
