// Fan-both distributed numeric Cholesky over a pluggable Transport.
//
// Each rank of the runtime executes dist's mapping for real: it owns the
// unit blocks the scheduler assigned to its processor id, computes them
// with the shared element-wise kernel (exec/elementwise_kernel.hpp), and
// ships finished elements through its Transport per the consolidated
// fetch-once send plan (rt/send_plan.hpp).  Unlike the simulated-machine
// executor there is no global ordering between ranks: a rank runs any
// owned block whose in-degree has reached zero, and message receives
// release in-degrees as they arrive, in arrival order — the fan-both
// discipline.  Termination needs no probing: the send plan is a pure
// function of the mapping, so every rank counts the exact number of
// messages it will receive before the run starts.
//
// Determinism: every factor element is computed by exactly one block
// with the shared kernel's operation order, and operand values cross the
// transport as binary64 bit patterns, so the factor is bitwise identical
// to exec/parallel_cholesky and dist/distributed_cholesky on every
// transport, rank count, and thread count (tested).  And because sends
// are consolidated, the data values delivered between each rank pair
// equal the analytic traffic matrix (metrics/simulate_traffic) exactly.
#pragma once

#include <vector>

#include "matrix/csc.hpp"
#include "obs/exec_observer.hpp"
#include "obs/metrics.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "rt/transport.hpp"
#include "schedule/assignment.hpp"
#include "symbolic/row_structure.hpp"

namespace spf::rt {

struct RtExecOptions {
  /// Worker threads per rank; 1 runs the deterministic inline loop.
  index_t nthreads = 1;
  bool allow_stealing = true;
  /// Precomputed row structure (else built locally).
  const RowStructure* row_structure = nullptr;
  /// Per-block work estimates for observer spans (optional).
  const std::vector<count_t>* blk_work = nullptr;
  /// rt.* counters land here when set.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-rank spans/traces (begin_run is called with this rank's thread
  /// count; worker ids are rank-local).
  obs::ExecObserver* observer = nullptr;
};

/// What one rank's factorization produced.
struct RtRankResult {
  /// Factor values this rank computed or received (aligned with the
  /// partition's symbolic structure; elements this rank never saw are 0).
  std::vector<double> values;
  /// Transport accounting snapshotted when this rank's factorization
  /// completed, *before* the completion barrier and any gather traffic:
  /// recv_volume is exactly the factorization data traffic into this
  /// rank, per source.
  TransportStats transport;
  count_t blocks_computed = 0;
  double wall_seconds = 0.0;
};

/// Run rank `transport.rank()`'s share of the factorization.  Requires
/// assignment.nprocs == transport.nranks().  Collective: every rank of
/// the transport group must call it with the same mapping.  Throws
/// spf::invalid_input on non-SPD input and RtError subtypes on transport
/// failure (a lost peer fails fast, never hangs).
RtRankResult rt_cholesky_rank(Transport& transport, const CscMatrix& lower,
                              const Partition& partition, const BlockDeps& deps,
                              const Assignment& assignment,
                              const RtExecOptions& opt = {});

/// Collective gather after rt_cholesky_rank: every rank ships the
/// elements it owns to rank 0.  Returns the fully assembled factor on
/// rank 0, an empty vector elsewhere.
std::vector<double> rt_gather_factor(Transport& transport, const Partition& partition,
                                     const Assignment& assignment,
                                     const std::vector<double>& local_values);

/// In-process convenience driver (tests, benches): runs one thread per
/// rank over the given endpoints, gathers on rank 0, and snapshots every
/// rank's pre-gather transport stats.  If any rank fails, the failing
/// rank's transport is shut down so the group fails fast; the root-cause
/// exception is rethrown.
struct RtRunResult {
  std::vector<double> values;  ///< assembled factor (rank 0's gather)
  std::vector<TransportStats> per_rank;
  count_t blocks_computed = 0;
};

RtRunResult rt_cholesky_run(const std::vector<Transport*>& endpoints,
                            const CscMatrix& lower, const Partition& partition,
                            const BlockDeps& deps, const Assignment& assignment,
                            const RtExecOptions& opt = {});

}  // namespace spf::rt
