#include "rt/send_plan.hpp"

#include <unordered_set>

#include "support/check.hpp"

namespace spf::rt {

SendPlan build_send_plan(const Partition& p, const Assignment& a) {
  const SymbolicFactor& sf = p.factor;
  // Dedup on (dst proc, element).
  std::unordered_set<std::uint64_t> seen;
  const auto nnz = static_cast<std::uint64_t>(sf.nnz());
  // Collect per-block, per-proc element lists.
  std::vector<std::vector<std::pair<index_t, std::vector<count_t>>>> plan(p.blocks.size());
  auto need = [&](index_t dst_proc, count_t element, index_t src_block) {
    if (a.proc(src_block) == dst_proc) return;
    const std::uint64_t key =
        static_cast<std::uint64_t>(dst_proc) * nnz + static_cast<std::uint64_t>(element);
    if (!seen.insert(key).second) return;
    auto& lists = plan[static_cast<std::size_t>(src_block)];
    for (auto& [proc, ids] : lists) {
      if (proc == dst_proc) {
        ids.push_back(element);
        return;
      }
    }
    lists.emplace_back(dst_proc, std::vector<count_t>{element});
  };

  std::vector<index_t> src_blk;
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
    src_blk.resize(sd.size());
    {
      auto segs = p.emap.column_segments(k);
      std::size_t pos = 0;
      for (std::size_t t = 0; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        src_blk[t] = segs[pos].block;
      }
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      auto segs = p.emap.column_segments(sd[b]);
      std::size_t pos = 0;
      for (std::size_t t = b; t < sd.size(); ++t) {
        while (segs[pos].rows.hi < sd[t]) ++pos;
        const index_t target_proc = a.proc(segs[pos].block);
        need(target_proc, kbase + 1 + static_cast<count_t>(t), src_blk[t]);
        need(target_proc, kbase + 1 + static_cast<count_t>(b), src_blk[b]);
      }
    }
  }
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    const count_t diag_id = sf.col_ptr()[static_cast<std::size_t>(j)];
    const index_t diag_block = segs.front().block;
    for (const ColumnSegment& s : segs) {
      need(a.proc(s.block), diag_id, diag_block);
    }
  }
  return {std::move(plan)};
}

count_t count_expected_messages(const SendPlan& plan, const BlockDeps& deps,
                                const Assignment& a, index_t me) {
  SPF_REQUIRE(plan.plan.size() == deps.succs.size(), "send plan / deps mismatch");
  count_t expected = 0;
  for (std::size_t b = 0; b < plan.plan.size(); ++b) {
    if (a.proc(static_cast<index_t>(b)) == me) continue;
    bool sends_to_me = false;
    for (const auto& [dst, ids] : plan.plan[b]) {
      if (dst == me) {
        sends_to_me = true;
        break;
      }
    }
    if (!sends_to_me) {
      for (index_t s : deps.succs[b]) {
        if (a.proc(s) == me) {
          sends_to_me = true;
          break;
        }
      }
    }
    if (sends_to_me) ++expected;
  }
  return expected;
}

std::vector<index_t> element_owner_proc(const Partition& p, const Assignment& a) {
  const SymbolicFactor& sf = p.factor;
  std::vector<index_t> owner(static_cast<std::size_t>(sf.nnz()), 0);
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    const auto jrows = sf.col_rows(j);
    const count_t jbase = sf.col_ptr()[static_cast<std::size_t>(j)];
    std::size_t pos = 0;
    for (std::size_t t = 0; t < jrows.size(); ++t) {
      while (segs[pos].rows.hi < jrows[t]) ++pos;
      owner[static_cast<std::size_t>(jbase) + t] = a.proc(segs[pos].block);
    }
  }
  return owner;
}

}  // namespace spf::rt
