// The consolidated fetch-once send plan shared by both message-passing
// executors (dist's simulated machine and rt's real transports).
//
// For every unit block, the plan lists which factor elements must ship
// to which processor once the block completes.  Deduplication is global
// per (destination, element) — step 5 of the paper's flow, "consolidate
// the non-local memory access information for each processor so as to
// minimize communication overhead" — so each element reaches each
// processor at most once and the executed communication volume equals
// the analytic traffic metric (metrics/traffic.hpp) element for element.
//
// The plan is a pure function of (partition, assignment): every rank of
// a distributed run rebuilds it deterministically and therefore agrees
// with every other rank on exactly which messages exist.  That agreement
// is what lets a receiver count the messages it expects up front
// (count_expected_messages) instead of probing for quiescence.
#pragma once

#include <utility>
#include <vector>

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf::rt {

struct SendPlan {
  /// plan[block]: list of (dst proc, element ids) pairs, one entry per
  /// destination processor that needs any of the block's elements.
  std::vector<std::vector<std::pair<index_t, std::vector<count_t>>>> plan;
};

/// Build the consolidated plan for a mapping.
SendPlan build_send_plan(const Partition& p, const Assignment& a);

/// How many messages rank `me` will receive during factorization: one
/// per remote block that either ships elements to `me` (a plan entry) or
/// owns a DAG successor assigned to `me` (an empty release message keeps
/// the in-degree protocol exact).  Senders derive their sends from the
/// same two conditions, so the count matches the wire exactly.
count_t count_expected_messages(const SendPlan& plan, const BlockDeps& deps,
                                const Assignment& a, index_t me);

/// owner[element] = processor owning the unit block that computes the
/// element (the gather phase and traffic accounting both need it).
std::vector<index_t> element_owner_proc(const Partition& p, const Assignment& a);

}  // namespace spf::rt
