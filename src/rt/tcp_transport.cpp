#include "rt/tcp_transport.hpp"

#include <algorithm>
#include <chrono>

#include "rt/frame.hpp"
#include "support/check.hpp"

namespace spf::rt {

namespace {

using Clock = std::chrono::steady_clock;

int ms_until(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(0, left.count()));
}

/// What a self-delivered message would occupy as a kData frame — keeps
/// the accounting identical whether a pair of blocks shared a socket or
/// a rank.
count_t data_wire_bytes(std::size_t n_ids, std::size_t n_values) {
  return static_cast<count_t>(kRtHeaderSize + 12 + 8 * n_ids + 8 * n_values);
}

/// Read one full frame off `stream` into (header, payload).  Returns
/// false on EOF at a frame boundary; throws net::NetError mid-frame and
/// RtFrameError on a malformed header.
bool read_frame(net::ByteStream& stream, RtFrameHeader& header,
                std::vector<std::uint8_t>& payload) {
  std::uint8_t hdr[kRtHeaderSize];
  if (!net::read_exact(stream, hdr, sizeof(hdr))) return false;
  header = rt_decode_header(std::span<const std::uint8_t>(hdr, sizeof(hdr)));
  payload.resize(header.payload_len);
  if (header.payload_len > 0 &&
      !net::read_exact(stream, payload.data(), payload.size())) {
    throw net::NetError("peer closed between a frame header and its payload");
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(index_t rank, std::vector<TcpPeer> peers,
                           std::unique_ptr<net::TcpListener> listener,
                           const TcpTransportOptions& opt)
    : rank_(rank), nranks_(static_cast<index_t>(peers.size())) {
  SPF_REQUIRE(nranks_ >= 1, "tcp transport needs at least one rank");
  SPF_REQUIRE(rank_ >= 0 && rank_ < nranks_, "tcp transport rank out of range");
  SPF_REQUIRE(nranks_ == 1 || listener != nullptr,
              "tcp transport needs a listener to accept peers");
  const auto np = static_cast<std::size_t>(nranks_);
  peers_.resize(np);
  recv_messages_.assign(np, 0);
  recv_volume_.assign(np, 0);
  recv_bytes_.assign(np, 0);
  for (index_t s = 0; s < nranks_; ++s) {
    if (s != rank_) peers_[static_cast<std::size_t>(s)] = std::make_unique<Peer>();
  }

  const auto deadline = Clock::now() + std::chrono::milliseconds(opt.connect_timeout_ms);

  // Dial every lower rank and introduce ourselves.  connect_retry rides
  // out peers whose listeners are not bound yet, so processes may start
  // in any order.
  const auto hello = rt_encode_hello(rank_, nranks_);
  for (index_t s = 0; s < rank_; ++s) {
    const TcpPeer& addr = peers[static_cast<std::size_t>(s)];
    auto stream = net::connect_retry(addr.host, addr.port, ms_until(deadline));
    stream->write_all(hello.data(), hello.size());
    bytes_sent_ += static_cast<count_t>(hello.size());
    peers_[static_cast<std::size_t>(s)]->stream = std::move(stream);
  }

  // Accept one connection from every higher rank; the kHello frame says
  // which one dialed in (accepts complete in arbitrary order).
  index_t accepted = 0;
  const index_t expected = nranks_ - 1 - rank_;
  while (accepted < expected) {
    const int left = ms_until(deadline);
    if (left <= 0) {
      throw RtError("rank " + std::to_string(rank_) + " timed out with " +
                    std::to_string(expected - accepted) +
                    " peer connection(s) still missing");
    }
    auto stream = listener->accept(std::min(left, 200));
    if (stream == nullptr) continue;
    stream->set_read_timeout_ms(opt.hello_timeout_ms);
    RtFrameHeader header;
    std::vector<std::uint8_t> payload;
    if (!read_frame(*stream, header, payload)) {
      throw RtPeerLost("a dialing peer closed before its hello frame");
    }
    if (header.type != RtFrameType::kHello) {
      throw RtFrameError(RtErrCode::kBadFrame,
                         "expected a hello frame from a dialing peer, got type " +
                             std::to_string(static_cast<int>(header.type)));
    }
    const RtHelloBody body = rt_decode_hello(payload);
    if (body.nranks != nranks_) {
      throw RtFrameError(RtErrCode::kBadFrame,
                         "peer believes the mesh has " + std::to_string(body.nranks) +
                             " ranks, this rank believes " + std::to_string(nranks_));
    }
    if (body.rank <= rank_ ||
        peers_[static_cast<std::size_t>(body.rank)]->stream != nullptr) {
      throw RtFrameError(RtErrCode::kBadFrame,
                         "unexpected hello from rank " + std::to_string(body.rank));
    }
    stream->set_read_timeout_ms(0);
    bytes_received_ += static_cast<count_t>(kRtHeaderSize + payload.size());
    peers_[static_cast<std::size_t>(body.rank)]->stream = std::move(stream);
    ++accepted;
  }
  if (listener != nullptr) listener->close();

  for (index_t s = 0; s < nranks_; ++s) {
    if (s == rank_) continue;
    peers_[static_cast<std::size_t>(s)]->receiver =
        std::thread([this, s] { receiver_loop(s); });
  }
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::receiver_loop(index_t src) {
  Peer& peer = *peers_[static_cast<std::size_t>(src)];
  try {
    RtFrameHeader header;
    std::vector<std::uint8_t> payload;
    while (true) {
      if (!read_frame(*peer.stream, header, payload)) {
        std::unique_lock<std::mutex> lock(mu_);
        if (failed_) return;  // our own teardown severed the socket
        throw RtPeerLost("rank " + std::to_string(src) +
                         " vanished: connection closed without a goodbye");
      }
      const auto frame_bytes = static_cast<count_t>(kRtHeaderSize + payload.size());
      switch (header.type) {
        case RtFrameType::kData: {
          RtDataBody body = rt_decode_data(payload);
          RtMessage msg;
          msg.src = src;
          msg.tag = body.tag;
          msg.ids = std::move(body.ids);
          msg.values = std::move(body.values);
          const auto n_values = static_cast<count_t>(msg.values.size());
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++messages_received_;
            bytes_received_ += frame_bytes;
            const auto cell = static_cast<std::size_t>(src);
            ++recv_messages_[cell];
            recv_volume_[cell] += n_values;
            recv_bytes_[cell] += frame_bytes;
            inbox_.push_back(std::move(msg));
          }
          cv_inbox_.notify_one();
          break;
        }
        case RtFrameType::kBarrier: {
          const std::uint32_t epoch = rt_decode_barrier(payload);
          {
            // Control frames count toward the byte totals only; the
            // per-pair recv_* arrays are the data accounting.
            std::lock_guard<std::mutex> lock(mu_);
            bytes_received_ += frame_bytes;
            peer.barrier_epoch = epoch;
          }
          cv_barrier_.notify_all();
          break;
        }
        case RtFrameType::kBye: {
          rt_decode_bye(payload);
          {
            std::lock_guard<std::mutex> lock(mu_);
            bytes_received_ += frame_bytes;
            peer.said_bye = true;
          }
          // recv() may be waiting to learn the transport is drained.
          cv_inbox_.notify_all();
          return;
        }
        case RtFrameType::kHello:
          throw RtFrameError(RtErrCode::kBadFrame,
                             "rank " + std::to_string(src) +
                                 " sent a hello after the handshake");
      }
    }
  } catch (const net::NetError& e) {
    fail(std::make_exception_ptr(RtPeerLost(
        "rank " + std::to_string(src) + " connection failed: " + e.what())));
  } catch (const RtError&) {
    fail(std::current_exception());
  }
}

void TcpTransport::fail(std::exception_ptr eptr) noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) {
      failed_ = true;
      failure_ = std::move(eptr);
    }
  }
  cv_inbox_.notify_all();
  cv_barrier_.notify_all();
  // Sever every connection: blocked reads and writes on other peers
  // unblock, and the failure propagates through the mesh instead of
  // leaving anyone waiting on a message that will never come.
  for (auto& peer : peers_) {
    if (peer != nullptr && peer->stream != nullptr) peer->stream->shutdown_both();
  }
}

void TcpTransport::rethrow_failure_locked() { std::rethrow_exception(failure_); }

void TcpTransport::send_frame(index_t dst, const std::vector<std::uint8_t>& frame) {
  Peer& peer = *peers_[static_cast<std::size_t>(dst)];
  try {
    std::lock_guard<std::mutex> send_lock(peer.send_mu);
    peer.stream->write_all(frame.data(), frame.size());
  } catch (const net::NetError& e) {
    auto eptr = std::make_exception_ptr(
        RtPeerLost("send to rank " + std::to_string(dst) + " failed: " + e.what()));
    fail(eptr);
    std::rethrow_exception(eptr);
  }
  std::lock_guard<std::mutex> lock(mu_);
  bytes_sent_ += static_cast<count_t>(frame.size());
}

void TcpTransport::send(index_t dst, std::int32_t tag, std::vector<count_t> ids,
                        std::vector<double> values) {
  SPF_REQUIRE(dst >= 0 && dst < nranks_, "send destination out of range");
  if (dst == rank_) {
    RtMessage msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.ids = std::move(ids);
    msg.values = std::move(values);
    const count_t wire = data_wire_bytes(msg.ids.size(), msg.values.size());
    const auto n_values = static_cast<count_t>(msg.values.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (failed_) rethrow_failure_locked();
      ++messages_sent_;
      bytes_sent_ += wire;
      ++messages_received_;
      bytes_received_ += wire;
      const auto cell = static_cast<std::size_t>(rank_);
      ++recv_messages_[cell];
      recv_volume_[cell] += n_values;
      recv_bytes_[cell] += wire;
      inbox_.push_back(std::move(msg));
    }
    cv_inbox_.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) rethrow_failure_locked();
    if (closed_) throw RtError("send on a closed transport");
  }
  const auto frame = rt_encode_data(tag, ids, values);
  send_frame(dst, frame);
  std::lock_guard<std::mutex> lock(mu_);
  ++messages_sent_;
}

RtMessage TcpTransport::recv() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (!inbox_.empty()) {
      RtMessage out = std::move(inbox_.front());
      inbox_.pop_front();
      return out;
    }
    if (failed_) rethrow_failure_locked();
    bool all_bye = true;
    for (const auto& peer : peers_) {
      if (peer != nullptr && !peer->said_bye) {
        all_bye = false;
        break;
      }
    }
    if (all_bye && nranks_ > 1) {
      throw RtError(
          "receive on a drained transport: every peer already said goodbye");
    }
    if (nranks_ == 1) {
      throw RtError("receive on a single-rank transport with an empty inbox");
    }
    cv_inbox_.wait(lock);
  }
}

bool TcpTransport::try_recv(RtMessage& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (inbox_.empty()) {
    if (failed_) rethrow_failure_locked();
    return false;
  }
  out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

void TcpTransport::barrier() {
  std::uint32_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) rethrow_failure_locked();
    epoch = ++my_barrier_epoch_;
  }
  const auto frame = rt_encode_barrier(epoch);
  for (index_t s = 0; s < nranks_; ++s) {
    if (s != rank_) send_frame(s, frame);
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_barrier_.wait(lock, [&] {
    if (failed_) return true;
    for (const auto& peer : peers_) {
      if (peer != nullptr && peer->barrier_epoch < epoch) return false;
    }
    return true;
  });
  if (failed_) rethrow_failure_locked();
}

TransportStats TcpTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  TransportStats s;
  s.rank = rank_;
  s.nranks = nranks_;
  s.messages_sent = messages_sent_;
  s.messages_received = messages_received_;
  s.bytes_sent = bytes_sent_;
  s.bytes_received = bytes_received_;
  s.blocked_sends = 0;  // socket backpressure blocks inside write_all
  s.recv_messages = recv_messages_;
  s.recv_volume = recv_volume_;
  s.recv_bytes = recv_bytes_;
  return s;
}

void TcpTransport::close() {
  bool send_byes = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    send_byes = !closed_ && !failed_;
    closed_ = true;
  }
  if (send_byes) {
    const auto bye = rt_encode_bye();
    for (auto& peer : peers_) {
      if (peer == nullptr) continue;
      try {
        std::lock_guard<std::mutex> send_lock(peer->send_mu);
        peer->stream->write_all(bye.data(), bye.size());
        std::lock_guard<std::mutex> lock(mu_);
        bytes_sent_ += static_cast<count_t>(bye.size());
      } catch (const net::NetError&) {
        // Best-effort goodbye; the peer will see EOF either way.
      }
    }
  }
  // Receiver threads exit on their peer's goodbye or on failure.
  for (auto& peer : peers_) {
    if (peer != nullptr && peer->receiver.joinable()) peer->receiver.join();
  }
}

void TcpTransport::shutdown() noexcept {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    if (!failed_) {
      failed_ = true;
      failure_ = std::make_exception_ptr(
          RtPeerLost("transport torn down locally without a goodbye"));
    }
  }
  cv_inbox_.notify_all();
  cv_barrier_.notify_all();
  for (auto& peer : peers_) {
    if (peer != nullptr && peer->stream != nullptr) peer->stream->shutdown_both();
  }
}

}  // namespace spf::rt
