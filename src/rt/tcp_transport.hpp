// Full-mesh TCP transport: the distributed runtime over real sockets.
//
// Each rank owns one TcpTransport.  Mesh establishment is deadlock-free
// by construction: rank r dials every lower rank (with retries, so
// processes may start in any order) and accepts one connection from
// every higher rank, identified by the kHello frame the dialer sends
// first.  TCP's accept backlog means a dial can complete before the
// peer ever calls accept, so no ordering of the two loops can wedge.
//
// After the mesh is up, one receiver thread per peer reads RtFrames off
// that connection: kData frames land in a shared arrival-order inbox
// (with per-source delivered-value accounting — the traffic-model
// comparison), kBarrier frames advance that peer's barrier epoch, and
// kBye marks the peer's orderly departure so the subsequent EOF is
// clean.  An EOF or reset *without* a goodbye is a vanished peer: the
// transport poisons itself with RtPeerLost, wakes every blocked
// operation, and shuts down the remaining connections so the failure
// propagates through the mesh instead of leaving survivors hung.
//
// close() is the orderly path (goodbyes, then join); shutdown() tears
// the endpoint down abruptly, exactly as a killed process would — tests
// use it to assert that survivors fail fast.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "rt/transport.hpp"

namespace spf::rt {

/// Where to find one peer's listener.
struct TcpPeer {
  std::string host;
  std::uint16_t port = 0;
};

struct TcpTransportOptions {
  /// Mesh-establishment window: dial retries and accepts must complete
  /// within this budget or construction throws.
  int connect_timeout_ms = 20000;
  /// Receive timeout while waiting for a dialer's kHello (a connected
  /// but silent socket must not stall construction forever).
  int hello_timeout_ms = 10000;
};

class TcpTransport final : public Transport {
 public:
  /// Build rank `rank`'s endpoint of an `peers.size()`-rank mesh.
  /// `peers[rank]` is this rank's own address (unused); `listener` is
  /// its already-bound accept socket (ownership transfers).  Blocks
  /// until the mesh is fully connected or throws (RtError on timeout,
  /// RtFrameError on a malformed handshake, net::NetError on socket
  /// failure).
  TcpTransport(index_t rank, std::vector<TcpPeer> peers,
               std::unique_ptr<net::TcpListener> listener,
               const TcpTransportOptions& opt = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] index_t rank() const override { return rank_; }
  [[nodiscard]] index_t nranks() const override { return nranks_; }

  void send(index_t dst, std::int32_t tag, std::vector<count_t> ids,
            std::vector<double> values) override;
  RtMessage recv() override;
  bool try_recv(RtMessage& out) override;
  void barrier() override;
  [[nodiscard]] TransportStats stats() const override;

  /// Orderly departure: send kBye to every peer, wait for theirs, join
  /// the receiver threads.  Idempotent; called by the destructor.
  /// Collective: it returns only once every peer has also said goodbye,
  /// so all ranks of a mesh must close concurrently — one close per
  /// process is natural, but an in-process group must close its
  /// endpoints from separate threads, never in a sequential loop.
  void close();

  /// Abrupt teardown without goodbyes (a simulated process kill): local
  /// blocked operations throw RtPeerLost, peers observe mid-stream EOF.
  void shutdown() noexcept override;

 private:
  struct Peer {
    std::unique_ptr<net::TcpStream> stream;
    std::mutex send_mu;          // frames must not interleave on the socket
    std::thread receiver;
    std::uint32_t barrier_epoch = 0;  // guarded by mu_
    bool said_bye = false;            // guarded by mu_
  };

  void receiver_loop(index_t src);
  /// Record a failure once, wake everything, and sever all connections.
  void fail(std::exception_ptr eptr) noexcept;
  [[noreturn]] void rethrow_failure_locked();
  void send_frame(index_t dst, const std::vector<std::uint8_t>& frame);

  const index_t rank_;
  const index_t nranks_;
  std::vector<std::unique_ptr<Peer>> peers_;  // [rank_] stays null

  mutable std::mutex mu_;
  std::condition_variable cv_inbox_;
  std::condition_variable cv_barrier_;
  std::deque<RtMessage> inbox_;
  bool failed_ = false;
  std::exception_ptr failure_;
  bool closed_ = false;
  std::uint32_t my_barrier_epoch_ = 0;

  // Accounting (guarded by mu_; receiver threads and senders both write).
  count_t messages_sent_ = 0;
  count_t bytes_sent_ = 0;
  count_t messages_received_ = 0;
  count_t bytes_received_ = 0;
  std::vector<count_t> recv_messages_;
  std::vector<count_t> recv_volume_;
  std::vector<count_t> recv_bytes_;
};

}  // namespace spf::rt
