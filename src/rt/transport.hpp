// Pluggable message transport for the distributed runtime (src/rt).
//
// The paper models a message-passing machine; the runtime makes it real
// behind one small interface.  A Transport is a single rank's endpoint in
// a fixed-size group: asynchronous tagged sends of (element id, value)
// payloads, blocking arrival-order receives, a reusable barrier, and
// per-peer delivered-byte accounting precise enough to compare against
// the analytic traffic model element for element.
//
// Two backends implement it:
//  * LoopbackFabric (rt/loopback.hpp) — in-process mailboxes, optionally
//    bounded for deterministic backpressure testing; byte-for-byte
//    accountable and the substrate msg/Machine now runs on;
//  * TcpTransport (rt/tcp_transport.hpp) — a real full-mesh TCP backend
//    over src/net's socket layer speaking the length-prefixed RtFrame
//    codec (rt/frame.hpp).
//
// Error contract: every failure is a typed RtError.  A vanished peer
// surfaces as RtPeerLost on the next blocking operation (never a hang); a
// deliberate abort as RtAborted; a malformed wire frame as RtFrameError.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "matrix/types.hpp"

namespace spf::rt {

/// Base class of every transport failure.
class RtError : public std::runtime_error {
 public:
  explicit RtError(const std::string& what) : std::runtime_error(what) {}
};

/// A peer rank vanished (socket EOF or reset without a goodbye frame, or
/// a send into a dead connection).  Surviving ranks fail fast with this
/// instead of blocking forever on a message that will never come.
class RtPeerLost : public RtError {
 public:
  explicit RtPeerLost(const std::string& what) : RtError(what) {}
};

/// The fabric was deliberately aborted (a peer rank's program threw).
class RtAborted : public RtError {
 public:
  explicit RtAborted(const std::string& what) : RtError(what) {}
};

/// One delivered message: a tag plus parallel arrays of factor element
/// ids and values — the payload shape of every sparse-factorization
/// exchange (and exactly what msg/Machine has always carried).
struct RtMessage {
  index_t src = -1;
  std::int32_t tag = 0;
  std::vector<count_t> ids;
  std::vector<double> values;
};

/// Receive-side accounting of one rank, indexed by source rank.  Data
/// messages (the block payloads) are what the paper's traffic metric
/// counts, so `recv_volume` counts exactly the doubles delivered in data
/// frames: on a deterministic run, recv_volume[src] on rank dst equals
/// the analytic traffic matrix cell (dst, src) — and the bytes those
/// values occupied on the wire are 8 * recv_volume[src].  Control frames
/// (barrier, hello, goodbye) count toward the byte totals only.
struct TransportStats {
  index_t rank = 0;
  index_t nranks = 1;
  count_t messages_sent = 0;
  count_t messages_received = 0;   ///< data messages delivered to this rank
  count_t bytes_sent = 0;          ///< wire bytes out, headers included
  count_t bytes_received = 0;      ///< wire bytes in, headers included
  count_t blocked_sends = 0;       ///< sends that blocked on a full mailbox
  std::vector<count_t> recv_messages;  ///< data messages per source rank
  std::vector<count_t> recv_volume;    ///< data values per source rank
  std::vector<count_t> recv_bytes;     ///< data-frame wire bytes per source rank

  [[nodiscard]] count_t volume_received() const {
    count_t total = 0;
    for (count_t v : recv_volume) total += v;
    return total;
  }
};

/// One rank's endpoint.  Thread-safe: sends, receives, and stats may be
/// issued concurrently from a rank's worker threads and its progress
/// loop (barrier() must not race with recv() on the same endpoint).
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual index_t rank() const = 0;
  [[nodiscard]] virtual index_t nranks() const = 0;

  /// Asynchronous tagged send (self-sends allowed).  Blocks only when the
  /// backend applies backpressure (bounded loopback mailbox, full socket
  /// buffer).  Throws RtPeerLost when `dst` is gone, RtAborted after an
  /// abort.
  virtual void send(index_t dst, std::int32_t tag, std::vector<count_t> ids,
                    std::vector<double> values) = 0;

  /// Blocking receive of the next data message in arrival order.  Throws
  /// RtPeerLost / RtAborted as above, and RtError when the transport is
  /// fully drained and every peer said goodbye (a protocol bug upstream:
  /// callers track how many messages they expect).
  virtual RtMessage recv() = 0;

  /// Non-blocking receive; false when no message is waiting.
  virtual bool try_recv(RtMessage& out) = 0;

  /// Synchronize all ranks.  Reusable.  Throws RtPeerLost / RtAborted.
  virtual void barrier() = 0;

  /// Snapshot of this rank's accounting.
  [[nodiscard]] virtual TransportStats stats() const = 0;

  /// Tear the endpoint down without a goodbye, as a killed process would:
  /// local blocked operations fail, and (TCP) peers observe a mid-stream
  /// EOF and fail fast with RtPeerLost.  Idempotent.
  virtual void shutdown() noexcept = 0;
};

}  // namespace spf::rt
