#include "sched/bounds.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"

namespace spf {

WorkLevels work_levels(const BlockDeps& deps, const std::vector<count_t>& blk_work) {
  const auto nb = deps.preds.size();
  SPF_REQUIRE(blk_work.size() == nb, "blk_work size mismatch");

  WorkLevels lv;
  lv.top_work.assign(nb, 0);
  lv.bot_work.assign(nb, 0);
  lv.slack.assign(nb, 0);

  // Forward sweep over the precomputed topological order: top(v) is the
  // heaviest predecessor top plus v's own work.
  for (const index_t v : deps.seq_order) {
    const auto sv = static_cast<std::size_t>(v);
    count_t best = 0;
    for (const index_t p : deps.preds[sv]) {
      best = std::max(best, lv.top_work[static_cast<std::size_t>(p)]);
    }
    lv.top_work[sv] = best + blk_work[sv];
    lv.critical_path = std::max(lv.critical_path, lv.top_work[sv]);
    lv.total_work += blk_work[sv];
  }

  // Backward sweep for bot(v); the reversed topological order visits every
  // successor before its predecessors.
  for (auto it = deps.seq_order.rbegin(); it != deps.seq_order.rend(); ++it) {
    const auto sv = static_cast<std::size_t>(*it);
    count_t best = 0;
    for (const index_t s : deps.succs[sv]) {
      best = std::max(best, lv.bot_work[static_cast<std::size_t>(s)]);
    }
    lv.bot_work[sv] = best + blk_work[sv];
  }

  for (std::size_t v = 0; v < nb; ++v) {
    // top + bot counts w(v) twice; slack is how much v can slip without
    // stretching the critical path.
    lv.slack[v] = lv.critical_path - lv.top_work[v] - lv.bot_work[v] + blk_work[v];
  }
  return lv;
}

namespace {

/// Best threshold term max_L { L/s_max + W_L/S } where W_L sums the work of
/// tasks whose margin (tail or head) is >= L.  Only the distinct margin
/// values can be maximizers: between two consecutive values the term is
/// linear in L with positive slope, so the max sits at a breakpoint.
double threshold_term(std::vector<std::pair<count_t, count_t>>& margin_work, double s_max,
                      double total_speed) {
  std::sort(margin_work.begin(), margin_work.end());
  double best = 0.0;
  count_t suffix_work = 0;
  for (auto it = margin_work.rbegin(); it != margin_work.rend(); ++it) {
    suffix_work += it->second;
    const bool last_of_value = std::next(it) == margin_work.rend() || std::next(it)->first != it->first;
    if (!last_of_value) continue;  // accumulate the whole equal-margin run first
    const double term = static_cast<double>(it->first) / s_max +
                        static_cast<double>(suffix_work) / total_speed;
    best = std::max(best, term);
  }
  return best;
}

}  // namespace

ScheduleBound makespan_lower_bound(const BlockDeps& deps,
                                   const std::vector<count_t>& blk_work, index_t nprocs,
                                   const CostModel& cost) {
  SPF_REQUIRE(nprocs > 0, "nprocs must be positive");
  cost.validate(nprocs);
  const WorkLevels lv = work_levels(deps, blk_work);
  const double s_max = cost.max_speed(nprocs);
  const double total_speed = cost.total_speed(nprocs);

  ScheduleBound b;
  b.critical_path_time = static_cast<double>(lv.critical_path) / s_max;
  b.area_time = static_cast<double>(lv.total_work) / total_speed;

  const auto nb = blk_work.size();
  std::vector<std::pair<count_t, count_t>> margin_work(nb);
  for (std::size_t v = 0; v < nb; ++v) {
    margin_work[v] = {lv.bot_work[v] - blk_work[v], blk_work[v]};  // tails
  }
  b.alap_time = threshold_term(margin_work, s_max, total_speed);
  for (std::size_t v = 0; v < nb; ++v) {
    margin_work[v] = {lv.top_work[v] - blk_work[v], blk_work[v]};  // heads
  }
  b.alap_time = std::max(b.alap_time, threshold_term(margin_work, s_max, total_speed));

  b.lower_bound = std::max({b.critical_path_time, b.area_time, b.alap_time});
  return b;
}

double schedule_makespan(const BlockDeps& deps, const std::vector<count_t>& blk_work,
                         const Assignment& a, const CostModel& cost) {
  const auto nb = blk_work.size();
  SPF_REQUIRE(deps.preds.size() == nb, "deps size mismatch");
  SPF_REQUIRE(a.proc_of_block.size() == nb, "assignment size mismatch");
  cost.validate(a.nprocs);

  // Same event policy as sim/desim's simulate_task_graph with zero message
  // cost: per-processor ready queues ordered by block id, ready events
  // before completion events at equal times.
  std::vector<index_t> remaining(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    remaining[b] = static_cast<index_t>(deps.preds[b].size());
  }
  using TaskQueue = std::priority_queue<index_t, std::vector<index_t>, std::greater<>>;
  std::vector<TaskQueue> ready(static_cast<std::size_t>(a.nprocs));
  std::vector<char> proc_busy(static_cast<std::size_t>(a.nprocs), 0);

  struct Event {
    double time;
    index_t kind;  // 0 = ready, 1 = complete
    index_t task;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      if (kind != o.kind) return kind > o.kind;
      return task > o.task;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  auto try_start = [&](index_t proc, double now) {
    if (proc_busy[static_cast<std::size_t>(proc)]) return;
    auto& q = ready[static_cast<std::size_t>(proc)];
    if (q.empty()) return;
    const index_t task = q.top();
    q.pop();
    proc_busy[static_cast<std::size_t>(proc)] = 1;
    events.push({now + cost.time_of(blk_work[static_cast<std::size_t>(task)], proc), 1, task});
  };

  for (std::size_t b = 0; b < nb; ++b) {
    if (remaining[b] == 0) events.push({0.0, 0, static_cast<index_t>(b)});
  }

  double now = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const index_t proc = a.proc(ev.task);
    if (ev.kind == 0) {
      ready[static_cast<std::size_t>(proc)].push(ev.task);
      try_start(proc, now);
    } else {
      proc_busy[static_cast<std::size_t>(proc)] = 0;
      for (const index_t succ : deps.succs[static_cast<std::size_t>(ev.task)]) {
        if (--remaining[static_cast<std::size_t>(succ)] == 0) events.push({now, 0, succ});
      }
      try_start(proc, now);
    }
  }
  return now;
}

}  // namespace spf
