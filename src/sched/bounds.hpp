// Makespan lower bounds over the block dependency DAG.
//
// Implements the ALAP-based area/path lower bound of Quach & Langou
// (PAPERS.md) with the paper's 2/1 work model (metrics/work.hpp) and an
// optional heterogeneous cost model.  For every unit block v let
//
//   top(v) = heaviest work-weighted path ending at v (inclusive),
//   bot(v) = heaviest work-weighted path starting at v (inclusive),
//   head(v) = top(v) - w(v)   (work that must finish before v starts),
//   tail(v) = bot(v) - w(v)   (work that cannot start until v finishes),
//
// all in work units.  With aggregate capacity S = sum of speeds and fastest
// processor s_max, any schedule of makespan M satisfies, for every
// threshold L:
//
//   M >= L / s_max + (sum of w(v) over tail(v) >= L) / S
//   M >= L / s_max + (sum of w(v) over head(v) >= L) / S
//
// because a task with tail(v) >= L must finish at least L/s_max before the
// end (its critical tail runs serially at best on the fastest processor),
// so all such work fits into M - L/s_max time across capacity S; heads are
// the mirror image.  L = 0 recovers the plain area bound Wtot/S; sweeping
// L over the distinct tail (head) values and taking the max also dominates
// the critical-path bound CP/s_max.  The bound is exact on a chain (the
// path term binds) and on independent equal tasks when P divides their
// count (the area term binds) — both asserted in tests/test_sched.cpp.
#pragma once

#include <vector>

#include "partition/dependencies.hpp"
#include "sched/cost_model.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Work-weighted longest-path levels of the DAG, in work units.
struct WorkLevels {
  /// top_work[v]: heaviest path from any source to v, inclusive of v.
  std::vector<count_t> top_work;
  /// bot_work[v]: heaviest path from v to any sink, inclusive of v.
  std::vector<count_t> bot_work;
  /// ALAP slack: critical_path - top_work[v] - bot_work[v] + w(v).
  /// Zero exactly on critical-path blocks.
  std::vector<count_t> slack;
  /// Heaviest source-to-sink path (the DAG's critical path, work units).
  count_t critical_path = 0;
  count_t total_work = 0;
};

WorkLevels work_levels(const BlockDeps& deps, const std::vector<count_t>& blk_work);

/// The lower bound and its constituent terms, in time units
/// (work units / speed; with the uniform model, plain work units).
struct ScheduleBound {
  double critical_path_time = 0.0;  ///< CP / s_max
  double area_time = 0.0;           ///< Wtot / S
  double alap_time = 0.0;           ///< best threshold term (>= both above)
  double lower_bound = 0.0;         ///< max of the three
};

/// Quach & Langou area/path makespan lower bound for `nprocs` processors
/// under `cost` (uniform when empty).  Valid for ANY schedule of the DAG
/// on those processors, with or without communication delays.
ScheduleBound makespan_lower_bound(const BlockDeps& deps,
                                   const std::vector<count_t>& blk_work, index_t nprocs,
                                   const CostModel& cost = {});

/// Work-only makespan of an assignment: event-driven replay of the DAG on
/// the assigned processors with zero communication cost, identical task
/// policy to sim/desim (per-processor ready queues ordered by block id).
/// This is the denominator of schedule_efficiency — it isolates schedule
/// quality (dependency stalls + load balance) from the message-cost
/// regime, which desim prices separately.
double schedule_makespan(const BlockDeps& deps, const std::vector<count_t>& blk_work,
                         const Assignment& a, const CostModel& cost = {});

}  // namespace spf
