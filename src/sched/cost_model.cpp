#include "sched/cost_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "support/json.hpp"

namespace spf {

double CostModel::total_speed(index_t nprocs) const {
  if (speeds.empty()) return static_cast<double>(nprocs);
  double total = 0.0;
  for (double s : speeds) total += s;
  return total;
}

double CostModel::max_speed(index_t nprocs) const {
  (void)nprocs;
  if (speeds.empty()) return 1.0;
  return *std::max_element(speeds.begin(), speeds.end());
}

void CostModel::validate(index_t nprocs) const {
  if (speeds.empty()) return;
  SPF_REQUIRE(static_cast<index_t>(speeds.size()) == nprocs,
              "cost model has " + std::to_string(speeds.size()) + " speeds but mapping uses " +
                  std::to_string(nprocs) + " processors");
  for (double s : speeds) {
    SPF_REQUIRE(std::isfinite(s) && s > 0.0, "processor speeds must be finite and positive");
  }
}

namespace {

// Minimal recursive-descent scan for the one JSON shape we accept:
// an object with a "speeds" key holding an array of numbers.  The
// repo's JsonWriter is write-only, so parsing lives here; anything
// outside this shape is a hard invalid_input, never a silent default.
struct JsonScanner {
  std::istream& is;

  void skip_ws() {
    while (std::isspace(static_cast<unsigned char>(is.peek()))) is.get();
  }
  char peek() {
    skip_ws();
    return static_cast<char>(is.peek());
  }
  void expect(char c, const char* where) {
    skip_ws();
    const int got = is.get();
    SPF_REQUIRE(got == c, std::string("cost model JSON: expected '") + c + "' " + where);
  }
  std::string string() {
    expect('"', "before string");
    std::string out;
    for (int c = is.get(); c != '"'; c = is.get()) {
      SPF_REQUIRE(c != EOF && c != '\\', "cost model JSON: unterminated or escaped string");
      out.push_back(static_cast<char>(c));
    }
    return out;
  }
  double number() {
    skip_ws();
    double v = 0.0;
    is >> v;
    SPF_REQUIRE(static_cast<bool>(is), "cost model JSON: malformed number");
    return v;
  }
  std::vector<double> number_array() {
    std::vector<double> out;
    expect('[', "before speeds array");
    if (peek() == ']') {
      is.get();
      return out;
    }
    while (true) {
      out.push_back(number());
      if (peek() == ',') {
        is.get();
        continue;
      }
      expect(']', "after speeds array");
      return out;
    }
  }
};

}  // namespace

CostModel parse_cost_model(std::istream& is) {
  JsonScanner scan{is};
  scan.expect('{', "at start of cost model");
  CostModel cm;
  bool saw_speeds = false;
  if (scan.peek() != '}') {
    while (true) {
      const std::string key = scan.string();
      scan.expect(':', "after key");
      SPF_REQUIRE(key == "speeds", "cost model JSON: unknown key '" + key + "'");
      cm.speeds = scan.number_array();
      saw_speeds = true;
      if (scan.peek() == ',') {
        is.get();
        continue;
      }
      break;
    }
  }
  scan.expect('}', "at end of cost model");
  SPF_REQUIRE(saw_speeds, "cost model JSON: missing \"speeds\" array");
  for (double s : cm.speeds) {
    SPF_REQUIRE(std::isfinite(s) && s > 0.0,
                "cost model JSON: speeds must be finite and positive");
  }
  return cm;
}

CostModel parse_cost_model(const std::string& json) {
  std::istringstream is(json);
  return parse_cost_model(is);
}

CostModel load_cost_model_file(const std::string& path) {
  std::ifstream is(path);
  SPF_REQUIRE(is.good(), "cannot open cost model file: " + path);
  return parse_cost_model(is);
}

void write_cost_model(std::ostream& os, const CostModel& cm) {
  os << std::setprecision(17);
  JsonWriter w(os);
  w.begin_object();
  w.begin_array("speeds");
  for (double s : cm.speeds) w.element(s);
  w.end();
  w.end();
}

}  // namespace spf
