// Per-processor execution-cost model for scheduling analysis.
//
// The paper assumes identical processors; real clusters are not (Tzovas &
// Predari's heterogeneous-cluster study in PAPERS.md motivates pricing
// per-processor speed into the mapping).  A CostModel carries one relative
// speed per processor — a task of `work` units takes work/speed time units
// on processor p — and is threaded through the makespan lower bound
// (sched/bounds.hpp), the priority-list schedulers
// (sched/list_scheduler.hpp), and the event-driven simulator's timing
// (sim/desim.hpp).  An empty speed vector means the uniform model
// (speed 1.0 everywhere), which keeps every pre-existing code path —
// including the paper's block heuristic — bitwise intact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "matrix/types.hpp"

namespace spf {

struct CostModel {
  /// Relative speed per processor; empty = uniform (1.0 everywhere).
  /// Every entry must be finite and > 0 (validated on load / use).
  std::vector<double> speeds;

  [[nodiscard]] bool uniform() const { return speeds.empty(); }

  /// Speed of processor p (1.0 under the uniform model).
  [[nodiscard]] double speed(index_t p) const {
    return speeds.empty() ? 1.0 : speeds[static_cast<std::size_t>(p)];
  }

  /// Time of `work` units on processor p.
  [[nodiscard]] double time_of(count_t work, index_t p) const {
    return static_cast<double>(work) / speed(p);
  }

  /// Aggregate capacity of `nprocs` processors (= nprocs when uniform).
  [[nodiscard]] double total_speed(index_t nprocs) const;
  /// Fastest single processor among `nprocs` (= 1.0 when uniform).
  [[nodiscard]] double max_speed(index_t nprocs) const;

  /// Throws spf::invalid_input unless the model covers exactly `nprocs`
  /// processors (or is uniform) with all-positive finite speeds.
  void validate(index_t nprocs) const;
};

/// Parse a cost model from JSON of the form {"speeds": [1.0, 2.0, ...]}.
/// Throws spf::invalid_input on malformed input or non-positive speeds.
CostModel parse_cost_model(std::istream& is);
CostModel parse_cost_model(const std::string& json);
CostModel load_cost_model_file(const std::string& path);

/// Emit the same JSON shape parse_cost_model reads.
void write_cost_model(std::ostream& os, const CostModel& cm);

}  // namespace spf
