#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <queue>

#include "sched/bounds.hpp"
#include "support/check.hpp"

namespace spf {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDefault:
      return "default";
    case SchedulerKind::kCp:
      return "cp";
    case SchedulerKind::kAlap:
      return "alap";
  }
  return "?";
}

SchedulerKind parse_scheduler_kind(const std::string& name) {
  if (name == "default") return SchedulerKind::kDefault;
  if (name == "cp") return SchedulerKind::kCp;
  if (name == "alap") return SchedulerKind::kAlap;
  throw invalid_input("unknown scheduler kind: '" + name + "' (want default|cp|alap)");
}

Assignment list_schedule(const BlockDeps& deps, const std::vector<count_t>& blk_work,
                         index_t nprocs, const ListSchedulerOptions& opt) {
  SPF_REQUIRE(nprocs > 0, "nprocs must be positive");
  SPF_REQUIRE(opt.kind != SchedulerKind::kDefault,
              "list_schedule needs an explicit rank policy (cp or alap)");
  opt.cost.validate(nprocs);
  const auto nb = blk_work.size();
  SPF_REQUIRE(deps.preds.size() == nb, "deps size mismatch");

  const WorkLevels lv = work_levels(deps, blk_work);

  // Static rank per block; lower compares first.  kCp: bottom-level
  // descending.  kAlap: slack ascending, then bottom-level descending.
  // Block id always breaks the final tie, making the order total.
  struct Rank {
    count_t primary;
    count_t secondary;
    index_t block;
    bool operator>(const Rank& o) const {
      if (primary != o.primary) return primary > o.primary;
      if (secondary != o.secondary) return secondary > o.secondary;
      return block > o.block;
    }
  };
  auto rank_of = [&](index_t v) -> Rank {
    const auto sv = static_cast<std::size_t>(v);
    if (opt.kind == SchedulerKind::kAlap) {
      return {lv.slack[sv], lv.critical_path - lv.bot_work[sv], v};
    }
    // Store the bottom-level negated-by-complement so "descending" fits the
    // min-ordered frontier: critical_path >= bot_work, so this is >= 0.
    return {lv.critical_path - lv.bot_work[sv], 0, v};
  };

  std::priority_queue<Rank, std::vector<Rank>, std::greater<>> frontier;
  std::vector<index_t> remaining(nb);
  std::vector<double> ready_time(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    remaining[b] = static_cast<index_t>(deps.preds[b].size());
    if (remaining[b] == 0) frontier.push(rank_of(static_cast<index_t>(b)));
  }

  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(nb, 0);
  std::vector<double> proc_free(static_cast<std::size_t>(nprocs), 0.0);
  std::vector<double> finish(nb, 0.0);

  std::size_t scheduled = 0;
  while (!frontier.empty()) {
    const index_t v = frontier.top().block;
    frontier.pop();
    const auto sv = static_cast<std::size_t>(v);

    // Earliest-finish-time processor; prefer one owning a predecessor on
    // ties (locality), then the lowest id (determinism).
    index_t best_proc = 0;
    double best_eft = 0.0;
    bool best_local = false;
    for (index_t p = 0; p < nprocs; ++p) {
      const double est = std::max(ready_time[sv], proc_free[static_cast<std::size_t>(p)]);
      const double eft = est + opt.cost.time_of(blk_work[sv], p);
      const bool local = std::any_of(deps.preds[sv].begin(), deps.preds[sv].end(),
                                     [&](index_t pred) {
                                       return a.proc_of_block[static_cast<std::size_t>(pred)] == p;
                                     });
      const bool better = p == 0 || eft < best_eft || (eft == best_eft && local && !best_local);
      if (better) {
        best_proc = p;
        best_eft = eft;
        best_local = local;
      }
    }

    a.proc_of_block[sv] = best_proc;
    finish[sv] = best_eft;
    proc_free[static_cast<std::size_t>(best_proc)] = best_eft;
    ++scheduled;

    for (const index_t succ : deps.succs[sv]) {
      const auto ss = static_cast<std::size_t>(succ);
      ready_time[ss] = std::max(ready_time[ss], finish[sv]);
      if (--remaining[ss] == 0) frontier.push(rank_of(succ));
    }
  }
  SPF_CHECK(scheduled == nb, "list scheduler did not reach every block");
  return a;
}

}  // namespace spf
