// Priority-list DAG scheduling over unit blocks (HEFT-style).
//
// The paper's `block` heuristic maps blocks bottom-up for locality and
// `wrap` round-robins columns; neither looks at the critical path.  The
// list scheduler here keeps a frontier of dependency-ready blocks, picks
// the highest-priority one under a rank policy, and places it on the
// processor that finishes it earliest under the cost model — with a
// locality tiebreak (prefer a processor already holding a predecessor's
// data, so the paper's fetch-once traffic is not inflated for free).
//
// Rank policies:
//   kCp   — bottom-level (work-weighted longest path to a sink) descending:
//           classic critical-path list scheduling.
//   kAlap — ALAP slack ascending (blocks that cannot slip go first), ties
//           broken by bottom-level descending.
//
// The result is a plain Assignment, interchangeable with block/wrap
// everywhere downstream (plan cache, kernel plans, executors, rt,
// serving).  The procedure is fully deterministic: every comparison falls
// back to the block id, so the same DAG + work + cost model always yields
// the same assignment (asserted 50x in tests/test_sched.cpp).
#pragma once

#include <string>

#include "partition/dependencies.hpp"
#include "sched/cost_model.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Which scheduler builds the Assignment for a mapping.  kDefault preserves
/// the pre-existing behavior of the selected MappingScheme (the paper's
/// block heuristic or wrap) bitwise; kCp/kAlap run the list scheduler.
enum class SchedulerKind : unsigned char {
  kDefault = 0,
  kCp = 1,
  kAlap = 2,
};

std::string to_string(SchedulerKind kind);
/// Parses "default", "cp", or "alap".  Throws spf::invalid_input otherwise.
SchedulerKind parse_scheduler_kind(const std::string& name);

struct ListSchedulerOptions {
  SchedulerKind kind = SchedulerKind::kCp;
  CostModel cost;  ///< uniform when empty
};

/// Schedule the DAG onto `nprocs` processors.  `blk_work` from
/// metrics/work.hpp (the paper's 2/1 model).
Assignment list_schedule(const BlockDeps& deps, const std::vector<count_t>& blk_work,
                         index_t nprocs, const ListSchedulerOptions& opt = {});

}  // namespace spf
