// Processor assignment of unit blocks.
#pragma once

#include <vector>

#include "matrix/types.hpp"

namespace spf {

struct Assignment {
  index_t nprocs = 1;
  /// proc_of_block[b]: processor owning unit block b.
  std::vector<index_t> proc_of_block;

  [[nodiscard]] index_t proc(index_t block) const {
    return proc_of_block[static_cast<std::size_t>(block)];
  }
};

}  // namespace spf
