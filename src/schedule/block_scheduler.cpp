#include "schedule/block_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/check.hpp"

namespace spf {

Assignment block_schedule(const Partition& p, const BlockDeps& deps,
                          const std::vector<count_t>& blk_work, index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  SPF_REQUIRE(deps.preds.size() == p.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(blk_work.size() == p.blocks.size(), "work/partition mismatch");

  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(p.blocks.size(), -1);
  std::vector<count_t> proc_load(static_cast<std::size_t>(nprocs), 0);

  auto assign = [&](index_t block, index_t proc) {
    SPF_CHECK(a.proc_of_block[static_cast<std::size_t>(block)] == -1,
              "block assigned twice");
    a.proc_of_block[static_cast<std::size_t>(block)] = proc;
    proc_load[static_cast<std::size_t>(proc)] += blk_work[static_cast<std::size_t>(block)];
  };

  // ---- Phase 1: independent columns, wrap-around.
  index_t wrap_counter = 0;
  std::vector<char> is_independent_column(p.blocks.size(), 0);
  for (index_t b : deps.independent) {
    if (p.blocks[static_cast<std::size_t>(b)].kind == BlockKind::kColumn) {
      is_independent_column[static_cast<std::size_t>(b)] = 1;
      assign(b, wrap_counter % nprocs);
      ++wrap_counter;
    }
  }

  // ---- Phase 2: clusters left to right.
  index_t marker = 0;  // round-robin marker into the global processor set
  std::vector<index_t> in_pu_stamp(static_cast<std::size_t>(nprocs), -1);
  index_t cluster_stamp = 0;

  for (std::size_t ci = 0; ci < p.clusters.clusters.size(); ++ci) {
    const ClusterBlocks& lay = p.layout[ci];
    if (lay.column_unit != -1) {
      const index_t b = lay.column_unit;
      if (is_independent_column[static_cast<std::size_t>(b)]) continue;  // phase 1
      // Dependent column: "arbitrarily picked from the set of processors
      // which worked on the column's predecessors".  We deterministically
      // take the least-loaded member of that set — any member satisfies
      // the paper's rule, and following e.g. the first predecessor
      // degenerates to one processor on chain-shaped elimination trees
      // (banded orderings).
      index_t chosen = -1;
      for (index_t pred : deps.preds[static_cast<std::size_t>(b)]) {
        const index_t pp = a.proc_of_block[static_cast<std::size_t>(pred)];
        if (pp == -1) continue;
        if (chosen == -1 ||
            proc_load[static_cast<std::size_t>(pp)] <
                proc_load[static_cast<std::size_t>(chosen)] ||
            (proc_load[static_cast<std::size_t>(pp)] ==
                 proc_load[static_cast<std::size_t>(chosen)] &&
             pp < chosen)) {
          chosen = pp;
        }
      }
      if (chosen == -1) {  // no allocated predecessor (degenerate): global marker
        chosen = marker;
        marker = (marker + 1) % nprocs;
      }
      assign(b, chosen);
      continue;
    }

    // Multi-column cluster.  P_u: processors already holding one of this
    // triangle's units (stamped per cluster to avoid clearing a set).
    ++cluster_stamp;
    std::vector<index_t> pt;  // triangle's processor set, insertion order
    for (index_t b : lay.triangle_units) {
      index_t chosen = -1;
      // Reuse a predecessor's processor not yet in P_u: this keeps the
      // communication for the triangle confined to the processors that
      // produced its inputs.
      for (index_t pred : deps.preds[static_cast<std::size_t>(b)]) {
        const index_t pp = a.proc_of_block[static_cast<std::size_t>(pred)];
        if (pp != -1 && in_pu_stamp[static_cast<std::size_t>(pp)] != cluster_stamp) {
          chosen = pp;
          break;
        }
      }
      if (chosen == -1) {
        // All predecessor processors already in P_u: take the globally next
        // available processor and advance the marker.
        chosen = marker;
        marker = (marker + 1) % nprocs;
      }
      if (in_pu_stamp[static_cast<std::size_t>(chosen)] != cluster_stamp) {
        in_pu_stamp[static_cast<std::size_t>(chosen)] = cluster_stamp;
        pt.push_back(chosen);
      }
      assign(b, chosen);
    }

    // Below-diagonal rectangles: restricted to P_t, round-robin in
    // increasing-work order, re-sorted after each rectangle.
    for (const std::vector<index_t>& rect : lay.rect_units) {
      std::sort(pt.begin(), pt.end(), [&](index_t x, index_t y) {
        const count_t wx = proc_load[static_cast<std::size_t>(x)];
        const count_t wy = proc_load[static_cast<std::size_t>(y)];
        return wx != wy ? wx < wy : x < y;
      });
      std::size_t cursor = 0;
      for (index_t b : rect) {
        assign(b, pt[cursor % pt.size()]);
        ++cursor;
      }
    }
  }

  for (index_t pr : a.proc_of_block) SPF_CHECK(pr != -1, "every block must be assigned");
  return a;
}

}  // namespace spf
