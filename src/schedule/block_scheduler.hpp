// The paper's block allocation strategy — Section 3.4.
//
// 1. Independent columns (column units with no predecessors) are allocated
//    wrap-around.
// 2. Clusters are scanned left to right:
//    - a dependent single column goes to a processor picked from those that
//      worked on its predecessors;
//    - a multi-column cluster allocates its triangle units first (reusing
//      predecessor processors not yet present in the triangle's processor
//      set P_u, else the globally next processor in round-robin order), and
//      then each below-diagonal rectangle's units restricted to the
//      triangle's processor set P_t, round-robined in increasing-work order
//      and re-sorted after every rectangle.
#pragma once

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Run the block scheduler.  `blk_work` is the per-block work (see
/// metrics/work.hpp), used to order P_t by increasing processor load.
Assignment block_schedule(const Partition& p, const BlockDeps& deps,
                          const std::vector<count_t>& blk_work, index_t nprocs);

}  // namespace spf
