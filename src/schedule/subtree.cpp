#include "schedule/subtree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace spf {

namespace {

struct Tree {
  std::vector<std::vector<index_t>> children;
  std::vector<count_t> subtree_work;
};

}  // namespace

Assignment subtree_schedule(const Partition& column_partition,
                            const std::vector<count_t>& col_work, index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  const index_t n = column_partition.factor.n();
  SPF_REQUIRE(static_cast<index_t>(column_partition.blocks.size()) == n,
              "subtree mapping requires a column partition");
  SPF_REQUIRE(static_cast<index_t>(col_work.size()) == n, "work/partition mismatch");
  for (const UnitBlock& b : column_partition.blocks) {
    SPF_REQUIRE(b.kind == BlockKind::kColumn, "subtree mapping requires column units");
  }

  const auto parent = column_partition.factor.parent();
  Tree tree;
  tree.children.resize(static_cast<std::size_t>(n));
  tree.subtree_work.assign(col_work.begin(), col_work.end());
  std::vector<index_t> roots;
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p == -1) {
      roots.push_back(v);
    } else {
      tree.children[static_cast<std::size_t>(p)].push_back(v);
      // Children have smaller indices than parents in an elimination tree,
      // so an ascending scan accumulates subtree work correctly.
    }
  }
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      tree.subtree_work[static_cast<std::size_t>(p)] +=
          tree.subtree_work[static_cast<std::size_t>(v)];
    }
  }

  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(static_cast<std::size_t>(n), -1);

  // Assign a whole subtree to one processor.
  auto assign_subtree = [&](index_t root, index_t proc) {
    std::vector<index_t> stack{root};
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      a.proc_of_block[static_cast<std::size_t>(v)] = proc;
      for (index_t c : tree.children[static_cast<std::size_t>(v)]) stack.push_back(c);
    }
  };

  // Recursive bisection of (forest, processor interval).
  auto recurse = [&](auto&& self, std::vector<index_t> frontier, index_t p0,
                     index_t p1) -> void {
    const index_t np = p1 - p0;
    if (np == 1) {
      for (index_t r : frontier) assign_subtree(r, p0);
      return;
    }
    // Peel single-root chains: the top columns are shared (wrap-mapped)
    // among the whole subset, the classic treatment of the separator path.
    index_t wrap = 0;
    while (frontier.size() == 1) {
      const index_t r = frontier.front();
      a.proc_of_block[static_cast<std::size_t>(r)] = p0 + (wrap % np);
      ++wrap;
      frontier = tree.children[static_cast<std::size_t>(r)];
      if (frontier.empty()) return;  // chain reached a leaf
    }
    // Split the forest into two work-balanced groups (greedy LPT), then
    // split the processors proportionally.
    std::sort(frontier.begin(), frontier.end(), [&](index_t x, index_t y) {
      const count_t wx = tree.subtree_work[static_cast<std::size_t>(x)];
      const count_t wy = tree.subtree_work[static_cast<std::size_t>(y)];
      return wx != wy ? wx > wy : x < y;
    });
    std::vector<index_t> g1, g2;
    count_t w1 = 0, w2 = 0;
    for (index_t r : frontier) {
      if (w1 <= w2) {
        g1.push_back(r);
        w1 += tree.subtree_work[static_cast<std::size_t>(r)];
      } else {
        g2.push_back(r);
        w2 += tree.subtree_work[static_cast<std::size_t>(r)];
      }
    }
    if (g2.empty()) {
      // Degenerate (single heavy subtree after LPT): split it by recursing
      // into it with the full interval, which peels its root.
      self(self, std::move(g1), p0, p1);
      return;
    }
    const double frac = static_cast<double>(w1) / static_cast<double>(w1 + w2);
    index_t np1 = static_cast<index_t>(std::lround(frac * np));
    np1 = std::clamp<index_t>(np1, 1, np - 1);
    self(self, std::move(g1), p0, p0 + np1);
    self(self, std::move(g2), p0 + np1, p1);
  };
  recurse(recurse, std::move(roots), 0, nprocs);

  for (index_t v = 0; v < n; ++v) {
    SPF_CHECK(a.proc_of_block[static_cast<std::size_t>(v)] != -1,
              "every column must be assigned");
  }
  return a;
}

}  // namespace spf
