// Subtree-to-subcube column mapping (George, Heath, Liu & Ng — the
// hypercube solver the paper cites as [8]).
//
// The third classical mapping of the era, added as an extra baseline: the
// elimination tree is split at the top, disjoint processor subsets are
// recursively dedicated to disjoint subtrees (work-balanced bisection of
// both), and the columns above the split are wrap-mapped within their
// subtree's processor subset.  Localizes communication like the paper's
// block scheme — but along the elimination tree instead of the supernode
// geometry.
#pragma once

#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Assign the columns of a column partition by subtree-to-subcube.  The
/// per-column work drives the subtree bisection; pass block_work() of the
/// column partition.
Assignment subtree_schedule(const Partition& column_partition,
                            const std::vector<count_t>& col_work, index_t nprocs);

}  // namespace spf
