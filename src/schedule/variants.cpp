#include "schedule/variants.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace spf {

namespace {

index_t least_loaded(const std::vector<count_t>& load) {
  index_t best = 0;
  for (index_t p = 1; p < static_cast<index_t>(load.size()); ++p) {
    if (load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(best)]) best = p;
  }
  return best;
}

}  // namespace

Assignment greedy_min_load_schedule(const Partition& p, const std::vector<count_t>& blk_work,
                                    index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  SPF_REQUIRE(blk_work.size() == p.blocks.size(), "work/partition mismatch");
  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.resize(p.blocks.size());
  std::vector<count_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const index_t proc = least_loaded(load);
    a.proc_of_block[b] = proc;
    load[static_cast<std::size_t>(proc)] += blk_work[b];
  }
  return a;
}

Assignment lpt_schedule(const Partition& p, const std::vector<count_t>& blk_work,
                        index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  SPF_REQUIRE(blk_work.size() == p.blocks.size(), "work/partition mismatch");
  std::vector<index_t> order(p.blocks.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    const count_t wx = blk_work[static_cast<std::size_t>(x)];
    const count_t wy = blk_work[static_cast<std::size_t>(y)];
    return wx != wy ? wx > wy : x < y;
  });
  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.resize(p.blocks.size());
  std::vector<count_t> load(static_cast<std::size_t>(nprocs), 0);
  for (index_t b : order) {
    const index_t proc = least_loaded(load);
    a.proc_of_block[static_cast<std::size_t>(b)] = proc;
    load[static_cast<std::size_t>(proc)] += blk_work[static_cast<std::size_t>(b)];
  }
  return a;
}

Assignment locality_greedy_schedule(const Partition& p, const BlockDeps& deps,
                                    const std::vector<count_t>& blk_work, index_t nprocs,
                                    const LocalityGreedyOptions& opt) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  SPF_REQUIRE(blk_work.size() == p.blocks.size(), "work/partition mismatch");
  SPF_REQUIRE(deps.preds.size() == p.blocks.size(), "deps/partition mismatch");
  SPF_REQUIRE(opt.slack >= 0.0, "slack must be non-negative");

  const count_t total = std::accumulate(blk_work.begin(), blk_work.end(), count_t{0});
  const double avg_block =
      p.blocks.empty() ? 0.0 : static_cast<double>(total) / static_cast<double>(p.blocks.size());
  const double budget = opt.slack * avg_block;

  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(p.blocks.size(), -1);
  std::vector<count_t> load(static_cast<std::size_t>(nprocs), 0);

  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const index_t min_proc = least_loaded(load);
    const count_t min_load = load[static_cast<std::size_t>(min_proc)];
    // Best predecessor processor within the load budget.
    index_t chosen = -1;
    for (index_t pred : deps.preds[b]) {
      const index_t pp = a.proc_of_block[static_cast<std::size_t>(pred)];
      if (pp == -1) continue;
      if (static_cast<double>(load[static_cast<std::size_t>(pp)] - min_load) > budget) {
        continue;  // too loaded: locality not worth it
      }
      if (chosen == -1 ||
          load[static_cast<std::size_t>(pp)] < load[static_cast<std::size_t>(chosen)]) {
        chosen = pp;
      }
    }
    if (chosen == -1) chosen = min_proc;
    a.proc_of_block[b] = chosen;
    load[static_cast<std::size_t>(chosen)] += blk_work[b];
  }
  return a;
}

}  // namespace spf
