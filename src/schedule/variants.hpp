// Alternative block-allocation strategies.
//
// The paper closes with "the load balance can be improved by using more
// sophisticated strategies to allocate blocks to processors" and "more
// sophisticated scheduling strategies could be used to improve
// performance".  These variants realize that future work so the ablation
// benches can chart the strategy space:
//
//  * greedy min-load: pure balance, ignores locality entirely;
//  * LPT (longest processing time first): classic makespan heuristic,
//    also locality-blind;
//  * locality-greedy: balances like min-load but restricted to processors
//    that already hold a predecessor when that costs no more than a
//    configurable load overshoot — a tunable midpoint between the paper's
//    scheme and pure balance.
#pragma once

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Assign each block (in id order) to the currently least-loaded processor.
Assignment greedy_min_load_schedule(const Partition& p, const std::vector<count_t>& blk_work,
                                    index_t nprocs);

/// Longest-processing-time-first: blocks sorted by descending work, each to
/// the least-loaded processor.
Assignment lpt_schedule(const Partition& p, const std::vector<count_t>& blk_work,
                        index_t nprocs);

struct LocalityGreedyOptions {
  /// A predecessor processor is preferred as long as its load does not
  /// exceed the global minimum load by more than this fraction of the
  /// average block weight times the slack factor below.  0 = pure balance,
  /// large = pure locality.
  double slack = 4.0;
};

/// Balance-aware locality scheduler (see header comment).
Assignment locality_greedy_schedule(const Partition& p, const BlockDeps& deps,
                                    const std::vector<count_t>& blk_work, index_t nprocs,
                                    const LocalityGreedyOptions& opt = {});

}  // namespace spf
