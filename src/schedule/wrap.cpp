#include "schedule/wrap.hpp"

#include <limits>

#include "support/check.hpp"

namespace spf {

Partition column_partition(const SymbolicFactor& sf) {
  Partition p;
  p.options = PartitionOptions{1, 1, std::numeric_limits<index_t>::max(), 0};
  p.factor = SymbolicFactor(sf.n(), {sf.col_ptr().begin(), sf.col_ptr().end()},
                            {sf.row_ind().begin(), sf.row_ind().end()},
                            {sf.parent().begin(), sf.parent().end()});
  p.emap = ElementMap(sf.n());
  p.clusters.cluster_of_col.resize(static_cast<std::size_t>(sf.n()));
  p.layout.resize(static_cast<std::size_t>(sf.n()));
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto rows = sf.col_rows(j);
    const index_t id = static_cast<index_t>(p.blocks.size());
    p.blocks.push_back({BlockKind::kColumn, j, {j, j}, {j, rows.back()},
                        static_cast<count_t>(rows.size())});
    p.clusters.clusters.push_back({j, 1, {}});
    p.clusters.cluster_of_col[static_cast<std::size_t>(j)] = j;
    p.layout[static_cast<std::size_t>(j)].column_unit = id;
    p.emap.add_segment(j, {j, rows.back()}, id);
  }
  return p;
}

Assignment wrap_schedule(const Partition& p, index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.resize(p.blocks.size());
  for (index_t b = 0; b < p.num_blocks(); ++b) {
    const UnitBlock& blk = p.blocks[static_cast<std::size_t>(b)];
    SPF_REQUIRE(blk.kind == BlockKind::kColumn, "wrap mapping requires a column partition");
    a.proc_of_block[static_cast<std::size_t>(b)] = blk.cols.lo % nprocs;
  }
  return a;
}

}  // namespace spf
