// Wrap-mapped column assignment — the paper's baseline.
//
// "Computations associated with an entire column ... are assigned to a
// processor and the assignment of these columns ... is usually done in a
// wrap-around fashion."
#pragma once

#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

/// Build the trivial one-unit-per-column partition used by wrap mapping
/// (every cluster is a single column regardless of supernode structure).
Partition column_partition(const SymbolicFactor& sf);

/// Assign column j to processor j mod nprocs.  The partition must be a
/// column partition (every block a column unit).
Assignment wrap_schedule(const Partition& p, index_t nprocs);

}  // namespace spf
