#include "serve/coalescer.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf {

Coalescer::Coalescer(const CoalescerConfig& config) : config_(config) {
  SPF_REQUIRE(config_.max_batch_rhs >= 1, "coalescer needs a positive batch width");
  SPF_REQUIRE(config_.linger_ns >= 0, "coalescer linger cannot be negative");
}

SolveBatch Coalescer::to_batch(Group&& g) {
  SolveBatch b;
  b.members = std::move(g.members);
  b.width = g.width;
  return b;
}

bool Coalescer::ripe(const Group& g, ClockNs now) const {
  return g.width >= config_.max_batch_rhs ||
         now - g.oldest_submit_ns >= config_.linger_ns;
}

void Coalescer::add(Request&& r) {
  SPF_CHECK(r.is_solve(), "coalescer only holds solve requests");
  const SolvePayload& p = std::get<SolvePayload>(r.payload);
  Group& g = groups_[p.target.get()];
  g.oldest_submit_ns =
      g.members.empty() ? r.submit_ns : std::min(g.oldest_submit_ns, r.submit_ns);
  g.width += p.nrhs;
  g.members.push_back(std::move(r));
}

index_t Coalescer::width(const Factorization* key) const {
  const auto it = groups_.find(key);
  return it == groups_.end() ? 0 : it->second.width;
}

SolveBatch Coalescer::take_ready(ClockNs now) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (ripe(it->second, now)) {
      SolveBatch b = to_batch(std::move(it->second));
      groups_.erase(it);
      return b;
    }
  }
  return {};
}

SolveBatch Coalescer::take(const Factorization* key) {
  const auto it = groups_.find(key);
  if (it == groups_.end()) return {};
  SolveBatch b = to_batch(std::move(it->second));
  groups_.erase(it);
  return b;
}

ClockNs Coalescer::earliest_ripe_ns() const {
  ClockNs earliest = kClockNever;
  for (const auto& [key, g] : groups_) {
    earliest = std::min(earliest, g.oldest_submit_ns + config_.linger_ns);
  }
  return earliest;
}

std::vector<Request> Coalescer::drain() {
  std::vector<Request> out;
  for (auto& [key, g] : groups_) {
    for (Request& r : g.members) out.push_back(std::move(r));
  }
  groups_.clear();
  return out;
}

}  // namespace spf
