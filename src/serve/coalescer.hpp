// RHS coalescer: merges concurrent Solve requests that target the same
// Factorization into one solve_batch call.
//
// A batched trisolve walks the factor structure once for every right-hand
// side it carries (numeric/trisolve), so under concurrent solve traffic
// the service wants wide batches.  The coalescer accumulates solves per
// target factorization; a batch dispatches as soon as it reaches
// max_batch_rhs columns, or once the oldest member has waited linger_ns on
// the service's clock (linger 0 = dispatch immediately with whatever the
// queue already held — pure backlog coalescing).  Batching never changes
// results: solve_batch is bitwise identical per-RHS to individual solves
// (asserted in tests/test_engine.cpp and tests/test_serve.cpp).
//
// Externally synchronized: the SolverService calls every method under its
// own mutex (the coalescer shares state with the dispatch loop's wait
// predicate, so an internal lock would be redundant).
#pragma once

#include <unordered_map>
#include <vector>

#include "serve/request_queue.hpp"
#include "support/clock.hpp"

namespace spf {

struct CoalescerConfig {
  /// Maximum right-hand-side columns per dispatched batch.
  index_t max_batch_rhs = 8;
  /// How long a not-yet-full batch may wait for more members, measured on
  /// the service clock from its oldest member's submit time.  0 disables
  /// lingering (a batch still coalesces the queue's current backlog).
  ClockNs linger_ns = 0;
};

/// A dispatch-ready group of solve requests sharing one factorization.
struct SolveBatch {
  std::vector<Request> members;  ///< every payload is a SolvePayload
  index_t width = 0;             ///< summed nrhs
};

class Coalescer {
 public:
  explicit Coalescer(const CoalescerConfig& config);

  /// Add one solve request to its target's pending group (created on
  /// first use; the group's linger is anchored at its oldest member's
  /// submit time).
  void add(Request&& r);

  /// Pending width (summed nrhs) of the group for `key`; 0 when none.
  [[nodiscard]] index_t width(const Factorization* key) const;

  /// A pending group that is full (width >= max_batch_rhs) or whose
  /// linger expired, if any.  Empty batch otherwise.
  [[nodiscard]] SolveBatch take_ready(ClockNs now);

  /// Force out the pending group for `key` regardless of linger.
  [[nodiscard]] SolveBatch take(const Factorization* key);

  /// Earliest linger expiry over pending groups (kClockNever when none) —
  /// the dispatch loop's wake-up deadline.
  [[nodiscard]] ClockNs earliest_ripe_ns() const;

  /// All pending requests (service shutdown).
  [[nodiscard]] std::vector<Request> drain();

  [[nodiscard]] std::size_t pending_groups() const { return groups_.size(); }
  [[nodiscard]] const CoalescerConfig& config() const { return config_; }

 private:
  struct Group {
    std::vector<Request> members;
    index_t width = 0;
    ClockNs oldest_submit_ns = 0;
  };

  [[nodiscard]] static SolveBatch to_batch(Group&& g);
  [[nodiscard]] bool ripe(const Group& g, ClockNs now) const;

  CoalescerConfig config_;
  std::unordered_map<const Factorization*, Group> groups_;
};

}  // namespace spf
