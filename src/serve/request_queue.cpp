#include "serve/request_queue.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace spf {

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejected: return "rejected";
    case ServeStatus::kTimeout: return "timeout";
    case ServeStatus::kShed: return "shed";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kError: return "error";
  }
  return "?";
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueDepth: return "queue_depth";
    case RejectReason::kQueuedWork: return "queued_work";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

RequestQueue::RequestQueue(const RequestQueueConfig& config) : config_(config) {
  SPF_REQUIRE(config_.max_depth >= 1, "request queue needs a positive depth bound");
}

bool RequestQueue::before(const Request& a, const Request& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_ns != b.deadline_ns) return a.deadline_ns < b.deadline_ns;
  return a.seq < b.seq;
}

RequestQueue::PushOutcome RequestQueue::push(Request&& r) {
  PushOutcome out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    push_locked(std::move(r), out);
  }
  // A shedding push removed queued entries: that is a drain too (parked
  // connections may now fit).
  if (!out.shed.empty() && drain_listener_) drain_listener_();
  return out;
}

void RequestQueue::push_locked(Request&& r, PushOutcome& out) {
  if (closed_) {
    out.reason = RejectReason::kShutdown;
    out.rejected = std::move(r);
    return;
  }

  // Shed from the back (lowest priority, latest arrival first), but only
  // strictly-lower-priority work, and only when shedding actually makes
  // room — an equal-priority overload rejects the newcomer
  // deterministically instead of thrashing the queue, and a newcomer too
  // big to ever fit sheds nothing.
  const auto over_depth = [&] { return q_.size() >= config_.max_depth; };
  const auto over_work = [&] {
    return config_.max_queued_work != 0 && work_ + r.work > config_.max_queued_work;
  };
  if (config_.shed_on_overload && (over_depth() || over_work())) {
    // Sheddable entries are a suffix of the priority-sorted queue.
    std::size_t nvictims = 0;
    std::uint64_t victim_work = 0;
    for (auto it = q_.rbegin(); it != q_.rend() && it->priority < r.priority; ++it) {
      ++nvictims;
      victim_work += it->work;
    }
    const bool feasible =
        q_.size() - nvictims < config_.max_depth &&
        (config_.max_queued_work == 0 ||
         work_ - victim_work + r.work <= config_.max_queued_work);
    if (feasible) {
      while (over_depth() || over_work()) {
        work_ -= q_.back().work;
        out.shed.push_back(std::move(q_.back()));
        q_.pop_back();
      }
    }
  }
  if (over_depth()) {
    out.reason = RejectReason::kQueueDepth;
  } else if (over_work()) {
    out.reason = RejectReason::kQueuedWork;
  }
  if (out.reason != RejectReason::kNone) {
    out.rejected = std::move(r);
    return;
  }

  work_ += r.work;
  const auto pos = std::find_if(q_.begin(), q_.end(),
                                [&](const Request& queued) { return before(r, queued); });
  q_.insert(pos, std::move(r));
  high_water_ = std::max(high_water_, q_.size());
  out.admitted = true;
}

std::optional<Request> RequestQueue::pop(ClockNs now, std::vector<Request>* expired) {
  std::optional<Request> out;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!q_.empty()) {
      Request r = std::move(q_.front());
      q_.pop_front();
      work_ -= r.work;
      removed = true;
      if (r.deadline_ns != kClockNever && r.deadline_ns < now) {
        expired->push_back(std::move(r));
        continue;
      }
      out = std::move(r);
      break;
    }
  }
  if (removed && drain_listener_) drain_listener_();
  return out;
}

std::vector<Request> RequestQueue::take_solves_for(const Factorization* key,
                                                   index_t max_rhs, ClockNs now,
                                                   std::vector<Request>* expired) {
  std::vector<Request> taken;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index_t width = 0;
    for (auto it = q_.begin(); it != q_.end();) {
      if (!it->is_solve() || std::get<SolvePayload>(it->payload).target.get() != key) {
        ++it;
        continue;
      }
      if (it->deadline_ns != kClockNever && it->deadline_ns < now) {
        work_ -= it->work;
        expired->push_back(std::move(*it));
        it = q_.erase(it);
        removed = true;
        continue;
      }
      const index_t nrhs = std::get<SolvePayload>(it->payload).nrhs;
      if (width + nrhs > max_rhs) break;
      width += nrhs;
      work_ -= it->work;
      taken.push_back(std::move(*it));
      it = q_.erase(it);
      removed = true;
    }
  }
  if (removed && drain_listener_) drain_listener_();
  return taken;
}

std::vector<Request> RequestQueue::close_and_drain() {
  std::vector<Request> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    out.reserve(q_.size());
    for (Request& r : q_) out.push_back(std::move(r));
    q_.clear();
    work_ = 0;
  }
  // Fired even when the queue was already empty: closing IS the terminal
  // drain, and parked connections must get a last dispatch attempt (which
  // will complete their requests with kShutdown).
  if (drain_listener_) drain_listener_();
  return out;
}

bool RequestQueue::would_admit(std::uint64_t work) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;
  if (q_.size() >= config_.max_depth) return false;
  return config_.max_queued_work == 0 || work_ + work <= config_.max_queued_work;
}

bool RequestQueue::admits_when_empty(std::uint64_t work) const {
  // max_depth >= 1 is a construction invariant, so only the work bound can
  // make a request permanently inadmissible.
  return config_.max_queued_work == 0 || work <= config_.max_queued_work;
}

void RequestQueue::set_drain_listener(std::function<void()> fn) {
  drain_listener_ = std::move(fn);
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::uint64_t RequestQueue::queued_work() const {
  std::lock_guard<std::mutex> lock(mu_);
  return work_;
}

std::size_t RequestQueue::depth_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace spf
