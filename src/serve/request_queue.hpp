// The serving layer's bounded request queue with admission control.
//
// Callers do not talk to the SolverEngine directly under load — they
// submit Factorize / Solve requests, and the queue decides which ones a
// dispatcher may even see: a request is admitted only while the queue's
// depth and estimated queued work stay inside configured limits, rejected
// with a machine-readable reason otherwise.  Under overload an incoming
// request of strictly higher priority may instead shed queued
// lowest-priority work (returned to the caller to complete with kShed —
// nothing is ever silently discarded).  Dispatch order is priority first,
// then earliest deadline, then FIFO; requests whose deadline has already
// passed are handed back separately so they complete with kTimeout
// without occupying kernel threads.
//
// The queue is internally thread-safe (one mutex; every public call is
// atomic).  Waiting/notification is the SolverService's job — the queue
// never blocks.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "engine/solver_engine.hpp"
#include "matrix/csc.hpp"
#include "support/clock.hpp"

namespace spf {

enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };
inline constexpr int kNumPriorities = 3;

/// Terminal status of a served request.
enum class ServeStatus {
  kOk,        ///< executed, payload valid
  kRejected,  ///< refused at admission; see the ticket's RejectReason
  kTimeout,   ///< deadline passed before execution; no numeric work done
  kShed,      ///< dropped under overload to admit higher-priority work
  kShutdown,  ///< service stopped before the request was executed
  kError,     ///< execution threw; see `error`
};

/// Why a submission was refused at the door (admission control).
enum class RejectReason {
  kNone,
  kQueueDepth,  ///< queue already holds max_depth requests
  kQueuedWork,  ///< estimated queued work would exceed max_queued_work
  kShutdown,    ///< service is stopping
};

[[nodiscard]] const char* to_string(ServeStatus s);
[[nodiscard]] const char* to_string(RejectReason r);
[[nodiscard]] const char* to_string(Priority p);

struct FactorizeResult {
  ServeStatus status = ServeStatus::kError;
  std::shared_ptr<const Factorization> factorization;  ///< kOk only
  std::string error;
  double queue_seconds = 0.0;  ///< submit → dispatch (service clock)
  double exec_seconds = 0.0;   ///< engine time (kOk only)
};

struct SolveResult {
  ServeStatus status = ServeStatus::kError;
  std::vector<double> x;  ///< n x nrhs column-major solutions (kOk only)
  std::string error;
  double queue_seconds = 0.0;
  double exec_seconds = 0.0;
  index_t batch_rhs = 0;  ///< width of the coalesced batch this rode in
};

struct SubmitOptions {
  Priority priority = Priority::kNormal;
  /// Absolute deadline on the service's clock; kClockNever = none.  A
  /// request still queued past its deadline completes with kTimeout.
  ClockNs deadline_ns = kClockNever;
};

struct FactorizePayload {
  CscMatrix matrix;  ///< values for a (possibly already cached) pattern
  std::promise<FactorizeResult> promise;
};

struct SolvePayload {
  std::shared_ptr<const Factorization> target;
  std::vector<double> rhs;  ///< n x nrhs column-major
  index_t nrhs = 1;
  std::promise<SolveResult> promise;
};

/// One queued request.  Move-only (owns the promise).
struct Request {
  Priority priority = Priority::kNormal;
  ClockNs deadline_ns = kClockNever;
  ClockNs submit_ns = 0;
  std::uint64_t seq = 0;        ///< admission order, ties broken FIFO
  std::uint64_t work = 0;       ///< admission-control work estimate
  std::variant<FactorizePayload, SolvePayload> payload;

  [[nodiscard]] bool is_solve() const {
    return std::holds_alternative<SolvePayload>(payload);
  }
  [[nodiscard]] SolvePayload& solve() { return std::get<SolvePayload>(payload); }
  [[nodiscard]] FactorizePayload& factorize() {
    return std::get<FactorizePayload>(payload);
  }
};

struct RequestQueueConfig {
  /// Maximum queued (not yet dispatched) requests.
  std::size_t max_depth = 256;
  /// Maximum summed work estimate of queued requests; 0 = unlimited.
  /// Units: matrix nonzeros for Factorize, n·nrhs for Solve.
  std::uint64_t max_queued_work = 0;
  /// Allow an incoming request to shed queued strictly-lower-priority
  /// requests instead of being rejected when a limit is hit.
  bool shed_on_overload = true;
};

class RequestQueue {
 public:
  explicit RequestQueue(const RequestQueueConfig& config);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  struct PushOutcome {
    bool admitted = false;
    RejectReason reason = RejectReason::kNone;
    /// Lower-priority requests displaced to make room; the caller must
    /// complete them with ServeStatus::kShed.
    std::vector<Request> shed;
    /// The request itself when not admitted; the caller must complete it
    /// with ServeStatus::kRejected.
    std::optional<Request> rejected;
  };

  /// Admission control: admit `r` if the depth and work limits hold
  /// (shedding lower-priority entries when allowed), reject otherwise.
  [[nodiscard]] PushOutcome push(Request&& r);

  /// Dispatchable head: highest priority, then earliest deadline, then
  /// FIFO.  Entries whose deadline is < `now` are moved to `expired`
  /// (complete them with kTimeout); returns nullopt when empty.
  [[nodiscard]] std::optional<Request> pop(ClockNs now, std::vector<Request>* expired);

  /// Remove queued Solve requests targeting `key`, in queue order, until
  /// their summed nrhs would exceed `max_rhs`.  Expired ones land in
  /// `expired` (not counted against `max_rhs`).  Used by the coalescer to
  /// widen a batch.
  [[nodiscard]] std::vector<Request> take_solves_for(const Factorization* key,
                                                     index_t max_rhs, ClockNs now,
                                                     std::vector<Request>* expired);

  /// Close the queue (pushes now fail with kShutdown) and return every
  /// queued request so the service can complete them.
  [[nodiscard]] std::vector<Request> close_and_drain();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::uint64_t queued_work() const;
  [[nodiscard]] std::size_t depth_high_water() const;

  /// Would a request of `work` units be admitted right now (no shedding)?
  /// Advisory: the answer can change before a subsequent push.  The epoll
  /// transport's backpressure gate.
  [[nodiscard]] bool would_admit(std::uint64_t work) const;

  /// Could a request of `work` units EVER be admitted, i.e. does it fit an
  /// empty queue?  A request for which this is false must be rejected, not
  /// parked — no amount of draining makes room for it.
  [[nodiscard]] bool admits_when_empty(std::uint64_t work) const;

  /// Register `fn` to run after every call that removes queued entries
  /// (pop / take_solves_for / close_and_drain / a shedding push).  Invoked
  /// outside the queue lock — but possibly while the caller (the service
  /// dispatcher) holds its own lock, so `fn` must only hand off work
  /// (enqueue + notify), never call back into the service synchronously.
  /// Not thread-safe: set once before the queue sees traffic.
  void set_drain_listener(std::function<void()> fn);

 private:
  /// Ordering predicate: true when `a` dispatches before `b`.
  static bool before(const Request& a, const Request& b);

  /// push() body under mu_; the caller fires the drain listener afterwards.
  void push_locked(Request&& r, PushOutcome& out);

  RequestQueueConfig config_;
  std::function<void()> drain_listener_;  ///< fired after entries leave
  mutable std::mutex mu_;
  std::list<Request> q_;  ///< kept sorted by `before`
  std::uint64_t work_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace spf
