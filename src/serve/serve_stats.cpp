#include "serve/serve_stats.hpp"

#include <sstream>

#include "support/check.hpp"

namespace spf {

double ServeStats::mean_batch_width() const {
  return batches_formed == 0
             ? 1.0
             : static_cast<double>(rhs_coalesced) / static_cast<double>(batches_formed);
}

void ServeStats::write_json(JsonWriter& jw) const {
  jw.field("submitted", static_cast<long long>(submitted));
  jw.field("admitted", static_cast<long long>(admitted));
  jw.field("rejected_depth", static_cast<long long>(rejected_depth));
  jw.field("rejected_work", static_cast<long long>(rejected_work));
  jw.field("rejected_shutdown", static_cast<long long>(rejected_shutdown));
  jw.field("completed_ok", static_cast<long long>(completed_ok));
  jw.field("timed_out", static_cast<long long>(timed_out));
  jw.field("shed", static_cast<long long>(shed));
  jw.field("failed", static_cast<long long>(failed));
  jw.field("shutdown", static_cast<long long>(shutdown));
  jw.field("factorizations", static_cast<long long>(factorizations));
  jw.field("solve_requests", static_cast<long long>(solve_requests));
  jw.field("batches_formed", static_cast<long long>(batches_formed));
  jw.field("rhs_coalesced", static_cast<long long>(rhs_coalesced));
  jw.field("mean_batch_width", mean_batch_width());
  jw.field("factorize_exec_seconds", factorize_exec_seconds);
  jw.field("solve_exec_seconds", solve_exec_seconds);
  jw.field("queue_depth", static_cast<long long>(queue_depth));
  jw.field("queued_work", static_cast<long long>(queued_work));
  jw.field("queue_depth_high_water", static_cast<long long>(queue_depth_high_water));
  jw.field("pending_batches", static_cast<long long>(pending_batches));
  jw.begin_array("completed_by_priority");
  for (const std::uint64_t c : completed_by_priority) {
    jw.element(static_cast<long long>(c));
  }
  jw.end();
  jw.begin_array("latency_seconds_by_priority");
  for (const double s : latency_seconds_by_priority) jw.element(s);
  jw.end();
}

std::string ServeStats::to_json() const {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    write_json(jw);
    jw.end();
  }
  return os.str();
}

void ServeCounters::record_rejected(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueDepth:
      rejected_depth.fetch_add(1, std::memory_order_release);
      break;
    case RejectReason::kQueuedWork:
      rejected_work.fetch_add(1, std::memory_order_release);
      break;
    case RejectReason::kShutdown:
      rejected_shutdown.fetch_add(1, std::memory_order_release);
      break;
    case RejectReason::kNone:
      SPF_CHECK(false, "rejection without a reason");
  }
}

void ServeCounters::record_outcome(ServeStatus status, Priority priority,
                                   double latency_seconds) {
  switch (status) {
    case ServeStatus::kOk:
      completed_ok.fetch_add(1, std::memory_order_release);
      break;
    case ServeStatus::kTimeout:
      timed_out.fetch_add(1, std::memory_order_release);
      break;
    case ServeStatus::kShed:
      shed.fetch_add(1, std::memory_order_release);
      break;
    case ServeStatus::kShutdown:
      shutdown.fetch_add(1, std::memory_order_release);
      break;
    case ServeStatus::kError:
      failed.fetch_add(1, std::memory_order_release);
      break;
    case ServeStatus::kRejected:
      SPF_CHECK(false, "rejections are recorded via record_rejected");
  }
  const auto p = static_cast<std::size_t>(priority);
  SPF_CHECK(p < kNumPriorities, "priority out of range");
  completed_by_priority[p].fetch_add(1, std::memory_order_relaxed);
  add(latency_seconds_by_priority[p], latency_seconds);
}

void ServeCounters::record_factorize(double exec_seconds) {
  factorizations.fetch_add(1, std::memory_order_relaxed);
  add(factorize_exec_seconds, exec_seconds);
}

void ServeCounters::record_batch(std::uint64_t requests, std::uint64_t rhs,
                                 double exec_seconds) {
  solve_requests.fetch_add(requests, std::memory_order_relaxed);
  batches_formed.fetch_add(1, std::memory_order_relaxed);
  rhs_coalesced.fetch_add(rhs, std::memory_order_relaxed);
  add(solve_exec_seconds, exec_seconds);
}

ServeStats ServeCounters::snapshot() const {
  ServeStats s;
  // Terminal / outcome counters first (acquire), admission counters last:
  // every outcome was released after its request's `submitted` bump, so
  // the ordering guarantees outcomes <= admitted <= submitted.
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    s.completed_by_priority[p] = completed_by_priority[p].load(std::memory_order_relaxed);
    s.latency_seconds_by_priority[p] =
        latency_seconds_by_priority[p].load(std::memory_order_relaxed);
  }
  s.factorizations = factorizations.load(std::memory_order_relaxed);
  s.solve_requests = solve_requests.load(std::memory_order_relaxed);
  s.batches_formed = batches_formed.load(std::memory_order_relaxed);
  s.rhs_coalesced = rhs_coalesced.load(std::memory_order_relaxed);
  s.factorize_exec_seconds = factorize_exec_seconds.load(std::memory_order_relaxed);
  s.solve_exec_seconds = solve_exec_seconds.load(std::memory_order_relaxed);
  s.completed_ok = completed_ok.load(std::memory_order_acquire);
  s.timed_out = timed_out.load(std::memory_order_acquire);
  s.shed = shed.load(std::memory_order_acquire);
  s.failed = failed.load(std::memory_order_acquire);
  s.shutdown = shutdown.load(std::memory_order_acquire);
  s.rejected_depth = rejected_depth.load(std::memory_order_acquire);
  s.rejected_work = rejected_work.load(std::memory_order_acquire);
  s.rejected_shutdown = rejected_shutdown.load(std::memory_order_acquire);
  s.admitted = admitted.load(std::memory_order_acquire);
  s.submitted = submitted.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spf
