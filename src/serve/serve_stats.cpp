#include "serve/serve_stats.hpp"

#include <sstream>

#include "support/check.hpp"

namespace spf {

namespace {
std::uint64_t to_us(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}
}  // namespace

double ServeStats::mean_batch_width() const {
  return batches_formed == 0
             ? 1.0
             : static_cast<double>(rhs_coalesced) / static_cast<double>(batches_formed);
}

void ServeStats::write_json(JsonWriter& jw) const {
  jw.field("submitted", static_cast<long long>(submitted));
  jw.field("admitted", static_cast<long long>(admitted));
  jw.field("rejected_depth", static_cast<long long>(rejected_depth));
  jw.field("rejected_work", static_cast<long long>(rejected_work));
  jw.field("rejected_shutdown", static_cast<long long>(rejected_shutdown));
  jw.field("completed_ok", static_cast<long long>(completed_ok));
  jw.field("timed_out", static_cast<long long>(timed_out));
  jw.field("shed", static_cast<long long>(shed));
  jw.field("failed", static_cast<long long>(failed));
  jw.field("shutdown", static_cast<long long>(shutdown));
  jw.field("factorizations", static_cast<long long>(factorizations));
  jw.field("solve_requests", static_cast<long long>(solve_requests));
  jw.field("batches_formed", static_cast<long long>(batches_formed));
  jw.field("rhs_coalesced", static_cast<long long>(rhs_coalesced));
  jw.field("mean_batch_width", mean_batch_width());
  jw.field("factorize_exec_seconds", factorize_exec_seconds);
  jw.field("solve_exec_seconds", solve_exec_seconds);
  jw.field("queue_depth", static_cast<long long>(queue_depth));
  jw.field("queued_work", static_cast<long long>(queued_work));
  jw.field("queue_depth_high_water", static_cast<long long>(queue_depth_high_water));
  jw.field("pending_batches", static_cast<long long>(pending_batches));
  jw.begin_array("completed_by_priority");
  for (const std::uint64_t c : completed_by_priority) {
    jw.element(static_cast<long long>(c));
  }
  jw.end();
  jw.begin_array("latency_seconds_by_priority");
  for (const double s : latency_seconds_by_priority) jw.element(s);
  jw.end();
}

std::string ServeStats::to_json() const {
  std::ostringstream os;
  {
    JsonWriter jw(os);
    jw.begin_object();
    write_json(jw);
    jw.end();
  }
  return os.str();
}

// Registration order IS the write-path order: submitted, admitted, then
// the terminal counters — the registry's reverse-order snapshot therefore
// acquire-loads outcomes before admissions.
ServeCounters::ServeCounters()
    : submitted_(registry_.counter("serve.submitted")),
      admitted_(registry_.counter("serve.admitted")),
      rejected_depth_(registry_.counter("serve.rejected_depth")),
      rejected_work_(registry_.counter("serve.rejected_work")),
      rejected_shutdown_(registry_.counter("serve.rejected_shutdown")),
      completed_ok_(registry_.counter("serve.completed_ok")),
      timed_out_(registry_.counter("serve.timed_out")),
      shed_(registry_.counter("serve.shed")),
      failed_(registry_.counter("serve.failed")),
      shutdown_(registry_.counter("serve.shutdown")),
      factorizations_(registry_.counter("serve.factorizations")),
      solve_requests_(registry_.counter("serve.solve_requests")),
      batches_formed_(registry_.counter("serve.batches_formed")),
      rhs_coalesced_(registry_.counter("serve.rhs_coalesced")),
      factorize_exec_seconds_(registry_.sum("serve.factorize_exec_seconds")),
      solve_exec_seconds_(registry_.sum("serve.solve_exec_seconds")),
      queue_wait_us_(registry_.histogram("serve.queue_wait_us")),
      latency_us_(registry_.histogram("serve.latency_us")) {
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    const std::string suffix = "_p" + std::to_string(p);
    completed_by_priority_[p] = &registry_.counter("serve.completed" + suffix);
    latency_seconds_by_priority_[p] =
        &registry_.sum("serve.latency_seconds" + suffix);
  }
}

void ServeCounters::record_rejected(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueDepth:
      rejected_depth_.add_release();
      break;
    case RejectReason::kQueuedWork:
      rejected_work_.add_release();
      break;
    case RejectReason::kShutdown:
      rejected_shutdown_.add_release();
      break;
    case RejectReason::kNone:
      SPF_CHECK(false, "rejection without a reason");
  }
}

void ServeCounters::record_outcome(ServeStatus status, Priority priority,
                                   double latency_seconds) {
  switch (status) {
    case ServeStatus::kOk:
      completed_ok_.add_release();
      break;
    case ServeStatus::kTimeout:
      timed_out_.add_release();
      break;
    case ServeStatus::kShed:
      shed_.add_release();
      break;
    case ServeStatus::kShutdown:
      shutdown_.add_release();
      break;
    case ServeStatus::kError:
      failed_.add_release();
      break;
    case ServeStatus::kRejected:
      SPF_CHECK(false, "rejections are recorded via record_rejected");
  }
  const auto p = static_cast<std::size_t>(priority);
  SPF_CHECK(p < kNumPriorities, "priority out of range");
  completed_by_priority_[p]->add();
  latency_seconds_by_priority_[p]->add(latency_seconds);
  latency_us_.record(to_us(latency_seconds));
}

void ServeCounters::record_factorize(double exec_seconds) {
  factorizations_.add();
  factorize_exec_seconds_.add(exec_seconds);
}

void ServeCounters::record_batch(std::uint64_t requests, std::uint64_t rhs,
                                 double exec_seconds) {
  solve_requests_.add(requests);
  batches_formed_.add();
  rhs_coalesced_.add(rhs);
  solve_exec_seconds_.add(exec_seconds);
}

void ServeCounters::record_queue_wait(double seconds) {
  queue_wait_us_.record(to_us(seconds));
}

ServeStats ServeCounters::snapshot() const {
  // The registry loads in reverse registration order: terminal / outcome
  // counters first (acquire), admission counters last — every outcome was
  // released after its request's `submitted` bump, so the ordering
  // guarantees outcomes <= admitted <= submitted.
  const obs::MetricsSnapshot m = registry_.snapshot();
  ServeStats s;
  s.submitted = m.counter("serve.submitted");
  s.admitted = m.counter("serve.admitted");
  s.rejected_depth = m.counter("serve.rejected_depth");
  s.rejected_work = m.counter("serve.rejected_work");
  s.rejected_shutdown = m.counter("serve.rejected_shutdown");
  s.completed_ok = m.counter("serve.completed_ok");
  s.timed_out = m.counter("serve.timed_out");
  s.shed = m.counter("serve.shed");
  s.failed = m.counter("serve.failed");
  s.shutdown = m.counter("serve.shutdown");
  s.factorizations = m.counter("serve.factorizations");
  s.solve_requests = m.counter("serve.solve_requests");
  s.batches_formed = m.counter("serve.batches_formed");
  s.rhs_coalesced = m.counter("serve.rhs_coalesced");
  s.factorize_exec_seconds = m.sum("serve.factorize_exec_seconds");
  s.solve_exec_seconds = m.sum("serve.solve_exec_seconds");
  for (std::size_t p = 0; p < kNumPriorities; ++p) {
    const std::string suffix = "_p" + std::to_string(p);
    s.completed_by_priority[p] = m.counter("serve.completed" + suffix);
    s.latency_seconds_by_priority[p] = m.sum("serve.latency_seconds" + suffix);
  }
  return s;
}

}  // namespace spf
