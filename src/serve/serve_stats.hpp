// Serving-layer observability, mirroring engine/stats: ServeCounters is
// the thread-safe accumulator every dispatcher and submit path writes;
// ServeStats is the plain JSON-snapshotable view the operator polls.
//
// Counter discipline: `submitted` moves first on every submission and the
// terminal counters (completed per status, rejections) move with release
// ordering, so a snapshot (which acquire-loads terminals before
// `submitted`) never sees more outcomes than submissions — the same
// coherence contract EngineStats keeps for hits/misses vs requests.
//
// The counters live in an owned obs::MetricsRegistry ("serve.*" names),
// registered in write-path order so the registry's reverse-order snapshot
// preserves that contract.  The registry additionally carries two latency
// histograms the plain struct cannot express: serve.queue_wait_us
// (admission -> execution start) and serve.latency_us (submit ->
// terminal), exported via registry().
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "serve/request_queue.hpp"
#include "support/json.hpp"

namespace spf {

/// Plain snapshot of service activity since construction.
struct ServeStats {
  // Admission.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_depth = 0;
  std::uint64_t rejected_work = 0;
  std::uint64_t rejected_shutdown = 0;
  // Terminal outcomes of admitted requests.
  std::uint64_t completed_ok = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;       ///< execution threw (kError)
  std::uint64_t shutdown = 0;     ///< pending at stop()
  // Execution shape.
  std::uint64_t factorizations = 0;
  std::uint64_t solve_requests = 0;   ///< solve requests executed
  std::uint64_t batches_formed = 0;   ///< solve_batch calls issued
  std::uint64_t rhs_coalesced = 0;    ///< RHS columns across those batches
  double factorize_exec_seconds = 0.0;
  double solve_exec_seconds = 0.0;
  // Queue shape (sampled at snapshot time, except the high-water mark).
  std::size_t queue_depth = 0;
  std::uint64_t queued_work = 0;
  std::size_t queue_depth_high_water = 0;
  std::size_t pending_batches = 0;  ///< coalescer groups lingering
  // Per-priority completion latency (submit -> terminal, service clock).
  std::array<std::uint64_t, kNumPriorities> completed_by_priority{};
  std::array<double, kNumPriorities> latency_seconds_by_priority{};

  /// Mean coalesced batch width (1.0 when no batch was formed yet).
  [[nodiscard]] double mean_batch_width() const;

  /// Emit the snapshot's fields into the writer's currently open object.
  void write_json(JsonWriter& jw) const;
  /// The snapshot as one standalone JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Lock-free accumulator shared by the submit path and all dispatchers,
/// backed by an owned obs::MetricsRegistry.
class ServeCounters {
 public:
  ServeCounters();
  ServeCounters(const ServeCounters&) = delete;
  ServeCounters& operator=(const ServeCounters&) = delete;

  void record_submitted() { submitted_.add(); }
  void record_admitted() { admitted_.add_release(); }
  void record_rejected(RejectReason reason);
  /// Terminal outcome plus the request's submit->terminal latency.
  void record_outcome(ServeStatus status, Priority priority, double latency_seconds);
  void record_factorize(double exec_seconds);
  /// One coalesced batch: `requests` member requests carrying `rhs` columns.
  void record_batch(std::uint64_t requests, std::uint64_t rhs, double exec_seconds);
  /// Admission -> execution-start wait of one request (both request kinds).
  void record_queue_wait(double seconds);

  /// Coherent snapshot: terminal counters are acquire-loaded before the
  /// admission counters, so outcomes never exceed submissions.
  [[nodiscard]] ServeStats snapshot() const;

  /// The backing registry ("serve.*" names, including the
  /// serve.queue_wait_us / serve.latency_us histograms).
  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  obs::MetricsRegistry registry_;
  // Handles, registered in write-path order (upstream first).
  obs::Counter& submitted_;
  obs::Counter& admitted_;
  obs::Counter& rejected_depth_;
  obs::Counter& rejected_work_;
  obs::Counter& rejected_shutdown_;
  obs::Counter& completed_ok_;
  obs::Counter& timed_out_;
  obs::Counter& shed_;
  obs::Counter& failed_;
  obs::Counter& shutdown_;
  obs::Counter& factorizations_;
  obs::Counter& solve_requests_;
  obs::Counter& batches_formed_;
  obs::Counter& rhs_coalesced_;
  obs::Sum& factorize_exec_seconds_;
  obs::Sum& solve_exec_seconds_;
  obs::Histogram& queue_wait_us_;
  obs::Histogram& latency_us_;
  std::array<obs::Counter*, kNumPriorities> completed_by_priority_;
  std::array<obs::Sum*, kNumPriorities> latency_seconds_by_priority_;
};

}  // namespace spf
