// Serving-layer observability, mirroring engine/stats: ServeCounters is
// the thread-safe accumulator every dispatcher and submit path writes;
// ServeStats is the plain JSON-snapshotable view the operator polls.
//
// Counter discipline: `submitted` moves first on every submission and the
// terminal counters (completed per status, rejections) move with release
// ordering, so a snapshot (which acquire-loads terminals before
// `submitted`) never sees more outcomes than submissions — the same
// coherence contract EngineStats keeps for hits/misses vs requests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "serve/request_queue.hpp"
#include "support/json.hpp"

namespace spf {

/// Plain snapshot of service activity since construction.
struct ServeStats {
  // Admission.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_depth = 0;
  std::uint64_t rejected_work = 0;
  std::uint64_t rejected_shutdown = 0;
  // Terminal outcomes of admitted requests.
  std::uint64_t completed_ok = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;       ///< execution threw (kError)
  std::uint64_t shutdown = 0;     ///< pending at stop()
  // Execution shape.
  std::uint64_t factorizations = 0;
  std::uint64_t solve_requests = 0;   ///< solve requests executed
  std::uint64_t batches_formed = 0;   ///< solve_batch calls issued
  std::uint64_t rhs_coalesced = 0;    ///< RHS columns across those batches
  double factorize_exec_seconds = 0.0;
  double solve_exec_seconds = 0.0;
  // Queue shape (sampled at snapshot time, except the high-water mark).
  std::size_t queue_depth = 0;
  std::uint64_t queued_work = 0;
  std::size_t queue_depth_high_water = 0;
  std::size_t pending_batches = 0;  ///< coalescer groups lingering
  // Per-priority completion latency (submit -> terminal, service clock).
  std::array<std::uint64_t, kNumPriorities> completed_by_priority{};
  std::array<double, kNumPriorities> latency_seconds_by_priority{};

  /// Mean coalesced batch width (1.0 when no batch was formed yet).
  [[nodiscard]] double mean_batch_width() const;

  /// Emit the snapshot's fields into the writer's currently open object.
  void write_json(JsonWriter& jw) const;
  /// The snapshot as one standalone JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Lock-free accumulator shared by the submit path and all dispatchers.
class ServeCounters {
 public:
  void record_submitted() { submitted.fetch_add(1, std::memory_order_relaxed); }
  void record_admitted() { admitted.fetch_add(1, std::memory_order_release); }
  void record_rejected(RejectReason reason);
  /// Terminal outcome plus the request's submit->terminal latency.
  void record_outcome(ServeStatus status, Priority priority, double latency_seconds);
  void record_factorize(double exec_seconds);
  /// One coalesced batch: `requests` member requests carrying `rhs` columns.
  void record_batch(std::uint64_t requests, std::uint64_t rhs, double exec_seconds);

  /// Coherent snapshot: terminal counters are acquire-loaded before the
  /// admission counters, so outcomes never exceed submissions.
  [[nodiscard]] ServeStats snapshot() const;

 private:
  static void add(std::atomic<double>& a, double v) {
    a.fetch_add(v, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> submitted{0}, admitted{0}, rejected_depth{0},
      rejected_work{0}, rejected_shutdown{0}, completed_ok{0}, timed_out{0}, shed{0},
      failed{0}, shutdown{0}, factorizations{0}, solve_requests{0}, batches_formed{0},
      rhs_coalesced{0};
  std::atomic<double> factorize_exec_seconds{0.0}, solve_exec_seconds{0.0};
  std::array<std::atomic<std::uint64_t>, kNumPriorities> completed_by_priority{};
  std::array<std::atomic<double>, kNumPriorities> latency_seconds_by_priority{};
};

}  // namespace spf
