#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace spf {

namespace {

double to_seconds(ClockNs ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

SolverService::SolverService(std::shared_ptr<SolverEngine> engine,
                             const SolverServiceConfig& config)
    : config_(config),
      engine_(std::move(engine)),
      clock_(config.clock ? config.clock : SteadyClock::instance()),
      queue_(config.queue),
      coalescer_(config.coalesce),
      paused_(config.start_paused) {
  SPF_REQUIRE(engine_ != nullptr, "service needs a solver engine");
  SPF_REQUIRE(config_.workers >= 1, "service needs at least one dispatcher");
  SPF_REQUIRE(config_.tracer == nullptr ||
                  config_.tracer->num_workers() >= config_.workers,
              "tracer has fewer rings than the service has dispatchers");
  // Wire the drain signal before any dispatcher can touch the queue.
  if (config_.on_drain) queue_.set_drain_listener(config_.on_drain);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (index_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

SolverService::SolverService(const SolverEngineConfig& engine_config,
                             const SolverServiceConfig& config)
    : SolverService(std::make_shared<SolverEngine>(engine_config), config) {}

SolverService::~SolverService() { stop(); }

FactorizeTicket SolverService::submit_factorize(CscMatrix lower,
                                                const SubmitOptions& opts) {
  SPF_REQUIRE(lower.has_values(), "factorize request needs numeric values");
  counters_.record_submitted();

  Request r;
  r.priority = opts.priority;
  r.deadline_ns = opts.deadline_ns;
  r.submit_ns = clock_->now_ns();
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.work = static_cast<std::uint64_t>(lower.nnz());
  FactorizePayload payload;
  payload.matrix = std::move(lower);
  FactorizeTicket ticket;
  ticket.result = payload.promise.get_future();
  r.payload = std::move(payload);

  RequestQueue::PushOutcome outcome = queue_.push(std::move(r));
  if (outcome.admitted) {
    counters_.record_admitted();
    ticket.admitted = true;
  } else {
    counters_.record_rejected(outcome.reason);
    ticket.reject_reason = outcome.reason;
    complete_rejected(std::move(*outcome.rejected), outcome.reason);
  }
  complete_unrun_all(std::move(outcome.shed), ServeStatus::kShed);
  { std::lock_guard<std::mutex> lock(mu_); }  // pair with the dispatch wait
  cv_.notify_one();
  return ticket;
}

SolveTicket SolverService::submit_solve(std::shared_ptr<const Factorization> target,
                                        std::vector<double> rhs, index_t nrhs,
                                        const SubmitOptions& opts) {
  SPF_REQUIRE(target != nullptr, "solve request needs a factorization");
  SPF_REQUIRE(nrhs >= 1, "solve request needs at least one right-hand side");
  SPF_REQUIRE(rhs.size() == static_cast<std::size_t>(target->plan().n) *
                                static_cast<std::size_t>(nrhs),
              "rhs size mismatch (expect column-major n x nrhs)");
  counters_.record_submitted();

  Request r;
  r.priority = opts.priority;
  r.deadline_ns = opts.deadline_ns;
  r.submit_ns = clock_->now_ns();
  r.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  r.work = static_cast<std::uint64_t>(target->plan().n) *
           static_cast<std::uint64_t>(nrhs);
  SolvePayload payload;
  payload.target = std::move(target);
  payload.rhs = std::move(rhs);
  payload.nrhs = nrhs;
  SolveTicket ticket;
  ticket.result = payload.promise.get_future();
  r.payload = std::move(payload);

  RequestQueue::PushOutcome outcome = queue_.push(std::move(r));
  if (outcome.admitted) {
    counters_.record_admitted();
    ticket.admitted = true;
  } else {
    counters_.record_rejected(outcome.reason);
    ticket.reject_reason = outcome.reason;
    complete_rejected(std::move(*outcome.rejected), outcome.reason);
  }
  complete_unrun_all(std::move(outcome.shed), ServeStatus::kShed);
  { std::lock_guard<std::mutex> lock(mu_); }  // pair with the dispatch wait
  cv_.notify_one();
  return ticket;
}

void SolverService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void SolverService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SolverService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // No dispatcher is running now; fail everything still waiting.
  std::vector<Request> leftover = queue_.close_and_drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Request& r : coalescer_.drain()) leftover.push_back(std::move(r));
  }
  complete_unrun_all(std::move(leftover), ServeStatus::kShutdown);
}

ServeStats SolverService::stats() const {
  ServeStats s = counters_.snapshot();
  s.queue_depth = queue_.depth();
  s.queued_work = queue_.queued_work();
  s.queue_depth_high_water = queue_.depth_high_water();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.pending_batches = coalescer_.pending_groups();
  }
  return s;
}

void SolverService::worker_loop(index_t me) {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stopping_) return;
    if (paused_) {
      cv_.wait(lk);
      continue;
    }
    const ClockNs now = clock_->now_ns();

    // 1. A coalesced batch that is full or whose linger expired.
    SolveBatch ready = coalescer_.take_ready(now);
    if (!ready.members.empty()) {
      lk.unlock();
      run_batch(std::move(ready), me);
      lk.lock();
      continue;
    }

    // 2. The queue's dispatch head.  A solve joins (and possibly
    // completes) its target's batch, widened with every other queued
    // solve for the same factorization; a factorize runs directly.
    std::vector<Request> expired;
    std::optional<Request> req = queue_.pop(now, &expired);
    bool parked = false;
    if (req && req->is_solve()) {
      const Factorization* key = req->solve().target.get();
      const index_t have = coalescer_.width(key) + req->solve().nrhs;
      const index_t room = config_.coalesce.max_batch_rhs > have
                               ? config_.coalesce.max_batch_rhs - have
                               : 0;
      std::vector<Request> extra = queue_.take_solves_for(key, room, now, &expired);
      coalescer_.add(std::move(*req));
      for (Request& e : extra) coalescer_.add(std::move(e));
      req.reset();
      ready = coalescer_.take_ready(now);
      parked = ready.members.empty();
    }

    if (!expired.empty() || req || !ready.members.empty()) {
      lk.unlock();
      complete_unrun_all(std::move(expired), ServeStatus::kTimeout);
      if (req) run_factorize(std::move(*req), me);
      if (!ready.members.empty()) run_batch(std::move(ready), me);
      lk.lock();
      continue;
    }
    if (parked) continue;  // the queue may hold more work for this pass

    // 3. Idle: wake on a submission, resume/stop, or the earliest linger
    // expiry among parked batches.
    clock_->wait_until(cv_, lk, coalescer_.earliest_ripe_ns());
  }
}

void SolverService::run_factorize(Request req, index_t me) {
  const ClockNs start = clock_->now_ns();
  const std::int64_t span_t0 = obs::now_ns();
  FactorizePayload& payload = req.factorize();
  FactorizeResult res;
  res.queue_seconds = to_seconds(start - req.submit_ns);
  counters_.record_queue_wait(res.queue_seconds);
  try {
    Factorization f = engine_->factorize(payload.matrix);
    res.exec_seconds = f.plan_seconds() + f.numeric_seconds();
    res.factorization = std::make_shared<const Factorization>(std::move(f));
    res.status = ServeStatus::kOk;
  } catch (const std::exception& e) {
    res.status = ServeStatus::kError;
    res.error = e.what();
  }
  if (config_.tracer != nullptr) {
    config_.tracer->ring(me).record({span_t0, obs::now_ns(),
                                     static_cast<std::int64_t>(req.seq),
                                     static_cast<index_t>(req.priority),
                                     obs::SpanKind::kFactorize});
  }
  counters_.record_factorize(res.exec_seconds);
  counters_.record_outcome(res.status, req.priority,
                           latency_seconds(req, clock_->now_ns()));
  payload.promise.set_value(std::move(res));
}

void SolverService::run_batch(SolveBatch batch, index_t me) {
  const ClockNs now = clock_->now_ns();
  // Deadline gate: an expired member completes with kTimeout and does not
  // ride along (it must not consume kernel time).
  std::vector<Request> live;
  live.reserve(batch.members.size());
  index_t width = 0;
  for (Request& r : batch.members) {
    if (r.deadline_ns != kClockNever && r.deadline_ns < now) {
      complete_unrun(std::move(r), ServeStatus::kTimeout);
    } else {
      width += r.solve().nrhs;
      live.push_back(std::move(r));
    }
  }
  if (live.empty()) return;

  const Factorization& f = *live.front().solve().target;
  const auto n = static_cast<std::size_t>(f.plan().n);

  // One column-major buffer carrying every member's right-hand sides.
  std::vector<double> rhs;
  rhs.reserve(n * static_cast<std::size_t>(width));
  for (const Request& r : live) {
    const SolvePayload& p = std::get<SolvePayload>(r.payload);
    rhs.insert(rhs.end(), p.rhs.begin(), p.rhs.end());
  }

  SolveRunInfo info;
  std::vector<double> xs;
  std::string error;
  const std::int64_t span_t0 = obs::now_ns();
  try {
    xs = f.solve_batch(rhs, width, &info);
  } catch (const std::exception& e) {
    error = e.what();
  }
  if (config_.tracer != nullptr) {
    config_.tracer->ring(me).record(
        {span_t0, obs::now_ns(), static_cast<std::int64_t>(live.front().seq), width,
         obs::SpanKind::kSolveBatch});
  }

  counters_.record_batch(live.size(), static_cast<std::uint64_t>(width), info.seconds);
  const ClockNs done = clock_->now_ns();
  std::size_t col = 0;
  for (Request& r : live) {
    SolvePayload& p = r.solve();
    SolveResult res;
    res.queue_seconds = to_seconds(now - r.submit_ns);
    counters_.record_queue_wait(res.queue_seconds);
    res.exec_seconds = info.seconds;
    res.batch_rhs = width;
    if (error.empty()) {
      res.status = ServeStatus::kOk;
      const std::size_t len = n * static_cast<std::size_t>(p.nrhs);
      res.x.assign(xs.begin() + static_cast<std::ptrdiff_t>(col * n),
                   xs.begin() + static_cast<std::ptrdiff_t>(col * n + len));
    } else {
      res.status = ServeStatus::kError;
      res.error = error;
    }
    col += static_cast<std::size_t>(p.nrhs);
    counters_.record_outcome(res.status, r.priority, latency_seconds(r, done));
    p.promise.set_value(std::move(res));
  }
}

void SolverService::complete_unrun(Request&& req, ServeStatus status) {
  const ClockNs now = clock_->now_ns();
  counters_.record_outcome(status, req.priority, latency_seconds(req, now));
  const double queued = to_seconds(now - req.submit_ns);
  if (req.is_solve()) {
    SolveResult res;
    res.status = status;
    res.queue_seconds = queued;
    req.solve().promise.set_value(std::move(res));
  } else {
    FactorizeResult res;
    res.status = status;
    res.queue_seconds = queued;
    req.factorize().promise.set_value(std::move(res));
  }
}

void SolverService::complete_unrun_all(std::vector<Request>&& reqs, ServeStatus status) {
  for (Request& r : reqs) complete_unrun(std::move(r), status);
}

void SolverService::complete_rejected(Request&& req, RejectReason reason) {
  if (req.is_solve()) {
    SolveResult res;
    res.status = ServeStatus::kRejected;
    res.error = to_string(reason);
    req.solve().promise.set_value(std::move(res));
  } else {
    FactorizeResult res;
    res.status = ServeStatus::kRejected;
    res.error = to_string(reason);
    req.factorize().promise.set_value(std::move(res));
  }
}

double SolverService::latency_seconds(const Request& req, ClockNs now) const {
  return to_seconds(now - req.submit_ns);
}

}  // namespace spf
