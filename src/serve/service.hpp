// SolverService: the in-process serving layer over a shared SolverEngine.
//
//   clients ──submit──► RequestQueue ──pop──► dispatchers ──► SolverEngine
//                (admission control,    (deadline check,
//                 priority order,        RHS coalescing)
//                 overload shedding)
//
// The engine's plan cache makes repeated factorizations cheap; this layer
// makes *concurrent* traffic well-behaved: a bounded queue rejects with a
// reason instead of growing without limit, expired requests complete with
// kTimeout instead of occupying kernel threads, overload sheds the
// lowest-priority work first (reported, never silent), and concurrent
// solves against one factorization coalesce into a single batched
// trisolve.  Every admitted request's future reaches exactly one terminal
// status — the service never deadlocks on shutdown and never discards a
// promise.
//
// Time is read exclusively from the injected Clock, so tests drive
// deadlines and linger windows deterministically with a ManualClock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/solver_engine.hpp"
#include "obs/trace.hpp"
#include "serve/coalescer.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_stats.hpp"
#include "support/clock.hpp"

namespace spf {

struct SolverServiceConfig {
  /// Dispatcher threads executing engine work.
  index_t workers = 2;
  RequestQueueConfig queue{};
  CoalescerConfig coalesce{};
  /// Service time source; null = SteadyClock::instance().
  std::shared_ptr<const Clock> clock;
  /// Start with dispatch paused (tests: fill the queue deterministically,
  /// then resume()).
  bool start_paused = false;
  /// When non-null, every executed factorization / coalesced solve batch
  /// records a kFactorize / kSolveBatch span into the dispatcher's ring
  /// (span id = request seq, arg = priority / batch RHS width).  Must have
  /// at least `workers` rings and outlive the service.
  obs::Tracer* tracer = nullptr;
  /// When set, runs after every queue operation that removes entries (the
  /// epoll transport's backpressure resume signal).  Invoked possibly while
  /// a dispatcher holds the service lock: only hand off work, never call
  /// back into the service synchronously.
  std::function<void()> on_drain;
};

/// Outcome of a submission: either admitted with a future, or rejected
/// with a reason (the future is still valid and already holds a
/// kRejected result, so waiting on it is harmless).
template <typename ResultT>
struct Ticket {
  bool admitted = false;
  RejectReason reject_reason = RejectReason::kNone;
  std::future<ResultT> result;
};

using FactorizeTicket = Ticket<FactorizeResult>;
using SolveTicket = Ticket<SolveResult>;

class SolverService {
 public:
  /// Serve requests through `engine` (shared: other services / direct
  /// callers may use it concurrently; they share its plan cache).
  SolverService(std::shared_ptr<SolverEngine> engine, const SolverServiceConfig& config);
  /// Convenience: build a dedicated engine from `engine_config`.
  SolverService(const SolverEngineConfig& engine_config,
                const SolverServiceConfig& config);
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Queue a numeric factorization of `lower` (values for a known or new
  /// pattern — cold analysis happens on the dispatcher).
  [[nodiscard]] FactorizeTicket submit_factorize(CscMatrix lower,
                                                 const SubmitOptions& opts = {});

  /// Queue a solve of `target`'s factor against `rhs` (n x nrhs
  /// column-major).  Concurrent solves for the same target coalesce.
  [[nodiscard]] SolveTicket submit_solve(std::shared_ptr<const Factorization> target,
                                         std::vector<double> rhs, index_t nrhs = 1,
                                         const SubmitOptions& opts = {});

  /// Stop dispatching (queued work stays queued).  Idempotent.
  void pause();
  /// Resume dispatching.
  void resume();
  /// Reject new work, complete everything still queued or lingering with
  /// kShutdown, and join the dispatchers.  Idempotent; the destructor
  /// calls it.
  void stop();

  /// Advisory admission probes over the service's queue (see
  /// RequestQueue::would_admit / admits_when_empty); the epoll transport's
  /// park-or-reject decision.
  [[nodiscard]] bool would_admit(std::uint64_t work) const {
    return queue_.would_admit(work);
  }
  [[nodiscard]] bool admits_when_empty(std::uint64_t work) const {
    return queue_.admits_when_empty(work);
  }

  [[nodiscard]] ServeStats stats() const;
  /// The serve-side metrics registry ("serve.*" counters plus the
  /// queue-wait / completion-latency histograms).
  [[nodiscard]] const obs::MetricsRegistry& metrics_registry() const {
    return counters_.registry();
  }
  [[nodiscard]] const std::shared_ptr<SolverEngine>& engine() const { return engine_; }
  [[nodiscard]] const SolverServiceConfig& config() const { return config_; }

 private:
  void worker_loop(index_t me);
  /// Execute a factorize request (engine call outside the service lock).
  void run_factorize(Request req, index_t me);
  /// Execute a coalesced solve batch: expired members complete with
  /// kTimeout, the rest share one solve_batch call.
  void run_batch(SolveBatch batch, index_t me);
  void complete_unrun(Request&& req, ServeStatus status);
  void complete_unrun_all(std::vector<Request>&& reqs, ServeStatus status);
  void complete_rejected(Request&& req, RejectReason reason);
  [[nodiscard]] double latency_seconds(const Request& req, ClockNs now) const;

  SolverServiceConfig config_;
  std::shared_ptr<SolverEngine> engine_;
  std::shared_ptr<const Clock> clock_;
  RequestQueue queue_;
  ServeCounters counters_;
  std::atomic<std::uint64_t> seq_{0};

  mutable std::mutex mu_;  ///< guards coalescer_, paused_, stopping_
  std::condition_variable cv_;
  Coalescer coalescer_;
  bool paused_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spf
