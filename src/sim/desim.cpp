#include "sim/desim.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"

namespace spf {

namespace {

/// Row-list-against-segments walker (as in metrics/traffic.cpp).
class SegWalk {
 public:
  explicit SegWalk(std::span<const ColumnSegment> segs) : segs_(segs) {}
  index_t block_for(index_t row) {
    while (pos_ < segs_.size() && segs_[pos_].rows.hi < row) ++pos_;
    SPF_CHECK(pos_ < segs_.size() && segs_[pos_].rows.contains(row),
              "row not covered by column segments");
    return segs_[pos_].block;
  }

 private:
  std::span<const ColumnSegment> segs_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::vector<count_t>> edge_volumes(const Partition& p, const BlockDeps& deps) {
  const SymbolicFactor& sf = p.factor;
  // Edge index lookup: (src, dst) -> position in deps.preds[dst].
  const auto nb = static_cast<std::uint64_t>(p.num_blocks());
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index;
  std::vector<std::vector<count_t>> volumes(deps.preds.size());
  for (std::size_t b = 0; b < deps.preds.size(); ++b) {
    volumes[b].assign(deps.preds[b].size(), 0);
    for (std::size_t i = 0; i < deps.preds[b].size(); ++i) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(deps.preds[b][i]) * nb + static_cast<std::uint64_t>(b);
      edge_index.emplace(key, static_cast<std::uint32_t>(i));
    }
  }

  // Count distinct (edge, element) pairs.
  std::unordered_set<std::uint64_t> seen;
  const auto nnz = static_cast<std::uint64_t>(sf.nnz());
  auto account = [&](index_t src, index_t dst, count_t element) {
    if (src == dst) return;
    const std::uint64_t ekey =
        static_cast<std::uint64_t>(src) * nb + static_cast<std::uint64_t>(dst);
    const auto it = edge_index.find(ekey);
    SPF_CHECK(it != edge_index.end(), "edge missing from dependency DAG");
    // Dedup key: edge id combined with the element id.
    const std::uint64_t dkey = ekey * nnz + static_cast<std::uint64_t>(element);
    if (seen.insert(dkey).second) {
      ++volumes[static_cast<std::size_t>(dst)][it->second];
    }
  };

  std::vector<index_t> src_blk;
  for (index_t k = 0; k < sf.n(); ++k) {
    const auto sd = sf.col_subdiag(k);
    if (sd.empty()) continue;
    const count_t kbase = sf.col_ptr()[static_cast<std::size_t>(k)];
    src_blk.resize(sd.size());
    {
      SegWalk w(p.emap.column_segments(k));
      for (std::size_t t = 0; t < sd.size(); ++t) src_blk[t] = w.block_for(sd[t]);
    }
    for (std::size_t b = 0; b < sd.size(); ++b) {
      const index_t j = sd[b];
      SegWalk w(p.emap.column_segments(j));
      for (std::size_t t = b; t < sd.size(); ++t) {
        const index_t target = w.block_for(sd[t]);
        account(src_blk[t], target, kbase + 1 + static_cast<count_t>(t));
        account(src_blk[b], target, kbase + 1 + static_cast<count_t>(b));
      }
    }
  }
  // Scaling reads of the diagonal.
  for (index_t j = 0; j < sf.n(); ++j) {
    const auto segs = p.emap.column_segments(j);
    const index_t diag_block = segs.front().block;
    const count_t diag_id = sf.col_ptr()[static_cast<std::size_t>(j)];
    for (const ColumnSegment& s : segs) account(diag_block, s.block, diag_id);
  }
  return volumes;
}

SimResult simulate_execution(const Partition& p, const BlockDeps& deps,
                             const std::vector<std::vector<count_t>>& volumes,
                             const std::vector<count_t>& blk_work, const Assignment& a,
                             const SimParams& params) {
  SPF_REQUIRE(static_cast<index_t>(deps.preds.size()) == p.num_blocks(),
              "deps size mismatch");
  return simulate_task_graph(blk_work, deps.preds, deps.succs, volumes, a, params);
}

SimResult simulate_task_graph(const std::vector<count_t>& blk_work,
                              const std::vector<std::vector<index_t>>& task_preds,
                              const std::vector<std::vector<index_t>>& task_succs,
                              const std::vector<std::vector<count_t>>& volumes,
                              const Assignment& a, const SimParams& params) {
  const index_t nb = static_cast<index_t>(blk_work.size());
  SPF_REQUIRE(static_cast<index_t>(task_preds.size()) == nb, "preds size mismatch");
  SPF_REQUIRE(static_cast<index_t>(task_succs.size()) == nb, "succs size mismatch");
  SPF_REQUIRE(static_cast<index_t>(a.proc_of_block.size()) == nb, "assignment size mismatch");

  SimResult res;
  res.busy.assign(static_cast<std::size_t>(a.nprocs), 0.0);

  std::vector<index_t> remaining(static_cast<std::size_t>(nb));
  std::vector<double> ready_time(static_cast<std::size_t>(nb), 0.0);
  for (index_t b = 0; b < nb; ++b) {
    remaining[static_cast<std::size_t>(b)] =
        static_cast<index_t>(task_preds[static_cast<std::size_t>(b)].size());
  }

  // Per-processor ready queue ordered by task id (left-to-right priority).
  using TaskQueue = std::priority_queue<index_t, std::vector<index_t>, std::greater<>>;
  std::vector<TaskQueue> ready(static_cast<std::size_t>(a.nprocs));
  std::vector<char> proc_busy(static_cast<std::size_t>(a.nprocs), 0);

  struct Event {
    double time;
    index_t kind;  // 0 = task ready on its processor, 1 = task complete
    index_t task;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      if (kind != o.kind) return kind > o.kind;
      return task > o.task;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  SPF_REQUIRE(params.proc_speeds.empty() ||
                  static_cast<index_t>(params.proc_speeds.size()) == a.nprocs,
              "proc_speeds must cover every processor (or be empty)");
  auto try_start = [&](index_t proc, double now) {
    if (proc_busy[static_cast<std::size_t>(proc)]) return;
    auto& q = ready[static_cast<std::size_t>(proc)];
    if (q.empty()) return;
    const index_t task = q.top();
    q.pop();
    proc_busy[static_cast<std::size_t>(proc)] = 1;
    double duration =
        params.compute_cost * static_cast<double>(blk_work[static_cast<std::size_t>(task)]);
    if (!params.proc_speeds.empty()) {
      duration /= params.proc_speeds[static_cast<std::size_t>(proc)];
    }
    res.busy[static_cast<std::size_t>(proc)] += duration;
    events.push({now + duration, 1, task});
  };

  for (index_t b = 0; b < nb; ++b) {
    if (remaining[static_cast<std::size_t>(b)] == 0) events.push({0.0, 0, b});
  }

  double now = 0.0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    const index_t proc = a.proc(ev.task);
    if (ev.kind == 0) {
      ready[static_cast<std::size_t>(proc)].push(ev.task);
      try_start(proc, now);
    } else {
      proc_busy[static_cast<std::size_t>(proc)] = 0;
      // Deliver data to successors.
      for (index_t succ : task_succs[static_cast<std::size_t>(ev.task)]) {
        const index_t sp = a.proc(succ);
        double arrival = now;
        if (sp != proc) {
          // Volume of this edge: find ev.task among succ's preds.
          const auto& preds = task_preds[static_cast<std::size_t>(succ)];
          const auto it = std::lower_bound(preds.begin(), preds.end(), ev.task);
          SPF_CHECK(it != preds.end() && *it == ev.task, "succ/pred mismatch");
          const count_t vol =
              volumes[static_cast<std::size_t>(succ)]
                     [static_cast<std::size_t>(it - preds.begin())];
          arrival += params.msg_latency + params.msg_per_elem * static_cast<double>(vol);
          ++res.messages;
          res.volume += vol;
        }
        auto& rem = remaining[static_cast<std::size_t>(succ)];
        auto& rt = ready_time[static_cast<std::size_t>(succ)];
        rt = std::max(rt, arrival);
        if (--rem == 0) events.push({rt, 0, succ});
      }
      try_start(proc, now);
    }
  }

  res.makespan = now;
  res.total_busy = 0.0;
  for (double b : res.busy) res.total_busy += b;
  res.efficiency = res.makespan > 0.0
                       ? res.total_busy / (res.makespan * static_cast<double>(a.nprocs))
                       : 1.0;
  return res;
}

}  // namespace spf
