// Event-driven simulation of the distributed factorization.
//
// The paper's metrics deliberately ignore dependency delays ("we are
// concerned with the quality of the partitioner/scheduler in distributing
// the work ... and hence do not take into account data dependency delays").
// This simulator adds them back: unit blocks become tasks that run on their
// assigned processor once every predecessor's data has arrived, messages
// pay a latency + per-element cost, and the result is a makespan that can
// be compared across mappings and communication-cost regimes (the
// ablation the paper's conclusion gestures at: "if the application is run
// on a system with high communication cost ..., the block-based
// partitioning can give good performance").
#pragma once

#include <vector>

#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"

namespace spf {

struct SimParams {
  double compute_cost = 1.0;   ///< time per work unit
  double msg_latency = 10.0;   ///< alpha: fixed cost per message
  double msg_per_elem = 1.0;   ///< beta: cost per transferred element
  /// Per-processor relative speeds (sched/cost_model.hpp); a task of w
  /// work units runs in compute_cost * w / speed(p).  Empty = uniform,
  /// which leaves the historical timing bitwise-unchanged.
  std::vector<double> proc_speeds;
};

struct SimResult {
  double makespan = 0.0;
  double total_busy = 0.0;   ///< sum of per-processor busy time
  double efficiency = 0.0;   ///< total_busy / (nprocs * makespan)
  count_t messages = 0;      ///< inter-processor messages sent
  count_t volume = 0;        ///< elements moved between processors
  std::vector<double> busy;  ///< per-processor busy time
};

/// Number of distinct elements of `pred` read by `succ`, for every
/// dependency edge; indexed in the order of deps.preds (edge (b, t) where
/// t = preds[b][i] maps to volumes[b][i]).
std::vector<std::vector<count_t>> edge_volumes(const Partition& p, const BlockDeps& deps);

/// Simulate the schedule.  `blk_work` from metrics/work.hpp.
SimResult simulate_execution(const Partition& p, const BlockDeps& deps,
                             const std::vector<std::vector<count_t>>& volumes,
                             const std::vector<count_t>& blk_work, const Assignment& a,
                             const SimParams& params);

/// Same engine over raw task arrays — used by the generic TaskDag layer
/// (the paper's DAG generalization) as well as the factorization path.
SimResult simulate_task_graph(const std::vector<count_t>& work,
                              const std::vector<std::vector<index_t>>& preds,
                              const std::vector<std::vector<index_t>>& succs,
                              const std::vector<std::vector<count_t>>& volumes,
                              const Assignment& a, const SimParams& params);

}  // namespace spf
