#include "sim/task_dag.hpp"

#include <algorithm>
#include <queue>

#include "sim/desim.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace spf {

void TaskDag::validate() const {
  const index_t n = num_tasks();
  SPF_REQUIRE(preds.size() == work.size() && succs.size() == work.size() &&
                  volumes.size() == work.size(),
              "task dag arrays must agree in length");
  count_t pred_edges = 0, succ_edges = 0;
  for (index_t t = 0; t < n; ++t) {
    SPF_REQUIRE(volumes[static_cast<std::size_t>(t)].size() ==
                    preds[static_cast<std::size_t>(t)].size(),
                "one volume per predecessor edge");
    SPF_REQUIRE(std::is_sorted(preds[static_cast<std::size_t>(t)].begin(),
                               preds[static_cast<std::size_t>(t)].end()),
                "predecessor lists must be sorted");
    for (index_t p : preds[static_cast<std::size_t>(t)]) {
      SPF_REQUIRE(p >= 0 && p < n && p != t, "bad predecessor");
      SPF_REQUIRE(std::binary_search(succs[static_cast<std::size_t>(p)].begin(),
                                     succs[static_cast<std::size_t>(p)].end(), t),
                  "preds/succs must mirror each other");
    }
    pred_edges += static_cast<count_t>(preds[static_cast<std::size_t>(t)].size());
    succ_edges += static_cast<count_t>(succs[static_cast<std::size_t>(t)].size());
  }
  SPF_REQUIRE(pred_edges == succ_edges, "preds/succs edge counts differ");
  // Acyclicity via Kahn.
  std::vector<index_t> indeg(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    indeg[static_cast<std::size_t>(t)] =
        static_cast<index_t>(preds[static_cast<std::size_t>(t)].size());
  }
  std::queue<index_t> q;
  for (index_t t = 0; t < n; ++t) {
    if (indeg[static_cast<std::size_t>(t)] == 0) q.push(t);
  }
  index_t seen = 0;
  while (!q.empty()) {
    const index_t t = q.front();
    q.pop();
    ++seen;
    for (index_t s : succs[static_cast<std::size_t>(t)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) q.push(s);
    }
  }
  SPF_REQUIRE(seen == n, "task dag has a cycle");
}

TaskDag dag_from_mapping(const Partition& partition, const BlockDeps& deps,
                         const std::vector<count_t>& blk_work) {
  TaskDag dag;
  dag.work = blk_work;
  dag.preds = deps.preds;
  dag.succs = deps.succs;
  dag.volumes = edge_volumes(partition, deps);
  return dag;
}

TaskDag random_layered_dag(index_t layers, index_t width, index_t fan_in,
                           count_t max_work, count_t max_volume, std::uint64_t seed) {
  SPF_REQUIRE(layers >= 1 && width >= 1, "dag must have at least one task");
  SPF_REQUIRE(fan_in >= 0 && max_work >= 1 && max_volume >= 1, "bad dag parameters");
  SplitMix64 rng(seed);
  const index_t n = layers * width;
  TaskDag dag;
  dag.work.resize(static_cast<std::size_t>(n));
  dag.preds.resize(static_cast<std::size_t>(n));
  dag.succs.resize(static_cast<std::size_t>(n));
  dag.volumes.resize(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    dag.work[static_cast<std::size_t>(t)] =
        1 + static_cast<count_t>(rng.below(static_cast<std::uint64_t>(max_work)));
  }
  for (index_t layer = 1; layer < layers; ++layer) {
    for (index_t i = 0; i < width; ++i) {
      const index_t t = layer * width + i;
      std::vector<index_t> chosen;
      for (index_t f = 0; f < std::min(fan_in, width); ++f) {
        const index_t p =
            (layer - 1) * width +
            static_cast<index_t>(rng.below(static_cast<std::uint64_t>(width)));
        chosen.push_back(p);
      }
      std::sort(chosen.begin(), chosen.end());
      chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
      for (index_t p : chosen) {
        dag.preds[static_cast<std::size_t>(t)].push_back(p);
        dag.succs[static_cast<std::size_t>(p)].push_back(t);
        dag.volumes[static_cast<std::size_t>(t)].push_back(
            1 + static_cast<count_t>(rng.below(static_cast<std::uint64_t>(max_volume))));
      }
    }
  }
  for (auto& s : dag.succs) std::sort(s.begin(), s.end());
  return dag;
}

namespace {

std::vector<index_t> topo_order(const TaskDag& dag) {
  const index_t n = dag.num_tasks();
  std::vector<index_t> indeg(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    indeg[static_cast<std::size_t>(t)] =
        static_cast<index_t>(dag.preds[static_cast<std::size_t>(t)].size());
  }
  std::priority_queue<index_t, std::vector<index_t>, std::greater<>> ready;
  for (index_t t = 0; t < n; ++t) {
    if (indeg[static_cast<std::size_t>(t)] == 0) ready.push(t);
  }
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const index_t t = ready.top();
    ready.pop();
    order.push_back(t);
    for (index_t s : dag.succs[static_cast<std::size_t>(t)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  SPF_CHECK(static_cast<index_t>(order.size()) == n, "dag has a cycle");
  return order;
}

}  // namespace

Assignment dag_min_load_schedule(const TaskDag& dag, index_t nprocs) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(static_cast<std::size_t>(dag.num_tasks()), -1);
  std::vector<count_t> load(static_cast<std::size_t>(nprocs), 0);
  for (index_t t : topo_order(dag)) {
    index_t best = 0;
    for (index_t p = 1; p < nprocs; ++p) {
      if (load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(best)]) best = p;
    }
    a.proc_of_block[static_cast<std::size_t>(t)] = best;
    load[static_cast<std::size_t>(best)] += dag.work[static_cast<std::size_t>(t)];
  }
  return a;
}

Assignment dag_locality_schedule(const TaskDag& dag, index_t nprocs, double slack) {
  SPF_REQUIRE(nprocs >= 1, "need at least one processor");
  SPF_REQUIRE(slack >= 0.0, "slack must be non-negative");
  const index_t n = dag.num_tasks();
  count_t total = 0;
  for (count_t w : dag.work) total += w;
  const double budget =
      n > 0 ? slack * static_cast<double>(total) / static_cast<double>(n) : 0.0;

  Assignment a;
  a.nprocs = nprocs;
  a.proc_of_block.assign(static_cast<std::size_t>(n), -1);
  std::vector<count_t> load(static_cast<std::size_t>(nprocs), 0);
  std::vector<count_t> proc_volume(static_cast<std::size_t>(nprocs), 0);
  for (index_t t : topo_order(dag)) {
    index_t min_proc = 0;
    for (index_t p = 1; p < nprocs; ++p) {
      if (load[static_cast<std::size_t>(p)] < load[static_cast<std::size_t>(min_proc)]) {
        min_proc = p;
      }
    }
    // Volume pulled from each predecessor processor.
    std::fill(proc_volume.begin(), proc_volume.end(), 0);
    const auto& preds = dag.preds[static_cast<std::size_t>(t)];
    const auto& vols = dag.volumes[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < preds.size(); ++i) {
      proc_volume[static_cast<std::size_t>(
          a.proc_of_block[static_cast<std::size_t>(preds[i])])] += vols[i];
    }
    index_t chosen = -1;
    count_t best_vol = 0;
    for (index_t p = 0; p < nprocs; ++p) {
      if (proc_volume[static_cast<std::size_t>(p)] == 0) continue;
      const double over = static_cast<double>(load[static_cast<std::size_t>(p)] -
                                              load[static_cast<std::size_t>(min_proc)]);
      if (over > budget) continue;
      if (proc_volume[static_cast<std::size_t>(p)] > best_vol) {
        best_vol = proc_volume[static_cast<std::size_t>(p)];
        chosen = p;
      }
    }
    if (chosen == -1) chosen = min_proc;
    a.proc_of_block[static_cast<std::size_t>(t)] = chosen;
    load[static_cast<std::size_t>(chosen)] += dag.work[static_cast<std::size_t>(t)];
  }
  return a;
}

count_t dag_cross_volume(const TaskDag& dag, const Assignment& a) {
  SPF_REQUIRE(a.proc_of_block.size() == dag.work.size(), "assignment/dag mismatch");
  count_t total = 0;
  for (index_t t = 0; t < dag.num_tasks(); ++t) {
    const auto& preds = dag.preds[static_cast<std::size_t>(t)];
    const auto& vols = dag.volumes[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (a.proc(preds[i]) != a.proc(t)) total += vols[i];
    }
  }
  return total;
}

SimResult simulate_dag(const TaskDag& dag, const Assignment& a, const SimParams& params) {
  return simulate_task_graph(dag.work, dag.preds, dag.succs, dag.volumes, a, params);
}

double dag_load_imbalance(const TaskDag& dag, const Assignment& a) {
  std::vector<count_t> load(static_cast<std::size_t>(a.nprocs), 0);
  for (index_t t = 0; t < dag.num_tasks(); ++t) {
    load[static_cast<std::size_t>(a.proc(t))] += dag.work[static_cast<std::size_t>(t)];
  }
  count_t total = 0, worst = 0;
  for (count_t l : load) {
    total += l;
    worst = std::max(worst, l);
  }
  if (total == 0) return 0.0;
  const double np = static_cast<double>(a.nprocs);
  return (static_cast<double>(worst) - static_cast<double>(total) / np) * np /
         static_cast<double>(total);
}

}  // namespace spf
