// Generic task DAG — the paper's closing generalization.
//
// "In fact, it can be generalized to computations that can be represented
// as directed acyclic graphs with sufficient information prior to
// performing the computations."  This type carries exactly that
// information — per-task work and per-edge data volume — and the
// schedulers/simulator operate on it directly, so any DAG-shaped
// computation can reuse the mapping machinery, not just factorizations.
#pragma once

#include <vector>

#include "matrix/types.hpp"
#include "partition/dependencies.hpp"
#include "partition/partitioner.hpp"
#include "schedule/assignment.hpp"
#include "sim/desim.hpp"

namespace spf {

struct TaskDag {
  /// Work units per task.
  std::vector<count_t> work;
  /// preds[t] / succs[t]: sorted dependency lists.
  std::vector<std::vector<index_t>> preds;
  std::vector<std::vector<index_t>> succs;
  /// volumes[t][i]: data volume on edge (preds[t][i] -> t).
  std::vector<std::vector<count_t>> volumes;

  [[nodiscard]] index_t num_tasks() const { return static_cast<index_t>(work.size()); }

  /// Validate sizes, symmetry of preds/succs, and acyclicity.
  void validate() const;
};

/// Extract the task DAG of a factorization mapping (blocks become tasks).
TaskDag dag_from_mapping(const Partition& partition, const BlockDeps& deps,
                         const std::vector<count_t>& blk_work);

/// Synthetic layered DAG for experiments beyond factorization: `layers`
/// layers of `width` tasks; each task depends on `fan_in` random tasks of
/// the previous layer; work and edge volumes drawn from [1, max_work] and
/// [1, max_volume].  Deterministic in `seed`.
TaskDag random_layered_dag(index_t layers, index_t width, index_t fan_in,
                           count_t max_work, count_t max_volume, std::uint64_t seed);

/// Greedy list scheduler for a generic DAG: tasks in topological order to
/// the least-loaded processor (the balance-first baseline).
Assignment dag_min_load_schedule(const TaskDag& dag, index_t nprocs);

/// Locality-aware list scheduler: prefer the predecessor processor whose
/// incoming volume to this task is largest, unless its load exceeds the
/// minimum by more than `slack` x (average task work) — the paper's
/// block-scheduler philosophy transplanted to arbitrary DAGs.
Assignment dag_locality_schedule(const TaskDag& dag, index_t nprocs, double slack = 4.0);

/// Total data volume crossing processors under an assignment.
count_t dag_cross_volume(const TaskDag& dag, const Assignment& a);

/// Run the event-driven execution simulation over a generic DAG.
SimResult simulate_dag(const TaskDag& dag, const Assignment& a, const SimParams& params);

/// Load imbalance factor of an assignment over the DAG's work.
double dag_load_imbalance(const TaskDag& dag, const Assignment& a);

}  // namespace spf
