// Lightweight runtime checking for invariants that must hold in release
// builds as well as debug builds.  The library is used as an experimental
// harness, so we fail loudly rather than propagate corrupted structures.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace spf {

/// Thrown by SPF_REQUIRE when a precondition on user-supplied data fails.
class invalid_input : public std::runtime_error {
 public:
  explicit invalid_input(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by SPF_CHECK when an internal invariant fails.
class internal_error : public std::logic_error {
 public:
  explicit internal_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_fail(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  throw invalid_input(std::string("precondition failed: ") + cond + " at " + file + ":" +
                      std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void check_fail(const char* cond, const char* file, int line,
                                    const std::string& msg) {
  throw internal_error(std::string("invariant failed: ") + cond + " at " + file + ":" +
                       std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace spf

/// Validate a precondition on caller-supplied data (always on).
#define SPF_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::spf::detail::require_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Validate an internal invariant (always on; these are cheap).
#define SPF_CHECK(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) ::spf::detail::check_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
