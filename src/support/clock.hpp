// Clock abstraction for time-driven subsystems (the serving layer's
// coalescer linger and request deadlines).
//
// Code that waits on wall time is untestable deterministically, so the
// service takes a Clock: SteadyClock forwards to std::chrono::steady_clock
// for production, ManualClock is a test clock that only moves when the
// test advances it — a linger window or deadline then expires exactly when
// the test says so, never because the machine was slow.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>

namespace spf {

/// Nanoseconds since an arbitrary epoch (steady, never decreasing).
using ClockNs = std::int64_t;

/// Sentinel for "no deadline / nothing scheduled".
inline constexpr ClockNs kClockNever = std::numeric_limits<ClockNs>::max();

class Clock {
 public:
  virtual ~Clock() = default;

  [[nodiscard]] virtual ClockNs now_ns() const = 0;

  /// Block on `cv` (which guards state under `lk`) until roughly
  /// `deadline_ns` on this clock, a notification, or a spurious wakeup —
  /// callers must re-check their predicate and the clock after returning.
  /// `deadline_ns == kClockNever` waits for a notification alone.
  virtual void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                          ClockNs deadline_ns) const = 0;
};

/// Real time: std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] ClockNs now_ns() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  ClockNs deadline_ns) const override {
    if (deadline_ns == kClockNever) {
      cv.wait(lk);
    } else {
      cv.wait_until(lk, std::chrono::steady_clock::time_point(
                            std::chrono::nanoseconds(deadline_ns)));
    }
  }

  /// Shared process-wide instance (the clock is stateless).
  [[nodiscard]] static std::shared_ptr<const Clock> instance() {
    static const std::shared_ptr<const Clock> clock = std::make_shared<SteadyClock>();
    return clock;
  }
};

/// Test clock: time moves only via advance()/set().  Waits with a pending
/// deadline poll briefly in real time (the clock cannot notify foreign
/// condition variables), so an advance() past a deadline is observed
/// within a poll period; with no deadline the wait is a plain cv wait.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(ClockNs start_ns = 0) : now_(start_ns) {}

  [[nodiscard]] ClockNs now_ns() const override {
    return now_.load(std::memory_order_acquire);
  }

  void advance(ClockNs delta_ns) { now_.fetch_add(delta_ns, std::memory_order_acq_rel); }
  void set(ClockNs t_ns) { now_.store(t_ns, std::memory_order_release); }

  void wait_until(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  ClockNs deadline_ns) const override {
    if (deadline_ns != kClockNever && now_ns() >= deadline_ns) return;
    if (deadline_ns == kClockNever) {
      cv.wait(lk);
    } else {
      cv.wait_for(lk, std::chrono::microseconds(100));
    }
  }

 private:
  std::atomic<ClockNs> now_;
};

}  // namespace spf
