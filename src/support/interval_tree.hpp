// Static augmented interval tree over closed integer intervals.
//
// The paper computes inter-block dependencies "using ... the interval tree
// structure" (Section 3.3).  Unit blocks are geometric objects whose row and
// column extents are closed intervals; finding which blocks a given extent
// touches is an interval-overlap query.  This implementation builds a
// balanced BST over intervals sorted by low endpoint, augmented with the
// maximum high endpoint in each subtree, giving O(log n + k) overlap
// queries.  The tree is immutable after construction, which is all the
// partitioner needs (blocks are fixed before dependency analysis starts).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "support/check.hpp"

namespace spf {

/// Closed interval [lo, hi] of a signed integral coordinate type.
template <typename Coord>
struct Interval {
  Coord lo;
  Coord hi;

  [[nodiscard]] bool contains(Coord x) const { return lo <= x && x <= hi; }
  [[nodiscard]] bool overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  [[nodiscard]] bool empty() const { return hi < lo; }
  [[nodiscard]] Coord length() const { return empty() ? Coord{0} : hi - lo + 1; }
  bool operator==(const Interval&) const = default;
};

/// Intersection of two closed intervals (may be empty: hi < lo).
template <typename Coord>
[[nodiscard]] Interval<Coord> intersect(const Interval<Coord>& a, const Interval<Coord>& b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

/// Immutable interval tree mapping intervals to values of type T.
template <typename Coord, typename T>
class IntervalTree {
 public:
  struct Entry {
    Interval<Coord> iv;
    T value;
  };

  IntervalTree() = default;

  /// Build from a list of (interval, value) entries.  Empty intervals are
  /// rejected: they cannot overlap anything and almost certainly indicate a
  /// caller bug.
  explicit IntervalTree(std::vector<Entry> entries) : entries_(std::move(entries)) {
    for (const Entry& e : entries_) {
      SPF_REQUIRE(!e.iv.empty(), "interval tree entry must be non-empty");
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.iv.lo != b.iv.lo ? a.iv.lo < b.iv.lo : a.iv.hi < b.iv.hi;
              });
    max_hi_.assign(entries_.size(), Coord{});
    build(0, entries_.size());
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Invoke fn(entry) for every stored interval overlapping `query`.
  template <typename Fn>
  void visit_overlaps(const Interval<Coord>& query, Fn&& fn) const {
    if (!query.empty()) visit(0, entries_.size(), query, fn);
  }

  /// Invoke fn(entry) for every stored interval containing point x.
  template <typename Fn>
  void visit_stabbing(Coord x, Fn&& fn) const {
    visit_overlaps({x, x}, std::forward<Fn>(fn));
  }

  /// Collect the values of all intervals overlapping `query`.
  [[nodiscard]] std::vector<T> overlaps(const Interval<Coord>& query) const {
    std::vector<T> out;
    visit_overlaps(query, [&](const Entry& e) { out.push_back(e.value); });
    return out;
  }

 private:
  // The tree is embedded in the sorted array: node = midpoint of [lo, hi).
  void build(std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    build(lo, mid);
    build(mid + 1, hi);
    Coord m = entries_[mid].iv.hi;
    if (mid > lo) m = std::max(m, max_hi_[lo + (mid - lo) / 2]);
    if (mid + 1 < hi) m = std::max(m, max_hi_[mid + 1 + (hi - mid - 1) / 2]);
    max_hi_[mid] = m;
  }

  template <typename Fn>
  void visit(std::size_t lo, std::size_t hi, const Interval<Coord>& q, Fn& fn) const {
    if (lo >= hi) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    // If everything in this subtree ends before the query starts, prune.
    if (max_hi_[mid] < q.lo) return;
    visit(lo, mid, q, fn);
    if (entries_[mid].iv.overlaps(q)) fn(entries_[mid]);
    // Right subtree keys start at entries_[mid].iv.lo or later; if even the
    // node's low endpoint is beyond the query end, nothing there overlaps.
    if (entries_[mid].iv.lo <= q.hi) visit(mid + 1, hi, q, fn);
  }

  std::vector<Entry> entries_;
  std::vector<Coord> max_hi_;
};

}  // namespace spf
