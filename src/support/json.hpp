// Minimal JSON emitter for machine-readable tool output.
//
// Write-only, streaming, no dependencies: enough for spf_analyze --json to
// feed dashboards or scripts.  Handles escaping and keeps track of commas;
// callers are responsible for matching begin/end calls (checked).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace spf {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter() { SPF_CHECK(stack_.empty(), "unterminated JSON containers"); }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() {
    comma();
    os_ << '{';
    stack_.push_back('}');
    first_ = true;
  }
  void begin_object(const std::string& key) {
    comma();
    write_key(key);
    os_ << '{';
    stack_.push_back('}');
    first_ = true;
  }
  void begin_array(const std::string& key) {
    comma();
    write_key(key);
    os_ << '[';
    stack_.push_back(']');
    first_ = true;
  }
  void end() {
    SPF_REQUIRE(!stack_.empty(), "end() without a matching begin");
    os_ << stack_.back();
    stack_.pop_back();
    first_ = false;
  }

  void field(const std::string& key, const std::string& value) {
    comma();
    write_key(key);
    write_string(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    comma();
    write_key(key);
    os_ << value;
  }
  void field(const std::string& key, long long value) {
    comma();
    write_key(key);
    os_ << value;
  }
  void field(const std::string& key, int value) { field(key, static_cast<long long>(value)); }
  void field(const std::string& key, bool value) {
    comma();
    write_key(key);
    os_ << (value ? "true" : "false");
  }

  /// Array element (numbers only; sufficient for per-processor vectors).
  void element(long long value) {
    comma();
    os_ << value;
  }
  void element(double value) {
    comma();
    os_ << value;
  }

 private:
  void comma() {
    if (!first_) os_ << ',';
    first_ = false;  // the enclosing container is no longer empty
  }
  void write_key(const std::string& key) {
    write_string(key);
    os_ << ':';
  }
  void write_string(const std::string& s) {
    os_ << '"';
    for (char ch : s) {
      switch (ch) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          os_ << ch;
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<char> stack_;
  bool first_ = true;
};

}  // namespace spf
