// Deterministic pseudo-random number generation for workload synthesis.
//
// Every generator in src/gen takes an explicit seed and uses this engine so
// that all experiments are bit-reproducible across platforms (std::mt19937
// distributions are not portable across standard library implementations;
// we implement the few draws we need ourselves).
#pragma once

#include <cstdint>

namespace spf {

/// SplitMix64: tiny, high-quality, portable 64-bit PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit draw.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound), bound < 2^32: 32-bit multiply-shift
  /// reduction (bias < 2^-32, irrelevant for workload synthesis; fully
  /// portable, no 128-bit arithmetic).
  std::uint64_t below(std::uint64_t bound) {
    const std::uint64_t hi32 = next() >> 32;
    return (hi32 * bound) >> 32;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

}  // namespace spf
