#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/check.hpp"

namespace spf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPF_REQUIRE(!header_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  SPF_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_separator() {
  rows_.emplace_back();  // sentinel
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ';
      for (std::size_t i = cell.size(); i < width[c]; ++i) os << ' ';
      os << cell << " |";
    }
    os << '\n';
  };
  hline();
  print_row(header_);
  hline();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].empty()) {
      // Suppress a separator that would double the closing rule.
      if (r + 1 < rows_.size()) hline();
    } else {
      print_row(rows_[r]);
    }
  }
  hline();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace spf
