// Console table formatting used by the benchmark harness to print the
// paper's tables side by side with measured values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spf {

/// Simple right-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same number of cells as the header.
  Table& add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  Table& add_separator();

  /// Render with column widths fitted to content.
  void print(std::ostream& os) const;

  /// Convenience formatting helpers.
  static std::string num(std::int64_t v);
  static std::string fixed(double v, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace spf
