#include "symbolic/colcounts.hpp"

#include <numeric>

#include "support/check.hpp"
#include "symbolic/etree.hpp"

namespace spf {

namespace {

/// Gilbert-Ng-Peyton leaf test: is column j a leaf of row i's row subtree?
/// Returns the least common ancestor of j and the previous leaf when j is
/// a subsequent leaf (jleaf == 2), i itself for the first leaf (jleaf ==
/// 1), and -1 when j is not a leaf (jleaf == 0).
index_t leaf(index_t i, index_t j, const std::vector<index_t>& first,
             std::vector<index_t>& maxfirst, std::vector<index_t>& prevleaf,
             std::vector<index_t>& ancestor, int& jleaf) {
  jleaf = 0;
  if (i <= j || first[static_cast<std::size_t>(j)] <= maxfirst[static_cast<std::size_t>(i)]) {
    return -1;
  }
  maxfirst[static_cast<std::size_t>(i)] = first[static_cast<std::size_t>(j)];
  const index_t jprev = prevleaf[static_cast<std::size_t>(i)];
  prevleaf[static_cast<std::size_t>(i)] = j;
  if (jprev == -1) {
    jleaf = 1;
    return i;
  }
  jleaf = 2;
  // Union-find LCA with path compression.
  index_t q = jprev;
  while (q != ancestor[static_cast<std::size_t>(q)]) q = ancestor[static_cast<std::size_t>(q)];
  for (index_t s = jprev; s != q;) {
    const index_t next = ancestor[static_cast<std::size_t>(s)];
    ancestor[static_cast<std::size_t>(s)] = q;
    s = next;
  }
  return q;
}

}  // namespace

std::vector<count_t> cholesky_column_counts(const CscMatrix& lower) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "matrix must be square");
  const index_t n = lower.ncols();
  const std::vector<index_t> parent = elimination_tree(lower);
  const std::vector<index_t> post = tree_postorder(parent);

  std::vector<index_t> first(static_cast<std::size_t>(n), -1);
  std::vector<index_t> maxfirst(static_cast<std::size_t>(n), -1);
  std::vector<index_t> prevleaf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n));
  std::iota(ancestor.begin(), ancestor.end(), index_t{0});
  std::vector<count_t> delta(static_cast<std::size_t>(n), 0);

  // first[j]: postorder index of j's first descendant; delta[j] = 1 on
  // skeleton leaves.
  for (index_t k = 0; k < n; ++k) {
    index_t j = post[static_cast<std::size_t>(k)];
    delta[static_cast<std::size_t>(j)] = (first[static_cast<std::size_t>(j)] == -1) ? 1 : 0;
    for (; j != -1 && first[static_cast<std::size_t>(j)] == -1;
         j = parent[static_cast<std::size_t>(j)]) {
      first[static_cast<std::size_t>(j)] = k;
    }
  }

  // Row-subtree leaf sweep.  Column j of the lower triangle enumerates the
  // rows i > j with A(i,j) != 0, which is exactly the entry set the GNP
  // sweep needs at step j.
  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != -1) {
      --delta[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])];
    }
    for (index_t i : lower.col_rows(j)) {
      int jleaf = 0;
      const index_t q = leaf(i, j, first, maxfirst, prevleaf, ancestor, jleaf);
      if (jleaf >= 1) ++delta[static_cast<std::size_t>(j)];
      if (jleaf == 2) --delta[static_cast<std::size_t>(q)];
    }
    if (parent[static_cast<std::size_t>(j)] != -1) {
      ancestor[static_cast<std::size_t>(j)] = parent[static_cast<std::size_t>(j)];
    }
  }

  // Accumulate the deltas up the tree: cc[j] = delta[j] + sum over
  // children; children precede parents in any bottom-up scan of post.
  std::vector<count_t> cc(delta);
  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != -1) {
      cc[static_cast<std::size_t>(parent[static_cast<std::size_t>(j)])] +=
          cc[static_cast<std::size_t>(j)];
    }
  }
  return cc;
}

count_t cholesky_factor_nnz(const CscMatrix& lower) {
  const auto cc = cholesky_column_counts(lower);
  return std::accumulate(cc.begin(), cc.end(), count_t{0});
}

}  // namespace spf
