// Column counts of the Cholesky factor without forming its structure
// (Gilbert, Ng & Peyton's nearly-linear algorithm).
//
// |L(:,j)| for every column in O(nnz(A) * alpha(n)) time using skeleton
// leaves and union-find least-common-ancestor detection over the
// elimination tree.  Lets callers size the factor, pick grain sizes, or
// compare orderings without paying for full symbolic factorization; the
// test suite cross-checks it against struct(L) on every generator.
#pragma once

#include <vector>

#include "matrix/csc.hpp"

namespace spf {

/// Column counts (diagonal included) of the factor of the lower-triangular
/// symmetric matrix `lower`.
std::vector<count_t> cholesky_column_counts(const CscMatrix& lower);

/// Total factor nonzeros (sum of the counts) without forming struct(L).
count_t cholesky_factor_nnz(const CscMatrix& lower);

}  // namespace spf
