#include "symbolic/etree.hpp"

#include "support/check.hpp"

namespace spf {

std::vector<index_t> elimination_tree(const CscMatrix& lower) {
  SPF_REQUIRE(lower.nrows() == lower.ncols(), "etree requires a square matrix");
  const index_t n = lower.ncols();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  // Liu's algorithm requires visiting entries row by row in increasing row
  // order (so the *smallest* candidate parent reaches each subtree root
  // first); the transpose of the lower triangle exposes the rows as columns.
  const CscMatrix upper = transpose(lower);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k : upper.col_rows(i)) {
      SPF_REQUIRE(k <= i, "input must be lower triangular");
      if (k == i) continue;
      // Entry A(i, k) with k < i: walk from k to the root of its current
      // subtree, compressing ancestor pointers, and graft the root under i.
      index_t v = k;
      while (v != -1 && v < i) {
        const index_t next = ancestor[static_cast<std::size_t>(v)];
        ancestor[static_cast<std::size_t>(v)] = i;  // path compression
        if (next == -1) {
          parent[static_cast<std::size_t>(v)] = i;
          break;
        }
        v = next;
      }
    }
  }
  return parent;
}

std::vector<index_t> tree_postorder(const std::vector<index_t>& parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build child lists (ascending ids since we scan j ascending).
  std::vector<index_t> head(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next(static_cast<std::size_t>(n), -1);
  std::vector<index_t> roots;
  for (index_t j = n - 1; j >= 0; --j) {  // reverse scan => ascending lists
    const index_t p = parent[static_cast<std::size_t>(j)];
    if (p == -1) {
      roots.push_back(j);
    } else {
      next[static_cast<std::size_t>(j)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = j;
    }
  }
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  // roots currently descending; visit ascending.
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back(*it);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t child = head[static_cast<std::size_t>(v)];
      if (child != -1) {
        head[static_cast<std::size_t>(v)] = next[static_cast<std::size_t>(child)];
        stack.push_back(child);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  SPF_CHECK(static_cast<index_t>(post.size()) == n, "postorder must cover all nodes");
  return post;
}

std::vector<index_t> tree_depths(const std::vector<index_t>& parent) {
  const index_t n = static_cast<index_t>(parent.size());
  std::vector<index_t> depth(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j) {
    // Follow to the first known depth, then unwind.
    index_t v = j;
    index_t steps = 0;
    while (v != -1 && depth[static_cast<std::size_t>(v)] == -1) {
      v = parent[static_cast<std::size_t>(v)];
      ++steps;
    }
    index_t base = v == -1 ? -1 : depth[static_cast<std::size_t>(v)];
    v = j;
    index_t d = base + steps;
    while (v != -1 && depth[static_cast<std::size_t>(v)] == -1) {
      depth[static_cast<std::size_t>(v)] = d--;
      v = parent[static_cast<std::size_t>(v)];
    }
  }
  return depth;
}

}  // namespace spf
