// Elimination tree of a symmetric sparse matrix [Liu, "The role of
// elimination trees in sparse factorization"].
//
// parent[j] is the parent column of j in the elimination tree of the
// (already permuted) matrix, or -1 for roots.  The tree drives symbolic
// factorization, supernode detection, and the dependency analysis.
#pragma once

#include <vector>

#include "matrix/csc.hpp"

namespace spf {

/// Elimination tree from the lower triangle (path-compressed union-find,
/// O(nnz * alpha)).
std::vector<index_t> elimination_tree(const CscMatrix& lower);

/// Postorder of the forest given by `parent` (children visited before
/// parents, ties by ascending node id).
std::vector<index_t> tree_postorder(const std::vector<index_t>& parent);

/// Depth of each node (roots have depth 0).
std::vector<index_t> tree_depths(const std::vector<index_t>& parent);

}  // namespace spf
