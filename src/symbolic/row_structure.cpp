#include "symbolic/row_structure.hpp"

#include <atomic>

namespace spf {

namespace {
std::atomic<std::uint64_t> g_row_structure_builds{0};
}  // namespace

std::uint64_t row_structure_build_count() {
  return g_row_structure_builds.load(std::memory_order_relaxed);
}

RowStructure build_row_structure(const SymbolicFactor& sf) {
  g_row_structure_builds.fetch_add(1, std::memory_order_relaxed);
  RowStructure rl;
  rl.ptr.assign(static_cast<std::size_t>(sf.n()) + 1, 0);
  for (index_t k = 0; k < sf.n(); ++k) {
    for (index_t r : sf.col_subdiag(k)) ++rl.ptr[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t i = 1; i < rl.ptr.size(); ++i) rl.ptr[i] += rl.ptr[i - 1];
  rl.cols.resize(static_cast<std::size_t>(rl.ptr.back()));
  rl.elem.resize(static_cast<std::size_t>(rl.ptr.back()));
  std::vector<count_t> next(rl.ptr.begin(), rl.ptr.end() - 1);
  for (index_t k = 0; k < sf.n(); ++k) {
    const count_t base = sf.col_ptr()[static_cast<std::size_t>(k)];
    const auto rows = sf.col_rows(k);
    for (std::size_t t = 1; t < rows.size(); ++t) {
      const auto p = static_cast<std::size_t>(next[static_cast<std::size_t>(rows[t])]++);
      rl.cols[p] = k;  // ascending k per row since k ascends in the outer loop
      rl.elem[p] = base + static_cast<count_t>(t);
    }
  }
  return rl;
}

}  // namespace spf
